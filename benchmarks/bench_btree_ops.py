"""Micro-benchmarks of the B+tree primitives.

The index substrate's operations, timed in isolation: insert-heavy
construction vs bulk load, point search, prefix scans of varying
selectivity, and delete-heavy churn.  Assertions pin correctness so a
performance "fix" that breaks semantics fails loudly.
"""

import pytest

from repro.engine.btree import BPlusTree

N = 20_000


def make_entries(n=N):
    # two-attribute keys: 200 prefixes x (n // 200) suffixes
    width = max(1, n // 200)
    return [((i // width, i % width), i) for i in range(n)]


@pytest.fixture(scope="module")
def loaded_tree():
    return BPlusTree.bulk_load(make_entries(), order=32)


def test_bench_insert_build(benchmark):
    entries = make_entries(4_000)

    def build():
        tree = BPlusTree(order=32)
        for key, value in entries:
            tree.insert(key, value)
        return tree

    tree = benchmark.pedantic(build, rounds=3, iterations=1)
    assert len(tree) == 4_000


def test_bench_bulk_load(benchmark):
    entries = make_entries()
    tree = benchmark(BPlusTree.bulk_load, entries, 32)
    assert len(tree) == N


def test_bench_point_search(benchmark, loaded_tree):
    def probe():
        hits = 0
        for i in range(0, N, 97):
            width = max(1, N // 200)
            if loaded_tree.search((i // width, i % width)) is not None:
                hits += 1
        return hits

    hits = benchmark(probe)
    assert hits > 0


@pytest.mark.parametrize("prefix", [0, 100, 199])
def test_bench_prefix_scan(benchmark, loaded_tree, prefix):
    result = benchmark(lambda: sum(1 for __ in loaded_tree.prefix_scan((prefix,))))
    assert result == N // 200


def test_bench_delete_churn(benchmark):
    entries = make_entries(4_000)

    def churn():
        tree = BPlusTree.bulk_load(entries, order=8)
        for key, __ in entries[::2]:
            tree.delete(key)
        return tree

    tree = benchmark.pedantic(churn, rounds=3, iterations=1)
    assert len(tree) == 2_000
