#!/usr/bin/env python
"""Selection-pipeline benchmark driver.

Runs the selection benchmarks through pytest-benchmark, measures the
end-to-end pipeline (graph compile + engine compile + 1-greedy +
2-greedy) in both the *seed-style* configuration (reference per-edge
``from_cube`` loop, dense cost matrix, eager stage scans) and the
*current* configuration (vectorized ``from_cube``, auto backend, lazy
stage loops), measures query serving on the d=5 TPC-D workload (qps and
latency percentiles, serial vs. 2 replay workers), and writes everything
to ``benchmarks/BENCH_selection.json``.

The committed copy of that file doubles as the regression baseline: a
run whose pytest-benchmark medians or pipeline timings exceed the
committed numbers by more than ``REGRESSION_FACTOR`` exits non-zero.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py            # measure, gate, rewrite
    PYTHONPATH=src python benchmarks/run_bench.py --check    # measure + gate only
    PYTHONPATH=src python benchmarks/run_bench.py --no-gate  # measure + rewrite only
    PYTHONPATH=src python benchmarks/run_bench.py --skip-d7  # for quick iterations
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

HERE = Path(__file__).resolve().parent
RESULT_PATH = HERE / "BENCH_selection.json"
#: ``--check`` without a committed baseline: distinct from a regression (1)
EXIT_NO_BASELINE = 4
REGRESSION_FACTOR = 2.0
#: timings below this are dominated by noise; never gate on them
GATE_FLOOR_SECONDS = 0.01

BENCH_FILES = ["bench_algorithms_scaling.py"]
#: pytest-benchmark node substrings included in the gate
GATED_BENCHES = (
    "test_bench_rgreedy_scaling",
    "test_bench_inner_level_scaling",
    "test_bench_engine_compilation",
    "test_bench_from_cube_vectorized_d6",
    "test_bench_rgreedy1_d6_sparse",
)


def run_pytest_benchmarks() -> dict:
    """Run the benchmark files under pytest-benchmark; return name → median s."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        json_path = handle.name
    cmd = [
        sys.executable,
        "-m",
        "pytest",
        *[str(HERE / f) for f in BENCH_FILES],
        "--benchmark-only",
        "-q",
        f"--benchmark-json={json_path}",
    ]
    proc = subprocess.run(cmd, cwd=HERE.parent)
    if proc.returncode != 0:
        raise SystemExit(f"benchmark pytest run failed ({proc.returncode})")
    with open(json_path) as fh:
        payload = json.load(fh)
    medians = {}
    for bench in payload.get("benchmarks", []):
        medians[bench["name"]] = bench["stats"]["median"]
    return medians


def _pipeline(
    n_dims: int,
    seed_style: bool,
    include_r2: bool = True,
    repeats: int = 2,
    workers: int = 1,
) -> dict:
    """Time one end-to-end selection pipeline configuration.

    Takes the best of ``repeats`` runs (per-component): a single cold
    measurement jitters enough to trip the 2x gate spuriously.
    """
    best = None
    for _ in range(max(1, repeats)):
        timings = _pipeline_once(n_dims, seed_style, include_r2, workers)
        if best is None or timings["total"] < best["total"]:
            best = timings
    return best


def _pipeline_once(
    n_dims: int, seed_style: bool, include_r2: bool, workers: int = 1
) -> dict:
    from repro.algorithms.rgreedy import RGreedy
    from repro.core.benefit import BenefitEngine
    from repro.core.qvgraph import QueryViewGraph

    from bench_algorithms_scaling import budget_of, cube_lattice

    lattice = cube_lattice(n_dims)
    timings = {}
    t0 = time.perf_counter()
    graph = QueryViewGraph.from_cube(
        lattice, vectorized=False if seed_style else None
    )
    timings["from_cube"] = time.perf_counter() - t0
    t0 = time.perf_counter()
    engine = BenefitEngine(graph, backend="dense" if seed_style else "auto")
    timings["engine"] = time.perf_counter() - t0
    space = budget_of(engine)
    lazy = False if seed_style else None
    t0 = time.perf_counter()
    r1 = RGreedy(1, lazy=lazy, workers=workers).run(engine, space)
    timings["rgreedy1"] = time.perf_counter() - t0
    if include_r2:
        t0 = time.perf_counter()
        RGreedy(2, lazy=lazy, workers=workers).run(engine, space)
        timings["rgreedy2"] = time.perf_counter() - t0
    timings["total"] = sum(timings.values())
    timings["backend"] = engine.backend
    timings["workers"] = workers
    timings["n_selected_r1"] = len(r1.selected)
    return timings


#: Worker counts measured for the d=6 parallel sweep (1 = the serial
#: reference ``d6_current``).  Speedups are only meaningful on machines
#: with that many physical cores — ``meta.cpu_count`` records what this
#: run actually had, and the gate never fires on the parallel entries.
WORKERS_SWEEP = (1, 2, 4)


def measure_pipelines(skip_d7: bool) -> dict:
    out = {
        "d5_seed_style": _pipeline(5, seed_style=True),
        "d5_current": _pipeline(5, seed_style=False),
        "d6_current": _pipeline(6, seed_style=False),
    }
    out["d5_speedup"] = (
        out["d5_seed_style"]["total"] / out["d5_current"]["total"]
    )
    for workers in WORKERS_SWEEP:
        if workers == 1:
            continue  # the serial reference is d6_current itself
        out[f"d6_current_w{workers}"] = _pipeline(
            6, seed_style=False, repeats=1, workers=workers
        )
    out["d6_workers_speedup"] = {
        str(workers): (
            out["d6_current"]["total"]
            / out[f"d6_current_w{workers}"]["total"]
        )
        for workers in WORKERS_SWEEP
        if workers != 1
    }
    if not skip_d7:
        # d=7 is the scale target: the dense seed path cannot build it at
        # all (MemoryError past the allocation limit), so only the current
        # configuration is measured.  The 2-greedy leg (~900 stages over
        # ~13.8k structures) is the committed scale baseline for the
        # parallel evaluator's speedup target.
        out["d7_current"] = _pipeline(
            7, seed_style=False, include_r2=True, repeats=1
        )
    return out


def measure_checkpoint_overhead(n_dims: int = 5, repeats: int = 3) -> dict:
    """Cost of stage checkpointing on the d=5 selection pipeline.

    Times the ``d5_current`` pipeline (graph compile + engine compile +
    1-greedy + 2-greedy) with throttled on-disk checkpoints (the default
    interval) on both greedy legs, measuring the time spent inside the
    checkpoint path (``StageTracker._notify`` — stage recording, the
    boundary snapshot, budget checks, and the throttled write) within
    the *same* run.  Comparing two separate end-to-end runs instead
    drowns the few ms of true overhead in clock-speed drift.  The
    acceptance bar is <= 5% overhead for the on-disk default.
    """
    import statistics
    import tempfile

    from repro.algorithms import base as algorithms_base
    from repro.algorithms.rgreedy import RGreedy
    from repro.core.benefit import BenefitEngine
    from repro.core.qvgraph import QueryViewGraph
    from repro.runtime import RunContext

    from bench_algorithms_scaling import budget_of, cube_lattice

    lattice = cube_lattice(n_dims)

    def pipeline(checkpoint_dir):
        """Run the d5_current pipeline; return (total, checkpoint path) s."""
        spent = 0.0
        original = algorithms_base.StageTracker._notify

        def timed_notify(self, stage, scope):
            nonlocal spent
            t0 = time.perf_counter()
            try:
                return original(self, stage, scope)
            finally:
                spent += time.perf_counter() - t0

        algorithms_base.StageTracker._notify = timed_notify
        try:
            t0 = time.perf_counter()
            graph = QueryViewGraph.from_cube(lattice)
            engine = BenefitEngine(graph)
            space = budget_of(engine)
            for leg, algorithm in enumerate((RGreedy(1), RGreedy(2))):
                algorithm.run(
                    engine,
                    space,
                    context=RunContext(
                        checkpoint_path=checkpoint_dir / f"leg{leg}.ckpt"
                    ),
                )
            total = time.perf_counter() - t0
        finally:
            algorithms_base.StageTracker._notify = original
        return total, spent

    with tempfile.TemporaryDirectory() as tmp:
        pipeline(Path(tmp))  # warm up
        samples = [pipeline(Path(tmp)) for _ in range(max(3, repeats))]
    overheads = [spent / (total - spent) for total, spent in samples]
    base = statistics.median(total - spent for total, spent in samples)
    return {
        "base_seconds": base,
        "disk_checkpoint_seconds": statistics.median(t for t, __ in samples),
        "disk_overhead": statistics.median(overheads),
    }


#: Worker counts measured for the serving throughput sweep.
SERVING_WORKERS_SWEEP = (1, 2, 4)

#: The last committed d5_serial qps from before the batched execution
#: path landed (per-query serving).  The acceptance bar for the
#: high-throughput serving work is ``d5_w4_cached`` >= 3x this.
PRIOR_SERIAL_QPS_D5 = 5102.54


def measure_serving(n_dims: int = 5, n_queries: int = 500, repeats: int = 2) -> dict:
    """Queries/sec and latency percentiles serving the d=5 TPC-D workload.

    Replays the same synthetic log through a materialized selection
    across the serving matrix: per-query execution (``batch1``, the
    pre-batching reference shape), the vectorized batched path at
    1/2/4 front-end workers, and the batched path with the result cache
    on (best of ``repeats`` cold runs each — cache legs only benefit
    from repetition *within* the log).  The serial legs are gated like
    the pipeline timings; worker legs are informational (wall-clock
    depends on the runner's core count).  ``d5_cached_w4_speedup`` is
    the acceptance headline: batched+cached 4-worker qps over the
    per-query serial qps of the same run.
    """
    from repro.algorithms.rgreedy import RGreedy
    from repro.core.benefit import BenefitEngine
    from repro.core.costmodel import LinearCostModel
    from repro.core.qvgraph import QueryViewGraph
    from repro.cube.query_log import generate_query_log
    from repro.datasets.tpcd import tpcd_serving_fact, tpcd_serving_schema
    from repro.serve import QueryServer, ResultCache

    schema = tpcd_serving_schema(n_dims)
    fact = tpcd_serving_fact(n_dims)
    model = LinearCostModel.from_fact(fact)
    lattice = model.lattice
    graph = QueryViewGraph.from_cube(lattice)
    selection = (
        RGreedy(1)
        .run(
            BenefitEngine(graph),
            3.0 * lattice.size(lattice.top),
            seed=(lattice.label(lattice.top),),
        )
        .selected
    )
    log = generate_query_log(schema, n_queries, rng=0)

    def leg(workers: int, cached: bool = False, batch_size: int = None) -> dict:
        best = None
        for _ in range(max(1, repeats)):
            server = QueryServer(
                fact,
                selection,
                cost_model=model,
                cache=ResultCache() if cached else None,
                keep_records=False,
            )
            report = server.replay(log, workers=workers, batch_size=batch_size)
            assert report.fallbacks == 0, "bench workload must not fall back"
            timings = {
                "queries": report.queries,
                "workers": workers,
                "batch_size": report.batch_size,
                "cache": cached,
                "cache_hits": report.cache_hits,
                "seconds": report.seconds,
                "qps": report.qps,
                "p50_us": report.p50_us,
                "p99_us": report.p99_us,
            }
            if best is None or timings["seconds"] < best["seconds"]:
                best = timings
        return best

    out = {f"d{n_dims}_batch1": leg(1, batch_size=1)}
    for workers in SERVING_WORKERS_SWEEP:
        suffix = "serial" if workers == 1 else f"w{workers}"
        out[f"d{n_dims}_{suffix}"] = leg(workers)
        out[f"d{n_dims}_{suffix}_cached"] = leg(workers, cached=True)
    # within-run ablation: batched + cached + concurrent vs this run's
    # per-query reference leg
    out[f"d{n_dims}_cached_w4_speedup"] = (
        out[f"d{n_dims}_w4_cached"]["qps"] / out[f"d{n_dims}_batch1"]["qps"]
    )
    if n_dims == 5:
        # acceptance headline: vs the committed pre-batching serial qps
        out["d5_cached_w4_vs_prior_committed"] = (
            out["d5_w4_cached"]["qps"] / PRIOR_SERIAL_QPS_D5
        )
        out["d5_prior_committed_serial_qps"] = PRIOR_SERIAL_QPS_D5
    out[f"d{n_dims}_structures"] = len(selection)
    out.update(
        _fleet_legs(fact, model, selection, log, n_dims=n_dims)
    )
    out.update(
        _divergent_legs(fact, model, log, n_dims=n_dims)
    )
    return out


def _divergent_legs(fact, model, log, n_dims: int) -> dict:
    """Informational divergent-fleet leg: 4 replicas, each advised on
    its own workload partition, with cost-routed dispatch.

    Reports the serving throughput plus the acceptance number: the
    predicted workload cost of the divergent fleet over 4 identical
    copies of the workload-weighted single advise (must be <= 1.0; the
    d=5 fixture lands well below).  ``workers=2`` opts out of the
    regression gate like the other fleet legs.
    """
    from repro.algorithms.rgreedy import RGreedy
    from repro.core.qvgraph import QueryViewGraph
    from repro.cube.query_log import pattern_counts
    from repro.distributed import divergence_report, plan_divergent
    from repro.serve import ReplicaFleet, RetryPolicy, ServingError

    lattice = model.lattice
    top_label = lattice.label(lattice.top)
    space = 3.0 * lattice.size(lattice.top)
    counts = pattern_counts(log)
    partitioned, advice, router = plan_divergent(
        lattice, counts, RGreedy(1), space, 4,
        seed=(top_label,), cost_model=model,
    )
    identical = (
        RGreedy(1)
        .run(
            QueryViewGraph.from_cube(lattice, frequencies=counts),
            space,
            seed=(top_label,),
        )
        .selected
    )
    report = divergence_report(
        model, counts, advice, identical,
        partitioned=partitioned, router=router,
    )

    fleet = ReplicaFleet(
        fact,
        advice.selections,
        cost_model=model,
        workers=2,
        retry=RetryPolicy(max_attempts=3, base_delay=0.005),
        query_deadline=5.0,
        router=router,
    )
    start = time.perf_counter()
    results = list(fleet.serve_many(log))
    seconds = time.perf_counter() - start
    stats = fleet.stats()
    fleet.close()
    failed = sum(1 for r in results if isinstance(r, ServingError))
    served = [r for r in results if not isinstance(r, ServingError)]
    assert failed == 0, f"divergent bench leg lost {failed} queries"
    latencies = sorted(r.latency_us for r in served)

    def pct(q: float) -> float:
        return latencies[
            min(len(latencies) - 1, int(q * len(latencies)))
        ] if latencies else 0.0

    ratio = report["predicted_cost_ratio"]
    assert ratio <= 1.0, (
        f"divergent fleet must not price the workload above identical "
        f"copies, got ratio {ratio}"
    )
    fleet_counters = stats["fleet"]
    return {
        f"d{n_dims}_divergent4": {
            "queries": len(served),
            "replicas": 4,
            "workers": 2,  # per replica; also opts out of the gate
            "seconds": seconds,
            "qps": len(served) / seconds if seconds > 0 else 0.0,
            "p50_us": pct(0.50),
            "p99_us": pct(0.99),
            "predicted_cost_ratio": ratio,
            "divergent_predicted_cost": report["divergent_predicted_cost"],
            "identical_predicted_cost": report["identical_predicted_cost"],
            "structures_per_replica": [
                len(selection) for selection in advice.selections
            ],
            "routed_hits": sum(fleet_counters["routed_hits"].values()),
            "misroutes": sum(fleet_counters["misroutes"].values()),
        }
    }


def _fleet_legs(fact, model, selection, log, n_dims: int) -> dict:
    """Informational fleet legs: 4 replicas healthy, then 4 replicas
    with one killed mid-run (the degraded-mode ablation).

    Both carry ``workers >= 2`` so the regression gate skips them —
    like the worker sweep, their wall-clock depends on core count.  The
    degraded leg reports the unavailability window (expected 0: three
    replicas stay healthy) and asserts every query still answered.
    """
    from repro.serve import ReplicaFleet, RetryPolicy, ServingError

    def fleet_leg(kill_one: bool) -> dict:
        fleet = ReplicaFleet(
            fact,
            selection,
            replicas=4,
            cost_model=model,
            workers=2,
            retry=RetryPolicy(max_attempts=3, base_delay=0.005),
            query_deadline=5.0,
        )
        half = len(log) // 2
        start = time.perf_counter()
        results = list(fleet.serve_many(log[:half]))
        if kill_one:
            fleet.replicas[0].kill()
        results.extend(fleet.serve_many(log[half:]))
        seconds = time.perf_counter() - start
        fleet.close()
        failed = sum(1 for r in results if isinstance(r, ServingError))
        served = [r for r in results if not isinstance(r, ServingError)]
        assert failed == 0, f"fleet bench leg lost {failed} queries"
        assert not any(r.fallback for r in served), (
            "fleet bench workload must not fall back"
        )
        latencies = sorted(r.latency_us for r in served)
        stats = fleet.stats()

        def pct(q: float) -> float:
            return latencies[
                min(len(latencies) - 1, int(q * len(latencies)))
            ] if latencies else 0.0

        return {
            "queries": len(served),
            "replicas": 4,
            "killed": 1 if kill_one else 0,
            "workers": 2,  # per replica; also opts out of the gate
            "seconds": seconds,
            "qps": len(served) / seconds if seconds > 0 else 0.0,
            "p50_us": pct(0.50),
            "p99_us": pct(0.99),
            "retries": stats["retries"],
            "deadline_timeouts": stats["deadline_timeouts"],
            "unavailable_seconds": stats["unavailable_seconds"],
        }

    return {
        f"d{n_dims}_fleet4": fleet_leg(kill_one=False),
        f"d{n_dims}_fleet_degraded": fleet_leg(kill_one=True),
    }


def _git_sha() -> str:
    """The commit this run measured, for baseline provenance."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=HERE.parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return proc.stdout.strip() if proc.returncode == 0 else "unknown"


def _mining_quality_leg(n_dims: int, n_entries: int = 2000, rng: int = 11) -> dict:
    """Pruned-vs-full ablation at small d: quality ratio, bound, speedup.

    Both advises run under the *same* space budget (sized off the full
    engine) and the same observed frequencies, so ``tau_full / tau_pruned``
    is a pure candidate-pruning quality number and ``within_bound``
    checks the certified forgone-benefit bound against the measured gap.
    """
    from repro.algorithms.rgreedy import RGreedy
    from repro.core.benefit import BenefitEngine
    from repro.core.qvgraph import QueryViewGraph
    from repro.core.query import enumerate_slice_queries
    from repro.cube.query_log import generate_query_log, pattern_counts
    from repro.mining import compute_benefit_bound, mine_candidates

    from bench_algorithms_scaling import cube_lattice

    lattice = cube_lattice(n_dims)
    schema = lattice.schema
    top_label = lattice.label(lattice.top)
    counts = pattern_counts(generate_query_log(schema, n_entries, rng=rng))
    space = 3.0 * lattice.size(lattice.top)  # the serving-style budget

    # full-universe reference: every pattern, observed weight or 0
    t0 = time.perf_counter()
    frequencies = {
        q: float(counts.get(q, 0.0)) for q in enumerate_slice_queries(schema.names)
    }
    full_engine = BenefitEngine(
        QueryViewGraph.from_cube(lattice, frequencies=frequencies)
    )
    full = RGreedy(1).run(full_engine, space, seed=(top_label,))
    full_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    mined = mine_candidates(counts, schema.names)
    mined.ensure_structures([top_label])
    bound = compute_benefit_bound(mined, lattice)
    pruned_engine = BenefitEngine(QueryViewGraph.from_mined(lattice, mined))
    pruned = RGreedy(1).run(pruned_engine, space, seed=(top_label,))
    pruned_seconds = time.perf_counter() - t0

    forgone = bound.forgone_bound(pruned.tau)
    return {
        "n_entries": n_entries,
        "pruned_structures": len(pruned_engine.structure_names),
        "full_structures": len(full_engine.structure_names),
        "pruned_seconds": pruned_seconds,
        "full_seconds": full_seconds,
        "speedup": full_seconds / pruned_seconds if pruned_seconds > 0 else 0.0,
        "tau_pruned": pruned.tau,
        "tau_full": full.tau,
        "quality": full.tau / pruned.tau if pruned.tau > 0 else 1.0,
        "forgone_bound": forgone,
        "within_bound": bool(pruned.tau - full.tau <= forgone + 1e-6),
    }


#: Child measurement for the d=9 scale leg: mine + compile + 1-greedy
#: under a RunContext deadline, reporting wall-clocks and its own peak
#: RSS.  Run in a subprocess so the RSS number is the leg's, not the
#: whole bench driver's.
_D9_CHILD = """
import json, resource, sys, time
from repro.algorithms.rgreedy import RGreedy
from repro.core.benefit import BenefitEngine
from repro.core.qvgraph import QueryViewGraph
from repro.cube.query_log import generate_query_log, pattern_counts
from repro.cube.schema import CubeSchema, Dimension
from repro.estimation.sizes import analytical_lattice
from repro.mining import compute_benefit_bound, mine_candidates
from repro.runtime import RunContext

n_dims, n_entries, deadline = int(sys.argv[1]), int(sys.argv[2]), float(sys.argv[3])
cards = [4 + 2 * i for i in range(n_dims)]
schema = CubeSchema(
    [Dimension(chr(ord("a") + i), c) for i, c in enumerate(cards)]
)
lattice = analytical_lattice(schema, 0.1 * schema.dense_cells)
top_label = lattice.label(lattice.top)
counts = pattern_counts(generate_query_log(schema, n_entries, rng=11))
t0 = time.perf_counter()
mined = mine_candidates(counts, schema.names)
mined.ensure_structures([top_label])
bound = compute_benefit_bound(mined, lattice)
mine_seconds = time.perf_counter() - t0
t0 = time.perf_counter()
engine = BenefitEngine(QueryViewGraph.from_mined(lattice, mined))
compile_seconds = time.perf_counter() - t0
space = 3.0 * lattice.size(lattice.top)  # the serving-style budget
t0 = time.perf_counter()
result = RGreedy(1).run(
    engine, space, seed=(top_label,), context=RunContext(deadline=deadline)
)
greedy_seconds = time.perf_counter() - t0
print(json.dumps({
    "mine_seconds": mine_seconds,
    "compile_seconds": compile_seconds,
    "greedy_seconds": greedy_seconds,
    "total_seconds": mine_seconds + compile_seconds + greedy_seconds,
    "n_views": mined.n_views,
    "n_indexes": mined.n_indexes,
    "n_structures": len(engine.structure_names),
    "n_selected": len(result.selected),
    "interrupted": bool(result.interrupted),
    "tau": result.tau,
    "forgone_bound": bound.forgone_bound(result.tau),
    "max_rss_mb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0,
}))
"""


def _mining_scale_leg(
    n_dims: int = 9, n_entries: int = 5000, deadline: float = 120.0
) -> dict:
    """The scale target: pruned 1-greedy at d=9 under a 120s deadline.

    The full 3^n universe is unbuildable here (~986k fat indexes), so
    there is no full reference — the leg commits wall-clock, structure
    counts, and peak RSS, and asserts the run finished under deadline.
    """
    env = dict(os.environ)
    src = str(HERE.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    t0 = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-c", _D9_CHILD, str(n_dims), str(n_entries), str(deadline)],
        capture_output=True,
        text=True,
        env=env,
    )
    wall = time.perf_counter() - t0
    if proc.returncode != 0:
        raise SystemExit(
            f"d={n_dims} pruned advise leg failed ({proc.returncode}):\n"
            + proc.stderr
        )
    leg = json.loads(proc.stdout)
    leg["n_dims"] = n_dims
    leg["n_entries"] = n_entries
    leg["deadline_seconds"] = deadline
    leg["wall_seconds"] = wall
    if leg["interrupted"]:
        raise SystemExit(
            f"d={n_dims} pruned advise hit the {deadline:g}s deadline — "
            "the scale target regressed"
        )
    return leg


def measure_mining(skip_d9: bool) -> dict:
    """The workload-mining section: informational (never gated — the
    quality ratios and bounds are asserted directly instead)."""
    out = {
        "d5_pruned_vs_full": _mining_quality_leg(5),
        "d6_pruned_vs_full": _mining_quality_leg(6),
    }
    if not skip_d9:
        out["d9_pruned"] = _mining_scale_leg()
    return out


def measure_sql_backend(n_dims: int = 4, n_queries: int = 400) -> dict:
    """The SQLite-backend section: informational (never gated — the
    differential identity and correlation signs are asserted directly).

    Two legs: ``validate-cost`` on the dense d=4 serving cube (engine vs
    SQLite over an advised selection, measured-vs-predicted Spearman per
    structure class) and the seeded random differential harness at
    d=3..4 including the post-delta mirror-rebuild replay.  Any answer
    mismatch anywhere aborts the whole bench run.
    """
    from repro.algorithms.rgreedy import RGreedy
    from repro.backends import validate_cost
    from repro.backends.diff import run_diff
    from repro.core.benefit import BenefitEngine
    from repro.core.costmodel import LinearCostModel
    from repro.core.qvgraph import QueryViewGraph
    from repro.datasets.tpcd import tpcd_serving_fact

    fact = tpcd_serving_fact(n_dims, integral_measures=True)
    model = LinearCostModel.from_fact(fact)
    lattice = model.lattice
    selection = (
        RGreedy(1)
        .run(
            BenefitEngine(QueryViewGraph.from_cube(lattice)),
            3.0 * lattice.size(lattice.top),
            seed=(lattice.label(lattice.top),),
        )
        .selected
    )

    t0 = time.perf_counter()
    report = validate_cost(
        fact, selection, cost_model=model, n_queries=n_queries, rng=0
    )
    validate_seconds = time.perf_counter() - t0
    if report["mismatches"]:
        raise SystemExit(
            f"sql backend: {report['mismatches']} engine-vs-SQLite answer "
            "mismatches in validate-cost"
        )

    diff = run_diff(dims=(3, 4), queries=120, seed=0)
    if diff["total"]["mismatches"] or diff["reload_failures"]:
        raise SystemExit(
            f"sql backend: differential harness failed "
            f"({diff['total']['mismatches']} mismatches, "
            f"{diff['reload_failures']} reload failures)"
        )

    return {
        "dims": n_dims,
        "queries": n_queries,
        "mismatches": 0,
        "spearman_rows": {
            klass: stats["spearman_rows"]
            for klass, stats in report["classes"].items()
        },
        "spearman_wall": {
            klass: stats["spearman_wall"]
            for klass, stats in report["classes"].items()
        },
        "exact_rows": report["overall"]["exact_rows"],
        "sqlite_index_plans": report["overall"]["sqlite_index_plans"],
        "validate_seconds": round(validate_seconds, 3),
        "diff": {
            "dims": diff["dims"],
            "queries": diff["total"]["queries"],
            "mismatches": 0,
            "empty_results": diff["total"]["empty_results"],
            "raw": diff["total"]["raw"],
            "seconds": round(sum(r["seconds"] for r in diff["runs"]), 3),
        },
    }


def gate(current: dict, baseline: dict) -> list:
    """Return a list of human-readable regression descriptions."""
    failures = []

    def check(label: str, now: float, then: float) -> None:
        if then >= GATE_FLOOR_SECONDS and now > REGRESSION_FACTOR * then:
            failures.append(
                f"{label}: {now:.4f}s vs baseline {then:.4f}s "
                f"(> {REGRESSION_FACTOR:g}x)"
            )

    base_benches = baseline.get("pytest_benchmarks", {})
    for name, median in current.get("pytest_benchmarks", {}).items():
        if name in base_benches and any(tag in name for tag in GATED_BENCHES):
            check(name, median, base_benches[name])

    base_pipes = baseline.get("pipelines", {})
    for config, timings in current.get("pipelines", {}).items():
        if not isinstance(timings, dict):
            continue
        if timings.get("workers", 1) > 1:
            # parallel sweep entries are informational: their wall-clock
            # depends on the machine's core count (a 1-core runner pays
            # pure pool overhead), so gating them would punish hardware,
            # not code
            continue
        then = base_pipes.get(config)
        if isinstance(then, dict) and "total" in then:
            check(f"pipeline:{config}", timings["total"], then["total"])

    base_serving = baseline.get("serving", {})
    for config, timings in current.get("serving", {}).items():
        if not isinstance(timings, dict):
            continue
        if timings.get("workers", 1) > 1:
            continue  # same cpu-aware rule as the workers sweep
        then = base_serving.get(config)
        if isinstance(then, dict) and "seconds" in then:
            check(f"serving:{config}", timings["seconds"], then["seconds"])
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check", action="store_true",
        help="gate against the committed baseline without rewriting it",
    )
    parser.add_argument(
        "--no-gate", action="store_true",
        help="skip the regression gate (still rewrites the result file)",
    )
    parser.add_argument(
        "--skip-d7", action="store_true",
        help="skip the (slow) d=7 scale measurement",
    )
    parser.add_argument(
        "--serving-only", action="store_true",
        help="re-measure only the serving section and merge it into the "
        "committed baseline (pipeline and pytest-benchmark numbers are "
        "carried over unchanged)",
    )
    parser.add_argument(
        "--skip-d9", action="store_true",
        help="skip the (slow) d=9 pruned-advise scale measurement",
    )
    parser.add_argument(
        "--mining-only", action="store_true",
        help="re-measure only the workload-mining section and merge it "
        "into the committed baseline",
    )
    parser.add_argument(
        "--backend-only", action="store_true",
        help="re-measure only the SQLite-backend section and merge it "
        "into the committed baseline",
    )
    args = parser.parse_args(argv)

    if args.check and not RESULT_PATH.exists():
        print(
            f"error: --check needs a committed baseline at {RESULT_PATH}, "
            "but none exists.\nRun without --check once to measure and "
            "write one, then commit it.",
            file=sys.stderr,
        )
        return EXIT_NO_BASELINE

    sys.path.insert(0, str(HERE))

    leg_seconds = {}

    def timed(name: str, thunk):
        t0 = time.perf_counter()
        section = thunk()
        leg_seconds[name] = round(time.perf_counter() - t0, 3)
        return section

    if args.serving_only or args.mining_only or args.backend_only:
        if not RESULT_PATH.exists():
            print(
                f"error: --serving-only/--mining-only/--backend-only "
                f"need a committed "
                f"baseline at {RESULT_PATH} to merge into",
                file=sys.stderr,
            )
            return EXIT_NO_BASELINE
        with open(RESULT_PATH) as fh:
            result = json.load(fh)
        if args.serving_only:
            result["serving"] = timed("serving", measure_serving)
            result.setdefault("meta", {})["serving_cpu_count"] = os.cpu_count()
        if args.mining_only:
            result["mining"] = timed(
                "mining", lambda: measure_mining(args.skip_d9)
            )
        if args.backend_only:
            result["sql_backend"] = timed("sql_backend", measure_sql_backend)
    else:
        result = {
            "pytest_benchmarks": timed(
                "pytest_benchmarks", run_pytest_benchmarks
            ),
            "pipelines": timed(
                "pipelines", lambda: measure_pipelines(args.skip_d7)
            ),
            "checkpoint_overhead": timed(
                "checkpoint_overhead", measure_checkpoint_overhead
            ),
            "serving": timed("serving", measure_serving),
            "mining": timed("mining", lambda: measure_mining(args.skip_d9)),
            "sql_backend": timed("sql_backend", measure_sql_backend),
            "meta": {
                "regression_factor": REGRESSION_FACTOR,
                "python": sys.version.split()[0],
                "cpu_count": os.cpu_count(),
                "workers_sweep": list(WORKERS_SWEEP),
            },
        }
    meta = result.setdefault("meta", {})
    meta["git_sha"] = _git_sha()
    meta.setdefault("leg_seconds", {}).update(leg_seconds)

    failures = []
    if not args.no_gate and RESULT_PATH.exists():
        with open(RESULT_PATH) as fh:
            baseline = json.load(fh)
        failures = gate(result, baseline)

    if not args.check:
        # preserve the slow d=7/d=9 baseline numbers on --skip runs
        if (args.skip_d7 or args.skip_d9) and RESULT_PATH.exists():
            with open(RESULT_PATH) as fh:
                previous = json.load(fh)
            if args.skip_d7 and "d7_current" in previous.get("pipelines", {}):
                result["pipelines"]["d7_current"] = previous["pipelines"][
                    "d7_current"
                ]
            if args.skip_d9 and "d9_pruned" in previous.get("mining", {}):
                result.setdefault("mining", {})["d9_pruned"] = previous[
                    "mining"
                ]["d9_pruned"]
        with open(RESULT_PATH, "w") as fh:
            json.dump(result, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {RESULT_PATH}")

    speedup = result["pipelines"]["d5_speedup"]
    print(f"d=5 end-to-end: seed-style {result['pipelines']['d5_seed_style']['total']:.3f}s"
          f" -> current {result['pipelines']['d5_current']['total']:.3f}s"
          f" ({speedup:.2f}x)")
    serial_d6 = result["pipelines"]["d6_current"]["total"]
    for workers, ratio in sorted(
        result["pipelines"]["d6_workers_speedup"].items(), key=lambda i: int(i[0])
    ):
        wall = result["pipelines"][f"d6_current_w{workers}"]["total"]
        print(
            f"d=6 workers={workers}: {wall:.3f}s vs serial {serial_d6:.3f}s "
            f"({ratio:.2f}x on {os.cpu_count()} core(s))"
        )
    if "d7_current" in result["pipelines"]:
        d7 = result["pipelines"]["d7_current"]
        legs = "+2-greedy" if "rgreedy2" in d7 else ""
        print(
            f"d=7 compile+1-greedy{legs}: {d7['total']:.2f}s "
            f"(backend={d7['backend']})"
        )
    overhead = result["checkpoint_overhead"]
    print(
        f"d=5 checkpointing overhead: {overhead['disk_overhead']:+.1%} "
        f"(base {overhead['base_seconds'] * 1e3:.1f}ms, on-disk "
        f"{overhead['disk_checkpoint_seconds'] * 1e3:.1f}ms)"
    )
    for config, timings in sorted(result["serving"].items()):
        if not isinstance(timings, dict):
            continue
        extra = ""
        if timings.get("cache"):
            extra = f", cache {timings.get('cache_hits', 0)} hits"
        if "replicas" in timings:
            extra += (
                f", {timings['replicas']} replicas ({timings.get('killed', 0)} "
                f"killed), {timings.get('retries', 0)} retries, "
                f"{timings.get('unavailable_seconds', 0.0):.2f}s unavailable"
            )
        if "predicted_cost_ratio" in timings:
            extra += (
                f", predicted-cost ratio "
                f"{timings['predicted_cost_ratio']:.4f}"
            )
        print(
            f"serve {config}: {timings['qps']:.0f} q/s "
            f"(p50 {timings['p50_us']:.0f} us, p99 {timings['p99_us']:.0f} us, "
            f"workers {timings['workers']}, "
            f"batch {timings.get('batch_size', 1)}{extra})"
        )
    headline = result["serving"].get("d5_cached_w4_speedup")
    if headline is not None:
        print(
            f"serving headline: batched+cached w4 is {headline:.2f}x the "
            f"per-query serial path"
        )
    prior = result["serving"].get("d5_cached_w4_vs_prior_committed")
    if prior is not None:
        print(
            f"serving acceptance: batched+cached w4 is {prior:.2f}x the "
            f"pre-batching committed serial baseline "
            f"({PRIOR_SERIAL_QPS_D5:g} q/s)"
        )

    for config, leg in sorted(result.get("mining", {}).items()):
        if not isinstance(leg, dict):
            continue
        if "quality" in leg:
            print(
                f"mining {config}: pruned {leg['pruned_seconds']:.3f}s vs "
                f"full {leg['full_seconds']:.3f}s ({leg['speedup']:.2f}x, "
                f"{leg['pruned_structures']}/{leg['full_structures']} "
                f"structures), quality {leg['quality']:.4f}, "
                f"within_bound={leg['within_bound']}"
            )
        else:
            print(
                f"mining {config}: mine {leg['mine_seconds']:.2f}s + compile "
                f"{leg['compile_seconds']:.2f}s + 1-greedy "
                f"{leg['greedy_seconds']:.2f}s = {leg['total_seconds']:.2f}s "
                f"({leg['n_structures']} structures, "
                f"{leg['n_selected']} selected, peak RSS "
                f"{leg['max_rss_mb']:.0f} MiB, deadline "
                f"{leg['deadline_seconds']:g}s)"
            )

    backend = result.get("sql_backend")
    if backend:
        def rho(value):
            return f"{value:+.3f}" if value is not None else "n/a"

        correlations = ", ".join(
            f"{klass} ρ={rho(value)}"
            for klass, value in sorted(backend["spearman_rows"].items())
        )
        print(
            f"sql backend d={backend['dims']}: {backend['queries']} queries, "
            f"0 mismatches, {backend['exact_rows']} exact, "
            f"{backend['sqlite_index_plans']} SQLite index plans "
            f"({correlations}); diff harness "
            f"{backend['diff']['queries']} executions over "
            f"d={backend['diff']['dims']}, 0 mismatches"
        )

    if failures:
        print("\nREGRESSIONS (> {:g}x baseline):".format(REGRESSION_FACTOR))
        for line in failures:
            print("  " + line)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
