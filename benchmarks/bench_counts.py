"""E7 / Section 3.5: structure-count combinatorics.

Regenerates the 2^n / 3^n / ~e·n! table and times the enumeration of the
full structure universe for a 6-dimensional cube (the paper's largest).
"""

from itertools import combinations

import pytest

from repro.core.index import count_fat_indexes, enumerate_fat_indexes
from repro.core.query import enumerate_slice_queries
from repro.core.view import View
from repro.experiments.counts import format_counts, run_counts


def test_counts_table():
    rows = run_counts(max_dims=8)
    print()
    print(format_counts(rows))
    by_n = {row.n_dims: row for row in rows}
    assert by_n[3].views == 8 and by_n[3].queries == 27 and by_n[3].fat_indexes == 15
    assert by_n[6].queries == 729
    assert by_n[6].fat_indexes == 1956


DIMS6 = tuple("abcdef")


def enumerate_universe():
    queries = list(enumerate_slice_queries(DIMS6))
    indexes = []
    for r in range(len(DIMS6) + 1):
        for combo in combinations(DIMS6, r):
            indexes.extend(enumerate_fat_indexes(View(combo)))
    return queries, indexes


def test_bench_enumerate_dim6_universe(benchmark):
    queries, indexes = benchmark(enumerate_universe)
    assert len(queries) == 3**6
    assert len(indexes) == count_fat_indexes(6)
