"""E1 / Figure 1: the TPC-D lattice and its query-view graph.

Regenerates the Figure 1 artifacts (view sizes, query/index counts, the
~80M-row full-materialization total) and times graph construction — the
preprocessing cost every algorithm pays once.
"""

import pytest

from repro.core.qvgraph import QueryViewGraph
from repro.core.view import View
from repro.datasets.tpcd import TPCD_VIEW_ROWS, tpcd_lattice
from repro.estimation.index_sizes import total_materialization_size

FIGURE1_SIZES = {
    "psc": 6e6, "pc": 6e6, "sc": 6e6, "ps": 0.8e6,
    "p": 0.2e6, "c": 0.1e6, "s": 0.01e6, "none": 1,
}


def test_figure1_sizes(tpcd_lat):
    for label, size in FIGURE1_SIZES.items():
        view = next(v for v in tpcd_lat.views() if tpcd_lat.label(v) == label)
        assert tpcd_lat.size(view) == size


def test_figure1_80m_total(tpcd_lat):
    assert total_materialization_size(tpcd_lat) == pytest.approx(81e6, rel=0.02)


def test_bench_lattice_construction(benchmark):
    lattice = benchmark(tpcd_lattice)
    assert len(lattice) == 8


def test_bench_graph_construction(benchmark, tpcd_lat):
    graph = benchmark(QueryViewGraph.from_cube, tpcd_lat)
    assert graph.n_queries == 27
    assert len(graph.indexes) == 15
    # Figure 1 labels the ps subcube with its 2 fat indexes and 4 queries
    assert set(graph.indexes_of("ps")) == {"I_ps(ps)", "I_sp(ps)"}
