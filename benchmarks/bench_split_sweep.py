"""E10: the two-step split-sweep ablation on TPC-D.

Regenerates the table showing that no a-priori split recovers one-step
quality, with the best split near the paper's "three-quarters to
indexes", and times a single two-step run.
"""

import pytest

from repro.algorithms import FIT_STRICT, TwoStep
from repro.datasets.tpcd import TPCD_SPACE_BUDGET
from repro.experiments.example21 import SEED
from repro.experiments.split_sweep import format_split_sweep, run_split_sweep


def test_split_sweep_table():
    result = run_split_sweep()
    print()
    print(format_split_sweep(result))
    assert result.best_fraction == 0.25  # ~3/4 of the space to indexes
    for avg in result.by_fraction.values():
        assert result.one_step_avg <= avg + 1e-6


@pytest.mark.parametrize("fraction", [0.25, 0.5, 0.75])
def test_bench_two_step_split(benchmark, tpcd_engine, fraction):
    result = benchmark(
        TwoStep(fraction, fit=FIT_STRICT).run,
        tpcd_engine,
        TPCD_SPACE_BUDGET,
        SEED,
    )
    assert result.space_used <= TPCD_SPACE_BUDGET
