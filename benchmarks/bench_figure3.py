"""E5 / Figure 3: the performance-guarantee curve.

Regenerates the printed series (0, 0.39, 0.49, 0.53 → 0.63; knee at r=4;
inner-level at 0.467) and times the curve computation (trivially fast —
kept so every figure has a bench target).
"""

import pytest

from repro.experiments.figure3 import (
    PAPER_GUARANTEES,
    PAPER_INNER_LEVEL,
    PAPER_KNEE,
    format_figure3,
    run_figure3,
)


def test_figure3_series():
    result = run_figure3()
    print()
    print(format_figure3(result))
    for r, expected in PAPER_GUARANTEES.items():
        assert result.as_dict()[r] == pytest.approx(expected, abs=0.005)
    assert result.knee == PAPER_KNEE
    assert result.inner_level == pytest.approx(PAPER_INNER_LEVEL, abs=0.001)


def test_bench_guarantee_curve(benchmark):
    result = benchmark(run_figure3, 64)
    assert result.limit == pytest.approx(0.632, abs=0.001)
