"""Ablations: algorithm scaling in m and r, and the benefit-cache design.

The paper's complexity analysis says r-greedy is O(k·m^r) and inner-level
greedy O(k²·m²).  These benches measure the real growth on cubes of
increasing dimension, plus the DESIGN.md ablation comparing the compiled
(numpy, incremental per-query best costs) benefit evaluation against a
naive per-candidate recomputation.
"""

import numpy as np
import pytest

from repro.algorithms import FIT_STRICT, InnerLevelGreedy, RGreedy
from repro.core.benefit import BenefitEngine
from repro.core.qvgraph import QueryViewGraph
from repro.cube.schema import CubeSchema, Dimension
from repro.estimation.sizes import analytical_lattice


def cube_lattice(n_dims: int):
    cards = [4 + 2 * i for i in range(n_dims)]
    schema = CubeSchema(
        [Dimension(chr(ord("a") + i), c) for i, c in enumerate(cards)]
    )
    return analytical_lattice(schema, 0.1 * schema.dense_cells)


def cube_engine(n_dims: int, backend: str = "auto") -> BenefitEngine:
    return BenefitEngine(
        QueryViewGraph.from_cube(cube_lattice(n_dims)), backend=backend
    )


def budget_of(engine: BenefitEngine) -> float:
    top_space = float(engine.spaces[engine.view_ids()].max())
    return top_space + 0.25 * (float(engine.spaces.sum()) - top_space)


@pytest.fixture(scope="module")
def engines():
    return {n: cube_engine(n) for n in (3, 4, 5)}


@pytest.mark.parametrize("n_dims", [3, 4, 5])
@pytest.mark.parametrize("r", [1, 2])
def test_bench_rgreedy_scaling(benchmark, engines, n_dims, r):
    engine = engines[n_dims]
    result = benchmark.pedantic(
        RGreedy(r, fit=FIT_STRICT).run,
        args=(engine, budget_of(engine)),
        rounds=2,
        iterations=1,
    )
    assert result.benefit > 0


@pytest.mark.parametrize("n_dims", [3, 4])
def test_bench_inner_level_scaling(benchmark, engines, n_dims):
    engine = engines[n_dims]
    result = benchmark.pedantic(
        InnerLevelGreedy(fit=FIT_STRICT).run,
        args=(engine, budget_of(engine)),
        rounds=2,
        iterations=1,
    )
    assert result.benefit > 0


def test_bench_engine_compilation(benchmark):
    result = benchmark.pedantic(cube_engine, args=(5,), rounds=2, iterations=1)
    assert result.n_queries == 3**5


class TestBenefitCacheAblation:
    """DESIGN.md ablation: incremental best-cost state vs naive recompute."""

    @staticmethod
    def naive_tau(engine: BenefitEngine, selected_ids) -> float:
        """Recompute τ from scratch for a selection (the design we avoid)."""
        best = engine.defaults.copy()
        for sid in selected_ids:
            best = engine.minimum_with(best, sid)
        return float(engine.frequencies @ best)

    def test_cached_equals_naive(self, engines):
        engine = engines[4]
        engine.reset()
        ids = [int(i) for i in engine.view_ids()[:6]]
        engine.commit(ids)
        assert engine.tau() == pytest.approx(self.naive_tau(engine, ids))
        engine.reset()

    @staticmethod
    def _grown_state(engine):
        """A mid-run state: a selection of ~24 structures already made."""
        engine.reset()
        committed = []
        for view_id in engine.view_ids()[:8]:
            committed.append(int(view_id))
            committed.extend(int(i) for i in engine.index_ids_of(int(view_id))[:2])
        engine.commit(committed)
        candidates = [
            sid for sid in range(engine.n_structures) if sid not in set(committed)
        ][:40]
        return committed, candidates

    def test_bench_cached_stage_evaluation(self, benchmark, engines):
        """Incremental design: candidate benefit = one row vs stored best."""
        engine = engines[4]
        committed, candidates = self._grown_state(engine)

        def cached():
            return sum(engine.benefit_of([s]) for s in candidates)

        total = benchmark(cached)
        assert total >= 0
        engine.reset()

    def test_bench_naive_stage_evaluation(self, benchmark, engines):
        """Ablated design: recompute τ(M ∪ {s}) from scratch per candidate."""
        engine = engines[4]
        committed, candidates = self._grown_state(engine)
        base = self.naive_tau(engine, committed)

        def naive():
            return sum(
                base - self.naive_tau(engine, committed + [s]) for s in candidates
            )

        total = benchmark(naive)
        assert total >= 0
        engine.reset()


# ------------------------------------------------- sparse-backend scaling

@pytest.fixture(scope="module")
def engine_d6_sparse():
    return cube_engine(6, backend="sparse")


def test_bench_from_cube_vectorized_d6(benchmark):
    lattice = cube_lattice(6)
    graph = benchmark.pedantic(
        QueryViewGraph.from_cube, args=(lattice,), rounds=2, iterations=1
    )
    assert graph.n_edges > 0


def test_bench_engine_compilation_d6_sparse(benchmark):
    graph = QueryViewGraph.from_cube(cube_lattice(6))
    engine = benchmark.pedantic(
        BenefitEngine, args=(graph,), kwargs={"backend": "sparse"},
        rounds=2, iterations=1,
    )
    assert engine.backend == "sparse"


def test_bench_rgreedy1_d6_sparse(benchmark, engine_d6_sparse):
    engine = engine_d6_sparse
    result = benchmark.pedantic(
        RGreedy(1, fit=FIT_STRICT).run,
        args=(engine, budget_of(engine)),
        rounds=2,
        iterations=1,
    )
    assert result.benefit > 0


class TestScaleLimits:
    """The d=7 fat-index cube: compilable sparse, refused dense.

    This is the scale target the sparse store exists for — ~13.8k
    structures × 2187 queries would need a ~230 MiB dense matrix of
    mostly-inf cells, above the engine's default dense allocation limit.
    """

    @pytest.fixture(scope="class")
    def graph_d7(self):
        return QueryViewGraph.from_cube(cube_lattice(7))

    def test_dense_refuses_d7(self, graph_d7):
        with pytest.raises(MemoryError):
            BenefitEngine(graph_d7, backend="dense")

    def test_sparse_compiles_d7_and_is_smaller(self, graph_d7):
        engine = BenefitEngine(graph_d7)  # auto picks sparse
        assert engine.backend == "sparse"
        dense_bytes = BenefitEngine.dense_cost_bytes(
            engine.n_structures, engine.n_queries
        )
        assert engine.cost_store_bytes() < dense_bytes

    def test_one_greedy_runs_d7(self, graph_d7):
        import time

        start = time.perf_counter()
        engine = BenefitEngine(graph_d7)
        result = RGreedy(1, fit=FIT_STRICT).run(engine, budget_of(engine))
        elapsed = time.perf_counter() - start
        assert result.benefit > 0
        assert elapsed < 60.0, f"d=7 1-greedy took {elapsed:.1f}s"
