"""Benches for the extension experiments (E15–E17).

Each regenerates its table with shape assertions and times one run, so
the extension experiments get the same bench coverage as the paper's own
tables.
"""

import pytest

from repro.experiments.load_tradeoff import format_load_tradeoff, run_load_tradeoff
from repro.experiments.robustness import format_robustness, run_robustness
from repro.experiments.skew_sensitivity import (
    format_skew_sensitivity,
    run_skew_sensitivity,
)


def test_load_tradeoff_table():
    rows = run_load_tradeoff()
    print()
    print(format_load_tradeoff(rows))
    costs = [row.avg_query_cost for row in rows]
    assert costs == sorted(costs, reverse=True)  # monotone in budget
    # the plateau: last two budgets identical query cost
    assert costs[-1] == pytest.approx(costs[-2])


def test_bench_load_tradeoff(benchmark):
    rows = benchmark.pedantic(
        run_load_tradeoff, kwargs={"budgets": (13e6, 25e6, 31e6)},
        rounds=2, iterations=1,
    )
    assert len(rows) == 3


def test_skew_sensitivity_table():
    rows = run_skew_sensitivity()
    print()
    print(format_skew_sensitivity(rows))
    for row in rows:
        assert row.uniform_ratio == pytest.approx(1.0, abs=1e-9)
    assert rows[-1].weighted_ratio > rows[0].weighted_ratio


def test_bench_skew_sensitivity(benchmark):
    rows = benchmark.pedantic(
        run_skew_sensitivity,
        kwargs={"exponents": (0.0, 1.0), "n_rows": 2_000},
        rounds=2,
        iterations=1,
    )
    assert len(rows) == 2


def test_robustness_table():
    rows = run_robustness(cardinalities=(12, 10, 8), n_drifts=2)
    print()
    print(format_robustness(rows))
    for row in rows:
        assert 0.0 <= row.regret_ratio <= 1.0 + 1e-9


def test_bench_robustness(benchmark):
    rows = benchmark.pedantic(
        run_robustness,
        kwargs={"cardinalities": (10, 8), "n_drifts": 1},
        rounds=2,
        iterations=1,
    )
    assert rows
