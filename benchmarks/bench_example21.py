"""E2 / Example 2.1: two-step vs one-step on TPC-D (the Section 2 table).

Paper: two-step (equal split) averages 1.18M rows/query; one-step
1-greedy averages 0.74M — "almost 40 percent" better, with ~3/4 of the
space going to indexes.  Asserts the shape and times the selections.
"""

import pytest

from repro.algorithms import FIT_PAPER, FIT_STRICT, RGreedy, TwoStep
from repro.datasets.tpcd import TPCD_SPACE_BUDGET
from repro.experiments.example21 import (
    PAPER_ONE_STEP_AVG,
    PAPER_TWO_STEP_AVG,
    SEED,
    format_example21,
    run_example21,
)


def test_example21_table(capsys):
    result = run_example21()
    print()
    print(format_example21(result))
    assert result.two_step_avg == pytest.approx(PAPER_TWO_STEP_AVG, rel=0.01)
    assert result.one_step_avg == pytest.approx(PAPER_ONE_STEP_AVG, rel=0.10)
    assert result.improvement == pytest.approx(0.40, abs=0.05)
    assert result.index_space_fraction("1-greedy") == pytest.approx(0.75, abs=0.1)


def test_bench_two_step(benchmark, tpcd_engine):
    result = benchmark(
        TwoStep(0.5, fit=FIT_STRICT).run, tpcd_engine, TPCD_SPACE_BUDGET, SEED
    )
    assert result.average_query_cost == pytest.approx(1.18e6, rel=0.01)


def test_bench_one_step_1greedy(benchmark, tpcd_engine):
    result = benchmark(
        RGreedy(1, fit=FIT_PAPER).run, tpcd_engine, TPCD_SPACE_BUDGET, SEED
    )
    assert result.average_query_cost < 0.75e6


def test_bench_one_step_2greedy(benchmark, tpcd_engine):
    result = benchmark(
        RGreedy(2, fit=FIT_PAPER).run, tpcd_engine, TPCD_SPACE_BUDGET, SEED
    )
    assert result.average_query_cost < 0.75e6
