"""Extension bench: incremental maintenance throughput.

Times delta application (views merged, indexes rebuilt) against batch
size and asserts the incremental result stays exactly consistent with a
from-scratch recomputation — the property the refresh path must never
lose.
"""

import numpy as np
import pytest

from repro.core.index import Index
from repro.core.view import View
from repro.cube.generator import generate_fact_table
from repro.cube.schema import CubeSchema, Dimension
from repro.engine.catalog import Catalog
from repro.engine.maintenance import apply_delta
from repro.engine.materialize import materialize_view


def build_catalog(n_rows=5_000, rng=0) -> Catalog:
    schema = CubeSchema(
        [Dimension("a", 60), Dimension("b", 30), Dimension("c", 12)]
    )
    catalog = Catalog(generate_fact_table(schema, n_rows, rng=rng))
    for attrs in ((), ("a",), ("a", "b"), ("a", "b", "c")):
        catalog.materialize(View(attrs))
    catalog.build_index(Index(View.of("a", "b", "c"), ("a", "b", "c")))
    catalog.build_index(Index(View.of("a", "b"), ("b", "a")))
    return catalog


@pytest.mark.parametrize("delta_rows", [100, 1000])
def test_bench_apply_delta(benchmark, delta_rows):
    schema = build_catalog().fact.schema

    def run():
        catalog = build_catalog()
        delta = generate_fact_table(schema, delta_rows, rng=7)
        return apply_delta(catalog, delta.columns, delta.measures)

    report = benchmark.pedantic(run, rounds=3, iterations=1)
    assert report.delta_rows == delta_rows
    assert len(report.indexes_rebuilt) == 2


def test_incremental_consistency_after_bench_sized_delta():
    catalog = build_catalog()
    schema = catalog.fact.schema
    delta = generate_fact_table(schema, 1000, rng=7)
    apply_delta(catalog, delta.columns, delta.measures)
    for view in catalog.views():
        expected = dict(materialize_view(catalog.fact, view).iter_rows())
        got = dict(catalog.view_table(view).iter_rows())
        assert got.keys() == expected.keys()
        worst = max(
            abs(got[k] - v) for k, v in expected.items()
        ) if expected else 0.0
        assert worst < 1e-6
