"""E9: the execution-engine substrate and the cost-model validation.

Times materialization, B+tree construction, and index-assisted query
execution, and re-asserts that measured rows-processed match the linear
cost model (Section 4.1.1) — the experiment that makes the paper's cost
formula falsifiable.
"""

import numpy as np
import pytest

from repro.core.index import Index
from repro.core.query import SliceQuery
from repro.core.view import View
from repro.cube.generator import generate_fact_table
from repro.cube.schema import CubeSchema, Dimension
from repro.engine.btree import BPlusTree
from repro.engine.catalog import Catalog
from repro.engine.executor import Executor
from repro.engine.materialize import materialize_view
from repro.experiments.engine_validation import format_validation, run_validation


@pytest.fixture(scope="module")
def fact():
    schema = CubeSchema(
        [Dimension("a", 100), Dimension("b", 40), Dimension("c", 15)]
    )
    return generate_fact_table(schema, 30_000, rng=2)


def test_cost_model_validation_table():
    rows = run_validation()
    print()
    print(format_validation(rows))
    assert max(r.relative_error for r in rows) <= 0.05


def test_bench_materialize_top_view(benchmark, fact):
    table = benchmark(materialize_view, fact, View.of("a", "b", "c"))
    assert table.n_rows == fact.distinct_count(("a", "b", "c"))


def test_bench_btree_bulk_load(benchmark, fact):
    table = materialize_view(fact, View.of("a", "b", "c"))
    entries = [
        (key + (row,), (row, value))
        for row, (key, value) in enumerate(table.iter_rows())
    ]
    entries.sort()
    tree = benchmark(BPlusTree.bulk_load, entries, 32)
    assert len(tree) == table.n_rows


def test_bench_index_assisted_execution(benchmark, fact):
    catalog = Catalog(fact)
    view = View.of("a", "b", "c")
    catalog.materialize(view)
    index = Index(view, ("a", "b", "c"))
    catalog.build_index(index)
    executor = Executor(catalog)
    query = SliceQuery(groupby=("b", "c"), selection=("a",))

    rng = np.random.default_rng(0)
    values_pool = [
        {"a": int(fact.column("a")[int(rng.integers(0, fact.n_rows))])}
        for __ in range(64)
    ]
    counter = {"i": 0}

    def run_one():
        counter["i"] = (counter["i"] + 1) % len(values_pool)
        return executor.execute(query, values_pool[counter["i"]], plan=(view, index))

    result = benchmark(run_one)
    # index touches ~|abc|/|a| rows, far below a full scan
    assert result.rows_processed < catalog.view_rows(view) / 10


def test_bench_full_scan_execution(benchmark, fact):
    catalog = Catalog(fact)
    view = View.of("a", "b", "c")
    catalog.materialize(view)
    executor = Executor(catalog)
    query = SliceQuery(groupby=("b", "c"), selection=("a",))

    result = benchmark.pedantic(
        executor.execute,
        args=(query, {"a": 3}),
        kwargs={"plan": (view, None)},
        rounds=3,
        iterations=1,
    )
    assert result.rows_processed == catalog.view_rows(view)
