"""E6 / Section 6: r-greedy vs optimal on synthetic cubes.

The paper's experimental claim: for cubes of dimension up to 6 and
r = 1, 2, 3, the greedy family lands extremely close to the optimum,
across cardinality, sparsity, and query-frequency variations.  The bench
configs are sized to keep exact optima tractable; the full sweep
(including dims 5–6, no exact optimum) runs via
``python -m repro.experiments section6``.
"""

import pytest

from repro.experiments.section6 import (
    SweepConfig,
    format_section6,
    run_config,
)

BENCH_CONFIGS = {
    "dim3-uniform": SweepConfig("dim3 base", (20, 30, 40), sparsity=0.1),
    "dim3-sparse": SweepConfig("dim3 sparse", (20, 30, 40), sparsity=0.01),
    "dim3-zipf": SweepConfig(
        "dim3 zipf", (20, 30, 40), sparsity=0.1, freq_exponent=1.0
    ),
    "dim3-skewed-cards": SweepConfig("dim3 cards", (4, 30, 400), sparsity=0.1),
}


def test_section6_table():
    rows = [run_config(config) for config in BENCH_CONFIGS.values()]
    print()
    print(format_section6(rows))
    for row in rows:
        assert row.optimal_benefit is not None, row.config.name
        for name in ("1-greedy", "2-greedy", "3-greedy"):
            # the paper: "extremely close to the optimal"
            assert row.ratio(name) >= 0.90, (row.config.name, name)


@pytest.mark.parametrize("key", list(BENCH_CONFIGS))
def test_bench_sweep_config(benchmark, key):
    config = BENCH_CONFIGS[key]
    row = benchmark.pedantic(run_config, args=(config,), rounds=1, iterations=1)
    assert row.ratio("2-greedy") >= 0.90
