"""Shared fixtures for the benchmark harness.

Each ``bench_*.py`` file regenerates one table/figure of the paper (see
the per-experiment index in DESIGN.md) and times the code that produces
it.  Run with::

    pytest benchmarks/ --benchmark-only

Absolute timings are environment-specific; the assertions pin the
paper-shape results (who wins, by what factor) so regressions surface as
failures, not as silently different tables.
"""

import pytest

from repro.core.benefit import BenefitEngine
from repro.datasets.paper_figure2 import figure2_graph
from repro.datasets.tpcd import tpcd_graph, tpcd_lattice


@pytest.fixture(scope="session")
def tpcd_lat():
    return tpcd_lattice()


@pytest.fixture(scope="session")
def tpcd_engine():
    return BenefitEngine(tpcd_graph())


@pytest.fixture(scope="session")
def fig2_engine():
    return BenefitEngine(figure2_graph())
