"""Bench: empirical verification of the Theorem 5.1/5.2 bounds.

Regenerates the verification table (random instances vs exhaustive
optima) and times one verification batch.
"""

import pytest

from repro.experiments.guarantee_verification import (
    format_verification,
    run_verification,
)


def test_verification_table():
    rows = run_verification(n_instances=150, seed=0)
    print()
    print(format_verification(rows))
    for row in rows:
        assert row.holds, row.algorithm
        assert row.mean >= row.bound


def test_bench_verification_batch(benchmark):
    rows = benchmark.pedantic(
        run_verification,
        kwargs={"n_instances": 40, "seed": 3},
        rounds=2,
        iterations=1,
    )
    assert all(row.holds for row in rows)
