"""Extension bench: selection on hierarchical cubes ([HRU96] lattices).

Times the compilation of the product lattice into a query-view graph and
the greedy family on it, asserting the flat-cube special case agrees with
the flat construction and that the selection beats views-only.
"""

import pytest

from repro.algorithms import FIT_STRICT, HRUGreedy, InnerLevelGreedy, RGreedy
from repro.core.benefit import BenefitEngine
from repro.core.hierarchy import (
    HierarchicalCube,
    Hierarchy,
    Level,
    hierarchical_lattice_graph,
)


def build_cube() -> HierarchicalCube:
    return HierarchicalCube(
        [
            Hierarchy("time", [Level("day", 365), Level("month", 12),
                               Level("year", 1)]),
            Hierarchy("cust", [Level("customer", 500), Level("nation", 25)]),
            Hierarchy.flat("product", 100),
        ],
        raw_rows=50_000,
    )


@pytest.fixture(scope="module")
def compiled():
    cube = build_cube()
    graph = hierarchical_lattice_graph(cube)
    return cube, graph, BenefitEngine(graph)


def budget_of(cube, graph) -> float:
    top = cube.size(cube.top())
    return top + 0.2 * (graph.total_space() - top)


def test_bench_compile_hierarchical_graph(benchmark):
    cube = build_cube()
    graph = benchmark(hierarchical_lattice_graph, cube)
    assert len(graph.views) == cube.n_views() == 24


@pytest.mark.parametrize("r", [1, 2])
def test_bench_rgreedy_on_hierarchy(benchmark, compiled, r):
    cube, graph, engine = compiled
    top = cube.label(cube.top())
    result = benchmark(
        RGreedy(r, fit=FIT_STRICT).run, engine, budget_of(cube, graph), (top,)
    )
    assert result.benefit > 0


def test_bench_inner_level_on_hierarchy(benchmark, compiled):
    cube, graph, engine = compiled
    top = cube.label(cube.top())
    result = benchmark(
        InnerLevelGreedy(fit=FIT_STRICT).run,
        engine,
        budget_of(cube, graph),
        (top,),
    )
    assert result.benefit > 0


def test_indexes_still_matter_under_hierarchies(compiled):
    cube, graph, engine = compiled
    top = cube.label(cube.top())
    budget = budget_of(cube, graph)
    with_idx = RGreedy(2, fit=FIT_STRICT).run(engine, budget, seed=(top,))
    views_only = HRUGreedy(fit=FIT_STRICT).run(engine, budget, seed=(top,))
    assert with_idx.benefit > views_only.benefit
