"""E3+E4 / Figure 2 and Examples 5.1/5.2: the r-greedy family traces.

Regenerates the benefit ladder (1-greedy 46, 2-greedy 194, inner-level
330, optimal 300/400) and times each algorithm on the instance.
"""

import pytest

from repro.algorithms import (
    FIT_PAPER,
    BranchAndBoundOptimal,
    InnerLevelGreedy,
    RGreedy,
)
from repro.datasets.paper_figure2 import FIGURE2_SPACE, PAPER_ANCHORS
from repro.experiments.example51 import format_example51, run_example51


def test_example51_table():
    result = run_example51()
    print()
    print(format_example51(result))
    assert result.anchor_deltas() == {
        "1-greedy": 0.0,
        "2-greedy": 0.0,
        "optimal(7)": 0.0,
        "inner-level": 0.0,
        "optimal(9)": 0.0,
    }


@pytest.mark.parametrize("r,expected", [(1, 46), (2, 194), (3, 250), (4, 250)])
def test_bench_r_greedy(benchmark, fig2_engine, r, expected):
    result = benchmark(RGreedy(r, fit=FIT_PAPER).run, fig2_engine, FIGURE2_SPACE)
    assert result.benefit == expected


def test_bench_inner_level(benchmark, fig2_engine):
    result = benchmark(InnerLevelGreedy(fit=FIT_PAPER).run, fig2_engine, FIGURE2_SPACE)
    assert result.benefit == PAPER_ANCHORS["inner-level"]


def test_bench_optimal(benchmark, fig2_engine):
    result = benchmark(BranchAndBoundOptimal().run, fig2_engine, FIGURE2_SPACE)
    assert result.benefit == PAPER_ANCHORS["optimal(7)"]
