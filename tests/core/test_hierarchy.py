"""Tests for dimension hierarchies (the [HRU96] generalization)."""

import math

import pytest

from repro.algorithms import FIT_STRICT, RGreedy
from repro.core.hierarchy import (
    ALL,
    HierarchicalCube,
    HierarchicalView,
    Hierarchy,
    Level,
    hierarchical_lattice_graph,
    hierarchical_queries,
)


@pytest.fixture
def time_hierarchy():
    return Hierarchy(
        "time", [Level("day", 365), Level("month", 12), Level("year", 1)]
    )


@pytest.fixture
def cube(time_hierarchy):
    return HierarchicalCube(
        [
            time_hierarchy,
            Hierarchy("cust", [Level("customer", 200), Level("nation", 20)]),
            Hierarchy.flat("p", 50),
        ],
        raw_rows=20_000,
    )


class TestHierarchy:
    def test_flat_helper(self):
        h = Hierarchy.flat("p", 100)
        assert h.n_levels == 1
        assert h.levels[0].name == "p"

    def test_cardinality_must_decrease(self):
        with pytest.raises(ValueError, match="coarser"):
            Hierarchy("t", [Level("month", 12), Level("day", 365)])

    def test_equal_cardinality_allowed(self):
        Hierarchy("t", [Level("a", 10), Level("b", 10)])  # no error

    def test_duplicate_level_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Hierarchy("t", [Level("x", 10), Level("x", 5)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Hierarchy("t", [])

    def test_level_index(self, time_hierarchy):
        assert time_hierarchy.level_index("month") == 1
        with pytest.raises(KeyError):
            time_hierarchy.level_index("decade")

    def test_coarsens(self, time_hierarchy):
        assert time_hierarchy.coarsens(1, 0)  # month from day
        assert time_hierarchy.coarsens(2, 0)  # year from day
        assert time_hierarchy.coarsens(1, 1)  # month from month
        assert not time_hierarchy.coarsens(0, 1)  # day from month: no
        assert time_hierarchy.coarsens(ALL, 2)  # ALL from anything
        assert not time_hierarchy.coarsens(0, ALL)

    def test_level_validation(self):
        with pytest.raises(ValueError):
            Level("", 10)
        with pytest.raises(ValueError):
            Level("x", 0)


class TestHierarchicalCube:
    def test_view_count_is_product_of_chain_lengths(self, cube):
        assert cube.n_views() == 4 * 3 * 2
        assert len(list(cube.views())) == 24

    def test_flat_cube_matches_power_set(self):
        flat = HierarchicalCube(
            [Hierarchy.flat("a", 10), Hierarchy.flat("b", 20)], raw_rows=100
        )
        assert flat.n_views() == 4  # 2^2

    def test_top_is_finest(self, cube):
        top = cube.top()
        assert top.levels == (0, 0, 0)
        assert cube.label(top) == "day,customer,p"

    def test_label_of_all_all(self, cube):
        view = HierarchicalView([ALL, ALL, ALL])
        assert cube.label(view) == "none"
        assert cube.size(view) == 1.0

    def test_computability_per_dimension(self, cube):
        day_cust = HierarchicalView([0, 0, ALL])
        month_nation = HierarchicalView([1, 1, ALL])
        assert cube.computable(month_nation, day_cust)
        assert not cube.computable(day_cust, month_nation)

    def test_computability_is_partial_order(self, cube):
        views = list(cube.views())
        for a in views:
            assert cube.computable(a, a)  # reflexive
        for a in views[:8]:
            for b in views[:8]:
                for c in views[:8]:
                    if cube.computable(a, b) and cube.computable(b, c):
                        assert cube.computable(a, c)  # transitive

    def test_sizes_monotone_along_computability(self, cube):
        """A computable (coarser) view never has more rows."""
        views = list(cube.views())
        for a in views:
            for b in views:
                if cube.computable(a, b):
                    assert cube.size(a) <= cube.size(b) + 1e-9

    def test_cells(self, cube):
        view = HierarchicalView([1, 1, ALL])  # month × nation
        assert cube.cells(view) == 12 * 20

    def test_top_size_bounded_by_raw_rows(self, cube):
        assert cube.size(cube.top()) <= 20_000

    def test_ancestors_include_top(self, cube):
        view = HierarchicalView([2, ALL, ALL])  # year
        ancestors = cube.ancestors(view)
        assert cube.top() in ancestors
        assert view in ancestors

    def test_duplicate_dimension_names_rejected(self, time_hierarchy):
        with pytest.raises(ValueError, match="duplicate"):
            HierarchicalCube([time_hierarchy, time_hierarchy], raw_rows=10)

    def test_global_level_name_uniqueness(self):
        with pytest.raises(ValueError, match="unique"):
            HierarchicalCube(
                [Hierarchy.flat("a", 10),
                 Hierarchy("b", [Level("a", 5)])],
                raw_rows=10,
            )


class TestHierarchicalQueries:
    def test_2_to_r_queries_per_view(self, cube):
        view = HierarchicalView([1, 1, 0])  # month, nation, p
        assert len(list(hierarchical_queries(cube, view))) == 8

    def test_groupby_selection_partition_attrs(self, cube):
        view = HierarchicalView([1, ALL, 0])
        for groupby, selection in hierarchical_queries(cube, view):
            assert set(groupby) | set(selection) == {"month", "p"}
            assert set(groupby) & set(selection) == set()


class TestGraphCompilation:
    @pytest.fixture(scope="class")
    def graph(self):
        cube = HierarchicalCube(
            [
                Hierarchy("t", [Level("day", 100), Level("month", 10)]),
                Hierarchy.flat("p", 30),
            ],
            raw_rows=2_000,
        )
        return cube, hierarchical_lattice_graph(cube)

    def test_view_count(self, graph):
        cube, g = graph
        assert len(g.views) == cube.n_views() == 6

    def test_query_count(self, graph):
        """Each view contributes the 2^r slice queries over exactly its
        attrs; attribute sets are distinct across views, so no dedup."""
        cube, g = graph
        # (day,p):4  (month,p):4  (day):2  (month):2  (p):2  none:1
        assert g.n_queries == 4 + 4 + 2 + 2 + 2 + 1

    def test_fat_indexes_per_view(self, graph):
        cube, g = graph
        assert len(g.indexes_of("day,p")) == 2
        assert len(g.indexes_of("day")) == 1
        assert len(g.indexes_of("none")) == 0

    def test_index_cap(self):
        cube = HierarchicalCube(
            [Hierarchy.flat("a", 10), Hierarchy.flat("b", 10),
             Hierarchy.flat("c", 10)],
            raw_rows=500,
        )
        g = hierarchical_lattice_graph(cube, max_fat_indexes_per_view=2)
        assert len(g.indexes_of("a,b,c")) == 2

    def test_coarser_views_answer_coarser_queries_only(self, graph):
        cube, g = graph
        # the month-level query is answerable by month,p but not by day,p
        # (exact-level rule)
        assert g.edge_cost("γ(month)σ()", "month,p") is not None
        assert g.edge_cost("γ(month)σ()", "day,p") is None

    def test_index_edges_beat_scans(self, graph):
        cube, g = graph
        for q, s, cost in g.edges():
            struct = g.structure(s)
            if struct.is_index:
                scan = g.edge_cost(q, struct.view_name)
                assert scan is not None and cost < scan

    def test_selection_runs_end_to_end(self, graph):
        cube, g = graph
        top = cube.label(cube.top())
        top_rows = cube.size(cube.top())
        budget = top_rows + 0.3 * (g.total_space() - top_rows)
        result = RGreedy(2, fit=FIT_STRICT).run(g, budget, seed=(top,))
        assert result.benefit > 0
        assert result.space_used <= budget

    def test_flat_special_case_agrees_with_flat_construction(self):
        """A hierarchy of 2-level chains (attr → ALL) is the flat cube;
        the hierarchical compilation must produce the same structure
        counts as QueryViewGraph.from_cube."""
        from repro.core.qvgraph import QueryViewGraph
        from repro.cube.schema import CubeSchema, Dimension
        from repro.estimation.sizes import analytical_lattice

        cube = HierarchicalCube(
            [Hierarchy.flat("a", 12), Hierarchy.flat("b", 7)], raw_rows=60
        )
        hier_graph = hierarchical_lattice_graph(cube)

        schema = CubeSchema([Dimension("a", 12), Dimension("b", 7)])
        lattice = analytical_lattice(schema, 60)
        flat_graph = QueryViewGraph.from_cube(lattice)

        assert hier_graph.n_queries == flat_graph.n_queries
        assert len(hier_graph.views) == len(flat_graph.views)
        assert len(hier_graph.indexes) == len(flat_graph.indexes)
