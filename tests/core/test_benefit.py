"""Tests for repro.core.benefit — τ, benefits, monotonicity, submodularity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.benefit import BenefitEngine
from repro.core.qvgraph import QueryViewGraph

from tests.conftest import unit_graph_strategy


def tiny_graph() -> QueryViewGraph:
    g = QueryViewGraph()
    g.add_query("q1", 100)
    g.add_query("q2", 50, frequency=2.0)
    g.add_view("v1", 10)
    g.add_view("v2", 5)
    g.add_index("v1", "i1")
    g.add_edge("q1", "v1", 20)
    g.add_edge("q1", "i1", 2)
    g.add_edge("q2", "v2", 10)
    return g


class TestCompilation:
    def test_shapes(self):
        eng = BenefitEngine(tiny_graph())
        assert eng.n_queries == 2
        assert eng.n_structures == 3
        assert eng.cost.shape == (3, 2)

    def test_missing_edges_are_inf(self):
        eng = BenefitEngine(tiny_graph())
        assert eng.cost[eng.structure_id("v2"), eng.query_id("q1")] == float("inf")

    def test_initial_tau_is_weighted_defaults(self):
        eng = BenefitEngine(tiny_graph())
        assert eng.tau() == 100 + 2 * 50

    def test_view_ids_and_index_ids(self):
        eng = BenefitEngine(tiny_graph())
        views = {eng.name_of(i) for i in eng.view_ids()}
        assert views == {"v1", "v2"}
        idx = eng.index_ids_of(eng.structure_id("v1"))
        assert [eng.name_of(i) for i in idx] == ["i1"]

    def test_index_ids_of_non_view_raises(self):
        eng = BenefitEngine(tiny_graph())
        with pytest.raises(ValueError):
            eng.index_ids_of(eng.structure_id("i1"))


class TestBenefit:
    def test_benefit_of_view(self):
        eng = BenefitEngine(tiny_graph())
        assert eng.benefit_of([eng.structure_id("v1")]) == 80

    def test_benefit_counts_frequency(self):
        eng = BenefitEngine(tiny_graph())
        assert eng.benefit_of([eng.structure_id("v2")]) == 2 * 40

    def test_benefit_of_empty_set_is_zero(self):
        eng = BenefitEngine(tiny_graph())
        assert eng.benefit_of([]) == 0.0

    def test_benefit_of_set_takes_min_edge(self):
        eng = BenefitEngine(tiny_graph())
        ids = [eng.structure_id("v1"), eng.structure_id("i1")]
        assert eng.benefit_of(ids) == 98

    def test_commit_reduces_tau(self):
        eng = BenefitEngine(tiny_graph())
        before = eng.tau()
        realized = eng.commit([eng.structure_id("v1")])
        assert eng.tau() == before - realized

    def test_commit_index_without_view_raises(self):
        eng = BenefitEngine(tiny_graph())
        with pytest.raises(ValueError, match="index before its view"):
            eng.commit([eng.structure_id("i1")])

    def test_commit_index_with_view_in_same_call(self):
        eng = BenefitEngine(tiny_graph())
        eng.commit([eng.structure_id("v1"), eng.structure_id("i1")])
        assert eng.tau() == 2 + 100

    def test_benefit_after_commit_is_marginal(self):
        eng = BenefitEngine(tiny_graph())
        eng.commit([eng.structure_id("v1")])
        assert eng.benefit_of([eng.structure_id("i1")]) == 18

    def test_is_admissible(self):
        eng = BenefitEngine(tiny_graph())
        v1, i1 = eng.structure_id("v1"), eng.structure_id("i1")
        assert eng.is_admissible([v1, i1])
        assert not eng.is_admissible([i1])
        eng.commit([v1])
        assert eng.is_admissible([i1])

    def test_reset(self):
        eng = BenefitEngine(tiny_graph())
        eng.commit([eng.structure_id("v1")])
        eng.reset()
        assert eng.tau() == 200
        assert eng.selected_ids == frozenset()

    def test_snapshot_restore(self):
        eng = BenefitEngine(tiny_graph())
        snap = eng.snapshot()
        eng.commit([eng.structure_id("v1")])
        eng.restore(snap)
        assert eng.tau() == 200
        assert not eng.is_selected(eng.structure_id("v1"))

    def test_space_accounting(self):
        eng = BenefitEngine(tiny_graph())
        eng.commit([eng.structure_id("v1"), eng.structure_id("i1")])
        assert eng.space_used() == 20

    def test_benefit_per_space(self):
        eng = BenefitEngine(tiny_graph())
        assert eng.benefit_per_space([eng.structure_id("v1")]) == 8.0

    def test_absolute_benefit_ignores_state(self):
        eng = BenefitEngine(tiny_graph())
        eng.commit([eng.structure_id("v1")])
        assert eng.absolute_benefit([eng.structure_id("v1")]) == 80

    def test_max_achievable_benefit(self):
        eng = BenefitEngine(tiny_graph())
        assert eng.max_achievable_benefit() == 98 + 80

    def test_average_query_cost(self):
        eng = BenefitEngine(tiny_graph())
        assert eng.average_query_cost() == pytest.approx(200 / 3)


class TestBenefitProperties:
    """The structural properties Theorem 5.1's proof relies on."""

    @settings(max_examples=60, deadline=None)
    @given(unit_graph_strategy(), st.data())
    def test_monotonicity(self, graph, data):
        """B(C, M) only shrinks as M grows."""
        eng = BenefitEngine(graph)
        all_ids = list(range(eng.n_structures))
        candidate = data.draw(st.sets(st.sampled_from(all_ids)))
        grow = data.draw(st.sets(st.sampled_from(all_ids)))
        before = eng.benefit_of(candidate)
        eng.commit(_close_views(eng, grow))
        after = eng.benefit_of(candidate)
        assert after <= before + 1e-9

    @settings(max_examples=60, deadline=None)
    @given(unit_graph_strategy(), st.data())
    def test_submodularity_in_single_structures(self, graph, data):
        """Marginal gain of one structure shrinks as the base set grows."""
        eng = BenefitEngine(graph)
        all_ids = list(range(eng.n_structures))
        s = data.draw(st.sampled_from(all_ids))
        base = data.draw(st.sets(st.sampled_from(all_ids)))
        gain_small = eng.benefit_of([s])
        eng.commit(_close_views(eng, base))
        gain_large = eng.benefit_of([s])
        assert gain_large <= gain_small + 1e-9

    @settings(max_examples=60, deadline=None)
    @given(unit_graph_strategy(), st.data())
    def test_subadditivity(self, graph, data):
        """B(A ∪ B, M) <= B(A, M) + B(B, M)."""
        eng = BenefitEngine(graph)
        all_ids = list(range(eng.n_structures))
        a = data.draw(st.sets(st.sampled_from(all_ids)))
        b = data.draw(st.sets(st.sampled_from(all_ids)))
        assert (
            eng.benefit_of(a | b)
            <= eng.benefit_of(a) + eng.benefit_of(b) + 1e-9
        )

    @settings(max_examples=60, deadline=None)
    @given(unit_graph_strategy())
    def test_tau_floor_reached_by_committing_everything(self, graph):
        eng = BenefitEngine(graph)
        eng.commit(range(eng.n_structures))
        floor = float(
            eng.frequencies @ np.minimum(eng.defaults, eng.cost.min(axis=0))
        )
        assert eng.tau() == pytest.approx(floor)


def _close_views(eng: BenefitEngine, ids) -> list:
    """Add owning views so the set is admissible to commit."""
    closed = set(ids)
    for sid in list(closed):
        if not eng.is_view[sid]:
            closed.add(int(eng.view_id_of[sid]))
    return sorted(closed)
