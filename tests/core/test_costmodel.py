"""Tests for repro.core.costmodel — the linear cost model of Section 4."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.costmodel import LinearCostModel
from repro.core.index import Index, enumerate_fat_indexes
from repro.core.query import SliceQuery, enumerate_slice_queries
from repro.core.view import View


@pytest.fixture
def model(tpcd_lat):
    return LinearCostModel(tpcd_lat)


PSC = View.of("p", "s", "c")
PS = View.of("p", "s")


class TestPaperExamples:
    def test_section_411_worked_example(self, model):
        """γ_p σ_s via psc with I_scp costs |psc| / |s| = 600 rows."""
        q = SliceQuery(groupby=["p"], selection=["s"])
        idx = Index(PSC, ("s", "c", "p"))
        assert model.cost(q, PSC, idx) == pytest.approx(6_000_000 / 10_000)

    def test_section_2_slice_via_index_on_ps(self, model):
        """γ_p σ_s via ps with I_sp costs |ps| / |s| = 80 rows."""
        q = SliceQuery(groupby=["p"], selection=["s"])
        idx = Index(PS, ("s", "p"))
        assert model.cost(q, PS, idx) == pytest.approx(800_000 / 10_000)

    def test_scan_costs_without_index(self, model):
        q = SliceQuery(groupby=["p"], selection=["s"])
        assert model.cost(q, PS) == 800_000
        assert model.cost(q, PSC) == 6_000_000

    def test_useless_index_costs_full_scan(self, model):
        """I_ps cannot help a query selecting only on s (Section 2)."""
        q = SliceQuery(groupby=["p"], selection=["s"])
        idx = Index(PS, ("p", "s"))
        assert model.cost(q, PS, idx) == 800_000


class TestCostFormula:
    def test_unanswerable_query_raises(self, model):
        q = SliceQuery(groupby=["c"])
        with pytest.raises(ValueError, match="not answerable"):
            model.cost(q, PS)

    def test_index_on_wrong_view_raises(self, model):
        q = SliceQuery(selection=["p"])
        idx = Index(PS, ("p", "s"))
        with pytest.raises(ValueError, match="not an index on"):
            model.cost(q, PSC, idx)

    def test_full_prefix_costs_one_per_group(self, model):
        """Selecting on all attrs of the view touches |V|/|V| = 1 row."""
        q = SliceQuery(selection=["p", "s"])
        idx = Index(PS, ("p", "s"))
        assert model.cost(q, PS, idx) == 1.0

    def test_subcube_query_ignores_indexes(self, model):
        q = SliceQuery(groupby=["p", "s"])
        for idx in enumerate_fat_indexes(PS):
            assert model.cost(q, PS, idx) == model.cost(q, PS)

    def test_cost_with_index_never_exceeds_scan(self, model, tpcd_lat):
        for q in enumerate_slice_queries(["p", "s", "c"]):
            for view in tpcd_lat.views():
                if not q.answerable_by(view):
                    continue
                scan = model.cost(q, view)
                for idx in enumerate_fat_indexes(view):
                    assert model.cost(q, view, idx) <= scan

    def test_longer_usable_prefix_never_costs_more(self, model):
        """Monotonicity: extending the usable prefix can only shrink cost."""
        q = SliceQuery(selection=["p", "s"], groupby=["c"])
        shorter = Index(PSC, ("p", "c", "s"))  # usable prefix (p,)
        longer = Index(PSC, ("p", "s", "c"))  # usable prefix (p, s)
        assert model.cost(q, PSC, longer) <= model.cost(q, PSC, shorter)

    def test_cost_at_least_one_row(self, model):
        q = SliceQuery(selection=["p", "s", "c"])
        idx = Index(PSC, ("p", "s", "c"))
        assert model.cost(q, PSC, idx) >= 1.0


class TestDefaultCost:
    def test_default_is_top_view_size(self, model):
        q = SliceQuery(groupby=["p"])
        assert model.default_cost(q) == 6_000_000

    def test_default_view_override(self, tpcd_lat):
        model = LinearCostModel(tpcd_lat, default_view=View.of("p", "s"))
        q = SliceQuery(groupby=["p"])
        assert model.default_cost(q) == 800_000

    def test_default_unanswerable_raises(self, tpcd_lat):
        model = LinearCostModel(tpcd_lat, default_view=View.of("p", "s"))
        q = SliceQuery(groupby=["c"])
        with pytest.raises(ValueError):
            model.default_cost(q)


class TestBestCost:
    def test_best_over_indexes(self, model):
        q = SliceQuery(groupby=["p"], selection=["s"])
        best = model.best_cost(q, PS, enumerate_fat_indexes(PS))
        assert best == pytest.approx(80)

    def test_best_without_indexes_is_scan(self, model):
        q = SliceQuery(groupby=["p"], selection=["s"])
        assert model.best_cost(q, PS) == 800_000

    @given(st.sampled_from(list(enumerate_slice_queries(["p", "s", "c"]))))
    def test_best_cost_bounded_by_scan(self, q):
        from repro.datasets.tpcd import tpcd_lattice

        lat = tpcd_lattice()
        model = LinearCostModel(lat)
        for view in lat.views():
            if q.answerable_by(view):
                best = model.best_cost(q, view, enumerate_fat_indexes(view))
                assert 1.0 <= best <= model.cost(q, view)
