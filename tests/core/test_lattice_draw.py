"""Tests for the ASCII lattice renderer."""

import pytest

from repro.core.lattice_draw import draw_hasse, draw_lattice
from repro.core.view import View


class TestDrawLattice:
    def test_figure1_shape(self, tpcd_lat):
        text = draw_lattice(tpcd_lat)
        lines = text.splitlines()
        assert len(lines) == 4  # levels 3..0
        assert "psc=6M" in lines[0]
        assert "none=1" in lines[-1]

    def test_level_membership(self, tpcd_lat):
        lines = draw_lattice(tpcd_lat).splitlines()
        assert "ps=800k" in lines[1]
        assert "s=10k" in lines[2]

    def test_custom_annotation(self, tpcd_lat):
        text = draw_lattice(tpcd_lat, annotate=lambda v: "X")
        assert "psc=X" in text

    def test_fixed_width_centres(self, tpcd_lat):
        text = draw_lattice(tpcd_lat, width=100)
        top = text.splitlines()[0]
        assert top.startswith(" ")  # centred in the wide field

    def test_small_lattice(self, small_lattice):
        text = draw_lattice(small_lattice)
        assert "abc=400" in text


class TestDrawHasse:
    def test_every_view_listed(self, tpcd_lat):
        text = draw_hasse(tpcd_lat)
        for view in tpcd_lat.views():
            assert tpcd_lat.label(view) in text

    def test_edges_match_children(self, tpcd_lat):
        text = draw_hasse(tpcd_lat)
        assert text.count("└─") == sum(len(v) for v in tpcd_lat.views())

    def test_top_first(self, tpcd_lat):
        assert draw_hasse(tpcd_lat).splitlines()[0].startswith("psc")
