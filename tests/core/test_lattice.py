"""Tests for repro.core.lattice."""

import pytest

from repro.core.lattice import CubeLattice
from repro.core.view import View
from repro.cube.schema import CubeSchema, Dimension


@pytest.fixture
def lattice(small_lattice):
    return small_lattice


class TestConstruction:
    def test_has_2_to_n_views(self, lattice):
        assert len(lattice) == 8

    def test_missing_size_rejected(self, small_schema):
        with pytest.raises(ValueError, match="missing"):
            CubeLattice(small_schema, {View.none(): 1})

    def test_nonpositive_size_rejected(self, small_schema):
        sizes = {v: 10 for v in CubeLattice.from_estimator(small_schema, lambda v: 1)}
        sizes[View.of("a")] = 0
        with pytest.raises(ValueError, match="size"):
            CubeLattice(small_schema, sizes)

    def test_none_size_defaults_to_one(self, small_schema):
        lattice = CubeLattice.from_estimator(small_schema, lambda v: 7 if v.attrs else 1)
        assert lattice.size(View.none()) == 1

    def test_from_estimator(self, small_schema):
        lattice = CubeLattice.from_estimator(small_schema, lambda v: len(v) + 1)
        assert lattice.size(View.of("a", "b")) == 3


class TestTopology:
    def test_top_and_bottom(self, lattice):
        assert lattice.top == View.of("a", "b", "c")
        assert lattice.bottom == View.none()

    def test_views_sorted_by_dimensionality(self, lattice):
        dims = [len(v) for v in lattice.views()]
        assert dims == sorted(dims)

    def test_ancestors_of_bottom_is_everything(self, lattice):
        assert len(lattice.ancestors(View.none())) == 8

    def test_ancestors_strict_excludes_self(self, lattice):
        view = View.of("a")
        assert view not in lattice.ancestors(view, strict=True)
        assert view in lattice.ancestors(view)

    def test_descendants_of_top_is_everything(self, lattice):
        assert len(lattice.descendants(lattice.top)) == 8

    def test_parents_have_one_more_attr(self, lattice):
        parents = lattice.parents(View.of("a"))
        assert sorted(str(p) for p in parents) == ["ab", "ac"]

    def test_children_have_one_fewer_attr(self, lattice):
        children = lattice.children(View.of("a", "b"))
        assert sorted(str(c) for c in children) == ["a", "b"]

    def test_parents_of_top_empty(self, lattice):
        assert lattice.parents(lattice.top) == []

    def test_children_of_bottom_empty(self, lattice):
        assert lattice.children(View.none()) == []

    def test_level_counts_are_binomial(self, lattice):
        assert [len(lattice.level(r)) for r in range(4)] == [1, 3, 3, 1]

    def test_level_out_of_range(self, lattice):
        with pytest.raises(ValueError):
            lattice.level(5)

    def test_ancestor_descendant_duality(self, lattice):
        for a in lattice.views():
            for b in lattice.views():
                assert (a in lattice.ancestors(b)) == (b in lattice.descendants(a))


class TestSizes:
    def test_size_lookup(self, lattice):
        assert lattice.size(View.of("a")) == 10

    def test_size_unknown_view_raises(self, lattice):
        with pytest.raises(KeyError):
            lattice.size(View.of("zz"))

    def test_total_size(self, lattice):
        assert lattice.total_size() == 400 + 180 + 50 + 95 + 10 + 20 + 5 + 1

    def test_sizes_returns_copy(self, lattice):
        sizes = lattice.sizes()
        sizes[View.of("a")] = 999
        assert lattice.size(View.of("a")) == 10


class TestLabels:
    def test_label_schema_order(self, tpcd_lat):
        assert tpcd_lat.label(View.of("c", "s", "p")) == "psc"

    def test_label_none(self, tpcd_lat):
        assert tpcd_lat.label(View.none()) == "none"

    def test_label_unknown_raises(self, tpcd_lat):
        with pytest.raises(KeyError):
            tpcd_lat.label(View.of("zz"))

    def test_index_label(self, tpcd_lat):
        from repro.core.index import Index

        idx = Index(View.of("p", "s"), ("s", "p"))
        assert tpcd_lat.index_label(idx) == "I_sp(ps)"

    def test_multichar_label(self):
        schema = CubeSchema([Dimension("part", 10), Dimension("cust", 10)])
        lattice = CubeLattice.from_estimator(schema, lambda v: 5 if v.attrs else 1)
        assert lattice.label(View.of("cust", "part")) == "part,cust"


class TestNetworkx:
    def test_hasse_diagram_shape(self, lattice):
        graph = lattice.to_networkx()
        assert graph.number_of_nodes() == 8
        # each view has one edge per attribute
        assert graph.number_of_edges() == sum(len(v) for v in lattice.views())

    def test_node_rows_attribute(self, lattice):
        graph = lattice.to_networkx()
        assert graph.nodes[View.of("a")]["rows"] == 10

    def test_dag_is_acyclic(self, lattice):
        import networkx as nx

        assert nx.is_directed_acyclic_graph(lattice.to_networkx())
