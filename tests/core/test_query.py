"""Tests for repro.core.query."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.query import (
    SliceQuery,
    count_slice_queries,
    enumerate_slice_queries,
    queries_for_view,
)
from repro.core.view import View


class TestSliceQuery:
    def test_disjointness_enforced(self):
        with pytest.raises(ValueError, match="disjoint"):
            SliceQuery(groupby=["a"], selection=["a"])

    def test_view_is_union(self):
        q = SliceQuery(groupby=["c"], selection=["p", "s"])
        assert q.view == View.of("p", "s", "c")

    def test_subcube_query(self):
        q = SliceQuery(groupby=["a", "b"])
        assert q.is_subcube_query
        assert q.selection == frozenset()

    def test_empty_query_is_grand_total(self):
        q = SliceQuery()
        assert q.view == View.none()
        assert q.is_subcube_query

    def test_answerable_by_superset_views(self):
        q = SliceQuery(groupby=["a"], selection=["b"])
        assert q.answerable_by(View.of("a", "b"))
        assert q.answerable_by(View.of("a", "b", "c"))
        assert not q.answerable_by(View.of("a"))

    def test_equality_and_hash(self):
        q1 = SliceQuery(groupby=["a"], selection=["b"])
        q2 = SliceQuery(groupby=["a"], selection=["b"])
        q3 = SliceQuery(groupby=["b"], selection=["a"])
        assert q1 == q2 and hash(q1) == hash(q2)
        assert q1 != q3

    def test_str_format(self):
        q = SliceQuery(groupby=["c"], selection=["p", "s"])
        assert str(q) == "γ(c)σ(ps)"

    def test_str_empty_parts(self):
        assert str(SliceQuery()) == "γ()σ()"


class TestEnumeration:
    @pytest.mark.parametrize("n,expected", [(0, 1), (1, 3), (2, 9), (3, 27), (6, 729)])
    def test_count_formula(self, n, expected):
        assert count_slice_queries(n) == expected

    def test_count_negative_raises(self):
        with pytest.raises(ValueError):
            count_slice_queries(-1)

    @pytest.mark.parametrize("dims", [["a"], ["a", "b"], ["a", "b", "c"]])
    def test_enumeration_matches_count(self, dims):
        queries = list(enumerate_slice_queries(dims))
        assert len(queries) == count_slice_queries(len(dims))

    def test_enumeration_has_no_duplicates(self):
        queries = list(enumerate_slice_queries(["a", "b", "c"]))
        assert len(set(queries)) == len(queries)

    def test_enumeration_rejects_duplicate_dims(self):
        with pytest.raises(ValueError):
            list(enumerate_slice_queries(["a", "a"]))

    def test_every_attr_in_exactly_one_role(self):
        for q in enumerate_slice_queries(["a", "b"]):
            assert q.groupby & q.selection == frozenset()
            assert q.groupby | q.selection <= {"a", "b"}

    def test_enumeration_is_deterministic(self):
        a = list(enumerate_slice_queries(["x", "y", "z"]))
        b = list(enumerate_slice_queries(["x", "y", "z"]))
        assert a == b


class TestQueriesForView:
    def test_r_dim_view_has_2_to_r_queries(self):
        view = View.of("a", "b", "c")
        assert len(list(queries_for_view(view))) == 8

    def test_all_queries_use_exactly_view_attrs(self):
        view = View.of("a", "b")
        for q in queries_for_view(view):
            assert q.attrs == view.attrs

    def test_union_over_views_is_full_enumeration(self):
        dims = ["a", "b", "c"]
        from itertools import chain, combinations

        views = [
            View(c) for r in range(4) for c in combinations(dims, r)
        ]
        via_views = set(chain.from_iterable(queries_for_view(v) for v in views))
        assert via_views == set(enumerate_slice_queries(dims))

    @given(st.sets(st.sampled_from("abcde"), min_size=0, max_size=5))
    def test_smallest_view_property(self, attrs):
        view = View(attrs)
        for q in queries_for_view(view):
            assert q.answerable_by(view)
            # no strictly smaller view answers it
            for attr in attrs:
                smaller = View(attrs - {attr})
                assert not q.answerable_by(smaller)
