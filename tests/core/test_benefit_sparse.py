"""The sparse (CSR/CSC) cost-store backend and the maintained
single-benefit cache.

The dense matrix is the reference: every sparse query below is checked
for *exact* (bitwise, not approximate) agreement with it, because the
lazy stage loops rely on maintained values matching an eager recompute.
"""

import numpy as np
import pytest

from repro.core.benefit import AUTO_DENSE_BYTES, BenefitEngine
from repro.core.qvgraph import QueryViewGraph
from repro.datasets.paper_figure2 import figure2_graph


def small_graph() -> QueryViewGraph:
    g = QueryViewGraph()
    g.add_view("v0", 4)
    g.add_index("v0", "i0", 4)
    g.add_index("v0", "i1", 4)
    g.add_view("v1", 2)
    g.add_index("v1", "i2", 2)
    g.add_view("v2", 3)
    g.add_query("q0", 100, frequency=2.0)
    g.add_query("q1", 80)
    g.add_query("q2", 60, frequency=0.5)
    g.add_query("q3", 40)
    g.add_edge("q0", "v0", 10)
    g.add_edge("q0", "i0", 2)
    g.add_edge("q1", "v0", 30)
    g.add_edge("q1", "i1", 5)
    g.add_edge("q1", "v1", 25)
    g.add_edge("q2", "v1", 8)
    g.add_edge("q2", "i2", 1)
    g.add_edge("q3", "v2", 4)
    return g


def random_graph(
    seed: int,
    n_views: int = 6,
    n_queries: int = 25,
    edge_prob: float = 0.3,
) -> QueryViewGraph:
    rng = np.random.default_rng(seed)
    g = QueryViewGraph()
    names = []
    for v in range(n_views):
        vname = f"V{v}"
        g.add_view(vname, float(rng.integers(1, 20)))
        names.append(vname)
        for i in range(int(rng.integers(0, 4))):
            iname = f"I{v}.{i}"
            g.add_index(vname, iname, float(rng.integers(1, 20)))
            names.append(iname)
    for q in range(n_queries):
        default = float(rng.integers(50, 500))
        g.add_query(f"q{q}", default, frequency=float(rng.integers(1, 5)))
        for s in names:
            if rng.random() < edge_prob:
                g.add_edge(f"q{q}", s, float(rng.integers(0, int(default))))
    return g


@pytest.fixture(params=[small_graph, figure2_graph, lambda: random_graph(7)])
def pair(request):
    g = request.param()
    return BenefitEngine(g, backend="dense"), BenefitEngine(g, backend="sparse")


class TestBackendSelection:
    def test_auto_picks_dense_for_small_graphs(self):
        eng = BenefitEngine(small_graph())
        assert eng.backend == "dense"
        assert eng.cost.shape == (eng.n_structures, eng.n_queries)

    def test_auto_picks_sparse_past_the_byte_threshold(self):
        g = small_graph()
        need = BenefitEngine.dense_cost_bytes(6, 4)
        assert need < AUTO_DENSE_BYTES  # sanity: threshold is generous
        eng = BenefitEngine(g, dense_limit_bytes=need - 1)
        assert eng.backend == "sparse"

    def test_explicit_dense_beyond_limit_raises(self):
        with pytest.raises(MemoryError):
            BenefitEngine(small_graph(), backend="dense", dense_limit_bytes=8)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            BenefitEngine(small_graph(), backend="csr")

    def test_sparse_has_no_dense_matrix(self):
        eng = BenefitEngine(small_graph(), backend="sparse")
        with pytest.raises(RuntimeError):
            eng.cost
        assert eng.cost_store_bytes() > 0

    def test_sparse_store_smaller_than_dense_for_sparse_graphs(self):
        g = random_graph(3, n_views=8, n_queries=60, edge_prob=0.05)
        eng = BenefitEngine(g, backend="sparse")
        assert eng.cost_store_bytes() < BenefitEngine.dense_cost_bytes(
            eng.n_structures, eng.n_queries
        )

    def test_repr_names_the_backend(self):
        assert "sparse" in repr(BenefitEngine(small_graph(), backend="sparse"))


class TestCostQueries:
    def test_cost_rows_match(self, pair):
        dense, sparse = pair
        for sid in range(dense.n_structures):
            assert np.array_equal(dense.cost_row(sid), sparse.cost_row(sid))

    def test_edge_cost_by_id_matches(self, pair):
        dense, sparse = pair
        for sid in range(dense.n_structures):
            for qid in range(dense.n_queries):
                assert dense.edge_cost_by_id(sid, qid) == sparse.edge_cost_by_id(
                    sid, qid
                )

    def test_minimum_with_matches(self, pair):
        dense, sparse = pair
        vec = dense.defaults * 0.5
        for sid in range(dense.n_structures):
            assert np.array_equal(
                dense.minimum_with(vec, sid), sparse.minimum_with(vec, sid)
            )

    def test_minimum_with_does_not_mutate_input(self):
        eng = BenefitEngine(small_graph(), backend="sparse")
        vec = eng.defaults.copy()
        eng.minimum_with(vec, 0)
        assert np.array_equal(vec, eng.defaults)

    def test_min_cost_over_matches(self, pair):
        dense, sparse = pair
        ids = list(range(dense.n_structures))
        assert np.array_equal(dense.min_cost_over(ids), sparse.min_cost_over(ids))
        assert np.array_equal(
            dense.min_cost_over(ids[::2]), sparse.min_cost_over(ids[::2])
        )

    def test_gains_for_values_match(self, pair):
        dense, sparse = pair
        base = dense.defaults * 0.75
        ids = np.arange(dense.n_structures)
        np.testing.assert_allclose(
            dense.gains_for(ids, base), sparse.gains_for(ids, base), rtol=1e-13
        )

    def test_max_achievable_benefit_matches(self, pair):
        dense, sparse = pair
        assert dense.max_achievable_benefit() == pytest.approx(
            sparse.max_achievable_benefit(), rel=1e-13
        )


class TestStateParity:
    def test_tau_and_benefits_track_across_commits(self, pair):
        dense, sparse = pair
        for view in [s for s in range(dense.n_structures) if dense.is_view[s]]:
            b_d = dense.commit([view])
            b_s = sparse.commit([view])
            assert b_d == pytest.approx(b_s, rel=1e-13)
            assert dense.tau() == pytest.approx(sparse.tau(), rel=1e-13)
        assert dense.selected_ids == sparse.selected_ids

    def test_snapshot_restore_parity(self, pair):
        dense, sparse = pair
        view = int(dense.view_ids()[0])
        for eng in pair:
            snap = eng.snapshot()
            eng.commit([view])
            eng.restore(snap)
        assert dense.tau() == pytest.approx(sparse.tau(), rel=1e-13)
        assert not dense.selected_ids and not sparse.selected_ids


class TestMaintainedSingles:
    """The incremental cache must be *bitwise* equal to an eager pass."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_cache_matches_eager_after_every_commit(self, seed):
        g = random_graph(seed)
        eng = BenefitEngine(g, backend="sparse")
        rng = np.random.default_rng(seed + 100)
        eng.single_benefits(lazy=True)  # prime the cache
        views = list(eng.view_ids())
        rng.shuffle(views)
        for view in views[:4]:
            view = int(view)
            eng.commit([view])
            assert np.array_equal(
                eng.single_benefits(lazy=True), eng.single_benefits(lazy=False)
            )
            for idx in eng.index_ids_of(view)[:2]:
                eng.commit([int(idx)])
                assert np.array_equal(
                    eng.single_benefits(lazy=True), eng.single_benefits(lazy=False)
                )

    def test_cache_matches_on_dense_backend_too(self):
        g = random_graph(11)
        eng = BenefitEngine(g, backend="dense")
        eng.single_benefits(lazy=True)
        for view in list(eng.view_ids())[:3]:
            eng.commit([int(view)])
            lazy = eng.single_benefits(lazy=True)
            eager = eng.single_benefits(lazy=False)
            np.testing.assert_allclose(lazy, eager, rtol=1e-13)

    def test_reset_invalidates(self):
        eng = BenefitEngine(small_graph(), backend="sparse")
        eng.single_benefits(lazy=True)
        eng.commit([0])
        eng.reset()
        assert np.array_equal(
            eng.single_benefits(lazy=True), eng.single_benefits(lazy=False)
        )

    def test_invalidate_full_and_partial(self):
        eng = BenefitEngine(small_graph(), backend="sparse")
        eng.single_benefits(lazy=True)
        eng.invalidate()
        assert np.array_equal(
            eng.single_benefits(lazy=True), eng.single_benefits(lazy=False)
        )
        eng.invalidate(ids=[0, 1])  # selective refresh of a live cache
        assert np.array_equal(
            eng.single_benefits(lazy=True), eng.single_benefits(lazy=False)
        )

    def test_restricted_ids_read_from_cache(self):
        eng = BenefitEngine(small_graph(), backend="sparse")
        whole = eng.single_benefits(lazy=True)
        some = eng.single_benefits([2, 0], lazy=True)
        assert some[0] == whole[2] and some[1] == whole[0]


class TestLazyBestSingle:
    def eager_best(self, eng, ids, space_left=None):
        benefits = eng.single_benefits(ids, lazy=False)
        best = None
        best_ratio = 0.0
        for pos, sid in enumerate(ids):
            sid = int(sid)
            if eng.is_selected(sid):
                continue
            if not eng.is_view[sid] and not eng.is_selected(int(eng.view_id_of[sid])):
                continue
            s_space = float(eng.spaces[sid])
            if space_left is not None and s_space > space_left + 1e-9:
                continue
            benefit = float(benefits[pos])
            if benefit <= 0.0:
                continue
            ratio = benefit / s_space
            if best is None or ratio > best_ratio * (1 + 1e-12):
                best = sid
                best_ratio = ratio
        return best

    @pytest.mark.parametrize("seed", [5, 6, 7])
    def test_matches_eager_scan_through_a_whole_run(self, seed):
        g = random_graph(seed)
        eng = BenefitEngine(g, backend="sparse")
        ids = eng.stage_candidates()
        while True:
            expected = self.eager_best(eng, ids)
            got = eng.lazy_best_single(ids)
            if expected is None:
                assert got is None
                break
            assert got is not None and got[0] == expected
            eng.commit([expected])

    def test_space_limit_filters(self):
        eng = BenefitEngine(small_graph(), backend="sparse")
        unconstrained = eng.lazy_best_single(eng.stage_candidates())
        assert unconstrained is not None
        tight = eng.lazy_best_single(eng.stage_candidates(), space_left=0.0)
        assert tight is None

    def test_empty_candidates(self):
        eng = BenefitEngine(small_graph(), backend="sparse")
        assert eng.lazy_best_single(np.empty(0, dtype=np.int64)) is None

    def test_inadmissible_indexes_skipped(self):
        eng = BenefitEngine(small_graph(), backend="sparse")
        idx = int(eng.structure_id("i0"))
        # i0 alone is not offerable: its view is unselected
        assert eng.lazy_best_single(np.array([idx])) is None
        eng.commit([int(eng.structure_id("v0"))])
        pick = eng.lazy_best_single(np.array([idx]))
        assert pick is not None and pick[0] == idx
