"""Tests for repro.core.view."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.view import View, parse_view

ATTRS = st.sets(st.sampled_from("abcdefgh"), max_size=6)


class TestViewBasics:
    def test_equality_ignores_order(self):
        assert View(["p", "s"]) == View(["s", "p"])

    def test_of_constructor(self):
        assert View.of("p", "s") == View(["p", "s"])

    def test_none_view_is_empty(self):
        assert len(View.none()) == 0
        assert View.none().attrs == frozenset()

    def test_hashable_and_interchangeable_in_sets(self):
        assert len({View.of("a", "b"), View.of("b", "a")}) == 1

    def test_str_single_char_attrs_concatenated(self):
        assert str(View.of("s", "p")) == "ps"  # sorted

    def test_str_multichar_attrs_comma_separated(self):
        assert str(View.of("part", "customer")) == "customer,part"

    def test_str_empty_is_none(self):
        assert str(View.none()) == "none"

    def test_repr_contains_label(self):
        assert "ps" in repr(View.of("p", "s"))

    def test_rejects_empty_attr(self):
        with pytest.raises(ValueError):
            View([""])

    def test_rejects_non_string_attr(self):
        with pytest.raises(ValueError):
            View([1, 2])

    def test_iter_yields_sorted(self):
        assert list(View.of("c", "a", "b")) == ["a", "b", "c"]

    def test_contains(self):
        assert "a" in View.of("a", "b")
        assert "z" not in View.of("a", "b")


class TestViewOrder:
    def test_le_is_subset(self):
        assert View.of("p") <= View.of("p", "c")
        assert not View.of("p") <= View.of("c")

    def test_lt_strict(self):
        assert View.of("p") < View.of("p", "c")
        assert not View.of("p") < View.of("p")

    def test_ge_gt(self):
        assert View.of("p", "c") >= View.of("p")
        assert View.of("p", "c") > View.of("p")

    def test_incomparable_views(self):
        p, c = View.of("p"), View.of("c")
        assert not p <= c and not c <= p

    def test_can_compute(self):
        assert View.of("p", "c").can_compute(View.of("p"))
        assert not View.of("p").can_compute(View.of("c"))

    def test_none_computable_from_everything(self):
        assert View.of("a").can_compute(View.none())

    def test_union_is_join(self):
        assert View.of("a").union(View.of("b")) == View.of("a", "b")

    def test_intersection_is_meet(self):
        assert View.of("a", "b").intersection(View.of("b", "c")) == View.of("b")

    @given(ATTRS, ATTRS)
    def test_order_matches_set_inclusion(self, a, b):
        assert (View(a) <= View(b)) == (a <= b)

    @given(ATTRS, ATTRS)
    def test_union_intersection_lattice_laws(self, a, b):
        va, vb = View(a), View(b)
        assert va.union(vb) >= va
        assert va.intersection(vb) <= va
        # absorption
        assert va.union(va.intersection(vb)) == va
        assert va.intersection(va.union(vb)) == va


class TestParseView:
    def test_parse_compact(self):
        assert parse_view("ps") == View.of("p", "s")

    def test_parse_comma(self):
        assert parse_view("part,customer") == View.of("part", "customer")

    def test_parse_none(self):
        assert parse_view("none") == View.none()
        assert parse_view("") == View.none()

    def test_parse_strips_whitespace(self):
        assert parse_view(" part , customer ") == View.of("part", "customer")

    def test_roundtrip_single_char(self):
        view = View.of("x", "y", "z")
        assert parse_view(str(view)) == view
