"""The bitmask fast path of :meth:`QueryViewGraph.from_cube` and the bulk
edge-block storage behind it.

The reference per-edge loop is kept verbatim; the fast path must produce a
node-for-node, edge-for-edge, value-identical graph.
"""

import numpy as np
import pytest

from repro.core.benefit import BenefitEngine
from repro.core.costmodel import LinearCostModel
from repro.core.lattice import CubeLattice
from repro.core.qvgraph import QueryViewGraph
from repro.core.query import SliceQuery, enumerate_slice_queries
from repro.cube.schema import CubeSchema, Dimension
from repro.estimation.sizes import analytical_lattice


def lattice_of(n_dims: int) -> CubeLattice:
    cards = [3 + 2 * i for i in range(n_dims)]
    schema = CubeSchema(
        [Dimension(chr(ord("a") + i), c) for i, c in enumerate(cards)]
    )
    return analytical_lattice(schema, max(1.0, 0.1 * schema.dense_cells))


def graphs_equal(a: QueryViewGraph, b: QueryViewGraph) -> None:
    assert [q.name for q in a.queries] == [q.name for q in b.queries]
    assert [(q.default_cost, q.frequency) for q in a.queries] == [
        (q.default_cost, q.frequency) for q in b.queries
    ]
    assert [(s.name, s.kind, s.space, s.view_name) for s in a.structures] == [
        (s.name, s.kind, s.space, s.view_name) for s in b.structures
    ]
    assert a.n_edges == b.n_edges
    ea = sorted(a.edges())
    eb = sorted(b.edges())
    assert ea == eb  # exact float equality included


@pytest.mark.parametrize("n_dims", [1, 2, 3])
@pytest.mark.parametrize("index_universe", ["fat", "all", "none"])
def test_fast_path_identical_to_reference(n_dims, index_universe):
    lat = lattice_of(n_dims)
    fast = QueryViewGraph.from_cube(lat, index_universe=index_universe)
    slow = QueryViewGraph.from_cube(
        lat, index_universe=index_universe, vectorized=False
    )
    graphs_equal(fast, slow)


def test_fast_path_identical_with_frequencies_and_subset_of_queries():
    lat = lattice_of(3)
    queries = list(enumerate_slice_queries(lat.schema.names))[::3]
    freqs = {q: 1.0 + (i % 4) for i, q in enumerate(queries)}
    fast = QueryViewGraph.from_cube(lat, queries, frequencies=freqs)
    slow = QueryViewGraph.from_cube(
        lat, queries, frequencies=freqs, vectorized=False
    )
    graphs_equal(fast, slow)


def test_fast_path_identical_without_useless_edge_skip():
    lat = lattice_of(2)
    fast = QueryViewGraph.from_cube(lat, skip_useless_index_edges=False)
    slow = QueryViewGraph.from_cube(
        lat, skip_useless_index_edges=False, vectorized=False
    )
    graphs_equal(fast, slow)


def test_compiled_engines_identical():
    lat = lattice_of(3)
    fast = BenefitEngine(QueryViewGraph.from_cube(lat), backend="dense")
    slow = BenefitEngine(
        QueryViewGraph.from_cube(lat, vectorized=False), backend="dense"
    )
    assert np.array_equal(fast.cost, slow.cost)
    assert np.array_equal(fast.defaults, slow.defaults)
    assert np.array_equal(fast.frequencies, slow.frequencies)
    assert np.array_equal(fast.spaces, slow.spaces)


def test_vectorized_true_rejects_foreign_queries():
    lat = lattice_of(2)

    class OddQuery(SliceQuery):
        pass

    # a subclassed query disables the fast path
    odd = [SliceQuery.__new__(OddQuery)]
    with pytest.raises(ValueError):
        QueryViewGraph.from_cube(lat, odd, vectorized=True)


def test_vectorized_true_rejects_foreign_cost_model():
    lat = lattice_of(2)

    class OddModel(LinearCostModel):
        pass

    with pytest.raises(ValueError):
        QueryViewGraph.from_cube(lat, cost_model=OddModel(lat), vectorized=True)


def test_subclassed_cost_model_falls_back_silently():
    lat = lattice_of(2)

    class OddModel(LinearCostModel):
        pass

    ref = QueryViewGraph.from_cube(lat, vectorized=False)
    fallback = QueryViewGraph.from_cube(lat, cost_model=OddModel(lat))
    graphs_equal(ref, fallback)


class TestBulkEdges:
    def graph(self) -> QueryViewGraph:
        g = QueryViewGraph()
        g.add_view("v", 10)
        g.add_view("w", 5)
        g.add_query("q0", 100)
        g.add_query("q1", 50)
        return g

    def test_bulk_edges_visible_to_readers(self):
        g = self.graph()
        g.add_edges_bulk(
            np.array([0, 1]), np.array([0, 1]), np.array([4.0, 2.0])
        )
        assert g.n_edges == 2
        assert g.edge_cost("q0", "v") == 4.0
        assert g.edge_cost("q1", "w") == 2.0
        assert sorted(g.edges()) == [("q0", "v", 4.0), ("q1", "w", 2.0)]
        g.validate()

    def test_parallel_edges_resolve_to_minimum(self):
        g = self.graph()
        g.add_edge("q0", "v", 9.0)
        g.add_edges_bulk(np.array([0, 0]), np.array([0, 0]), np.array([7.0, 3.0]))
        assert g.edge_cost("q0", "v") == 3.0
        q_idx, s_idx, costs = g.edge_arrays()
        engine = BenefitEngine(g, backend="dense")
        assert engine.cost[0, 0] == 3.0

    def test_misaligned_arrays_rejected(self):
        g = self.graph()
        with pytest.raises(ValueError):
            g.add_edges_bulk(np.array([0]), np.array([0, 1]), np.array([1.0, 2.0]))

    def test_out_of_range_positions_rejected(self):
        g = self.graph()
        with pytest.raises(ValueError):
            g.add_edges_bulk(np.array([5]), np.array([0]), np.array([1.0]))
        with pytest.raises(ValueError):
            g.add_edges_bulk(np.array([0]), np.array([9]), np.array([1.0]))

    def test_negative_costs_rejected(self):
        g = self.graph()
        with pytest.raises(ValueError):
            g.add_edges_bulk(np.array([0]), np.array([0]), np.array([-1.0]))

    def test_empty_block_is_noop(self):
        g = self.graph()
        g.add_edges_bulk(
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
        )
        assert g.n_edges == 0

    def test_edge_arrays_mix_dict_and_blocks(self):
        g = self.graph()
        g.add_edge("q1", "v", 8.0)
        g.add_edges_bulk(np.array([0]), np.array([1]), np.array([2.5]))
        q_idx, s_idx, costs = g.edge_arrays()
        triples = sorted(zip(q_idx.tolist(), s_idx.tolist(), costs.tolist()))
        assert triples == [(0, 1, 2.5), (1, 0, 8.0)]
