"""Tests for repro.core.index."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.index import (
    Index,
    count_all_indexes,
    count_fat_indexes,
    enumerate_all_indexes,
    enumerate_fat_indexes,
    prune_prefix_dominated,
)
from repro.core.query import SliceQuery
from repro.core.view import View

PS = View.of("p", "s")
PSC = View.of("p", "s", "c")


class TestIndexBasics:
    def test_key_order_matters(self):
        assert Index(PS, ("p", "s")) != Index(PS, ("s", "p"))

    def test_key_must_be_in_view(self):
        with pytest.raises(ValueError, match="not in view"):
            Index(PS, ("p", "z"))

    def test_key_must_be_nonempty(self):
        with pytest.raises(ValueError):
            Index(PS, ())

    def test_duplicate_key_attrs_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Index(PS, ("p", "p"))

    def test_is_fat(self):
        assert Index(PS, ("s", "p")).is_fat
        assert not Index(PSC, ("s", "p")).is_fat

    def test_str(self):
        assert str(Index(PS, ("s", "p"))) == "I_sp(ps)"

    def test_hash_equality(self):
        assert hash(Index(PS, ("p", "s"))) == hash(Index(PS, ("p", "s")))


class TestUsablePrefix:
    def test_full_selection_prefix(self):
        idx = Index(PS, ("p", "s"))
        q = SliceQuery(selection=["p", "s"])
        assert idx.usable_prefix(q) == ("p", "s")

    def test_partial_prefix(self):
        idx = Index(PSC, ("s", "c", "p"))
        q = SliceQuery(groupby=["p"], selection=["s"])
        assert idx.usable_prefix(q) == ("s",)

    def test_prefix_stops_at_first_non_selection_attr(self):
        idx = Index(PSC, ("s", "p", "c"))
        q = SliceQuery(groupby=["p"], selection=["s", "c"])
        assert idx.usable_prefix(q) == ("s",)  # p breaks the prefix

    def test_no_usable_prefix_when_leading_attr_not_selected(self):
        idx = Index(PS, ("p", "s"))
        q = SliceQuery(groupby=["p"], selection=["s"])
        assert idx.usable_prefix(q) == ()

    def test_subcube_query_never_uses_index(self):
        idx = Index(PS, ("p", "s"))
        q = SliceQuery(groupby=["p", "s"])
        assert idx.usable_prefix(q) == ()
        assert not idx.helps(q)

    def test_helps_requires_answerability(self):
        idx = Index(PS, ("p",))
        q = SliceQuery(groupby=["c"], selection=["p"])  # needs c, not in ps
        assert not idx.helps(q)

    @given(
        st.permutations(["a", "b", "c", "d"]),
        st.sets(st.sampled_from("abcd")),
    )
    def test_prefix_is_longest_selection_prefix(self, key, selection):
        view = View.of("a", "b", "c", "d")
        groupby = set("abcd") - selection
        idx = Index(view, tuple(key))
        q = SliceQuery(groupby=groupby, selection=selection)
        prefix = idx.usable_prefix(q)
        # brute-force the definition
        expected_len = 0
        for attr in key:
            if attr in selection:
                expected_len += 1
            else:
                break
        assert prefix == tuple(key[:expected_len])


class TestEnumeration:
    def test_fat_index_count_per_view(self):
        assert len(list(enumerate_fat_indexes(PSC))) == 6

    def test_empty_view_has_no_indexes(self):
        assert list(enumerate_fat_indexes(View.none())) == []
        assert list(enumerate_all_indexes(View.none())) == []

    def test_all_indexes_count_per_view(self):
        # 3 dims: 3 + 6 + 6 = 15 orderings of non-empty subsets
        assert len(list(enumerate_all_indexes(PSC))) == 15

    def test_fat_subset_of_all(self):
        fat = set(enumerate_fat_indexes(PSC))
        full = set(enumerate_all_indexes(PSC))
        assert fat <= full

    def test_enumeration_deterministic(self):
        assert list(enumerate_fat_indexes(PSC)) == list(enumerate_fat_indexes(PSC))


class TestPruning:
    def test_proper_prefix_is_dominated(self):
        short = Index(PSC, ("s",))
        long = Index(PSC, ("s", "c", "p"))
        kept = prune_prefix_dominated([short, long])
        assert kept == [long]

    def test_pruning_all_indexes_leaves_fat_ones(self):
        kept = prune_prefix_dominated(enumerate_all_indexes(PSC))
        assert set(kept) == set(enumerate_fat_indexes(PSC))

    def test_incomparable_keys_both_kept(self):
        a = Index(PSC, ("s", "p"))
        b = Index(PSC, ("p", "s"))
        assert set(prune_prefix_dominated([a, b])) == {a, b}

    def test_different_views_never_dominate(self):
        a = Index(PS, ("p",))
        b = Index(PSC, ("p", "s", "c"))
        assert set(prune_prefix_dominated([a, b])) == {a, b}

    def test_is_prefix_of(self):
        assert Index(PSC, ("s",)).is_prefix_of(Index(PSC, ("s", "c")))
        assert not Index(PSC, ("c",)).is_prefix_of(Index(PSC, ("s", "c")))

    def test_pruned_index_never_cheaper(self, tpcd_lat):
        """The Section 4.2.2 argument: for every query, the fat extension
        answers at most as expensively as the pruned prefix index."""
        from repro.core.costmodel import LinearCostModel
        from repro.core.query import enumerate_slice_queries

        model = LinearCostModel(tpcd_lat)
        view = View.of("p", "s", "c")
        short = Index(view, ("s",))
        long = Index(view, ("s", "c", "p"))
        for q in enumerate_slice_queries(["p", "s", "c"]):
            if not q.answerable_by(view):
                continue
            assert model.cost(q, view, long) <= model.cost(q, view, short)


class TestCounts:
    @pytest.mark.parametrize("n", range(1, 7))
    def test_fat_count_matches_enumeration(self, n):
        from itertools import combinations

        dims = [chr(ord("a") + i) for i in range(n)]
        total = 0
        for r in range(n + 1):
            for combo in combinations(dims, r):
                total += len(list(enumerate_fat_indexes(View(combo))))
        assert total == count_fat_indexes(n)

    @pytest.mark.parametrize("n", range(1, 6))
    def test_all_count_matches_enumeration(self, n):
        from itertools import combinations

        dims = [chr(ord("a") + i) for i in range(n)]
        total = 0
        for r in range(n + 1):
            for combo in combinations(dims, r):
                total += len(list(enumerate_all_indexes(View(combo))))
        assert total == count_all_indexes(n)

    def test_fat_count_approaches_e_times_factorial(self):
        n = 10
        assert count_fat_indexes(n) / math.factorial(n) == pytest.approx(
            math.e, rel=1e-4
        )

    def test_negative_dims_raise(self):
        with pytest.raises(ValueError):
            count_fat_indexes(-1)
        with pytest.raises(ValueError):
            count_all_indexes(-1)
