"""Tests for repro.core.selection."""

import pytest

from repro.core.selection import SelectionResult, Stage


def make_result(**overrides) -> SelectionResult:
    defaults = dict(
        algorithm="test",
        selected=("v1", "i1"),
        stages=(
            Stage(structures=("v1",), benefit=50.0, space=2.0, tau_after=150.0),
            Stage(structures=("i1",), benefit=30.0, space=1.0, tau_after=120.0),
        ),
        space_budget=5.0,
        space_used=3.0,
        initial_tau=200.0,
        tau=120.0,
        total_frequency=4.0,
    )
    defaults.update(overrides)
    return SelectionResult(**defaults)


class TestStage:
    def test_benefit_per_space(self):
        stage = Stage(structures=("v",), benefit=10.0, space=4.0, tau_after=0.0)
        assert stage.benefit_per_space == 2.5

    def test_zero_space_guard(self):
        stage = Stage(structures=("v",), benefit=10.0, space=0.0, tau_after=0.0)
        assert stage.benefit_per_space == 0.0

    def test_str_mentions_structures(self):
        stage = Stage(structures=("v", "i"), benefit=10.0, space=2.0, tau_after=0.0)
        assert "v, i" in str(stage)


class TestSelectionResult:
    def test_benefit_is_tau_drop(self):
        assert make_result().benefit == 80.0

    def test_average_query_cost(self):
        assert make_result().average_query_cost == 30.0

    def test_average_with_zero_frequency(self):
        assert make_result(total_frequency=0.0).average_query_cost == 0.0

    def test_contains(self):
        result = make_result()
        assert "v1" in result
        assert "zzz" not in result

    def test_summary_mentions_algorithm_and_counts(self):
        text = make_result().summary()
        assert "test" in text
        assert "2 structures" in text

    def test_table_lists_stages(self):
        text = make_result().table()
        assert "stage 1" in text and "stage 2" in text

    def test_table_without_stages_lists_selection(self):
        text = make_result(stages=()).table()
        assert "v1" in text

    def test_stage_benefits_sum_to_total(self):
        result = make_result()
        assert sum(s.benefit for s in result.stages) == pytest.approx(result.benefit)
