"""Property-based tests for the cube → query-view-graph compilation.

Random schemas and sparsities must always produce structurally sound
graphs: correct node counts, a top-view edge for every query, index
edges that strictly beat their view's scan, and space accounting that
matches the lattice.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.benefit import BenefitEngine
from repro.core.index import count_fat_indexes
from repro.core.qvgraph import QueryViewGraph
from repro.cube.schema import CubeSchema, Dimension
from repro.estimation.sizes import analytical_lattice


@st.composite
def lattices(draw):
    n_dims = draw(st.integers(min_value=1, max_value=3))
    cards = [draw(st.integers(min_value=2, max_value=100)) for __ in range(n_dims)]
    schema = CubeSchema(
        [Dimension(f"d{i}", c) for i, c in enumerate(cards)]
    )
    dense = schema.dense_cells
    raw_rows = draw(st.integers(min_value=1, max_value=max(1, dense)))
    return analytical_lattice(schema, raw_rows)


@settings(max_examples=40, deadline=None)
@given(lattices())
def test_node_counts(lattice):
    graph = QueryViewGraph.from_cube(lattice)
    n = lattice.n_dims
    assert len(graph.views) == 2**n
    assert graph.n_queries == 3**n
    assert len(graph.indexes) == count_fat_indexes(n)


@settings(max_examples=40, deadline=None)
@given(lattices())
def test_every_query_answerable_by_top(lattice):
    graph = QueryViewGraph.from_cube(lattice)
    top = lattice.label(lattice.top)
    for q in graph.queries:
        assert graph.edge_cost(q.name, top) is not None
        assert q.default_cost == lattice.size(lattice.top)


@settings(max_examples=30, deadline=None)
@given(lattices())
def test_index_edges_strictly_beat_scans(lattice):
    graph = QueryViewGraph.from_cube(lattice)
    for q, s, cost in graph.edges():
        struct = graph.structure(s)
        if struct.is_index:
            scan = graph.edge_cost(q, struct.view_name)
            assert scan is not None
            assert cost < scan


@settings(max_examples=30, deadline=None)
@given(lattices())
def test_view_edge_cost_is_view_size(lattice):
    graph = QueryViewGraph.from_cube(lattice)
    for q, s, cost in graph.edges():
        struct = graph.structure(s)
        if struct.is_view:
            assert cost == lattice.size(struct.payload)


@settings(max_examples=30, deadline=None)
@given(lattices())
def test_space_matches_lattice(lattice):
    graph = QueryViewGraph.from_cube(lattice)
    for view in graph.views:
        assert view.space == lattice.size(view.payload)
        for idx_name in graph.indexes_of(view.name):
            assert graph.structure(idx_name).space == view.space


@settings(max_examples=20, deadline=None)
@given(lattices())
def test_max_achievable_benefit_bounded(lattice):
    """Committing everything can at best bring every query to cost >= 1."""
    graph = QueryViewGraph.from_cube(lattice)
    engine = BenefitEngine(graph)
    top_size = lattice.size(lattice.top)
    upper = graph.n_queries * (top_size - 1)
    assert 0 <= engine.max_achievable_benefit() <= upper + 1e-9
