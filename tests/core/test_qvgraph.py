"""Tests for repro.core.qvgraph."""

import math

import pytest

from repro.core.index import count_fat_indexes
from repro.core.qvgraph import QueryViewGraph
from repro.core.view import View


class TestManualConstruction:
    def test_duplicate_query_rejected(self):
        g = QueryViewGraph()
        g.add_query("q", 10)
        with pytest.raises(ValueError, match="duplicate"):
            g.add_query("q", 5)

    def test_duplicate_structure_rejected(self):
        g = QueryViewGraph()
        g.add_view("v", 1)
        with pytest.raises(ValueError, match="duplicate"):
            g.add_view("v", 2)

    def test_index_requires_existing_view(self):
        g = QueryViewGraph()
        with pytest.raises(ValueError, match="unknown view"):
            g.add_index("v", "i")

    def test_index_name_cannot_collide_with_view(self):
        g = QueryViewGraph()
        g.add_view("v", 1)
        with pytest.raises(ValueError, match="duplicate"):
            g.add_index("v", "v")

    def test_index_space_defaults_to_view_space(self):
        g = QueryViewGraph()
        g.add_view("v", 7)
        idx = g.add_index("v", "i")
        assert idx.space == 7

    def test_edge_endpoints_must_exist(self):
        g = QueryViewGraph()
        g.add_query("q", 10)
        g.add_view("v", 1)
        with pytest.raises(ValueError):
            g.add_edge("q", "nope", 1)
        with pytest.raises(ValueError):
            g.add_edge("nope", "v", 1)

    def test_parallel_edges_keep_min(self):
        g = QueryViewGraph()
        g.add_query("q", 10)
        g.add_view("v", 1)
        g.add_edge("q", "v", 5)
        g.add_edge("q", "v", 3)
        g.add_edge("q", "v", 8)
        assert g.edge_cost("q", "v") == 3

    def test_negative_cost_rejected(self):
        g = QueryViewGraph()
        g.add_query("q", 10)
        g.add_view("v", 1)
        with pytest.raises(ValueError):
            g.add_edge("q", "v", -1)

    def test_nonpositive_space_rejected(self):
        g = QueryViewGraph()
        with pytest.raises(ValueError):
            g.add_view("v", 0)

    def test_negative_default_cost_rejected(self):
        g = QueryViewGraph()
        with pytest.raises(ValueError):
            g.add_query("q", -1)

    def test_totals(self):
        g = QueryViewGraph()
        g.add_query("q1", 10, frequency=2.0)
        g.add_query("q2", 5)
        g.add_view("v", 3)
        g.add_index("v", "i")
        assert g.total_space() == 6
        assert g.total_default_cost() == 25
        assert g.n_structures == 2

    def test_indexes_of(self):
        g = QueryViewGraph()
        g.add_view("v", 1)
        g.add_index("v", "i1")
        g.add_index("v", "i2")
        assert g.indexes_of("v") == ["i1", "i2"]

    def test_validate_passes_on_good_graph(self, fig2_g):
        fig2_g.validate()


class TestFromCube:
    def test_tpcd_counts(self, tpcd_g):
        assert tpcd_g.n_queries == 27
        assert len(tpcd_g.views) == 8
        assert len(tpcd_g.indexes) == count_fat_indexes(3)

    def test_view_spaces_match_lattice(self, tpcd_g, tpcd_lat):
        for view in tpcd_lat.views():
            assert tpcd_g.structure(tpcd_lat.label(view)).space == tpcd_lat.size(view)

    def test_index_space_equals_view_space(self, tpcd_g):
        for idx in tpcd_g.indexes:
            assert idx.space == tpcd_g.structure(idx.view_name).space

    def test_default_costs_are_top_size(self, tpcd_g):
        for q in tpcd_g.queries:
            assert q.default_cost == 6_000_000

    def test_view_edges_cover_answerable_queries(self, tpcd_g):
        # the top view answers every query at full-scan cost
        for q in tpcd_g.queries:
            assert tpcd_g.edge_cost(q.name, "psc") == 6_000_000

    def test_useless_index_edges_skipped(self, tpcd_g):
        # subcube query γ(psc)σ() has no index edges at all
        q_name = "γ(cps)σ()"
        index_edges = [
            s for (qn, s, c) in tpcd_g.edges()
            if qn == q_name and tpcd_g.structure(s).is_index
        ]
        assert index_edges == []

    def test_index_universe_none(self, tpcd_lat):
        g = QueryViewGraph.from_cube(tpcd_lat, index_universe="none")
        assert g.indexes == []

    def test_index_universe_all(self, tpcd_lat):
        from repro.core.index import count_all_indexes

        g = QueryViewGraph.from_cube(tpcd_lat, index_universe="all")
        assert len(g.indexes) == count_all_indexes(3)

    def test_index_universe_invalid(self, tpcd_lat):
        with pytest.raises(ValueError, match="index_universe"):
            QueryViewGraph.from_cube(tpcd_lat, index_universe="bogus")

    def test_frequencies_applied(self, tpcd_lat):
        from repro.core.query import enumerate_slice_queries

        queries = list(enumerate_slice_queries(tpcd_lat.schema.names))
        freqs = {queries[0]: 5.0}
        g = QueryViewGraph.from_cube(tpcd_lat, queries=queries, frequencies=freqs)
        assert g.query(str(queries[0])).frequency == 5.0
        assert g.query(str(queries[1])).frequency == 1.0

    def test_payloads_preserved(self, tpcd_g):
        struct = tpcd_g.structure("ps")
        assert struct.payload == View.of("p", "s")

    def test_keep_useless_index_edges_flag(self, tpcd_lat):
        g = QueryViewGraph.from_cube(tpcd_lat, skip_useless_index_edges=False)
        g2 = QueryViewGraph.from_cube(tpcd_lat, skip_useless_index_edges=True)
        assert g.n_edges > g2.n_edges
