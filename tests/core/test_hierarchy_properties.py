"""Property-based tests for random hierarchies.

Random hierarchical cubes must always satisfy the lattice laws the
algorithms rely on: the computability relation is a partial order, sizes
are monotone along it, the compiled graph is structurally sound, and the
all-flat special case agrees with the flat construction.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.benefit import BenefitEngine
from repro.core.hierarchy import (
    HierarchicalCube,
    Hierarchy,
    Level,
    hierarchical_lattice_graph,
)


@st.composite
def cubes(draw):
    n_dims = draw(st.integers(min_value=1, max_value=3))
    hierarchies = []
    label = 0
    for d in range(n_dims):
        n_levels = draw(st.integers(min_value=1, max_value=3))
        cards = sorted(
            (
                draw(st.integers(min_value=1, max_value=200))
                for __ in range(n_levels)
            ),
            reverse=True,
        )
        levels = []
        for card in cards:
            levels.append(Level(f"l{label}", card))
            label += 1
        hierarchies.append(Hierarchy(f"d{d}", levels))
    raw_rows = draw(st.integers(min_value=1, max_value=5_000))
    return HierarchicalCube(hierarchies, raw_rows=raw_rows)


@settings(max_examples=40, deadline=None)
@given(cubes())
def test_view_count_formula(cube):
    views = list(cube.views())
    assert len(views) == cube.n_views()
    assert len(set(views)) == len(views)
    assert math.prod(h.n_levels + 1 for h in cube.hierarchies) == len(views)


@settings(max_examples=30, deadline=None)
@given(cubes())
def test_computability_partial_order(cube):
    views = list(cube.views())
    for a in views:
        assert cube.computable(a, a)
    # antisymmetry
    for a in views:
        for b in views:
            if a != b:
                assert not (cube.computable(a, b) and cube.computable(b, a))


@settings(max_examples=30, deadline=None)
@given(cubes())
def test_top_computes_everything(cube):
    top = cube.top()
    for view in cube.views():
        assert cube.computable(view, top)


@settings(max_examples=30, deadline=None)
@given(cubes())
def test_sizes_monotone_along_computability(cube):
    views = list(cube.views())
    for a in views:
        for b in views:
            if cube.computable(a, b):
                assert cube.size(a) <= cube.size(b) + 1e-9


@settings(max_examples=20, deadline=None)
@given(cubes())
def test_compiled_graph_is_sound(cube):
    graph = hierarchical_lattice_graph(cube, max_fat_indexes_per_view=2)
    graph.validate()
    assert len(graph.views) == cube.n_views()
    engine = BenefitEngine(graph)
    # every index edge strictly beats its view's scan edge
    for q, s, cost in graph.edges():
        struct = graph.structure(s)
        if struct.is_index:
            scan = graph.edge_cost(q, struct.view_name)
            assert scan is not None and cost < scan
    # committing everything never increases tau
    before = engine.tau()
    engine.commit(range(engine.n_structures))
    assert engine.tau() <= before + 1e-9


@settings(max_examples=20, deadline=None)
@given(
    st.lists(st.integers(min_value=2, max_value=60), min_size=1, max_size=3),
    st.integers(min_value=1, max_value=2_000),
)
def test_flat_cube_equivalence(cards, raw_rows):
    """Single-level hierarchies == the flat construction, structurally."""
    from repro.core.qvgraph import QueryViewGraph
    from repro.cube.schema import CubeSchema, Dimension
    from repro.estimation.sizes import analytical_lattice

    names = [f"x{i}" for i in range(len(cards))]
    cube = HierarchicalCube(
        [Hierarchy.flat(n, c) for n, c in zip(names, cards)],
        raw_rows=raw_rows,
    )
    hier_graph = hierarchical_lattice_graph(cube)

    schema = CubeSchema([Dimension(n, c) for n, c in zip(names, cards)])
    flat_graph = QueryViewGraph.from_cube(analytical_lattice(schema, raw_rows))

    assert hier_graph.n_queries == flat_graph.n_queries
    assert len(hier_graph.views) == len(flat_graph.views)
    assert len(hier_graph.indexes) == len(flat_graph.indexes)
    # total achievable benefit agrees (same sizes, same cost model)
    a = BenefitEngine(hier_graph).max_achievable_benefit()
    b = BenefitEngine(flat_graph).max_achievable_benefit()
    assert a == pytest.approx(b, rel=1e-9)
