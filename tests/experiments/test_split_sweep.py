"""Tests for the two-step split-sweep ablation (E10)."""

import pytest

from repro.experiments.split_sweep import format_split_sweep, run_split_sweep


@pytest.fixture(scope="module")
def result():
    return run_split_sweep(fractions=(0.25, 0.5, 0.75))


class TestSplitSweep:
    def test_one_step_beats_every_split(self, result):
        for avg in result.by_fraction.values():
            assert result.one_step_avg <= avg + 1e-6

    def test_best_split_is_index_heavy(self, result):
        """The paper: ~3/4 of the space should go to indexes."""
        assert result.best_fraction == 0.25

    def test_extreme_view_split_is_poor(self, result):
        assert result.by_fraction[0.75] > result.by_fraction[0.25]

    def test_format(self, result):
        text = format_split_sweep(result)
        assert "one-step" in text
        assert "best split" in text
