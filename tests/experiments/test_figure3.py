"""Tests for the Figure 3 experiment driver."""

import pytest

from repro.experiments.figure3 import (
    PAPER_GUARANTEES,
    PAPER_INNER_LEVEL,
    PAPER_KNEE,
    PAPER_LIMIT,
    format_figure3,
    run_figure3,
)


@pytest.fixture(scope="module")
def result():
    return run_figure3()


class TestCurve:
    def test_matches_paper_printed_values(self, result):
        curve = result.as_dict()
        for r, expected in PAPER_GUARANTEES.items():
            assert curve[r] == pytest.approx(expected, abs=0.005)

    def test_limit(self, result):
        assert result.limit == pytest.approx(PAPER_LIMIT, abs=0.005)

    def test_inner_level(self, result):
        assert result.inner_level == pytest.approx(PAPER_INNER_LEVEL, abs=0.001)

    def test_knee(self, result):
        assert result.knee == PAPER_KNEE

    def test_curve_monotone(self, result):
        values = [g for __, g in result.curve]
        assert values == sorted(values)


class TestFormat:
    def test_mentions_paper_values(self, result):
        text = format_figure3(result)
        assert "0.39" in text
        assert "knee" in text

    def test_contains_bar_plot(self, result):
        assert "#" in format_figure3(result)
