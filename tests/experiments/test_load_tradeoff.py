"""Tests for the load-time vs query-time tradeoff experiment."""

import pytest

from repro.experiments.load_tradeoff import format_load_tradeoff, run_load_tradeoff


@pytest.fixture(scope="module")
def rows():
    return run_load_tradeoff(budgets=(7e6, 25e6, 31e6, 81e6))


class TestLoadTradeoff:
    def test_query_cost_monotone_in_budget(self, rows):
        costs = [row.avg_query_cost for row in rows]
        assert costs == sorted(costs, reverse=True)

    def test_query_cost_flat_after_knee(self, rows):
        by_budget = {row.budget: row for row in rows}
        assert by_budget[31e6].avg_query_cost == pytest.approx(
            by_budget[81e6].avg_query_cost
        )

    def test_load_cost_does_not_decrease_past_knee(self, rows):
        by_budget = {row.budget: row for row in rows}
        assert by_budget[81e6].load_cost >= by_budget[25e6].load_cost

    def test_example21_point_reproduced(self, rows):
        """The 25M-budget row is Example 2.1's one-step selection."""
        by_budget = {row.budget: row for row in rows}
        assert by_budget[25e6].avg_query_cost == pytest.approx(1.15e6, rel=0.05)

    def test_pipeline_load_cheaper_than_naive(self, rows):
        from repro.datasets.tpcd import TPCD_RAW_ROWS

        for row in rows:
            naive = TPCD_RAW_ROWS * row.n_views
            assert row.load_cost - naive < row.load_cost  # indexes included
            # views themselves load cheaper than all-from-raw
            assert row.load_cost >= 0

    def test_format(self, rows):
        text = format_load_tradeoff(rows)
        assert "knee" in text
        assert "load cost" in text
