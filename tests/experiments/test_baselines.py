"""Tests for the baselines-panorama experiment."""

import pytest

from repro.experiments.baselines import format_baselines, run_baselines


@pytest.fixture(scope="module")
def rows():
    return run_baselines()


def by(rows, instance, strategy):
    return next(
        r for r in rows if r.instance == instance and r.strategy == strategy
    )


class TestBaselines:
    def test_views_only_worst_on_tpcd(self, rows):
        hru = by(rows, "TPC-D (25M)", "HRU (views only)")
        two = by(rows, "TPC-D (25M)", "two-step 50/50")
        one = by(rows, "TPC-D (25M)", "1-greedy")
        assert hru.average_query_cost > two.average_query_cost
        assert two.average_query_cost > one.average_query_cost

    def test_paper_narrative_ordering_everywhere(self, rows):
        for instance in {"TPC-D (25M)", "dim4 synthetic"}:
            views_only = by(rows, instance, "HRU (views only)")
            one_step = by(rows, instance, "1-greedy")
            assert one_step.benefit >= views_only.benefit

    def test_pbs_equals_hru_benefit(self, rows):
        for instance in {"TPC-D (25M)", "dim4 synthetic"}:
            pbs = by(rows, instance, "PBS (views only)")
            hru = by(rows, instance, "HRU (views only)")
            assert pbs.benefit == pytest.approx(hru.benefit, rel=0.01)

    def test_local_search_never_hurts(self, rows):
        for instance in {"TPC-D (25M)", "dim4 synthetic"}:
            base = by(rows, instance, "inner-level")
            refined = by(rows, instance, "inner-level + local search")
            assert refined.benefit >= base.benefit - 1e-6

    def test_tpcd_numbers_match_example21(self, rows):
        one = by(rows, "TPC-D (25M)", "1-greedy")
        two = by(rows, "TPC-D (25M)", "two-step 50/50")
        assert one.average_query_cost == pytest.approx(0.708e6, rel=0.01)
        assert two.average_query_cost == pytest.approx(1.18e6, rel=0.01)

    def test_format(self, rows):
        text = format_baselines(rows)
        assert "two-step" in text and "PBS" in text
