"""Tests for the RESULTS.md report generator."""

import pytest

from repro.experiments.report import capture_experiment, generate_report, write_report


class TestReport:
    def test_single_experiment_report(self):
        text = generate_report(["figure3"])
        assert "## figure3" in text
        assert "knee" in text
        assert text.startswith("# RESULTS")

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            generate_report(["bogus"])

    def test_capture_returns_printed_table(self):
        from repro.experiments import counts

        text = capture_experiment(counts.main)
        assert "3^n" in text

    def test_write_report(self, tmp_path):
        target = tmp_path / "RESULTS.md"
        written = write_report(target, ["counts", "figure3"])
        content = written.read_text()
        assert "## counts" in content and "## figure3" in content
        assert content.count("```") == 4

    def test_cli_entry(self, tmp_path, capsys):
        from repro.experiments.report import main

        target = tmp_path / "out.md"
        assert main([str(target), "counts"]) == 0
        assert "wrote" in capsys.readouterr().out
        assert target.exists()
