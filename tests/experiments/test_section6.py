"""Tests for the Section 6 sweep driver (small configurations only)."""

import pytest

from repro.experiments.section6 import (
    SweepConfig,
    build_graph,
    format_section6,
    run_config,
)

SMALL = SweepConfig("test dim2", (8, 6), sparsity=0.3, rs=(1, 2))
SMALL3 = SweepConfig("test dim3", (6, 5, 4), sparsity=0.2, rs=(1, 2))
ZIPF = SweepConfig("test zipf", (8, 6), sparsity=0.3, rs=(1, 2), freq_exponent=1.0)


class TestBuildGraph:
    def test_graph_shape(self):
        graph, top, budget = build_graph(SMALL)
        assert graph.n_queries == 9
        assert len(graph.views) == 4
        assert top == "ab"
        assert budget > graph.structure(top).space

    def test_zipf_frequencies_differ(self):
        graph, *__ = build_graph(ZIPF)
        freqs = {q.frequency for q in graph.queries}
        assert len(freqs) > 1

    def test_deterministic(self):
        g1, __, b1 = build_graph(ZIPF)
        g2, __, b2 = build_graph(ZIPF)
        assert b1 == b2
        assert {q.name: q.frequency for q in g1.queries} == {
            q.name: q.frequency for q in g2.queries
        }


class TestRunConfig:
    @pytest.fixture(scope="class")
    def row(self):
        return run_config(SMALL3)

    def test_near_optimal_claim(self, row):
        """The paper's Section 6 finding on a small instance: greedy is
        extremely close to optimal."""
        assert row.optimal_benefit is not None
        for name in ("1-greedy", "2-greedy"):
            assert row.ratio(name) >= 0.9

    def test_ratios_at_most_one(self, row):
        for name in row.benefits:
            assert row.ratio(name) <= 1.0 + 1e-9

    def test_2greedy_at_least_1greedy(self, row):
        assert row.benefits["2-greedy"] >= row.benefits["1-greedy"] - 1e-9

    def test_reference_falls_back_to_best_found(self):
        config = SweepConfig(
            "no-opt", (6, 5), sparsity=0.2, rs=(1,), include_optimal=False
        )
        row = run_config(config)
        assert row.optimal_benefit is None
        assert row.reference == max(row.benefits.values())


def test_format():
    rows = [run_config(SMALL)]
    text = format_section6(rows)
    assert "test dim2" in text
    assert "8x6" in text
