"""Tests for the Example 5.1/5.2 experiment driver."""

import pytest

from repro.experiments.example51 import format_example51, run_example51


@pytest.fixture(scope="module")
def result():
    return run_example51()


class TestAnchors:
    def test_all_self_consistent_anchors_exact(self, result):
        deltas = result.anchor_deltas()
        assert deltas == {key: 0.0 for key in deltas}

    def test_benefit_values(self, result):
        assert result.benefit("1-greedy") == 46
        assert result.benefit("2-greedy") == 194
        assert result.benefit("inner-level") == 330
        assert result.benefit("optimal(7)") == 300
        assert result.benefit("optimal(9)") == 400

    def test_3greedy_between_2greedy_and_optimal(self, result):
        assert (
            result.benefit("2-greedy")
            <= result.benefit("3-greedy")
            <= result.benefit("optimal(7)")
        )


class TestFormat:
    def test_table_mentions_inconsistency_note(self, result):
        text = format_example51(result)
        assert "not self-consistent" in text

    def test_table_shows_first_pick(self, result):
        text = format_example51(result)
        assert "V1, I1,1" in text and "(paper: 90)" in text
