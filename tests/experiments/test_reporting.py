"""Tests for the ASCII reporting helpers."""

import pytest

from repro.experiments.reporting import ascii_series, ascii_table, format_number


class TestFormatNumber:
    def test_millions(self):
        assert format_number(6_000_000) == "6M"

    def test_small_float(self):
        assert format_number(0.467) == "0.467"

    def test_string_passthrough(self):
        assert format_number("abc") == "abc"

    def test_none_is_dash(self):
        assert format_number(None) == "-"

    def test_nan_is_dash(self):
        assert format_number(float("nan")) == "-"

    def test_int(self):
        assert format_number(42) == "42"


class TestAsciiTable:
    def test_alignment(self):
        out = ascii_table(["col", "x"], [[1, 22], [333, 4]])
        lines = out.splitlines()
        assert len({len(l) for l in lines}) == 1  # rectangular

    def test_title(self):
        out = ascii_table(["a"], [[1]], title="hello")
        assert out.startswith("hello")

    def test_header_separator(self):
        out = ascii_table(["a", "b"], [[1, 2]])
        assert "-+-" in out.splitlines()[1]

    def test_empty_rows(self):
        out = ascii_table(["a"], [])
        assert "a" in out


class TestAsciiSeries:
    def test_bars_scale(self):
        out = ascii_series([1, 2], [0.5, 1.0], width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            ascii_series([1], [1.0, 2.0])

    def test_all_zero_series(self):
        out = ascii_series([1], [0.0])
        assert "#" not in out
