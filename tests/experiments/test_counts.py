"""Tests for the Section 3.5 counts experiment."""

import math

import pytest

from repro.experiments.counts import format_counts, run_counts


@pytest.fixture(scope="module")
def rows():
    return run_counts(max_dims=8)


class TestCounts:
    def test_tpcd_row(self, rows):
        """n = 3: 8 views, 27 slice queries, 15 fat indexes."""
        row = rows[2]
        assert (row.views, row.queries, row.fat_indexes) == (8, 27, 15)

    def test_views_power_of_two(self, rows):
        for row in rows:
            assert row.views == 2**row.n_dims

    def test_queries_power_of_three(self, rows):
        for row in rows:
            assert row.queries == 3**row.n_dims

    def test_fat_ratio_approaches_e(self, rows):
        assert rows[-1].fat_over_factorial == pytest.approx(math.e, rel=0.001)

    def test_fat_less_than_all(self, rows):
        for row in rows:
            if row.n_dims == 1:
                assert row.fat_indexes == row.all_indexes  # only I_a(a)
            else:
                assert row.fat_indexes < row.all_indexes

    def test_problem_size_grows_factorially(self, rows):
        """The Section 3.5 takeaway: the structure count is Θ(n!)."""
        ratios = [
            rows[i + 1].fat_indexes / rows[i].fat_indexes for i in range(4, 7)
        ]
        for i, ratio in enumerate(ratios):
            assert ratio == pytest.approx(rows[i + 5].n_dims, rel=0.15)


def test_format(rows):
    text = format_counts(rows)
    assert "3^n" in text and "fat" in text
