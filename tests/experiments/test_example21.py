"""Tests for the Example 2.1 experiment driver — the paper's Section 2
numbers must hold in shape."""

import pytest

from repro.experiments.example21 import (
    PAPER_ONE_STEP_AVG,
    PAPER_TWO_STEP_AVG,
    format_example21,
    run_example21,
)


@pytest.fixture(scope="module")
def result():
    return run_example21()


class TestPaperNumbers:
    def test_two_step_matches_paper_exactly(self, result):
        """1.18M rows per query with the equal split."""
        assert result.two_step_avg == pytest.approx(PAPER_TWO_STEP_AVG, rel=0.01)

    def test_one_step_close_to_paper(self, result):
        """0.74M in the paper; the shape (who wins, by what factor) holds."""
        assert result.one_step_avg == pytest.approx(PAPER_ONE_STEP_AVG, rel=0.1)

    def test_improvement_about_40_percent(self, result):
        assert result.improvement == pytest.approx(0.40, abs=0.05)

    def test_one_step_spends_about_three_quarters_on_indexes(self, result):
        """The paper: 'we are best off allocating three-quarters of the
        available space to the indexes'."""
        assert result.index_space_fraction("1-greedy") == pytest.approx(0.75, abs=0.1)

    def test_diminishing_returns(self, result):
        """Materializing the remaining ~55M rows adds virtually nothing."""
        assert result.everything_avg >= 0.99 * result.one_step_avg

    def test_two_step_spends_half_on_indexes(self, result):
        assert result.index_space_fraction("two-step (50/50)") <= 0.67


class TestDriver:
    def test_all_algorithms_present(self, result):
        assert set(result.results) >= {"two-step (50/50)", "1-greedy", "inner-level"}

    def test_selections_start_with_seed(self, result):
        for res in result.results.values():
            assert res.selected[0] == "psc"

    def test_format_contains_paper_rows(self, result):
        text = format_example21(result)
        assert "paper: two-step" in text
        assert "improvement" in text

    def test_2greedy_no_worse_than_1greedy(self, result):
        assert (
            result.results["2-greedy"].average_query_cost
            <= result.results["1-greedy"].average_query_cost + 1e-6
        )
