"""Tests for the cost-model-vs-engine validation experiment (E9)."""

import pytest

from repro.experiments.engine_validation import (
    format_validation,
    run_validation,
)


@pytest.fixture(scope="module")
def rows():
    return run_validation(max_prefix_draws=400)


class TestValidation:
    def test_covers_all_selective_queries(self, rows):
        # 3 dims -> 27 slice queries, 19 of which have a selection
        assert len(rows) == 19

    def test_model_matches_measurement(self, rows):
        """The headline: the linear cost model predicts measured rows."""
        for row in rows:
            assert row.relative_error <= 0.05, str(row.query)

    def test_exact_match_when_fully_enumerated(self, rows):
        """Plans whose prefix was fully enumerated must agree exactly."""
        exact = [r for r in rows if r.measured_mean == r.model_cost]
        assert len(exact) >= len(rows) // 2

    def test_index_plans_dominate(self, rows):
        """Most selective queries are served by an index; the executor
        falls back to a scan only when a tiny view beats every index plan
        (e.g. scanning the 12-row view `c` beats |bc|/|c|)."""
        with_index = [r for r in rows if r.index is not None]
        assert len(with_index) >= len(rows) * 2 // 3
        for row in rows:
            if row.index is None:
                # the scan must really be the model-cheapest option
                assert row.model_cost == row.measured_mean

    def test_format(self, rows):
        text = format_validation(rows)
        assert "worst relative error" in text
