"""Tests for the theorem-verification experiment."""

import pytest

from repro.algorithms import inner_level_guarantee, r_greedy_guarantee
from repro.experiments.guarantee_verification import (
    format_verification,
    run_verification,
)


@pytest.fixture(scope="module")
def rows():
    return run_verification(n_instances=60, seed=1)


class TestVerification:
    def test_all_bounds_hold(self, rows):
        for row in rows:
            assert row.holds, row.algorithm

    def test_bounds_match_formulas(self, rows):
        by_name = {row.algorithm: row for row in rows}
        assert by_name["2-greedy"].bound == pytest.approx(r_greedy_guarantee(2))
        assert by_name["inner-level"].bound == pytest.approx(
            inner_level_guarantee()
        )

    def test_mean_ratios_near_optimal(self, rows):
        """The Section 6 observation again: in practice greedy is far
        better than its worst case."""
        for row in rows:
            if row.algorithm != "1-greedy":
                assert row.mean >= 0.95

    def test_ratios_bounded_by_one(self, rows):
        for row in rows:
            assert row.worst <= 1.0 + 1e-9
            assert row.mean <= 1.0 + 1e-9

    def test_deterministic_given_seed(self):
        a = run_verification(n_instances=20, seed=5)
        b = run_verification(n_instances=20, seed=5)
        assert [(r.worst, r.mean) for r in a] == [(r.worst, r.mean) for r in b]

    def test_format(self, rows):
        text = format_verification(rows)
        assert "theoretical bound" in text
        assert "VIOLATED" not in text
