"""Tests for the workload-drift robustness experiment."""

import pytest

from repro.experiments.robustness import format_robustness, run_robustness


@pytest.fixture(scope="module")
def rows():
    return run_robustness(cardinalities=(12, 10, 8), n_drifts=2, seed=3)


class TestRobustness:
    def test_trained_workload_has_no_regret(self, rows):
        for row in rows:
            if row.evaluation == "trained":
                assert row.regret_ratio == pytest.approx(1.0)

    def test_ratios_in_unit_interval(self, rows):
        for row in rows:
            assert 0.0 <= row.regret_ratio <= 1.0 + 1e-9

    def test_achieved_never_exceeds_clairvoyant(self, rows):
        for row in rows:
            assert row.achieved_benefit <= row.clairvoyant_benefit + 1e-6

    def test_covers_all_evaluations(self, rows):
        evaluations = {row.evaluation for row in rows}
        assert evaluations == {"trained", "drift-1", "drift-2", "uniform"}

    def test_graceful_degradation(self, rows):
        """The structural claim: drift costs something but not everything
        (regret stays far from zero on these cubes)."""
        for row in rows:
            assert row.regret_ratio > 0.3, (row.algorithm, row.evaluation)

    def test_deterministic(self):
        a = run_robustness(cardinalities=(10, 8), n_drifts=1, seed=7)
        b = run_robustness(cardinalities=(10, 8), n_drifts=1, seed=7)
        assert [r.regret_ratio for r in a] == [r.regret_ratio for r in b]

    def test_format(self, rows):
        text = format_robustness(rows)
        assert "worst regret" in text
        assert "clairvoyant" in text
