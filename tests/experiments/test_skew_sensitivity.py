"""Tests for the cost-model skew-sensitivity experiment."""

import pytest

from repro.experiments.skew_sensitivity import (
    format_skew_sensitivity,
    run_skew_sensitivity,
)


@pytest.fixture(scope="module")
def rows():
    return run_skew_sensitivity(exponents=(0.0, 1.0, 1.5), n_rows=3_000)


class TestSkewSensitivity:
    def test_uniform_draws_match_model_exactly(self, rows):
        """E9's exactness, re-derived here: averaging over distinct
        values reproduces |V|/|E| regardless of data skew."""
        for row in rows:
            assert row.uniform_ratio == pytest.approx(1.0, abs=1e-9)

    def test_weighted_ratio_at_least_one(self, rows):
        """E[n²]/E[n] >= E[n]: hot slices can only cost more on average
        (up to sampling noise)."""
        for row in rows:
            assert row.weighted_ratio >= 0.95

    def test_weighted_ratio_grows_with_skew(self, rows):
        ratios = [row.weighted_ratio for row in rows]
        assert ratios[-1] > ratios[0]
        assert ratios[-1] > 1.3  # strong skew visibly breaks the average

    def test_no_skew_means_no_gap(self, rows):
        assert rows[0].weighted_ratio == pytest.approx(1.0, rel=0.1)

    def test_deterministic(self):
        a = run_skew_sensitivity(exponents=(1.0,), n_rows=1_000, rng_seed=4)
        b = run_skew_sensitivity(exponents=(1.0,), n_rows=1_000, rng_seed=4)
        assert a[0].weighted_mean == b[0].weighted_mean

    def test_format(self, rows):
        text = format_skew_sensitivity(rows)
        assert "skew" in text
        assert "1.00" in text
