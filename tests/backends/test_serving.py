"""Serving through ``QueryServer(backend=...)``: SQLite answers, engine parity."""

import numpy as np
import pytest

from repro.backends import SqliteBackend
from repro.cube.query_log import generate_query_log
from repro.serve import QueryServer

from .conftest import build_bundle


def serve_all(server, entries):
    return [server.serve(entry) for entry in entries]


class TestBackendServing:
    @pytest.fixture(scope="class")
    def setup(self):
        bundle = build_bundle(3)
        entries = generate_query_log(
            bundle.fact.schema, 120, rng=np.random.default_rng(4)
        )
        golden = QueryServer(
            bundle.fact, bundle.selection, cost_model=bundle.model
        )
        backend = SqliteBackend()
        server = QueryServer(
            bundle.fact,
            bundle.selection,
            cost_model=bundle.model,
            backend=backend,
        )
        return bundle, entries, golden, server, backend

    def test_outcomes_match_engine_serving(self, setup):
        bundle, entries, golden, server, backend = setup
        for expected, got in zip(serve_all(golden, entries), serve_all(server, entries)):
            assert got.groups == expected.groups, str(expected.entry.query)
            assert got.actual_rows == expected.actual_rows
            assert got.structure == expected.structure
            assert got.fallback == expected.fallback
            assert not got.rescued

    def test_mirror_built_once_for_steady_batches(self, setup):
        bundle, entries, golden, server, backend = setup
        assert backend.reloads == 1  # first batch loaded it, then no-ops
        server.serve_batch(entries[:10])
        assert backend.reloads == 1

    def test_telemetry_cost_fidelity_survives_backend(self, setup):
        """SQLite-side rows_processed feeds the same exact-cost
        accounting the engine path reports on dense cubes."""
        bundle, entries, golden, server, backend = setup
        snap = server.telemetry_snapshot()
        assert snap["queries"] >= len(entries)
        assert snap["cost"]["exact_matches"] == snap["queries"]
        assert snap["cost"]["max_abs_error"] == 0.0


class TestBackendFallback:
    def test_unanswerable_queries_fall_back_and_match(self):
        """With only a 2-attr view materialized most queries raw-fall
        back; the SQLite fact table must answer them like the engine."""
        bundle = build_bundle(3)
        lattice = bundle.model.lattice
        small = min(
            (v for v in lattice.views() if len(v.attrs) == 2),
            key=lambda v: lattice.size(v),
        )
        selection = (lattice.label(small),)
        entries = generate_query_log(
            bundle.fact.schema, 80, rng=np.random.default_rng(9)
        )
        golden = QueryServer(bundle.fact, selection, cost_model=bundle.model)
        server = QueryServer(
            bundle.fact,
            selection,
            cost_model=bundle.model,
            backend=SqliteBackend(),
        )
        fallbacks = 0
        for expected, got in zip(serve_all(golden, entries), serve_all(server, entries)):
            assert got.groups == expected.groups
            assert got.fallback == expected.fallback
            fallbacks += got.fallback
        assert fallbacks > 0, "workload never exercised the raw fallback"


class TestBackendDeltaInvalidation:
    def test_apply_delta_rebuilds_mirror_and_refreshes_answers(self):
        bundle = build_bundle(3)
        backend = SqliteBackend()
        server = QueryServer(
            bundle.fact,
            bundle.selection,
            cost_model=bundle.model,
            backend=backend,
        )
        schema = bundle.fact.schema
        entries = generate_query_log(schema, 60, rng=np.random.default_rng(2))
        server.serve_batch(entries)
        assert backend.reloads == 1

        rng = np.random.default_rng(3)
        n_delta = 30
        delta_columns = {
            name: rng.integers(0, schema.cardinality(name), size=n_delta)
            for name in schema.names
        }
        delta_measures = rng.integers(1, 1000, size=n_delta).astype(np.float64)
        server.apply_delta(delta_columns, delta_measures)

        outcomes = serve_all(server, entries)
        assert backend.reloads == 2, "version bump did not rebuild the mirror"

        golden = QueryServer(
            server.fact, bundle.selection, cost_model=bundle.model
        )
        for expected, got in zip(serve_all(golden, entries), outcomes):
            assert got.groups == expected.groups, str(expected.entry.query)
            assert got.actual_rows == expected.actual_rows
