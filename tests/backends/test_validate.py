"""Measured-vs-predicted validation: spearman math and the report."""

import pytest

from repro.backends import spearman, validate_cost
from repro.backends.validate import STRUCTURE_CLASSES, _ranks, format_report


class TestRanks:
    def test_no_ties(self):
        assert _ranks([30.0, 10.0, 20.0]) == [3.0, 1.0, 2.0]

    def test_ties_share_mean_rank(self):
        assert _ranks([5.0, 5.0, 1.0]) == [2.5, 2.5, 1.0]

    def test_all_tied(self):
        assert _ranks([7.0, 7.0, 7.0]) == [2.0, 2.0, 2.0]


class TestSpearman:
    def test_monotone(self):
        assert spearman([1, 2, 3, 4], [2, 9, 30, 31]) == pytest.approx(1.0)

    def test_reversed(self):
        assert spearman([1, 2, 3, 4], [4, 3, 2, 1]) == pytest.approx(-1.0)

    def test_ties_between(self):
        rho = spearman([1, 2, 2, 3], [1, 2, 3, 4])
        assert rho is not None and 0.8 < rho < 1.0

    def test_undefined_on_constant_series(self):
        assert spearman([1, 1, 1], [1, 2, 3]) is None
        assert spearman([1, 2, 3], [5, 5, 5]) is None

    def test_undefined_below_two_points(self):
        assert spearman([], []) is None
        assert spearman([1], [1]) is None

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="length mismatch"):
            spearman([1, 2], [1])

    def test_agrees_with_scipy_when_available(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        ys = [2.0, 7.0, 1.0, 8.0, 2.0, 8.0, 1.0, 8.0]
        assert spearman(xs, ys) == pytest.approx(
            float(scipy_stats.spearmanr(xs, ys).statistic)
        )


class TestValidateCost:
    @pytest.fixture(scope="class")
    def report(self, dense3):
        return validate_cost(
            dense3.fact,
            dense3.selection,
            cost_model=dense3.model,
            n_queries=150,
            rng=0,
        )

    def test_zero_mismatches(self, report):
        assert report["mismatches"] == 0
        assert report["mismatch_details"] == []
        assert report["queries"] == 150

    def test_class_partition_is_exhaustive(self, report):
        assert set(report["classes"]) <= set(STRUCTURE_CLASSES)
        assert sum(c["queries"] for c in report["classes"].values()) == 150
        assert report["overall"]["queries"] == 150

    def test_dense_cube_predictions_are_exact(self, report):
        """On a dense cube the linear model is exact: predicted rows ==
        rows SQLite counted, so the rank correlation is perfect."""
        assert report["overall"]["exact_rows"] == 150
        for klass in ("index-prefix", "view-scan"):
            if klass in report["classes"]:
                stats = report["classes"][klass]
                assert stats["exact_rows"] == stats["queries"]
                assert stats["spearman_rows"] == pytest.approx(1.0)

    def test_index_class_uses_sqlite_indexes(self, report):
        if "index-prefix" in report["classes"]:
            assert report["classes"]["index-prefix"]["sqlite_index_plans"] > 0

    def test_format_report_renders_table(self, report):
        text = format_report(report)
        assert "validate-cost: 150 queries, 0 answer mismatches" in text
        assert "overall" in text
        assert "ρ(rows)" in text and "ρ(wall)" in text
        for klass in report["classes"]:
            assert klass in text
