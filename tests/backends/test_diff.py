"""The ``python -m repro.backends.diff`` harness itself."""

import json

import numpy as np

from repro.backends.diff import main, random_fact, random_schema, run_diff


class TestRandomInputs:
    def test_random_schema_shape(self):
        rng = np.random.default_rng(0)
        schema = random_schema(4, rng)
        assert schema.names == ("a", "b", "c", "d")
        assert all(2 <= schema.cardinality(n) <= 7 for n in schema.names)

    def test_random_fact_is_sparse_and_integral(self):
        rng = np.random.default_rng(0)
        schema = random_schema(4, rng)
        fact = random_fact(schema, rng, density=0.5)
        assert fact.n_rows == max(1, int(0.5 * schema.dense_cells))
        assert np.all(fact.measures == np.floor(fact.measures))


class TestRunDiff:
    def test_zero_mismatches_and_reload(self):
        report = run_diff(dims=(3,), queries=60, seed=1)
        total = report["total"]
        assert total["mismatches"] == 0
        assert report["reload_failures"] == 0
        run = report["runs"][0]
        assert run["mirror_reloaded_after_delta"] is True
        assert total["queries"] == total["prefix"] + total["scan"] + total["raw"]
        assert total["raw"] > 0  # forced raw legs exercised the fallback

    def test_deterministic_for_a_seed(self):
        def stripped(report):
            for run in report["runs"]:
                run.pop("seconds")
            return report

        first = stripped(run_diff(dims=(3,), queries=30, seed=5))
        second = stripped(run_diff(dims=(3,), queries=30, seed=5))
        assert first == second

    def test_different_seeds_differ(self):
        one = run_diff(dims=(3,), queries=30, seed=1)
        two = run_diff(dims=(3,), queries=30, seed=2)
        assert (
            one["runs"][0]["cardinalities"] != two["runs"][0]["cardinalities"]
            or one["runs"][0]["fact_rows"] != two["runs"][0]["fact_rows"]
            or one["runs"][0]["selection"] != two["runs"][0]["selection"]
        )


class TestMain:
    def test_exit_zero_and_report_file(self, tmp_path, capsys):
        out = tmp_path / "diff.json"
        rc = main(
            ["--dims", "3", "--queries", "40", "--seed", "3", "--output", str(out)]
        )
        assert rc == 0
        printed = capsys.readouterr().out
        assert "d=3:" in printed
        assert "total:" in printed and "0 mismatches" in printed
        report = json.loads(out.read_text())
        assert report["dims"] == [3]
        assert report["total"]["mismatches"] == 0
