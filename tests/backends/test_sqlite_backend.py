"""SqliteBackend: mirror fidelity, differential identity, invalidation.

The headline differential assertion: for every slice-query pattern of
the dense d=3..5 serving fixtures, the row engine and the SQLite mirror
return *identical* group dictionaries and identical rows-processed
accounting — on the routed plan and on the raw fallback alike.
"""

import numpy as np
import pytest

from repro.backends import BackendError, SqliteBackend
from repro.backends.sqlite import FACT_TABLE, index_name, view_table_name
from repro.core.costmodel import LinearCostModel
from repro.core.index import Index
from repro.core.query import SliceQuery, enumerate_slice_queries
from repro.core.view import View
from repro.cube.query_log import LogEntry
from repro.cube.schema import CubeSchema, Dimension
from repro.engine.catalog import Catalog
from repro.engine.executor import Executor
from repro.engine.pipeline import materialize_selection
from repro.engine.maintenance import apply_delta
from repro.engine.table import FactTable
from repro.serve.batch import execute_raw, raw_plan

from .conftest import build_bundle


def all_pattern_entries(schema, per_pattern=2, rng=0):
    """Concrete entries covering every slice-query pattern."""
    generator = np.random.default_rng(rng)
    entries = []
    for query in enumerate_slice_queries(schema.names):
        for _ in range(per_pattern):
            values = tuple(
                sorted(
                    (attr, int(generator.integers(0, schema.cardinality(attr))))
                    for attr in query.selection
                )
            )
            entries.append(LogEntry(query=query, values=values))
    return entries


class TestNaming:
    def test_view_table_name(self):
        assert view_table_name(("p", "s")) == "view_p_s"
        assert view_table_name(()) == "view_total"

    def test_index_name(self):
        idx = Index(View.of("p", "s"), ("s", "p"))
        assert index_name(idx, "view_p_s") == "idx_view_p_s__s_p"


class TestMirror:
    def test_ddl_mirrors_catalog(self, dense4):
        ddl = dense4.backend.ddl()
        tables = [s for s in ddl if s.startswith("CREATE TABLE")]
        indexes = [s for s in ddl if s.startswith("CREATE INDEX")]
        assert any(f"CREATE TABLE {FACT_TABLE} " in s for s in tables)
        # one table per materialized view, one CREATE INDEX per index
        assert len(tables) == 1 + len(list(dense4.catalog.views()))
        assert len(indexes) == len(list(dense4.catalog.indexes()))
        for index in dense4.catalog.indexes():
            table = view_table_name(dense4.catalog.view_table(index.view).attrs)
            assert any(index_name(index, table) in s for s in indexes)

    def test_rejects_non_identifier_column(self):
        schema = CubeSchema(
            [Dimension("a", 3), Dimension("b", 3)], measure="two words"
        )
        fact = FactTable(
            schema,
            {"a": np.array([0, 1]), "b": np.array([1, 2])},
            np.array([1.0, 2.0]),
        )
        with pytest.raises(BackendError, match="not a SQL identifier"):
            SqliteBackend(Catalog(fact))

    def test_context_manager_closes(self, dense3):
        with SqliteBackend(dense3.catalog, cost_model=dense3.model) as backend:
            assert backend.ddl()
        import sqlite3

        with pytest.raises(sqlite3.ProgrammingError):
            backend.ddl()


class TestExecuteErrors:
    def test_requires_loaded_catalog(self):
        backend = SqliteBackend()
        query = SliceQuery(groupby=["a"])
        with pytest.raises(BackendError, match="no catalog loaded"):
            backend.execute(query, {})
        with pytest.raises(BackendError, match="no catalog loaded"):
            backend.execute_raw(query, {})

    def test_missing_selection_values(self, dense4):
        query = SliceQuery(groupby=["p"], selection=["s"])
        with pytest.raises(ValueError, match="missing selection values"):
            dense4.backend.execute(query, {})
        with pytest.raises(ValueError, match="missing selection values"):
            dense4.backend.execute_raw(query, {})

    def test_plan_view_cannot_answer(self, dense4):
        views = sorted(dense4.catalog.views(), key=lambda v: len(v.attrs))
        small = views[0]
        missing = sorted(set(dense4.fact.schema.names) - small.attrs)[0]
        query = SliceQuery(groupby=[missing])
        with pytest.raises(ValueError, match="cannot answer"):
            dense4.backend.execute(query, {}, plan=(small, None))

    def test_plan_index_not_on_view(self, dense4):
        top = max(dense4.catalog.views(), key=lambda v: len(v.attrs))
        other = View.of(*sorted(top.attrs)[:2])
        stray = Index(other, tuple(sorted(other.attrs)))
        query = SliceQuery(groupby=sorted(top.attrs))
        with pytest.raises(ValueError, match="not on view"):
            dense4.backend.execute(query, {}, plan=(top, stray))


class TestDifferentialIdentity:
    """Engine vs SQLite, byte-identical, every pattern, d=3..5."""

    @pytest.mark.parametrize("bundle", [3, 4, 5], indirect=True)
    def test_routed_plans_identical(self, bundle):
        for entry in all_pattern_entries(bundle.fact.schema):
            bound = dict(entry.bound_values)
            try:
                plan = bundle.executor.choose_plan(entry.query)
            except LookupError:
                continue
            engine = bundle.executor.execute(entry.query, bound, plan=plan)
            mirror = bundle.backend.execute(entry.query, bound, plan=plan)
            assert mirror.groups == engine.groups, str(entry.query)
            assert mirror.rows_processed == engine.rows_processed, str(entry.query)
            assert mirror.view == plan[0] and mirror.index == plan[1]

    @pytest.mark.parametrize("bundle", [3, 4, 5], indirect=True)
    def test_raw_fallback_identical(self, bundle):
        for entry in all_pattern_entries(bundle.fact.schema, per_pattern=1):
            bound = dict(entry.bound_values)
            engine = execute_raw(
                bundle.fact, entry, raw_plan(bundle.model, entry.query)
            )
            mirror = bundle.backend.execute_raw(entry.query, bound)
            assert mirror.groups == engine.groups, str(entry.query)
            assert mirror.rows_processed == engine.actual_rows == bundle.fact.n_rows
            assert mirror.view is None and mirror.index is None

    def test_unplanned_execute_routes_like_engine(self, dense4):
        """Without an explicit plan, the internal planner picks the
        engine's choice, so results still match."""
        for entry in all_pattern_entries(dense4.fact.schema, per_pattern=1):
            bound = dict(entry.bound_values)
            try:
                plan = dense4.executor.choose_plan(entry.query)
            except LookupError:
                with pytest.raises(LookupError):
                    dense4.backend.execute(entry.query, bound)
                continue
            engine = dense4.executor.execute(entry.query, bound, plan=plan)
            mirror = dense4.backend.execute(entry.query, bound)
            assert mirror.groups == engine.groups
            assert mirror.rows_processed == engine.rows_processed


class TestSqlitePlans:
    def test_prefix_plan_uses_created_index(self, dense4):
        """On a bound index prefix SQLite's own planner picks the
        mirrored CREATE INDEX — the backend reports which."""
        hits = 0
        for entry in all_pattern_entries(dense4.fact.schema, per_pattern=1):
            try:
                view, index = dense4.executor.choose_plan(entry.query)
            except LookupError:
                continue
            if index is None or not index.usable_prefix(entry.query):
                continue
            result = dense4.backend.execute(
                entry.query, dict(entry.bound_values), plan=(view, index)
            )
            assert result.explain, "EXPLAIN QUERY PLAN returned nothing"
            if result.used_index:
                assert result.used_index.startswith("idx_view_")
                hits += 1
        assert hits > 0, "no prefix plan ever used a mirrored index"

    def test_result_carries_sql_and_timing(self, dense3):
        entry = all_pattern_entries(dense3.fact.schema, per_pattern=1)[-1]
        plan = dense3.executor.choose_plan(entry.query)
        result = dense3.backend.execute(
            entry.query, dict(entry.bound_values), plan=plan
        )
        assert result.sql.startswith("SELECT ")
        assert result.wall_s >= 0.0
        assert result.n_groups == len(result.groups)


class EmptySliceSetup:
    """A sparse cube where ``a`` never takes its top value (3)."""

    def build(self):
        schema = CubeSchema(
            [Dimension("a", 4), Dimension("b", 4), Dimension("c", 3)]
        )
        rng = np.random.default_rng(7)
        n = 40
        columns = {
            "a": rng.integers(0, 2, size=n),  # a in {0, 1}: a=3 slices empty
            "b": rng.integers(0, 4, size=n),
            "c": rng.integers(0, 3, size=n),
        }
        measures = rng.integers(0, 100, size=n).astype(np.float64)
        fact = FactTable(schema, columns, measures)
        catalog = Catalog(fact)
        ab = View.of("a", "b")
        materialize_selection(
            catalog,
            [View.of("a", "b", "c"), ab],
            [Index(ab, ("a", "b"))],
        )
        model = LinearCostModel.from_fact(fact)
        return fact, model, catalog, Executor(catalog, model)


class TestEmptyResultSlices(EmptySliceSetup):
    def test_grouped_empty_slice(self):
        fact, model, catalog, executor = self.build()
        with SqliteBackend(catalog, cost_model=model) as backend:
            query = SliceQuery(groupby=["b"], selection=["a"])
            plan = executor.choose_plan(query)
            engine = executor.execute(query, {"a": 3}, plan=plan)
            mirror = backend.execute(query, {"a": 3}, plan=plan)
            assert engine.groups == mirror.groups == {}
            assert engine.rows_processed == mirror.rows_processed

    def test_ungrouped_empty_slice_is_no_groups(self):
        """SUM over zero rows is NULL in SQLite; the backend maps it to
        the engine's 'no groups' answer, not ``{(): 0.0}``."""
        fact, model, catalog, executor = self.build()
        with SqliteBackend(catalog, cost_model=model) as backend:
            query = SliceQuery(selection=["a", "b"])
            plan = executor.choose_plan(query)
            bound = {"a": 3, "b": 0}
            engine = executor.execute(query, bound, plan=plan)
            mirror = backend.execute(query, bound, plan=plan)
            assert engine.groups == mirror.groups == {}

    def test_raw_empty_slice(self):
        fact, model, catalog, executor = self.build()
        with SqliteBackend(catalog, cost_model=model) as backend:
            query = SliceQuery(groupby=["c"], selection=["a"])
            entry = LogEntry(query=query, values=(("a", 3),))
            engine = execute_raw(fact, entry, raw_plan(model, query))
            mirror = backend.execute_raw(query, {"a": 3})
            assert engine.groups == mirror.groups == {}
            assert mirror.rows_processed == fact.n_rows

    def test_nonempty_slices_still_match(self):
        fact, model, catalog, executor = self.build()
        with SqliteBackend(catalog, cost_model=model) as backend:
            for query in enumerate_slice_queries(fact.schema.names):
                bound = {a: 0 for a in query.selection}
                try:
                    plan = executor.choose_plan(query)
                except LookupError:
                    engine_groups = execute_raw(
                        fact,
                        LogEntry(query=query, values=tuple(sorted(bound.items()))),
                        raw_plan(model, query),
                    ).groups
                    mirror_groups = backend.execute_raw(query, bound).groups
                else:
                    engine_groups = executor.execute(query, bound, plan=plan).groups
                    mirror_groups = backend.execute(query, bound, plan=plan).groups
                assert engine_groups == mirror_groups, str(query)


class TestSyncInvalidation:
    def test_sync_is_noop_on_same_token(self):
        bundle = build_bundle(3)
        assert bundle.backend.reloads == 1
        assert bundle.backend.sync(bundle.catalog) is False
        assert bundle.backend.reloads == 1

    def test_generation_bump_reloads(self):
        bundle = build_bundle(3)
        assert bundle.backend.sync(bundle.catalog, generation=1) is True
        assert bundle.backend.reloads == 2
        assert bundle.backend.sync(bundle.catalog, generation=1) is False

    def test_apply_delta_invalidates_and_refreshes(self):
        """A fact delta bumps catalog.version; the next sync must
        rebuild the mirror and post-delta answers must match a fresh
        engine executor byte-for-byte."""
        bundle = build_bundle(3)
        schema = bundle.fact.schema
        query = SliceQuery(groupby=[schema.names[0]])
        stale = bundle.backend.execute(query, {}).groups

        rng = np.random.default_rng(11)
        n_delta = 25
        delta_columns = {
            name: rng.integers(0, schema.cardinality(name), size=n_delta)
            for name in schema.names
        }
        delta_measures = rng.integers(1, 1000, size=n_delta).astype(np.float64)
        apply_delta(bundle.catalog, delta_columns, delta_measures)

        # before sync the mirror still answers from pre-delta tables
        assert bundle.backend.execute(query, {}).groups == stale
        assert bundle.backend.sync(bundle.catalog) is True
        assert bundle.backend.reloads == 2

        executor = Executor(bundle.catalog, bundle.model)
        for entry in all_pattern_entries(schema, per_pattern=1):
            bound = dict(entry.bound_values)
            try:
                plan = executor.choose_plan(entry.query)
            except LookupError:
                continue
            engine = executor.execute(entry.query, bound, plan=plan)
            mirror = bundle.backend.execute(entry.query, bound, plan=plan)
            assert mirror.groups == engine.groups, str(entry.query)
            assert mirror.rows_processed == engine.rows_processed
        assert bundle.backend.execute(query, {}).groups != stale
