"""Shared fixtures for the SQLite backend differential suite.

Dense TPC-D serving facts with *integral* measures: dense so the linear
cost model is exact (predicted rows == rows behind any plan), integral
so group sums are order-invariant and the engine-vs-SQLite comparison
can demand byte identity instead of a float tolerance.
"""

from __future__ import annotations

import pytest

from repro.backends import SqliteBackend
from repro.backends.diff import advise_selection
from repro.core.costmodel import LinearCostModel
from repro.datasets.tpcd import tpcd_serving_fact
from repro.engine.catalog import Catalog
from repro.engine.executor import Executor
from repro.engine.pipeline import materialize_selection
from repro.serve.structures import resolve_selection


class Bundle:
    """One mirrored serving setup: fact, model, catalog, both engines."""

    def __init__(self, n_dims: int):
        self.fact = tpcd_serving_fact(n_dims, integral_measures=True)
        self.model = LinearCostModel.from_fact(self.fact)
        self.selection = advise_selection(self.fact, self.model)
        views, indexes = resolve_selection(self.selection)
        self.catalog = Catalog(self.fact)
        materialize_selection(self.catalog, views, indexes)
        self.executor = Executor(self.catalog, self.model)
        self.backend = SqliteBackend(self.catalog, cost_model=self.model)


def build_bundle(n_dims: int) -> Bundle:
    """A fresh (mutable) bundle — use for delta/reload tests."""
    return Bundle(n_dims)


@pytest.fixture(scope="session")
def dense3():
    return Bundle(3)


@pytest.fixture(scope="session")
def dense4():
    return Bundle(4)


@pytest.fixture(scope="session")
def dense5():
    return Bundle(5)


@pytest.fixture
def bundle(request, dense3, dense4, dense5):
    """Indirect fixture: parametrize with dims 3/4/5."""
    return {3: dense3, 4: dense4, 5: dense5}[request.param]
