"""Tests for the SQL front-end."""

import random

import pytest

from repro.core.query import SliceQuery
from repro.cube.generator import generate_fact_table
from repro.cube.schema import CubeSchema, Dimension
from repro.sql import ParsedQuery, SqlError, parse_query, run_sql, to_sql


@pytest.fixture
def schema():
    return CubeSchema(
        [Dimension("p", 20), Dimension("s", 10), Dimension("c", 8)],
        measure="sales",
    )


class TestParsing:
    def test_paper_example_query(self):
        """Section 3.1's SQL form of the pc subcube."""
        parsed = parse_query(
            "SELECT Part, Customer, SUM(sales) AS TotalSales FROM R "
            "GROUP BY Part, Customer;"
        )
        assert parsed.query == SliceQuery(groupby=["Part", "Customer"])
        assert parsed.agg == "sum"

    def test_slice_query_with_where(self):
        parsed = parse_query(
            "SELECT c, SUM(sales) FROM cube WHERE p = 3 AND s = 4 GROUP BY c"
        )
        assert parsed.query == SliceQuery(groupby=["c"], selection=["p", "s"])
        assert parsed.values == {"p": 3, "s": 4}
        assert parsed.is_executable

    def test_grand_total(self):
        parsed = parse_query("SELECT SUM(sales) FROM cube")
        assert parsed.query == SliceQuery()
        assert parsed.query.is_subcube_query

    def test_pure_selection_query(self):
        parsed = parse_query("SELECT SUM(sales) FROM cube WHERE p = 1")
        assert parsed.query == SliceQuery(selection=["p"])

    def test_case_insensitive_keywords(self):
        parsed = parse_query("select p, sum(sales) from cube group by p")
        assert parsed.query == SliceQuery(groupby=["p"])

    def test_count_star(self):
        parsed = parse_query("SELECT COUNT(*) FROM cube")
        assert parsed.agg == "count"
        assert parsed.measure == "*"

    def test_table_name_captured(self):
        assert parse_query("SELECT SUM(x) FROM warehouse.sales").table == (
            "warehouse.sales"
        )

    def test_semicolon_optional(self):
        a = parse_query("SELECT SUM(sales) FROM cube;")
        b = parse_query("SELECT SUM(sales) FROM cube")
        assert a.query == b.query


class TestErrors:
    def test_not_a_select(self):
        with pytest.raises(SqlError, match="expected"):
            parse_query("DELETE FROM cube")

    def test_missing_aggregate(self):
        with pytest.raises(SqlError, match="aggregate"):
            parse_query("SELECT p FROM cube GROUP BY p")

    def test_two_aggregates(self):
        with pytest.raises(SqlError, match="one aggregate"):
            parse_query("SELECT SUM(a), SUM(b) FROM cube")

    def test_unsupported_aggregate(self):
        with pytest.raises(SqlError, match="unsupported aggregate"):
            parse_query("SELECT AVG(sales) FROM cube")

    def test_groupby_select_mismatch(self):
        with pytest.raises(SqlError, match="must match"):
            parse_query("SELECT p, SUM(sales) FROM cube GROUP BY s")

    def test_missing_groupby_for_selected_attr(self):
        with pytest.raises(SqlError, match="must match"):
            parse_query("SELECT p, SUM(sales) FROM cube")

    def test_non_equality_predicate(self):
        with pytest.raises(SqlError, match="predicate"):
            parse_query("SELECT SUM(sales) FROM cube WHERE p > 3")

    def test_attr_constrained_twice(self):
        with pytest.raises(SqlError, match="twice"):
            parse_query("SELECT SUM(sales) FROM cube WHERE p = 1 AND p = 2")

    def test_attr_in_both_clauses(self):
        with pytest.raises(SqlError, match="both"):
            parse_query(
                "SELECT p, SUM(sales) FROM cube WHERE p = 1 GROUP BY p"
            )

    def test_schema_validation_unknown_attr(self, schema):
        with pytest.raises(SqlError, match="unknown attributes"):
            parse_query(
                "SELECT z, SUM(sales) FROM cube GROUP BY z", schema=schema
            )

    def test_schema_validation_unknown_measure(self, schema):
        with pytest.raises(SqlError, match="unknown measure"):
            parse_query("SELECT SUM(profit) FROM cube", schema=schema)

    def test_unbalanced_parentheses(self):
        with pytest.raises(SqlError, match="parentheses"):
            parse_query("SELECT SUM(sales)) FROM cube")

    def test_duplicate_select_attr(self):
        with pytest.raises(SqlError, match="duplicate"):
            parse_query("SELECT p, p, SUM(sales) FROM cube GROUP BY p")

    def test_duplicate_groupby_attr(self):
        with pytest.raises(SqlError, match="duplicate"):
            parse_query("SELECT p, SUM(sales) FROM cube GROUP BY p, p")

    def test_duplicate_groupby_and_select_attr(self):
        # both lists repeat the attribute, so the set comparison the
        # validator used to rely on would have let this through silently
        with pytest.raises(SqlError, match="duplicate"):
            parse_query("SELECT p, s, p, SUM(sales) FROM cube GROUP BY p, s, p")


class TestEmit:
    def test_paper_example(self):
        query = SliceQuery(groupby=["p"], selection=["s"])
        assert to_sql(query, {"s": 17}) == (
            "SELECT p, SUM(sales) FROM cube WHERE s = 17 GROUP BY p"
        )

    def test_aggregate_only(self):
        assert to_sql(SliceQuery()) == "SELECT SUM(sales) FROM cube"

    def test_no_where(self):
        assert to_sql(SliceQuery(groupby=["s", "p"])) == (
            "SELECT p, s, SUM(sales) FROM cube GROUP BY p, s"
        )

    def test_custom_agg_measure_table(self):
        text = to_sql(
            SliceQuery(groupby=["c"]), agg="max", measure="units", table="f"
        )
        assert text == "SELECT c, MAX(units) FROM f GROUP BY c"

    def test_deterministic_attribute_order(self):
        query = SliceQuery(groupby=["c", "p"], selection=["s", "d"])
        values = {"s": 1, "d": 2}
        assert to_sql(query, values) == (
            "SELECT c, p, SUM(sales) FROM cube WHERE d = 2 AND s = 1 "
            "GROUP BY c, p"
        )

    def test_missing_binding_rejected(self):
        with pytest.raises(SqlError, match="no bound value"):
            to_sql(SliceQuery(selection=["p", "s"]), {"p": 1})

    def test_extraneous_binding_rejected(self):
        with pytest.raises(SqlError, match="not selection attributes"):
            to_sql(SliceQuery(selection=["p"]), {"p": 1, "s": 2})

    def test_bad_aggregate_rejected(self):
        with pytest.raises(SqlError, match="unsupported aggregate"):
            to_sql(SliceQuery(), agg="avg")

    def test_bad_identifier_rejected(self):
        with pytest.raises(SqlError, match="identifier"):
            to_sql(SliceQuery(groupby=["two words"]))

    def test_parsed_query_method_round_trips(self):
        text = "SELECT c, SUM(sales) FROM cube WHERE p = 3 AND s = 4 GROUP BY c"
        parsed = parse_query(text)
        assert parse_query(parsed.to_sql()) == parsed


class TestRoundTrip:
    """Property-style emit → parse → equal over seeded random queries."""

    ATTRS = ("p", "s", "c", "d", "e")

    def _random_query(self, rng):
        names = list(self.ATTRS)
        rng.shuffle(names)
        n_group = rng.randint(0, 3)
        n_select = rng.randint(0, len(names) - n_group)
        groupby = names[:n_group]
        selection = names[n_group : n_group + n_select]
        values = {attr: rng.randint(-5, 99) for attr in selection}
        return SliceQuery(groupby=groupby, selection=selection), values

    def test_random_queries_round_trip(self):
        rng = random.Random(20260808)
        for trial in range(200):
            query, values = self._random_query(rng)
            agg = rng.choice(["sum", "count", "min", "max"])
            text = to_sql(query, values, agg=agg)
            parsed = parse_query(text)
            assert parsed.query == query, text
            assert parsed.values == values, text
            assert parsed.agg == agg, text
            assert parsed.to_sql() == text, text

    def test_aggregate_only_round_trips(self):
        parsed = parse_query(to_sql(SliceQuery()))
        assert parsed.query == SliceQuery()
        assert parsed.values == {}

    def test_no_where_round_trips(self):
        query = SliceQuery(groupby=["p", "c"])
        parsed = parse_query(to_sql(query))
        assert parsed.query == query
        assert parsed.values == {}

    def test_selection_only_round_trips(self):
        query = SliceQuery(selection=["p", "s"])
        parsed = parse_query(to_sql(query, {"p": 0, "s": -3}))
        assert parsed.query == query
        assert parsed.values == {"p": 0, "s": -3}


class TestExecution:
    @pytest.fixture
    def executor(self, schema):
        from repro.core.view import View
        from repro.engine.catalog import Catalog
        from repro.engine.executor import Executor

        fact = generate_fact_table(schema, 400, rng=0)
        catalog = Catalog(fact)
        for attrs in ((), ("p",), ("p", "s"), ("p", "s", "c")):
            catalog.materialize(View(attrs))
        return Executor(catalog)

    def test_run_sql_end_to_end(self, executor, schema):
        fact = executor.catalog.fact
        p_value = int(fact.column("p")[0])
        result = run_sql(
            executor, f"SELECT s, SUM(sales) FROM cube WHERE p = {p_value} GROUP BY s"
        )
        assert result.rows_processed > 0
        # verify against brute force on the raw data
        import numpy as np

        mask = fact.column("p") == p_value
        expected_total = float(fact.measures[mask].sum())
        assert sum(result.groups.values()) == pytest.approx(expected_total)

    def test_run_sql_grand_total(self, executor):
        result = run_sql(executor, "SELECT SUM(sales) FROM cube")
        assert result.rows_processed == 1
        total = float(executor.catalog.fact.measures.sum())
        assert result.groups[()] == pytest.approx(total)

    def test_run_sql_validates_against_engine_schema(self, executor):
        with pytest.raises(SqlError, match="unknown attributes"):
            run_sql(executor, "SELECT z, SUM(sales) FROM cube GROUP BY z")
