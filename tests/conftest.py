"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.core.lattice import CubeLattice
from repro.core.qvgraph import QueryViewGraph
from repro.core.view import View
from repro.cube.schema import CubeSchema, Dimension
from repro.datasets.paper_figure2 import figure2_graph
from repro.datasets.tpcd import tpcd_graph, tpcd_lattice


@pytest.fixture(scope="session")
def tpcd_lat() -> CubeLattice:
    return tpcd_lattice()


@pytest.fixture(scope="session")
def tpcd_g() -> QueryViewGraph:
    return tpcd_graph()


@pytest.fixture(scope="session")
def fig2_g() -> QueryViewGraph:
    return figure2_graph()


@pytest.fixture
def small_schema() -> CubeSchema:
    return CubeSchema([Dimension("a", 10), Dimension("b", 20), Dimension("c", 5)])


@pytest.fixture
def small_lattice(small_schema) -> CubeLattice:
    sizes = {
        View.of("a", "b", "c"): 400,
        View.of("a", "b"): 180,
        View.of("a", "c"): 50,
        View.of("b", "c"): 95,
        View.of("a"): 10,
        View.of("b"): 20,
        View.of("c"): 5,
        View.none(): 1,
    }
    return CubeLattice(small_schema, sizes)


# --------------------------------------------------------------- hypothesis


def random_unit_graph(draw) -> QueryViewGraph:
    """Hypothesis builder: a random unit-space query-view graph.

    Small enough for exhaustive optimal cross-checks: at most 4 views with
    at most 3 indexes each, at most 10 queries.
    """
    n_views = draw(st.integers(min_value=1, max_value=4))
    graph = QueryViewGraph()
    structures = []
    for v in range(n_views):
        view_name = f"V{v}"
        graph.add_view(view_name, space=1.0)
        structures.append(view_name)
        n_idx = draw(st.integers(min_value=0, max_value=3))
        for i in range(n_idx):
            idx_name = f"I{v},{i}"
            graph.add_index(view_name, idx_name, space=1.0)
            structures.append(idx_name)
    n_queries = draw(st.integers(min_value=1, max_value=10))
    for q in range(n_queries):
        default = draw(st.integers(min_value=1, max_value=100))
        graph.add_query(f"q{q}", default_cost=float(default))
        # each query gets edges to a random subset of structures
        for s in structures:
            if draw(st.booleans()):
                cost = draw(st.integers(min_value=0, max_value=default))
                graph.add_edge(f"q{q}", s, float(cost))
    return graph


@st.composite
def unit_graph_strategy(draw):
    return random_unit_graph(draw)
