"""ReplicaFleet: routing, failover, health checks, typed failure modes.

The contract under test: a query either returns a correct answer or a
typed :class:`ServingError` — never a hang, never a wrong answer — and
replica/fleet availability is accounted exactly.
"""

import threading
import time

import pytest

from repro.cube.query_log import generate_query_log
from repro.serve import (
    NoHealthyReplica,
    QueryServer,
    ReplicaFleet,
    RetriesExhausted,
    RetryPolicy,
    ServingError,
    validate_telemetry,
)
from repro.serve.fleet import HealthChecker

from tests.serve.test_server import advise_selection


class Boom(RuntimeError):
    pass


@pytest.fixture(scope="module")
def selection4(serve_model4):
    return advise_selection(serve_model4.lattice)


@pytest.fixture(scope="module")
def log4(serve_schema4):
    return generate_query_log(serve_schema4, 120, rng=0)


def make_fleet(fact, model, selection, **kwargs):
    kwargs.setdefault("replicas", 2)
    kwargs.setdefault("cost_model", model)
    kwargs.setdefault("retry", RetryPolicy(max_attempts=3, base_delay=0.001))
    return ReplicaFleet(fact, selection, **kwargs)


class TestRouting:
    def test_answers_match_single_server(
        self, serve_fact4, serve_model4, selection4, log4
    ):
        golden = QueryServer(
            serve_fact4, selection4, cost_model=serve_model4
        ).serve_batch(log4)
        fleet = make_fleet(serve_fact4, serve_model4, selection4)
        try:
            results = fleet.serve_many(log4)
        finally:
            fleet.close()
        assert len(results) == len(log4)
        for result, reference in zip(results, golden):
            assert not isinstance(result, ServingError)
            assert result.groups == reference.groups
            assert result.structure == reference.structure

    def test_round_robin_spreads_load(
        self, serve_fact4, serve_model4, selection4, log4
    ):
        fleet = make_fleet(serve_fact4, serve_model4, selection4, replicas=3)
        try:
            fleet.serve_many(log4)
        finally:
            fleet.close()
        served = [
            replica.server.telemetry.snapshot()["queries"]
            for replica in fleet.replicas
        ]
        assert sum(served) == len(log4)
        assert all(count > 0 for count in served), served

    def test_merged_telemetry_covers_fleet(
        self, serve_fact4, serve_model4, selection4, log4
    ):
        fleet = make_fleet(serve_fact4, serve_model4, selection4)
        fleet.serve_many(log4)
        fleet.close()
        document = validate_telemetry(fleet.merged_telemetry().snapshot())
        assert document["queries"] == len(log4)
        assert document["fallbacks"] == 0

    def test_per_replica_selections(self, serve_fact4, serve_model4, selection4):
        fleet = ReplicaFleet(
            serve_fact4,
            [selection4, list(selection4)[:3]],
            cost_model=serve_model4,
        )
        try:
            assert len(fleet.replicas) == 2
            assert list(fleet.replicas[1].server.selection) == list(
                selection4
            )[:3]
        finally:
            fleet.close()

    def test_selection_count_mismatch_rejected(
        self, serve_fact4, serve_model4, selection4
    ):
        with pytest.raises(ValueError, match="disagrees"):
            ReplicaFleet(
                serve_fact4,
                [selection4, selection4],
                replicas=3,
                cost_model=serve_model4,
            )


class TestFailover:
    def test_killed_replica_routes_around(
        self, serve_fact4, serve_model4, selection4, log4
    ):
        fleet = make_fleet(serve_fact4, serve_model4, selection4)
        try:
            assert fleet.replicas[0].kill()
            assert not fleet.replicas[0].kill()  # idempotent
            results = fleet.serve_many(log4)
            assert not any(isinstance(r, ServingError) for r in results)
        finally:
            fleet.close()
        # worker collectors fold into the server's on front-end close
        survivor = fleet.replicas[1].server.telemetry.snapshot()
        assert survivor["queries"] == len(log4)
        assert fleet.replicas[0].downtime_seconds > 0.0

    def test_all_dead_raises_no_healthy_replica(
        self, serve_fact4, serve_model4, selection4, log4
    ):
        fleet = make_fleet(serve_fact4, serve_model4, selection4)
        try:
            for replica in fleet.replicas:
                replica.kill()
            with pytest.raises(NoHealthyReplica):
                fleet.serve(log4[0])
            assert fleet.unavailable_seconds > 0.0
        finally:
            fleet.close()

    def test_no_healthy_replica_carries_per_replica_strikes(
        self, serve_fact4, serve_model4, selection4, log4
    ):
        """Regression: the raise must say *why* every replica was out of
        rotation, not just that it was."""
        fleet = make_fleet(serve_fact4, serve_model4, selection4)
        try:
            for replica in fleet.replicas:
                replica.kill()
            with pytest.raises(NoHealthyReplica) as excinfo:
                fleet.serve(log4[0])
            strikes = excinfo.value.strikes
            assert set(strikes) == {r.replica_id for r in fleet.replicas}
            for state in strikes.values():
                assert state["dead"] is True
                assert state["healthy"] is False
                assert state["last_reason"] == "killed"
                assert state["strikes"] >= 0
        finally:
            fleet.close()

    def test_no_healthy_replica_default_strikes_empty(self):
        assert NoHealthyReplica("nothing routable").strikes == {}

    def test_crashing_replica_strikes_out_and_queries_survive(
        self, serve_fact4, serve_model4, selection4, log4
    ):
        fleet = make_fleet(
            serve_fact4,
            serve_model4,
            selection4,
            workers=1,
            max_worker_restarts=0,
            strike_limit=1,
        )

        def crash(slot):
            raise Boom("worker down")

        fleet.replicas[0].frontend.crash_hook = crash
        try:
            results = fleet.serve_many(log4)
        finally:
            fleet.close()
        assert not any(isinstance(r, ServingError) for r in results)
        resilience = fleet.merged_telemetry().resilience_stats()
        assert resilience["worker_crashes"] >= 1
        assert resilience["retries"] >= 1

    def test_exhausted_retries_raise_typed(
        self, serve_fact4, serve_model4, selection4, log4
    ):
        fleet = make_fleet(
            serve_fact4,
            serve_model4,
            selection4,
            workers=1,
            max_worker_restarts=0,
            strike_limit=1000,  # passive strikes never mark it unhealthy
            retry=RetryPolicy(max_attempts=2, base_delay=0.001),
        )

        def crash(slot):
            raise Boom("always down")

        for replica in fleet.replicas:
            replica.frontend.crash_hook = crash
        try:
            with pytest.raises((RetriesExhausted, NoHealthyReplica)) as info:
                fleet.serve(log4[0])
            if isinstance(info.value, RetriesExhausted):
                assert info.value.attempts == 2
        finally:
            fleet.close()


class TestHealthChecker:
    def test_probe_recovers_struck_replica(
        self, serve_fact4, serve_model4, selection4
    ):
        fleet = make_fleet(serve_fact4, serve_model4, selection4, strike_limit=1)
        try:
            replica = fleet.replicas[0]
            assert replica.record_strike("synthetic", fleet.strike_limit)
            assert not replica.available
            sweep = fleet.checker.check_now()
            assert sweep[replica.replica_id] is True
            assert replica.available
            assert replica.downtime_seconds > 0.0
        finally:
            fleet.close()

    def test_dead_replica_fails_probe(
        self, serve_fact4, serve_model4, selection4
    ):
        fleet = make_fleet(serve_fact4, serve_model4, selection4)
        try:
            fleet.replicas[0].kill()
            sweep = fleet.checker.check_now()
            assert sweep[0] is False
            assert sweep[1] is True
            history = fleet.checker.probe_history(0)
            assert history[-1]["reason"] == "dead"
        finally:
            fleet.close()

    def test_slow_probe_strikes(self, serve_fact4, serve_model4, selection4):
        fleet = make_fleet(
            serve_fact4,
            serve_model4,
            selection4,
            strike_limit=1,
            probe_latency_threshold_us=0.0,  # everything is "slow"
        )
        try:
            sweep = fleet.checker.check_now()
            assert all(ok is False for ok in sweep.values())
            assert fleet.healthy_replicas() == []
            assert fleet.unavailable_seconds >= 0.0
            history = fleet.checker.probe_history(0)
            assert history[-1]["reason"] == "slow probe"
        finally:
            fleet.close()

    def test_probe_raise_strikes(self, serve_fact4, serve_model4, selection4):
        fleet = make_fleet(
            serve_fact4, serve_model4, selection4, strike_limit=1
        )

        def boom_batch(entries, telemetry=None):
            # a structure error would be rescued raw; only the serving
            # call itself raising reaches the checker's except path
            raise Boom("probe poisoned")

        fleet.replicas[0].server.serve_batch = boom_batch
        try:
            sweep = fleet.checker.check_now()
        finally:
            fleet.close()
        assert sweep[0] is False
        assert "probe raised" in fleet.checker.probe_history(0)[-1]["reason"]

    def test_background_checker_runs(
        self, serve_fact4, serve_model4, selection4
    ):
        fleet = make_fleet(
            serve_fact4, serve_model4, selection4, probe_interval=0.02
        )
        try:
            deadline = time.monotonic() + 5.0
            while fleet.checker.checks < 2 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert fleet.checker.checks >= 2
        finally:
            fleet.close()
        checks_at_close = fleet.checker.checks
        time.sleep(0.08)
        assert fleet.checker.checks == checks_at_close  # stopped with fleet

    def test_probes_stay_out_of_serving_telemetry(
        self, serve_fact4, serve_model4, selection4, log4
    ):
        fleet = make_fleet(serve_fact4, serve_model4, selection4)
        try:
            for _ in range(5):
                fleet.checker.check_now()
            fleet.serve_many(log4)
        finally:
            fleet.close()
        document = fleet.merged_telemetry().snapshot()
        assert document["queries"] == len(log4)


class TestUnavailabilityAccounting:
    def test_exact_zero_healthy_span(self, serve_fact4, serve_model4, selection4):
        clock = [100.0]
        fleet = make_fleet(
            serve_fact4,
            serve_model4,
            selection4,
            strike_limit=1,
            clock=lambda: clock[0],
        )
        try:
            fleet.replicas[0].record_strike("down", 1)
            fleet._health_event()
            assert fleet.unavailable_seconds == 0.0  # one replica left
            fleet.replicas[1].record_strike("down", 1)
            fleet._health_event()
            clock[0] = 107.5
            assert fleet.unavailable_seconds == 7.5
            assert fleet.replicas[0].record_probe_ok()
            fleet._health_event()
            clock[0] = 120.0
            assert fleet.unavailable_seconds == 7.5  # span closed exactly
        finally:
            fleet.close()

    def test_fleet_stats_shape(self, serve_fact4, serve_model4, selection4, log4):
        fleet = make_fleet(serve_fact4, serve_model4, selection4)
        try:
            fleet.serve_many(log4[:20])
            stats = fleet.stats()
        finally:
            fleet.close()
        assert stats["healthy"] == 2
        assert stats["routed"] == 20
        assert stats["exhausted"] == 0
        assert len(stats["replicas"]) == 2
        assert stats["replicas"][0]["frontend"]["live_workers"] >= 1
        assert stats["unavailable_seconds"] == 0.0
