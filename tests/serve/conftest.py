"""Shared serving fixtures: dense TPC-D-style cubes with exact models."""

from __future__ import annotations

import pytest

from repro.core.costmodel import LinearCostModel
from repro.datasets.tpcd import tpcd_serving_fact, tpcd_serving_schema


@pytest.fixture(scope="session")
def serve_schema4():
    return tpcd_serving_schema(4)


@pytest.fixture(scope="session")
def serve_fact4():
    return tpcd_serving_fact(4, rng=0)


@pytest.fixture(scope="session")
def serve_model4(serve_fact4):
    return LinearCostModel.from_fact(serve_fact4)


@pytest.fixture(scope="session")
def serve_schema5():
    return tpcd_serving_schema(5)


@pytest.fixture(scope="session")
def serve_fact5():
    return tpcd_serving_fact(5, rng=0)


@pytest.fixture(scope="session")
def serve_model5(serve_fact5):
    return LinearCostModel.from_fact(serve_fact5)
