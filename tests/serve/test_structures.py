"""Parsing selection labels back into views and indexes."""

import pytest

from repro.core.index import Index
from repro.core.view import View
from repro.serve import parse_structure, resolve_selection


class TestParseStructure:
    def test_char_view(self):
        assert parse_structure("psc") == View.of("p", "s", "c")

    def test_comma_view(self):
        assert parse_structure("part,customer") == View.of("part", "customer")

    def test_none_view(self):
        assert parse_structure("none") == View.none()

    def test_char_index(self):
        index = parse_structure("I_sp(ps)")
        assert isinstance(index, Index)
        assert index.view == View.of("p", "s")
        assert index.key == ("s", "p")

    def test_comma_index(self):
        index = parse_structure("I_part,customer(part,customer)")
        assert index.key == ("part", "customer")
        assert index.view == View.of("part", "customer")

    def test_round_trips_lattice_labels(self, serve_model4):
        """Every label the lattice emits parses back to its object."""
        from repro.core.index import enumerate_fat_indexes

        lattice = serve_model4.lattice
        for view in lattice.views():
            assert parse_structure(lattice.label(view)) == view
            for index in enumerate_fat_indexes(view):
                assert parse_structure(lattice.index_label(index)) == index

    def test_malformed_index_rejected(self):
        with pytest.raises(ValueError, match="malformed index label"):
            parse_structure("I_sp")

    def test_index_on_empty_view_rejected(self):
        with pytest.raises(ValueError, match="I_"):
            parse_structure("I_()")


class TestResolveSelection:
    def test_splits_and_preserves_order(self):
        views, indexes = resolve_selection(["psc", "ps", "I_sp(ps)", "p"])
        assert views == [View.of("p", "s", "c"), View.of("p", "s"), View.of("p")]
        assert indexes == [Index(View.of("p", "s"), ("s", "p"))]

    def test_index_without_view_rejected(self):
        with pytest.raises(ValueError, match="without its view"):
            resolve_selection(["psc", "I_sp(ps)"])
