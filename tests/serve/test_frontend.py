"""Concurrent front-end: admission bounds, per-tenant fairness, merged
per-worker telemetry indistinguishable from serial serving."""

import threading

import pytest

from repro.cube.query_log import generate_query_log
from repro.serve import (
    AdmissionQueueFull,
    QueryServer,
    ServingFrontend,
    validate_telemetry,
)

from tests.serve.test_server import advise_selection


@pytest.fixture
def server4(serve_fact4, serve_model4):
    return QueryServer(
        serve_fact4,
        advise_selection(serve_model4.lattice),
        cost_model=serve_model4,
    )


class _BlockedFirstBatch:
    """Wraps serve_batch so the first batch parks on an event — a
    deterministic way to stage work behind a busy worker."""

    def __init__(self, server):
        self.real = server.serve_batch
        self.started = threading.Event()
        self.release = threading.Event()
        self.batches = []

    def __call__(self, entries, telemetry=None):
        self.batches.append(list(entries))
        if len(self.batches) == 1:
            self.started.set()
            assert self.release.wait(10)
        return self.real(entries, telemetry=telemetry)


class TestAdmission:
    def test_bounded_queue_rejects_when_full(self, server4, serve_schema4):
        log = generate_query_log(serve_schema4, 8, rng=1)
        blocker = _BlockedFirstBatch(server4)
        server4.serve_batch = blocker
        frontend = ServingFrontend(server4, workers=1, queue_depth=2)
        try:
            frontend.submit(log[0])
            assert blocker.started.wait(10)  # worker busy; queue now empty
            frontend.submit(log[1])
            frontend.submit(log[2])  # queue at capacity
            with pytest.raises(AdmissionQueueFull):
                frontend.submit(log[3], block=False)
            with pytest.raises(AdmissionQueueFull):
                frontend.submit(log[4], timeout=0.05)
            assert frontend.rejected == 2
        finally:
            blocker.release.set()
            frontend.close()
        assert frontend.stats()["served"] == 3

    def test_blocking_submit_waits_for_space(self, server4, serve_schema4):
        log = generate_query_log(serve_schema4, 6, rng=2)
        blocker = _BlockedFirstBatch(server4)
        server4.serve_batch = blocker
        frontend = ServingFrontend(server4, workers=1, queue_depth=1)
        frontend.submit(log[0])
        assert blocker.started.wait(10)
        frontend.submit(log[1])  # fills the queue
        unblocked = threading.Event()

        def late_submit():
            frontend.submit(log[2])  # must block until the worker drains
            unblocked.set()

        thread = threading.Thread(target=late_submit, daemon=True)
        thread.start()
        assert not unblocked.wait(0.1), "submit did not block on a full queue"
        blocker.release.set()
        assert unblocked.wait(10)
        thread.join(10)
        frontend.close()
        assert frontend.stats()["served"] == 3

    def test_submit_after_close_raises(self, server4, serve_schema4):
        frontend = ServingFrontend(server4, workers=1)
        frontend.close()
        with pytest.raises(RuntimeError, match="closed"):
            frontend.submit(generate_query_log(serve_schema4, 1, rng=3)[0])

    def test_invalid_parameters(self, server4):
        with pytest.raises(ValueError, match="workers"):
            ServingFrontend(server4, workers=0)
        with pytest.raises(ValueError, match="batch_size"):
            ServingFrontend(server4, batch_size=0)
        with pytest.raises(ValueError, match="queue_depth"):
            ServingFrontend(server4, queue_depth=0)


class TestFairness:
    def test_batches_interleave_tenants_round_robin(
        self, server4, serve_schema4
    ):
        """A tenant with a deep backlog gets one slot per rotation — the
        drained batch alternates tenants instead of serving the flood
        first."""
        log = generate_query_log(serve_schema4, 9, rng=4)
        blocker = _BlockedFirstBatch(server4)
        server4.serve_batch = blocker
        frontend = ServingFrontend(server4, workers=1, batch_size=8)
        frontend.submit(log[0], tenant="warmup")
        assert blocker.started.wait(10)
        # tenant A floods; tenant B trickles
        for entry in log[1:5]:
            frontend.submit(entry, tenant="A")
        for entry in log[5:7]:
            frontend.submit(entry, tenant="B")
        blocker.release.set()
        assert frontend.drain(10)
        frontend.close()
        second = blocker.batches[1]
        # round-robin: A B A B A A — B's two entries sit at slots 1 and 3
        expected = [log[1], log[5], log[2], log[6], log[3], log[4]]
        assert second == expected


class TestMergedTelemetry:
    def test_pooled_equals_serial(self, serve_fact4, serve_schema4, serve_model4):
        selection = advise_selection(serve_model4.lattice)
        log = generate_query_log(serve_schema4, 200, rng=5)
        serial = QueryServer(serve_fact4, selection, cost_model=serve_model4)
        serial.replay(log)
        pooled = QueryServer(serve_fact4, selection, cost_model=serve_model4)
        with ServingFrontend(pooled, workers=3, batch_size=16) as frontend:
            futures = frontend.submit_many(log)
            outcomes = [f.result(30) for f in futures]
            merged = frontend.merged_telemetry()
        assert len(outcomes) == 200
        assert merged.merged_from == 3
        assert merged.queries == 200
        doc = validate_telemetry(merged.snapshot())
        reference = serial.telemetry_snapshot()
        assert doc["hits"] == reference["hits"]
        assert doc["fallbacks"] == reference["fallbacks"]
        assert doc["cost"]["predicted_rows"] == reference["cost"]["predicted_rows"]
        assert doc["cost"]["actual_rows"] == reference["cost"]["actual_rows"]
        assert doc["cost"]["exact_matches"] == reference["cost"]["exact_matches"]
        # percentiles are recomputed over the union of worker samples
        assert len(merged._latencies_us) == 200
        assert merged.percentile(0.5) in merged._latencies_us

    def test_close_absorbs_into_server_once(
        self, server4, serve_schema4
    ):
        log = generate_query_log(serve_schema4, 40, rng=6)
        frontend = ServingFrontend(server4, workers=2)
        futures = frontend.submit_many(log)
        for future in futures:
            future.result(30)
        assert server4.telemetry.queries == 0  # workers own the records
        frontend.close()
        assert server4.telemetry.queries == 40
        frontend.close()  # idempotent: no double counting
        assert server4.telemetry.queries == 40
        snap = validate_telemetry(server4.telemetry_snapshot())
        assert snap["merged_from"] == 3  # server's own + 2 workers
        assert len(snap["records"]) == 40

    def test_worker_exception_propagates_to_future(
        self, server4, serve_schema4
    ):
        entry = generate_query_log(serve_schema4, 1, rng=7)[0]

        def boom(entries, telemetry=None):
            raise RuntimeError("injected execution failure")

        server4.serve_batch = boom
        with ServingFrontend(server4, workers=1) as frontend:
            future = frontend.submit(entry)
            with pytest.raises(RuntimeError, match="injected"):
                future.result(10)

    def test_replay_through_frontend_keeps_cache_coherent(
        self, serve_fact4, serve_schema4, serve_model4
    ):
        """Concurrent replay with the cache on still answers exactly."""
        from repro.serve import ResultCache

        selection = advise_selection(serve_model4.lattice)
        log = generate_query_log(serve_schema4, 150, rng=8)
        plain = QueryServer(serve_fact4, selection, cost_model=serve_model4)
        plain.replay(log)
        cached = QueryServer(
            serve_fact4,
            selection,
            cost_model=serve_model4,
            cache=ResultCache(),
        )
        cached.replay(log, workers=2)
        report = cached.replay(log, workers=2)  # second pass: mostly hits
        assert report.cache_hits > 0
        a, b = plain.telemetry_snapshot(), cached.telemetry_snapshot()
        assert b["queries"] == 300
        assert b["cost"]["exact_matches"] == 300
        assert b["cost"]["actual_rows"] == 2 * a["cost"]["actual_rows"]
        assert b["fallbacks"] == 0


class TestWorkerSupervision:
    """Crashed workers restart; their queries fail typed, never hang."""

    def test_crash_fails_inflight_future_typed(self, server4, serve_schema4):
        from repro.serve import WorkerCrashed

        calls = [0]

        def crash_once(slot):
            calls[0] += 1
            if calls[0] == 1:
                raise KeyboardInterrupt("injected worker death")

        entry = generate_query_log(serve_schema4, 1, rng=0)[0]
        with ServingFrontend(server4, workers=1, crash_hook=crash_once) as fe:
            future = fe.submit(entry)
            with pytest.raises(WorkerCrashed) as info:
                future.result(10)
            assert isinstance(info.value.__cause__, KeyboardInterrupt)
            # supervision restarted the worker: serving continues
            assert fe.submit(entry).result(10).groups is not None
            stats = fe.stats()
        assert stats["worker_crashes"] == 1
        assert stats["worker_restarts"] == 1
        assert stats["live_workers"] == 1

    def test_crash_lands_in_telemetry(self, server4, serve_schema4):
        calls = [0]

        def crash_once(slot):
            calls[0] += 1
            if calls[0] == 1:
                raise SystemExit(3)

        log = generate_query_log(serve_schema4, 40, rng=1)
        frontend = ServingFrontend(server4, workers=2, crash_hook=crash_once)
        for entry in log:
            try:
                frontend.submit(entry).result(10)
            except RuntimeError:
                pass
        frontend.close()
        resilience = server4.telemetry.resilience_stats()
        assert resilience["worker_crashes"] == 1
        assert resilience["worker_restarts"] == 1

    def test_restart_budget_exhausted_fails_pending_typed(
        self, server4, serve_schema4
    ):
        from repro.serve import WorkerCrashed

        def always_crash(slot):
            raise KeyboardInterrupt("dead on arrival")

        log = generate_query_log(serve_schema4, 8, rng=2)
        frontend = ServingFrontend(
            server4, workers=1, max_worker_restarts=0, crash_hook=always_crash
        )
        future = frontend.submit(log[0])
        with pytest.raises(WorkerCrashed):
            future.result(10)
        # the pool is dead: submits fail fast instead of queueing forever
        with pytest.raises(WorkerCrashed):
            deadline = 50
            for entry in log[1:]:
                frontend.submit(entry).result(10)
                deadline -= 1
                assert deadline > 0
        stats = frontend.stats()
        assert stats["live_workers"] == 0
        frontend.close()

    def test_close_without_drain_fails_queued_typed(
        self, server4, serve_schema4
    ):
        from repro.serve import FrontendClosed

        wrapper = _BlockedFirstBatch(server4)
        server4.serve_batch = wrapper
        log = generate_query_log(serve_schema4, 6, rng=3)
        frontend = ServingFrontend(server4, workers=1, batch_size=1)
        first = frontend.submit(log[0])
        assert wrapper.started.wait(10)
        queued = [frontend.submit(entry) for entry in log[1:]]
        wrapper.release.set()
        frontend.close(drain=False)
        assert first.result(10).groups is not None  # in-flight completes
        for future in queued:
            with pytest.raises(FrontendClosed):
                future.result(10)

    def test_drain_close_still_serves_queue(self, server4, serve_schema4):
        wrapper = _BlockedFirstBatch(server4)
        server4.serve_batch = wrapper
        log = generate_query_log(serve_schema4, 6, rng=4)
        frontend = ServingFrontend(server4, workers=1, batch_size=1)
        futures = [frontend.submit(entry) for entry in log]
        assert wrapper.started.wait(10)
        wrapper.release.set()
        frontend.close(drain=True)
        for future in futures:
            assert future.result(10).groups is not None
