"""Result cache: LRU + admission behavior, and — the part that matters —
invalidation proofs: no stale rows after a maintenance delta or a hot
swap, and byte-identical answers cache on vs off.
"""

import numpy as np
import pytest

from repro.cube.query_log import generate_query_log
from repro.serve import CachedResult, QueryServer, ResultCache, result_key
from repro.serve.cache import ENTRY_OVERHEAD_BYTES, empty_cache_stats

from tests.serve.test_server import advise_selection, all_pattern_entries

TAG = (0, 0)


def entry_result(n_groups=1):
    groups = {(g,): float(g) for g in range(n_groups)}
    return CachedResult(
        structure="ps", predicted_rows=4.0, actual_rows=4, groups=groups
    )


class TestLRUAndAdmission:
    def test_get_put_roundtrip(self):
        cache = ResultCache()
        cache.ensure_tag(TAG)
        result = entry_result()
        assert cache.get(("k",), TAG) is None
        assert cache.put(("k",), result, TAG)
        assert cache.get(("k",), TAG) is result
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_evicts_least_recently_used(self):
        cache = ResultCache(max_entries=2, admission=False)
        cache.ensure_tag(TAG)
        cache.put(("a",), entry_result(), TAG)
        cache.put(("b",), entry_result(), TAG)
        assert cache.get(("a",), TAG) is not None  # refresh a; b is now LRU
        cache.put(("c",), entry_result(), TAG)
        assert cache.evictions == 1
        assert cache.get(("b",), TAG) is None
        assert cache.get(("a",), TAG) is not None
        assert cache.get(("c",), TAG) is not None

    def test_byte_budget_evicts(self):
        two_entries = 2 * entry_result(1).estimated_bytes
        cache = ResultCache(capacity_bytes=two_entries, admission=False)
        cache.ensure_tag(TAG)
        for key in ("a", "b", "c"):
            cache.put((key,), entry_result(1), TAG)
        assert len(cache) == 2
        assert cache.evictions == 1
        assert cache.stats()["bytes"] <= two_entries

    def test_oversized_result_rejected_outright(self):
        cache = ResultCache(capacity_bytes=ENTRY_OVERHEAD_BYTES + 10)
        cache.ensure_tag(TAG)
        assert not cache.put(("big",), entry_result(1000), TAG)
        assert cache.rejected == 1
        assert len(cache) == 0

    def test_admission_filter_protects_hot_entries(self):
        """A full cache only admits a candidate asked for at least as
        often as the LRU victim (TinyLFU-style one-off protection)."""
        cache = ResultCache(max_entries=1, admission=True)
        cache.ensure_tag(TAG)
        cache.get(("hot",), TAG)  # miss — trains the sketch: freq 1
        cache.put(("hot",), entry_result(), TAG)
        # never-asked-for candidate cannot displace the hot entry
        assert not cache.put(("cold",), entry_result(), TAG)
        assert cache.rejected == 1
        assert cache.get(("hot",), TAG) is not None
        # ...but a candidate asked for more often can
        cache.get(("rising",), TAG)
        cache.get(("rising",), TAG)
        cache.get(("rising",), TAG)
        assert cache.put(("rising",), entry_result(), TAG)
        assert cache.evictions == 1

    def test_plain_lru_always_admits(self):
        cache = ResultCache(max_entries=1, admission=False)
        cache.ensure_tag(TAG)
        cache.put(("a",), entry_result(), TAG)
        assert cache.put(("b",), entry_result(), TAG)
        assert cache.get(("a",), TAG) is None

    def test_invalid_parameters(self):
        with pytest.raises(ValueError, match="capacity_bytes"):
            ResultCache(capacity_bytes=0)
        with pytest.raises(ValueError, match="max_entries"):
            ResultCache(max_entries=0)


class TestTagInvalidation:
    def test_new_tag_drops_entries(self):
        cache = ResultCache()
        cache.ensure_tag((0, 0))
        cache.put(("k",), entry_result(), (0, 0))
        cache.ensure_tag((1, 0))  # hot swap bumped the generation
        assert cache.get(("k",), (1, 0)) is None
        assert cache.invalidations == 1

    def test_stale_put_is_dropped(self):
        """A worker that raced a swap cannot poison the new generation."""
        cache = ResultCache()
        cache.ensure_tag((0, 0))
        cache.ensure_tag((1, 0))
        assert not cache.put(("k",), entry_result(), (0, 0))
        assert cache.get(("k",), (1, 0)) is None

    def test_stale_get_misses(self):
        cache = ResultCache()
        cache.ensure_tag((0, 0))
        cache.put(("k",), entry_result(), (0, 0))
        assert cache.get(("k",), (9, 9)) is None  # tag mismatch: miss

    def test_empty_stats_shape_matches(self):
        assert empty_cache_stats().keys() == ResultCache().stats().keys()


def _delta_from(fact, n_rows, rng=42):
    """A small well-formed fact delta: resampled rows with fresh measures."""
    generator = np.random.default_rng(rng)
    rows = generator.integers(0, fact.n_rows, size=n_rows)
    columns = {name: fact.column(name)[rows] for name in fact.schema.names}
    measures = generator.uniform(1.0, 5.0, size=n_rows)
    extras = {
        name: values[rows] for name, values in fact.extra_measures.items()
    }
    return columns, measures, extras or None


class TestServerCacheCorrectness:
    """The acceptance-criteria tests: identical answers cache on vs off,
    and provably no stale rows after deltas or swaps."""

    def _assert_on_off_identical(self, fact, schema, model):
        selection = advise_selection(model.lattice)
        log = generate_query_log(schema, 150, rng=5)
        plain = QueryServer(fact, selection, cost_model=model)
        cached = QueryServer(
            fact, selection, cost_model=model, cache=ResultCache()
        )
        baseline = plain.serve_batch(log)
        first = cached.serve_batch(log)
        second = cached.serve_batch(log)  # now served from the cache
        assert any(o.cached for o in second)
        for base, a, b in zip(baseline, first, second):
            assert a.groups == base.groups  # == on floats: byte-identical
            assert b.groups == base.groups
            assert a.actual_rows == b.actual_rows == base.actual_rows
            assert a.predicted_rows == b.predicted_rows == base.predicted_rows
            assert a.structure == b.structure == base.structure
        # cache hits replay the stored cost accounting, so the exactness
        # invariant survives caching
        snap = cached.telemetry_snapshot()
        assert snap["cost"]["exact_matches"] == snap["queries"]
        assert snap["cache"]["hits"] == cached.cache.hits > 0

    def test_d4_cache_on_off_identical(
        self, serve_fact4, serve_schema4, serve_model4
    ):
        self._assert_on_off_identical(serve_fact4, serve_schema4, serve_model4)

    def test_d5_cache_on_off_identical(
        self, serve_fact5, serve_schema5, serve_model5
    ):
        self._assert_on_off_identical(serve_fact5, serve_schema5, serve_model5)

    def test_maintenance_delta_invalidates(self, serve_fact4, serve_model4):
        """After apply_delta, every answer reflects the merged facts —
        a fresh uncached server over the same catalog agrees exactly."""
        selection = advise_selection(serve_model4.lattice)
        server = QueryServer(
            serve_fact4, selection, cost_model=serve_model4, cache=ResultCache()
        )
        entries = all_pattern_entries(serve_fact4.schema, per_pattern=1)
        before = server.serve_batch(entries)
        server.serve_batch(entries)  # populate + prove hits
        assert server.cache.hits == len(entries)

        columns, measures, extras = _delta_from(serve_fact4, 64)
        report = server.apply_delta(columns, measures, extras)
        assert report.delta_rows == 64
        assert server.cache.stats()["entries"] == 0  # dropped wholesale

        after = server.serve_batch(entries)
        # no outcome may come from the cache, and every answer must equal
        # what the refreshed catalog's executor computes right now
        assert not any(o.cached for o in after)
        executor = server.state.executor
        changed = 0
        for entry, pre, post in zip(entries, before, after):
            view, index, __ = executor.plan_with_cost(entry.query)
            reference = executor.execute(
                entry.query, entry.bound_values, plan=(view, index)
            )
            assert post.groups == reference.groups, "stale rows after delta"
            if post.groups != pre.groups:
                changed += 1
        assert changed > 0, "delta did not change any served answer"
        # and a from-scratch rematerialization over the merged facts
        # agrees numerically (merge order differs only in the last ulp)
        fresh = QueryServer(
            server.fact, selection, cost_model=server.cost_model
        )
        for post, ref in zip(after, fresh.serve_batch(entries)):
            assert post.groups == pytest.approx(ref.groups, rel=1e-9)

    def test_hot_swap_invalidates(self, serve_fact4, serve_model4):
        """A selection hot swap drops the cache; post-swap answers match
        the new state's executor, never the old cached rows."""
        selection = advise_selection(serve_model4.lattice)
        server = QueryServer(
            serve_fact4, selection, cost_model=serve_model4, cache=ResultCache()
        )
        entries = all_pattern_entries(serve_fact4.schema, per_pattern=1)
        server.serve_batch(entries)
        server.serve_batch(entries)
        assert server.cache.hits == len(entries)

        server._swap(("pscd",), {})
        assert server.cache.stats()["entries"] == 0
        after = server.serve_batch(entries)
        assert not any(o.cached for o in after)
        executor = server.state.executor
        for entry, outcome in zip(entries, after):
            view, index, predicted = executor.plan_with_cost(entry.query)
            reference = executor.execute(
                entry.query, entry.bound_values, plan=(view, index)
            )
            assert outcome.groups == reference.groups
            assert outcome.structure != "raw"
            assert outcome.predicted_rows == predicted

    def test_late_put_from_old_generation_discarded(
        self, serve_fact4, serve_model4
    ):
        """Simulates a worker batch that read the pre-swap state: its
        insert is dropped, not served to post-swap readers."""
        server = QueryServer(
            serve_fact4,
            advise_selection(serve_model4.lattice),
            cost_model=serve_model4,
            cache=ResultCache(),
        )
        entry = all_pattern_entries(serve_fact4.schema, per_pattern=1)[0]
        old_state = server.state
        old_tag = (old_state.generation, old_state.catalog.version)
        server.cache.ensure_tag(old_tag)
        server._swap(("pscd",), {})
        new_tag = (server.state.generation, server.state.catalog.version)
        server.cache.ensure_tag(new_tag)
        assert not server.cache.put(
            result_key(entry), entry_result(), old_tag
        )
        assert server.cache.get(result_key(entry), new_tag) is None


class TestConcurrentInvalidation:
    """Four threads hammering get/put across a generation bump: no
    stale hit, no deadlock (the fault-tolerance satellite)."""

    def test_no_stale_hit_across_generation_bump(self):
        import threading

        cache = ResultCache()
        old_tag, new_tag = (0, 0), (1, 0)
        cache.ensure_tag(old_tag)
        keys = [(f"k{i}",) for i in range(16)]
        old_result = entry_result(1)
        new_result = CachedResult(
            structure="sc", predicted_rows=8.0, actual_rows=8,
            groups={(0,): 1.0},
        )
        for key in keys:
            cache.put(key, old_result, old_tag)
        bumped = threading.Event()
        stop = threading.Event()
        stale = []
        errors = []

        def hammer(seed):
            rng = __import__("random").Random(seed)
            while not stop.is_set():
                key = keys[rng.randrange(len(keys))]
                if bumped.is_set():
                    # after the swap every hit must be a new-tag result
                    hit = cache.get(key, new_tag)
                    if hit is not None and hit.structure != "sc":
                        stale.append((key, hit.structure))
                    cache.put(key, new_result, new_tag)
                else:
                    cache.get(key, old_tag)
                    cache.put(key, old_result, old_tag)

        def swapper():
            bumped.wait(10)
            # what serve_batch does on its first post-swap batch
            cache.ensure_tag(new_tag)

        threads = [
            threading.Thread(target=hammer, args=(seed,), daemon=True)
            for seed in range(4)
        ]
        swap_thread = threading.Thread(target=swapper, daemon=True)
        for thread in threads:
            thread.start()
        swap_thread.start()
        try:
            import time

            time.sleep(0.05)
            cache.invalidate()  # the swap itself
            bumped.set()
            time.sleep(0.15)
        finally:
            stop.set()
        for thread in threads + [swap_thread]:
            thread.join(10)
            assert not thread.is_alive(), "cache hammer deadlocked"
        assert not errors
        assert stale == [], f"stale generation served: {stale[:5]}"
        assert cache.invalidations >= 1
        stats = cache.stats()
        assert stats["entries"] <= len(keys)

    def test_served_answers_stay_exact_across_live_swap(
        self, serve_fact4, serve_schema4, serve_model4
    ):
        """End-to-end: concurrent replay while the cache is invalidated
        mid-run still answers every query exactly."""
        import threading

        selection = advise_selection(serve_model4.lattice)
        log = generate_query_log(serve_schema4, 200, rng=9)
        golden = QueryServer(
            serve_fact4, selection, cost_model=serve_model4
        ).serve_batch(log)
        cache = ResultCache()
        server = QueryServer(
            serve_fact4, selection, cost_model=serve_model4, cache=cache
        )
        stop = threading.Event()

        def invalidate_loop():
            while not stop.wait(0.002):
                cache.invalidate()

        invalidator = threading.Thread(target=invalidate_loop, daemon=True)
        invalidator.start()
        try:
            from repro.serve import ServingFrontend

            with ServingFrontend(server, workers=4, batch_size=16) as fe:
                futures = [fe.submit(entry) for entry in log]
                outcomes = [future.result(30) for future in futures]
        finally:
            stop.set()
            invalidator.join(5)
        for outcome, reference in zip(outcomes, golden):
            assert outcome.groups == reference.groups
