"""Circuit breaker, retry policy, raw rescue: degraded but never wrong.

The load-bearing assertions: a poisoned structure's answers are rescued
from the raw cube *byte-identically* on the integer-measure fixture, the
breaker automaton walks closed -> open -> half-open -> closed under an
injectable clock, and every executor error reconciles 1:1 with the
telemetry counters.
"""

import random

import numpy as np
import pytest

from repro.cube.query_log import generate_query_log
from repro.datasets.tpcd import tpcd_serving_schema
from repro.cube.generator import dense_fact_table
from repro.engine.table import FactTable
from repro.serve import QueryServer, validate_telemetry
from repro.serve.resilience import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    RetryPolicy,
)
from repro.serve.telemetry import RAW_LABEL

from tests.serve.test_server import advise_selection


class Boom(RuntimeError):
    pass


@pytest.fixture(scope="module")
def int_fact4():
    """Integer measures: sums are exact in float64, so raw-path answers
    are byte-identical to structure-path answers."""
    schema = tpcd_serving_schema(4)
    base = dense_fact_table(schema, rng=0)
    return FactTable(schema, base.columns, np.rint(base.measures))


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestCircuitBreaker:
    def test_trips_exactly_at_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown_seconds=5.0)
        assert breaker.record_failure("ps") is False
        assert breaker.record_failure("ps") is False
        assert breaker.state("ps") == BREAKER_CLOSED
        assert breaker.record_failure("ps") is True
        assert breaker.state("ps") == BREAKER_OPEN
        assert breaker.trips == 1

    def test_open_circuit_denies_until_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_seconds=5.0, clock=clock
        )
        breaker.record_failure("ps")
        assert not breaker.allow("ps")
        clock.now = 4.9
        assert not breaker.allow("ps")
        clock.now = 5.1
        assert breaker.allow("ps")  # the half-open probe
        assert breaker.state("ps") == BREAKER_HALF_OPEN

    def test_half_open_grants_a_single_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_seconds=1.0, clock=clock
        )
        breaker.record_failure("ps")
        clock.now = 2.0
        assert breaker.allow("ps")
        assert not breaker.allow("ps")  # second caller waits for the verdict

    def test_half_open_success_closes_and_fires_reset(self):
        clock = FakeClock()
        events = []
        breaker = CircuitBreaker(
            failure_threshold=1,
            cooldown_seconds=1.0,
            clock=clock,
            on_trip=lambda s: events.append(("trip", s)),
            on_reset=lambda s: events.append(("reset", s)),
        )
        breaker.record_failure("ps")
        clock.now = 2.0
        assert breaker.allow("ps")
        breaker.record_success("ps")
        assert breaker.state("ps") == BREAKER_CLOSED
        assert breaker.allow("ps")
        assert events == [("trip", "ps"), ("reset", "ps")]
        assert breaker.resets == 1

    def test_half_open_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=3, cooldown_seconds=1.0, clock=clock
        )
        for _ in range(3):
            breaker.record_failure("ps")
        clock.now = 2.0
        assert breaker.allow("ps")
        assert breaker.record_failure("ps") is True  # re-trip from half-open
        assert breaker.state("ps") == BREAKER_OPEN
        assert not breaker.allow("ps")
        assert breaker.trips == 2

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown_seconds=1.0)
        breaker.record_failure("ps")
        breaker.record_success("ps")
        breaker.record_failure("ps")
        assert breaker.state("ps") == BREAKER_CLOSED

    def test_structures_are_independent(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_seconds=9.0)
        breaker.record_failure("ps")
        assert not breaker.allow("ps")
        assert breaker.allow("sc")
        assert breaker.open_structures() == ["ps"]
        stats = breaker.stats()
        assert stats["states"] == {"ps": BREAKER_OPEN, "sc": BREAKER_CLOSED}
        assert stats["trips"] == 1

    def test_validates_configuration(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_seconds=-1.0)


class TestRetryPolicy:
    def test_delay_grows_exponentially_and_caps(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay=0.1, multiplier=2.0, max_delay=0.35,
            jitter=0.0,
        )
        rng = random.Random(0)
        delays = [policy.delay(a, rng) for a in range(4)]
        assert delays == [0.1, 0.2, 0.35, 0.35]

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(base_delay=0.1, jitter=0.5, max_delay=10.0)
        rng = random.Random(7)
        for attempt in range(3):
            nominal = min(10.0, 0.1 * 2.0**attempt)
            for _ in range(50):
                delay = policy.delay(attempt, rng)
                assert 0.5 * nominal <= delay <= 1.5 * nominal

    def test_validates_configuration(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-0.1)


class TestRawRescue:
    """Executor errors against a structure degrade to raw — never wrong."""

    def _poisoned_server(self, fact, target, threshold=1000):
        from repro.core.costmodel import LinearCostModel

        model = LinearCostModel.from_fact(fact)
        selection = advise_selection(model.lattice)
        breaker = CircuitBreaker(
            failure_threshold=threshold, cooldown_seconds=600.0
        )

        def poison(structure, entry):
            if structure == target:
                raise Boom(f"poisoned {structure}")

        server = QueryServer(
            fact,
            selection,
            cost_model=model,
            breaker=breaker,
            fault_hook=poison,
        )
        return server, model

    def _target_structure(self, fact):
        """The structure answering the most workload queries."""
        from collections import Counter

        from repro.core.costmodel import LinearCostModel

        model = LinearCostModel.from_fact(fact)
        selection = advise_selection(model.lattice)
        server = QueryServer(fact, selection, cost_model=model)
        log = generate_query_log(fact.schema, 120, rng=1)
        outcomes = server.serve_batch(log)
        counts = Counter(
            o.structure for o in outcomes if o.structure != RAW_LABEL
        )
        return counts.most_common(1)[0][0], log, [o.groups for o in outcomes]

    def test_rescued_answers_byte_identical(self, int_fact4):
        target, log, golden = self._target_structure(int_fact4)
        server, __ = self._poisoned_server(int_fact4, target)
        outcomes = server.serve_batch(log)
        hit = 0
        for outcome, reference in zip(outcomes, golden):
            assert outcome.groups == reference
            if outcome.rescued:
                hit += 1
                assert outcome.structure == RAW_LABEL
                assert outcome.fallback
        assert hit > 0, "workload never touched the poisoned structure"

    def test_error_counters_reconcile_exactly(self, int_fact4):
        target, log, __ = self._target_structure(int_fact4)
        server, __ = self._poisoned_server(int_fact4, target)
        outcomes = server.serve_batch(log)
        # counters tick once per *unique* execution: duplicate concrete
        # queries in a batch share one (rescued) execution
        rescued = len(
            {
                (o.entry.query, o.entry.values)
                for o in outcomes
                if o.rescued
            }
        )
        document = validate_telemetry(server.telemetry_snapshot())
        resilience = document["resilience"]
        assert rescued > 0
        assert resilience["executor_errors"] == {target: rescued}
        assert resilience["raw_rescues"] == rescued

    def test_breaker_trips_within_threshold_then_short_circuits(
        self, int_fact4
    ):
        target, log, golden = self._target_structure(int_fact4)
        server, __ = self._poisoned_server(int_fact4, target, threshold=3)
        outcomes = server.serve_batch(log)
        for outcome, reference in zip(outcomes, golden):
            assert outcome.groups == reference
        document = validate_telemetry(server.telemetry_snapshot())
        resilience = document["resilience"]
        # the breaker stopped touching the structure after 3 errors
        assert resilience["executor_errors"] == {target: 3}
        assert resilience["breaker_trips"] == 1
        assert resilience["breaker_short_circuits"] > 0
        assert server.breaker.state(target) == BREAKER_OPEN

    def test_short_circuited_answers_not_cached(self, int_fact4):
        from repro.serve import ResultCache

        from repro.core.costmodel import LinearCostModel

        target, log, __ = self._target_structure(int_fact4)
        model = LinearCostModel.from_fact(int_fact4)
        selection = advise_selection(model.lattice)
        breaker = CircuitBreaker(failure_threshold=1, cooldown_seconds=600.0)
        hits = [0]

        def poison(structure, entry):
            if structure == target:
                hits[0] += 1
                raise Boom("poisoned")

        cache = ResultCache()
        server = QueryServer(
            int_fact4,
            selection,
            cost_model=model,
            breaker=breaker,
            fault_hook=poison,
            cache=cache,
        )
        server.serve_batch(log)
        server.serve_batch(log)  # degraded answers must re-execute
        stats = cache.stats()
        degraded = sum(
            1
            for o in server.serve_batch(log)
            if o.rescued or o.structure == RAW_LABEL and not o.cached
        )
        assert hits[0] == 1  # breaker opened after the single error
        assert degraded > 0
        # every cached entry came from a healthy structure execution
        assert stats["entries"] < len(log)

    def test_healthy_path_identical_with_breaker_attached(self, int_fact4):
        from repro.core.costmodel import LinearCostModel

        model = LinearCostModel.from_fact(int_fact4)
        selection = advise_selection(model.lattice)
        log = generate_query_log(int_fact4.schema, 100, rng=2)
        plain = QueryServer(int_fact4, selection, cost_model=model)
        guarded = QueryServer(
            int_fact4,
            selection,
            cost_model=model,
            breaker=CircuitBreaker(),
        )
        for a, b in zip(plain.serve_batch(log), guarded.serve_batch(log)):
            assert a.groups == b.groups
            assert a.structure == b.structure
            assert a.predicted_rows == b.predicted_rows
            assert a.actual_rows == b.actual_rows
        resilience = guarded.telemetry.resilience_stats()
        assert resilience["executor_errors"] == {}
        assert resilience["raw_rescues"] == 0
        assert resilience["breaker_trips"] == 0

    def test_raw_path_errors_propagate(self, int_fact4):
        """No cheaper-but-correct plan under raw: the error is a bug."""
        from repro.core.costmodel import LinearCostModel

        model = LinearCostModel.from_fact(int_fact4)

        def poison_raw(structure, entry):
            if structure == RAW_LABEL:
                raise Boom("raw poisoned")

        # a single tiny view: anything grouping by other attributes
        # routes to the raw cube
        server = QueryServer(
            int_fact4,
            ["p"],
            cost_model=model,
            breaker=CircuitBreaker(),
            fault_hook=poison_raw,
        )
        from repro.serve.batch import plan_for

        log = generate_query_log(int_fact4.schema, 200, rng=3)
        raw_hits = [
            entry
            for entry in log
            if plan_for(server.state, model, entry.query).kind == "raw"
        ]
        assert raw_hits, "tiny selection must leave raw-routed patterns"
        with pytest.raises(Boom):
            server.serve(raw_hits[0])
