"""Mergeable telemetry: exact counter addition, percentiles over the
union of samples, and the v1 -> v2 schema compatibility shim."""

import pytest

from repro.serve import (
    TELEMETRY_SCHEMA_VERSION,
    TelemetryCollector,
    upgrade_telemetry,
    validate_telemetry,
)
from repro.serve.telemetry import _percentile


def fill(collector, latencies, structure="ps", predicted=4.0, actual=4):
    for latency in latencies:
        collector.record(
            pattern="γ(p)σ(s)",
            structure=structure,
            latency_us=latency,
            predicted_rows=predicted,
            actual_rows=actual,
        )


class TestMerge:
    def test_counters_add_exactly(self):
        a, b = TelemetryCollector(), TelemetryCollector()
        fill(a, [10.0, 20.0], structure="ps")
        fill(b, [30.0], structure="psc")
        b.record("γ()σ()", "raw", 999.0, 5.0, 7, fallback=True)
        a.note_swap()
        merged = TelemetryCollector.merge([a, b])
        assert merged.queries == 4
        assert merged.fallbacks == 1
        assert merged.merged_from == 2
        snap = validate_telemetry(merged.snapshot())
        assert snap["hits"] == {"ps": 2, "psc": 1, "raw": 1}
        assert snap["swaps"] == 1
        assert snap["cost"]["predicted_rows"] == 4.0 + 4.0 + 4.0 + 5.0
        assert snap["cost"]["actual_rows"] == 4 + 4 + 4 + 7
        assert snap["cost"]["exact_matches"] == 3
        assert snap["cost"]["max_abs_error"] == 2.0
        assert len(snap["records"]) == 4

    def test_percentiles_exact_over_union(self):
        """Merged percentiles are nearest-rank over all samples — not an
        average of per-worker percentiles."""
        workers = [TelemetryCollector() for _ in range(3)]
        samples = [[1.0, 100.0], [2.0, 3.0, 200.0], [50.0]]
        for collector, latencies in zip(workers, samples):
            fill(collector, latencies)
        merged = TelemetryCollector.merge(workers)
        union = sorted(x for chunk in samples for x in chunk)
        for q in (0.0, 0.5, 0.9, 0.99, 1.0):
            assert merged.percentile(q) == _percentile(union, q)
        snap = merged.snapshot()
        assert snap["latency_us"]["p50"] == _percentile(union, 0.5)
        assert snap["latency_us"]["max"] == 200.0
        histogram = snap["latency_us"]["histogram"]
        assert sum(bucket["count"] for bucket in histogram) == 6

    def test_absorb_accumulates_merged_from(self):
        a, b, c = (TelemetryCollector() for _ in range(3))
        fill(b, [1.0])
        b.absorb(c)
        a.absorb(b)
        assert a.merged_from == 3
        assert a.queries == 1

    def test_merge_empty_iterable_is_valid(self):
        merged = TelemetryCollector.merge([])
        assert merged.merged_from == 1
        validate_telemetry(merged.snapshot())

    def test_record_mismatch_drops_records(self):
        """Absorbing a records-free collector cannot leave a partial
        record list behind."""
        keeper = TelemetryCollector(keep_records=True)
        dropper = TelemetryCollector(keep_records=False)
        fill(keeper, [1.0])
        fill(dropper, [2.0])
        keeper.absorb(dropper)
        assert keeper.queries == 2
        assert not keeper.keep_records
        snap = keeper.snapshot()
        assert "records" not in snap
        validate_telemetry(snap)


class TestFleetBlockMerge:
    """The v4 fleet block: per-replica routed-hit/misroute counters
    merge by exact addition, and legacy v2/v3 documents upgrade to an
    empty block."""

    def test_counters_add_exactly_across_three_replicas(self):
        collectors = [TelemetryCollector() for _ in range(3)]
        for collector in collectors:
            fill(collector, [1.0, 2.0])  # 2 queries each: 6 total
        collectors[0].note_routed_hit(0)
        collectors[0].note_routed_hit(0)
        collectors[0].note_routed_hit(1)
        collectors[1].note_misroute(1)
        collectors[1].note_routed_hit(2)
        collectors[2].note_misroute(1)
        merged = TelemetryCollector.merge(collectors)
        snap = validate_telemetry(merged.snapshot())
        assert snap["fleet"]["routed_hits"] == {"0": 2, "1": 1, "2": 1}
        assert snap["fleet"]["misroutes"] == {"1": 2}

    def test_mixed_v2_v3_inputs_upgrade_to_empty_fleet_block(self):
        """A merged fleet report can fold in snapshots written by older
        code; each upgrades to an empty (but present) fleet block."""
        legacy = []
        for old_version in (2, 3):
            collector = TelemetryCollector()
            fill(collector, [5.0])
            document = collector.snapshot()
            document["schema_version"] = old_version
            del document["fleet"]
            if old_version == 2:
                del document["resilience"]
            legacy.append(document)
        current = TelemetryCollector()
        fill(current, [1.0])
        current.note_routed_hit(0)
        documents = [upgrade_telemetry(doc) for doc in legacy] + [
            current.snapshot()
        ]
        for document in documents:
            validated = validate_telemetry(document)
            assert validated["schema_version"] == TELEMETRY_SCHEMA_VERSION
            assert "routed_hits" in validated["fleet"]
            assert "misroutes" in validated["fleet"]
        assert documents[0]["fleet"] == {"routed_hits": {}, "misroutes": {}}
        assert documents[2]["fleet"]["routed_hits"] == {"0": 1}

    def test_counters_exceeding_queries_rejected(self):
        collector = TelemetryCollector()
        fill(collector, [1.0])
        collector.note_routed_hit(0)
        collector.note_misroute(1)  # 2 counters, 1 query
        with pytest.raises(ValueError, match="exceed"):
            validate_telemetry(collector.snapshot())

    def test_negative_counter_rejected(self):
        collector = TelemetryCollector()
        fill(collector, [1.0])
        document = collector.snapshot()
        document["fleet"]["routed_hits"] = {"0": -1}
        with pytest.raises(ValueError, match="fleet"):
            validate_telemetry(document)


class TestSchemaCompatibility:
    def _v1_document(self):
        collector = TelemetryCollector()
        fill(collector, [5.0, 15.0])
        document = collector.snapshot()
        document["schema_version"] = 1
        del document["cache"]
        del document["merged_from"]
        return document

    def test_v1_upgrades_and_validates(self):
        upgraded = validate_telemetry(self._v1_document())
        assert upgraded["schema_version"] == TELEMETRY_SCHEMA_VERSION
        assert upgraded["merged_from"] == 1
        assert upgraded["cache"]["enabled"] is False
        assert upgraded["queries"] == 2

    def test_upgrade_does_not_mutate_input(self):
        document = self._v1_document()
        upgrade_telemetry(document)
        assert document["schema_version"] == 1
        assert "cache" not in document

    def test_v2_passes_through_unchanged(self):
        collector = TelemetryCollector()
        fill(collector, [5.0])
        document = collector.snapshot()
        assert upgrade_telemetry(document) is document
        assert validate_telemetry(document) is document

    def test_unknown_version_rejected(self):
        document = self._v1_document()
        document["schema_version"] = 99
        with pytest.raises(ValueError, match="schema_version"):
            validate_telemetry(document)

    def test_disabled_cache_with_hits_rejected(self):
        collector = TelemetryCollector()
        fill(collector, [5.0])
        document = collector.snapshot()
        document["cache"]["hits"] = 3
        with pytest.raises(ValueError, match="disabled"):
            validate_telemetry(document)

    def test_merged_from_must_be_positive(self):
        collector = TelemetryCollector()
        document = collector.snapshot()
        document["merged_from"] = 0
        with pytest.raises(ValueError, match="merged_from"):
            validate_telemetry(document)
