"""Drift detection and adaptive re-selection with atomic hot swap."""

import threading

import pytest

from repro.algorithms import RGreedy
from repro.core.benefit import BenefitEngine
from repro.core.qvgraph import QueryViewGraph
from repro.core.query import enumerate_slice_queries
from repro.cube.query_log import generate_query_log
from repro.serve import (
    AdaptiveReselector,
    DriftMonitor,
    QueryServer,
    observed_cost,
)


def pattern(schema, groupby, selection):
    return next(
        q
        for q in enumerate_slice_queries(schema.names)
        if q.groupby == frozenset(groupby) and q.selection == frozenset(selection)
    )


def advise(lattice, frequencies, space):
    patterns = list(enumerate_slice_queries(lattice.schema.names))
    filled = {q: frequencies.get(q, 0.0) for q in patterns}
    graph = QueryViewGraph.from_cube(lattice, frequencies=filled)
    top_label = lattice.label(lattice.top)
    return RGreedy(1).run(BenefitEngine(graph), space, seed=(top_label,)).selected


class TestDriftMonitor:
    def test_no_drift_before_min_queries(self, serve_schema4):
        q1 = pattern(serve_schema4, ["p"], ["s"])
        q2 = pattern(serve_schema4, ["c"], ["d"])
        monitor = DriftMonitor({q1: 1.0}, threshold=0.2, min_queries=10)
        for _ in range(9):
            monitor.observe(q2)
        assert monitor.distance() == 1.0
        assert not monitor.drifted

    def test_drift_after_min_queries(self, serve_schema4):
        q1 = pattern(serve_schema4, ["p"], ["s"])
        q2 = pattern(serve_schema4, ["c"], ["d"])
        monitor = DriftMonitor({q1: 1.0}, threshold=0.2, min_queries=10)
        for _ in range(10):
            monitor.observe(q2)
        assert monitor.drifted

    def test_matching_workload_never_drifts(self, serve_schema4):
        q1 = pattern(serve_schema4, ["p"], ["s"])
        monitor = DriftMonitor({q1: 1.0}, threshold=0.2, min_queries=5)
        for _ in range(100):
            monitor.observe(q1)
        assert monitor.distance() == 0.0
        assert not monitor.drifted

    def test_rebase_resets(self, serve_schema4):
        q1 = pattern(serve_schema4, ["p"], ["s"])
        q2 = pattern(serve_schema4, ["c"], ["d"])
        monitor = DriftMonitor({q1: 1.0}, threshold=0.2, min_queries=5)
        for _ in range(10):
            monitor.observe(q2)
        assert monitor.drifted
        monitor.rebase({q2: 1.0})
        assert monitor.observed_total == 0
        assert not monitor.drifted

    def test_status_fields(self, serve_schema4):
        q1 = pattern(serve_schema4, ["p"], ["s"])
        monitor = DriftMonitor({q1: 1.0})
        status = monitor.status()
        assert set(status) == {
            "observed", "distance", "threshold", "min_queries", "drifted",
        }

    def test_bad_params_rejected(self, serve_schema4):
        q1 = pattern(serve_schema4, ["p"], ["s"])
        with pytest.raises(ValueError, match="threshold"):
            DriftMonitor({q1: 1.0}, threshold=0.0)
        with pytest.raises(ValueError, match="min_queries"):
            DriftMonitor({q1: 1.0}, min_queries=0)


class TestReselector:
    def test_accepts_better_selection(self, serve_model4):
        lattice = serve_model4.lattice
        schema = lattice.schema
        space = 2 * lattice.size(lattice.top)
        adv_q = pattern(schema, ["p"], ["s"])
        drift_q = pattern(schema, ["c"], ["d"])
        current = advise(lattice, {adv_q: 1.0}, space)
        reselector = AdaptiveReselector(
            lattice, RGreedy(1), space, margin=0.05,
            seed=(lattice.label(lattice.top),),
        )
        outcome = reselector.readvise({drift_q: 90, adv_q: 10}, current)
        assert outcome.accepted
        assert outcome.tau_new < outcome.tau_current
        assert outcome.improvement > 0.05

    def test_rejects_identical_selection(self, serve_model4):
        lattice = serve_model4.lattice
        schema = lattice.schema
        space = 2 * lattice.size(lattice.top)
        adv_q = pattern(schema, ["p"], ["s"])
        current = advise(lattice, {adv_q: 1.0}, space)
        reselector = AdaptiveReselector(
            lattice, RGreedy(1), space, seed=(lattice.label(lattice.top),)
        )
        outcome = reselector.readvise({adv_q: 100}, current)
        assert not outcome.accepted
        assert "identical" in outcome.detail

    def test_margin_validated(self, serve_model4):
        with pytest.raises(ValueError, match="margin"):
            AdaptiveReselector(serve_model4.lattice, RGreedy(1), 100, margin=1.0)

    def test_observed_cost_weighs_unseen_as_zero(self, serve_model4):
        """The 3^n patterns absent from the observed log contribute no
        cost (guarding against the graph's default frequency of 1)."""
        lattice = serve_model4.lattice
        schema = lattice.schema
        q = pattern(schema, ["p"], ["s"])
        top_label = lattice.label(lattice.top)
        cost = observed_cost(lattice, (top_label,), {q: 2.0})
        assert cost == 2.0 * serve_model4.cost(q, lattice.top)


class TestAdaptiveServing:
    """The drift-injected replay acceptance scenario."""

    def _setup(self, fact, model, background, min_queries=50):
        lattice = model.lattice
        schema = lattice.schema
        space = 2 * lattice.size(lattice.top)
        adv_q = pattern(schema, ["p"], ["s"])
        drift_q = pattern(schema, ["c"], ["d"])
        advised = {adv_q: 1.0}
        selection = advise(lattice, advised, space)
        reselector = AdaptiveReselector(
            lattice, RGreedy(1), space, margin=0.05,
            seed=(lattice.label(lattice.top),),
        )
        server = QueryServer(
            fact,
            selection,
            cost_model=model,
            advised=advised,
            reselector=reselector,
            drift_min_queries=min_queries,
            background=background,
        )
        # frequencies skewed >= 2x toward a slice the selection has no
        # index for: the drifted workload the acceptance criterion names
        log = generate_query_log(
            schema, 3 * min_queries, rng=7,
            pattern_frequencies={drift_q: 0.9, adv_q: 0.1},
        )
        return server, selection, log, {drift_q: 0.9, adv_q: 0.1}

    def test_exactly_one_readvise_and_cheaper_swap(
        self, serve_fact4, serve_model4
    ):
        server, old, log, observed = self._setup(
            serve_fact4, serve_model4, background=False
        )
        report = server.replay(log)
        assert report.queries == len(log)
        assert server.readvise_count == 1
        assert server.swap_count == 1
        assert server.telemetry_snapshot()["swaps"] == 1
        new = server.selection
        assert new != tuple(old)
        lattice = serve_model4.lattice
        assert observed_cost(lattice, new, observed) < observed_cost(
            lattice, old, observed
        )

    def test_swap_rebases_drift_monitor(self, serve_fact4, serve_model4):
        server, _old, log, _observed = self._setup(
            serve_fact4, serve_model4, background=False
        )
        server.replay(log)
        assert server.swap_count == 1
        assert server.state.generation == 1
        # monitoring restarted against the new advised distribution
        assert server.drift.observed_total < len(log)

    def test_no_readvise_without_drift(self, serve_fact4, serve_model4):
        lattice = serve_model4.lattice
        schema = lattice.schema
        space = 2 * lattice.size(lattice.top)
        adv_q = pattern(schema, ["p"], ["s"])
        advised = {adv_q: 1.0}
        selection = advise(lattice, advised, space)
        reselector = AdaptiveReselector(
            lattice, RGreedy(1), space, seed=(lattice.label(lattice.top),)
        )
        server = QueryServer(
            serve_fact4, selection, cost_model=serve_model4, advised=advised,
            reselector=reselector, drift_min_queries=20, background=False,
        )
        log = generate_query_log(
            schema, 100, rng=1, pattern_frequencies=advised
        )
        server.replay(log)
        assert server.readvise_count == 0
        assert server.swap_count == 0

    def test_old_selection_serves_during_background_readvise(
        self, serve_fact4, serve_model4
    ):
        """Queries issued while the re-advise is in flight are answered by
        the old catalog; the swap lands only after it completes."""
        server, old, log, _observed = self._setup(
            serve_fact4, serve_model4, background=True, min_queries=20
        )
        release = threading.Event()
        started = threading.Event()
        inner = server.reselector.readvise

        def gated(observed, current):
            started.set()
            release.wait(timeout=30)
            return inner(observed, current)

        server.reselector.readvise = gated
        old_labels = set(old)
        for entry in log:
            server.serve(entry)
            if started.is_set():
                break
        assert started.wait(timeout=30), "re-advise never triggered"
        # the re-advise is blocked in flight: serving continues on the
        # old selection, and no swap can have happened yet
        for entry in log[:10]:
            outcome = server.serve(entry)
            assert outcome.structure in old_labels
        assert server.swap_count == 0
        assert server.state.generation == 0
        release.set()
        server.drain(timeout=30)
        assert server.readvise_count == 1
        assert server.swap_count == 1
        assert server.state.generation == 1
        assert server.selection != tuple(old)


class TestCrashSafeSwap:
    """A crashed re-advise or mid-swap crash must never take serving
    down: the old generation keeps answering, the failure is counted."""

    def _drifting_server(self, fact, model, min_queries=30):
        lattice = model.lattice
        schema = lattice.schema
        space = 2 * lattice.size(lattice.top)
        adv_q = pattern(schema, ["p"], ["s"])
        drift_q = pattern(schema, ["c"], ["d"])
        advised = {adv_q: 1.0}
        selection = advise(lattice, advised, space)
        reselector = AdaptiveReselector(
            lattice, RGreedy(1), space, margin=0.05,
            seed=(lattice.label(lattice.top),),
        )
        server = QueryServer(
            fact,
            selection,
            cost_model=model,
            advised=advised,
            reselector=reselector,
            drift_min_queries=min_queries,
            background=False,
        )
        log = generate_query_log(
            schema, 3 * min_queries, rng=7,
            pattern_frequencies={drift_q: 0.9, adv_q: 0.1},
        )
        return server, selection, log

    def test_readvise_crash_keeps_serving(self, serve_fact4, serve_model4):
        server, old, log = self._drifting_server(serve_fact4, serve_model4)
        golden = QueryServer(
            serve_fact4, old, cost_model=serve_model4
        ).serve_batch(log)

        def crash(observed, current):
            raise RuntimeError("advisor died")

        server.reselector.readvise = crash
        outcomes = server.serve_batch(log)
        for outcome, reference in zip(outcomes, golden):
            assert outcome.groups == reference.groups
        assert server.readvise_failures >= 1
        assert server.swap_count == 0
        assert server.state.generation == 0
        assert server.selection == tuple(old)
        document = server.telemetry_snapshot()
        assert (
            document["resilience"]["readvise_failures"]
            == server.readvise_failures
        )
        failed = [o for o in server.outcomes if not o.accepted]
        assert failed and "re-advise crashed" in failed[-1].detail

    def test_mid_swap_crash_keeps_old_generation(
        self, serve_fact4, serve_model4
    ):
        server, old, log = self._drifting_server(serve_fact4, serve_model4)
        golden = QueryServer(
            serve_fact4, old, cost_model=serve_model4
        ).serve_batch(log)
        real_materialize = server._materialize
        crashes = [0]

        def crashing(names, generation):
            if generation >= 1:
                crashes[0] += 1
                raise RuntimeError("materialize died mid-swap")
            return real_materialize(names, generation)

        server._materialize = crashing
        outcomes = server.serve_batch(log)
        for outcome, reference in zip(outcomes, golden):
            assert outcome.groups == reference.groups
        assert crashes[0] >= 1
        assert server.readvise_failures == crashes[0]
        assert server.swap_count == 0
        assert server.state.generation == 0
        assert server.telemetry_snapshot()["swaps"] == 0
        failed = [o for o in server.outcomes if not o.accepted]
        assert failed and "hot swap crashed" in failed[-1].detail

    def test_crash_sets_cooldown_not_livelock(self, serve_fact4, serve_model4):
        """After a crash the very next query must not re-trigger the
        same crashing re-advise (cooldown), but a later drift window
        may."""
        server, _old, log = self._drifting_server(serve_fact4, serve_model4)
        calls = [0]

        def crash(observed, current):
            calls[0] += 1
            raise RuntimeError("advisor died")

        server.reselector.readvise = crash
        server.serve_batch(log)
        # one crash per cooldown window, not one per query
        assert 1 <= calls[0] <= 3
        assert server.readvise_failures == calls[0]


class TestPrunedReadvise:
    """prune=True (the default) mines the observed workload instead of
    rebuilding the 3^n universe, and certifies what pruning may forgo."""

    def test_pruned_outcome_carries_forgone_bound(self, serve_model4):
        lattice = serve_model4.lattice
        schema = lattice.schema
        space = 2 * lattice.size(lattice.top)
        adv_q = pattern(schema, ["p"], ["s"])
        drift_q = pattern(schema, ["c"], ["d"])
        current = advise(lattice, {adv_q: 1.0}, space)
        reselector = AdaptiveReselector(
            lattice, RGreedy(1), space,
            seed=(lattice.label(lattice.top),),
        )
        outcome = reselector.readvise({drift_q: 90, adv_q: 10}, current)
        assert outcome.forgone_bound is not None
        assert outcome.forgone_bound >= 0.0

    def test_full_universe_outcome_has_no_bound(self, serve_model4):
        lattice = serve_model4.lattice
        schema = lattice.schema
        space = 2 * lattice.size(lattice.top)
        adv_q = pattern(schema, ["p"], ["s"])
        current = advise(lattice, {adv_q: 1.0}, space)
        reselector = AdaptiveReselector(
            lattice, RGreedy(1), space, prune=False,
            seed=(lattice.label(lattice.top),),
        )
        outcome = reselector.readvise({adv_q: 100}, current)
        assert outcome.forgone_bound is None

    def test_pruned_and_full_agree_on_concentrated_drift(self, serve_model4):
        """On a workload concentrated enough for mining to keep every
        hot candidate, both paths reach selections of equal cost."""
        lattice = serve_model4.lattice
        schema = lattice.schema
        space = 2 * lattice.size(lattice.top)
        adv_q = pattern(schema, ["p"], ["s"])
        drift_q = pattern(schema, ["c"], ["d"])
        current = advise(lattice, {adv_q: 1.0}, space)
        observed = {drift_q: 90.0, adv_q: 10.0}
        pruned = AdaptiveReselector(
            lattice, RGreedy(1), space,
            seed=(lattice.label(lattice.top),),
        ).readvise(observed, current)
        full = AdaptiveReselector(
            lattice, RGreedy(1), space, prune=False,
            seed=(lattice.label(lattice.top),),
        ).readvise(observed, current)
        assert pruned.accepted == full.accepted
        assert pruned.tau_new == pytest.approx(full.tau_new)
        assert pruned.tau_current == pytest.approx(full.tau_current)
        assert pruned.tau_new - full.tau_new <= pruned.forgone_bound + 1e-9

    def test_empty_observation_skips_mining(self, serve_model4):
        lattice = serve_model4.lattice
        reselector = AdaptiveReselector(
            lattice, RGreedy(1), 2 * lattice.size(lattice.top),
            seed=(lattice.label(lattice.top),),
        )
        outcome = reselector.readvise({}, ())
        assert not outcome.accepted
        assert "no observed workload" in outcome.detail

    def test_incumbent_stays_priceable_on_pruned_graph(self, serve_model4):
        """τ_current must be computable even when the incumbent holds
        structures the observed workload would never have mined."""
        lattice = serve_model4.lattice
        schema = lattice.schema
        space = 2 * lattice.size(lattice.top)
        adv_q = pattern(schema, ["p"], ["s"])
        drift_q = pattern(schema, ["c"], ["d"])
        current = advise(lattice, {adv_q: 1.0}, space)
        assert len(current) > 1  # something beyond the top view
        outcome = AdaptiveReselector(
            lattice, RGreedy(1), space,
            seed=(lattice.label(lattice.top),),
        ).readvise({drift_q: 100.0}, current)
        expected = observed_cost(lattice, current, {drift_q: 100.0})
        assert outcome.tau_current == pytest.approx(expected)
