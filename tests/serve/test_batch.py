"""Batched execution: byte-identical to per-query serial execution.

The acceptance bar for the batched path is *bit-for-bit* equality with
the engine executor on every slice-query pattern of the d=4 and d=5
fixtures — same groups (float accumulation order preserved), same rows
processed, same predictions — plus the structural properties batching
adds: in-batch deduplication and plan memoization.
"""

import numpy as np
import pytest

from repro.core.query import enumerate_slice_queries
from repro.cube.query_log import LogEntry, generate_query_log
from repro.serve import DEFAULT_BATCH_SIZE, QueryServer, RAW_LABEL
from repro.serve.batch import plan_for

from tests.serve.test_server import advise_selection, all_pattern_entries


class TestByteIdentity:
    """serve_batch answers == Executor.execute answers, exactly."""

    def _assert_identical(self, fact, schema, model):
        selection = advise_selection(model.lattice)
        server = QueryServer(fact, selection, cost_model=model)
        entries = all_pattern_entries(schema, per_pattern=2)
        outcomes = server.serve_batch(entries)
        executor = server.state.executor
        for entry, outcome in zip(entries, outcomes):
            view, index, predicted = executor.plan_with_cost(entry.query)
            reference = executor.execute(
                entry.query, entry.bound_values, plan=(view, index)
            )
            # == on floats: byte-identity, not approximate equality
            assert outcome.groups == reference.groups, str(entry.query)
            assert outcome.actual_rows == reference.rows_processed
            assert outcome.predicted_rows == predicted
            assert not outcome.fallback

    def test_d4_batch_matches_executor(
        self, serve_fact4, serve_schema4, serve_model4
    ):
        self._assert_identical(serve_fact4, serve_schema4, serve_model4)

    def test_d5_batch_matches_executor(
        self, serve_fact5, serve_schema5, serve_model5
    ):
        self._assert_identical(serve_fact5, serve_schema5, serve_model5)

    def test_raw_fallback_matches_serial(self, serve_fact4, serve_model4):
        """The vectorized raw path reproduces the raw-scan outcome the
        unbatched server reported (ungrouped sums use the same pairwise
        summation)."""
        server = QueryServer(serve_fact4, ["none"], cost_model=serve_model4)
        entries = [
            e
            for e in all_pattern_entries(serve_fact4.schema, per_pattern=1, rng=7)
            if e.query.view.attrs  # γ()σ() is answerable by the none view
        ]
        outcomes = server.serve_batch(entries)
        for entry, outcome in zip(entries, outcomes):
            assert outcome.fallback
            assert outcome.structure == RAW_LABEL
            assert outcome.actual_rows == serve_fact4.n_rows
            single = QueryServer(
                serve_fact4, ["none"], cost_model=serve_model4
            ).serve(entry)
            assert outcome.groups == single.groups

    def test_batch_of_one_equals_serve(self, serve_fact4, serve_model4):
        selection = advise_selection(serve_model4.lattice)
        server = QueryServer(serve_fact4, selection, cost_model=serve_model4)
        entry = all_pattern_entries(serve_fact4.schema, per_pattern=1)[5]
        a = server.serve(entry)
        [b] = server.serve_batch([entry])
        assert a.groups == b.groups
        assert a.structure == b.structure
        assert a.actual_rows == b.actual_rows


class TestDeduplication:
    def test_duplicate_queries_execute_once(self, serve_fact4, serve_model4):
        """Identical concrete queries in one batch collapse to a single
        execution but still produce one outcome (and one telemetry
        record) each."""
        selection = advise_selection(serve_model4.lattice)
        server = QueryServer(serve_fact4, selection, cost_model=serve_model4)
        entry = all_pattern_entries(serve_fact4.schema, per_pattern=1)[3]
        outcomes = server.serve_batch([entry] * 5)
        assert len(outcomes) == 5
        assert len({id(o.groups) for o in outcomes}) == 1  # shared result
        assert server.telemetry.queries == 5

    def test_dedup_does_not_conflate_different_values(
        self, serve_fact4, serve_schema4, serve_model4
    ):
        """Same pattern, different bindings: distinct executions."""
        query = next(
            q
            for q in enumerate_slice_queries(serve_schema4.names)
            if q.selection and q.groupby
        )
        attr = next(iter(query.selection))
        a = LogEntry(query=query, values=((attr, 0),))
        b = LogEntry(query=query, values=((attr, 1),))
        server = QueryServer(
            serve_fact4,
            advise_selection(serve_model4.lattice),
            cost_model=serve_model4,
        )
        oa, ob = server.serve_batch([a, b])
        assert oa.groups != ob.groups or oa.actual_rows != ob.actual_rows


class TestPlanMemoization:
    def test_plans_cached_per_pattern(self, serve_fact4, serve_model4):
        selection = advise_selection(serve_model4.lattice)
        server = QueryServer(serve_fact4, selection, cost_model=serve_model4)
        entries = all_pattern_entries(serve_fact4.schema, per_pattern=2)
        assert not server.state.plan_cache
        server.serve_batch(entries)
        patterns = {e.query for e in entries}
        assert set(server.state.plan_cache) == patterns
        # memoized plan is the router's plan
        for entry in entries:
            info = plan_for(server.state, server.cost_model, entry.query)
            assert info is server.state.plan_cache[entry.query]

    def test_swap_resets_plan_cache(self, serve_fact4, serve_model4):
        server = QueryServer(
            serve_fact4,
            advise_selection(serve_model4.lattice),
            cost_model=serve_model4,
        )
        server.serve_batch(all_pattern_entries(serve_fact4.schema, 1))
        assert server.state.plan_cache
        server._swap(("pscd",), {})
        assert not server.state.plan_cache


class TestReplayParity:
    """repro replay and live serving share one execution path: replayed
    telemetry counters match the live session's exactly."""

    def test_replay_matches_live_serving(
        self, serve_fact4, serve_schema4, serve_model4
    ):
        selection = advise_selection(serve_model4.lattice)
        log = generate_query_log(serve_schema4, 120, rng=11)
        live = QueryServer(serve_fact4, selection, cost_model=serve_model4)
        for entry in log:  # a live session: queries arrive one by one
            live.serve(entry)
        replayed = QueryServer(serve_fact4, selection, cost_model=serve_model4)
        report = replayed.replay(log)
        assert report.batch_size == DEFAULT_BATCH_SIZE
        a, b = live.telemetry_snapshot(), replayed.telemetry_snapshot()
        assert a["queries"] == b["queries"] == 120
        assert a["hits"] == b["hits"]
        assert a["fallbacks"] == b["fallbacks"]
        assert a["cost"]["predicted_rows"] == b["cost"]["predicted_rows"]
        assert a["cost"]["actual_rows"] == b["cost"]["actual_rows"]
        assert a["cost"]["exact_matches"] == b["cost"]["exact_matches"]
        # identical per-query records, in the same order
        strip = lambda recs: [dict(r) for r in recs]
        assert strip(a["records"]) == strip(b["records"])

    def test_replay_batch_size_does_not_change_counters(
        self, serve_fact4, serve_schema4, serve_model4
    ):
        selection = advise_selection(serve_model4.lattice)
        log = generate_query_log(serve_schema4, 90, rng=13)
        snapshots = []
        for size in (1, 7, 64):
            server = QueryServer(
                serve_fact4, selection, cost_model=serve_model4
            )
            report = server.replay(log, batch_size=size)
            assert report.batch_size == size
            snap = server.telemetry_snapshot()
            snapshots.append(
                (snap["hits"], snap["cost"]["actual_rows"], snap["queries"])
            )
        assert snapshots[0] == snapshots[1] == snapshots[2]

    def test_replay_rejects_bad_batch_size(self, serve_fact4, serve_model4):
        server = QueryServer(serve_fact4, ["pscd"], cost_model=serve_model4)
        with pytest.raises(ValueError, match="batch_size"):
            server.replay([], batch_size=0)
