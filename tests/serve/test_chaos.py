"""The chaos harness run small: every scenario green at d=3.

The harness is its own verifier (zero wrong answers, exact fault
accounting per scenario); this suite pins that it stays green on the
cheap fixture and that its report/CLI contract holds.
"""

import json

import numpy as np
import pytest

from repro.serve.chaos import (
    SCENARIOS,
    build_context,
    integer_measure_fact,
    main,
    run_matrix,
)


@pytest.fixture(scope="module")
def reports():
    return run_matrix(dims=3, queries=120, replicas=2, workers=2, seed=0)


class TestScenarios:
    def test_all_scenarios_pass(self, reports):
        assert [r.scenario for r in reports] == list(SCENARIOS)
        for report in reports:
            assert report.ok, f"{report.scenario}: {report.detail}"

    def test_zero_wrong_answers_everywhere(self, reports):
        assert all(r.wrong_answers == 0 for r in reports)

    def test_every_fault_accounted(self, reports):
        for report in reports:
            assert report.injected > 0, report.scenario
            assert report.accounted == report.injected, (
                f"{report.scenario}: {report.injected} injected vs "
                f"{report.accounted} accounted"
            )

    def test_report_serializes(self, reports):
        for report in reports:
            document = report.to_json()
            json.dumps(document)  # no unserializable leftovers
            assert document["scenario"] == report.scenario
            assert document["ok"] is True


class TestFixture:
    def test_integer_measures_are_integral(self):
        fact = integer_measure_fact(3)
        assert np.array_equal(fact.measures, np.rint(fact.measures))

    def test_golden_answers_deterministic(self):
        a = build_context(3, 60, seed=0)
        b = build_context(3, 60, seed=0)
        assert a.golden == b.golden
        assert a.selection == b.selection


class TestCli:
    def test_single_scenario_and_json_report(self, tmp_path):
        out = tmp_path / "chaos.json"
        code = main(
            [
                "--dims",
                "3",
                "--queries",
                "80",
                "--scenario",
                "structure_poison",
                "--json",
                str(out),
            ]
        )
        assert code == 0
        document = json.loads(out.read_text())
        assert document["failures"] == 0
        assert [s["scenario"] for s in document["scenarios"]] == [
            "structure_poison"
        ]
        assert document["scenarios"][0]["wrong_answers"] == 0
