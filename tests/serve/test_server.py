"""QueryServer: routing, execution fidelity, fallback, concurrent replay.

The headline assertion is the paper's cost model made falsifiable: on a
dense cube every answerable query's *actual* rows processed equals the
model's ``|C| / |E|`` prediction exactly — for every slice-query pattern
of the d=4 and d=5 TPC-D serving fixtures.
"""

import numpy as np
import pytest

from repro.algorithms import RGreedy
from repro.core.benefit import BenefitEngine
from repro.core.qvgraph import QueryViewGraph
from repro.core.query import enumerate_slice_queries
from repro.cube.query_log import LogEntry, generate_query_log, pattern_counts
from repro.serve import QueryServer, RAW_LABEL, WorkloadRecorder, validate_telemetry


def advise_selection(lattice, space_factor=3.0, r=1):
    """A realistic mixed selection (views + fat indexes) for serving."""
    graph = QueryViewGraph.from_cube(lattice)
    engine = BenefitEngine(graph)
    top_label = lattice.label(lattice.top)
    space = space_factor * lattice.size(lattice.top)
    return RGreedy(r).run(engine, space, seed=(top_label,)).selected


def all_pattern_entries(schema, per_pattern=2, rng=0):
    """Concrete entries covering *every* slice-query pattern."""
    generator = np.random.default_rng(rng)
    entries = []
    for query in enumerate_slice_queries(schema.names):
        for _ in range(per_pattern):
            values = tuple(
                sorted(
                    (attr, int(generator.integers(0, schema.cardinality(attr))))
                    for attr in query.selection
                )
            )
            entries.append(LogEntry(query=query, values=values))
    return entries


class TestExactCostFidelity:
    """Predicted |C|/|E| == actual rows scanned, on every answerable query."""

    def _assert_exact(self, fact, schema, model):
        selection = advise_selection(model.lattice)
        server = QueryServer(fact, selection, cost_model=model)
        entries = all_pattern_entries(schema)
        for entry in entries:
            outcome = server.serve(entry)
            assert not outcome.fallback, f"{entry.query} fell back to raw"
            assert outcome.actual_rows == outcome.predicted_rows, (
                f"{entry.query} via {outcome.structure}: predicted "
                f"{outcome.predicted_rows}, scanned {outcome.actual_rows}"
            )
        snap = server.telemetry_snapshot()
        assert snap["queries"] == len(entries)
        assert snap["fallbacks"] == 0
        assert snap["cost"]["exact_matches"] == len(entries)
        assert snap["cost"]["max_abs_error"] == 0.0
        validate_telemetry(snap)

    def test_d4_every_pattern_exact(self, serve_fact4, serve_schema4, serve_model4):
        self._assert_exact(serve_fact4, serve_schema4, serve_model4)

    def test_d5_every_pattern_exact(self, serve_fact5, serve_schema5, serve_model5):
        self._assert_exact(serve_fact5, serve_schema5, serve_model5)

    def test_index_routes_beat_scans(self, serve_fact4, serve_model4):
        """Selection-heavy queries route through indexes, not full scans."""
        selection = advise_selection(serve_model4.lattice)
        server = QueryServer(serve_fact4, selection, cost_model=serve_model4)
        index_hits = 0
        for entry in all_pattern_entries(server.fact.schema, per_pattern=1):
            outcome = server.serve(entry)
            if outcome.structure.startswith("I_"):
                index_hits += 1
                assert entry.query.selection, "index route on selection-free query"
        assert index_hits > 0


class TestFallback:
    def test_unanswerable_query_falls_back_to_raw(self, serve_fact4, serve_model4):
        server = QueryServer(serve_fact4, ["none"], cost_model=serve_model4)
        entry = LogEntry(
            query=next(
                q
                for q in enumerate_slice_queries(serve_fact4.schema.names)
                if q.groupby
            ),
            values=(),
        )
        outcome = server.serve(entry)
        assert outcome.fallback
        assert outcome.structure == RAW_LABEL
        assert outcome.actual_rows == serve_fact4.n_rows
        assert outcome.predicted_rows == serve_model4.default_cost(entry.query)
        assert server.telemetry.fallbacks == 1

    def test_fallback_answers_match_materialized(self, serve_fact4, serve_model4):
        """The raw-scan fallback computes the same groups as a view plan."""
        schema = serve_fact4.schema
        served = QueryServer(
            serve_fact4,
            advise_selection(serve_model4.lattice),
            cost_model=serve_model4,
        )
        bare = QueryServer(serve_fact4, ["none"], cost_model=serve_model4)
        entries = [
            e
            for e in all_pattern_entries(schema, per_pattern=1, rng=9)
            if e.query.view.attrs  # γ()σ() is answerable by the none view
        ]
        for entry in entries[:20]:
            fast = served.serve(entry)
            slow = bare.serve(entry)
            assert slow.fallback
            assert fast.groups.keys() == slow.groups.keys()
            for key, value in fast.groups.items():
                assert slow.groups[key] == pytest.approx(value)


class TestReplay:
    def test_serial_replay_report(self, serve_fact4, serve_schema4, serve_model4):
        selection = advise_selection(serve_model4.lattice)
        server = QueryServer(serve_fact4, selection, cost_model=serve_model4)
        log = generate_query_log(serve_schema4, 50, rng=2)
        report = server.replay(log)
        assert report.queries == 50
        assert report.fallbacks == 0
        assert report.workers == 1
        assert report.qps > 0
        assert report.p50_us <= report.p99_us
        assert len(report.latencies_us) == 50

    def test_concurrent_replay_equivalent(
        self, serve_fact4, serve_schema4, serve_model4
    ):
        """workers=2 serves the same queries to the same structures with
        the same cost accounting as the serial replay."""
        selection = advise_selection(serve_model4.lattice)
        log = generate_query_log(serve_schema4, 80, rng=4)
        serial = QueryServer(serve_fact4, selection, cost_model=serve_model4)
        pooled = QueryServer(serve_fact4, selection, cost_model=serve_model4)
        serial.replay(log)
        report = pooled.replay(log, workers=2)
        assert report.workers == 2
        a, b = serial.telemetry_snapshot(), pooled.telemetry_snapshot()
        assert a["queries"] == b["queries"] == 80
        assert a["fallbacks"] == b["fallbacks"] == 0
        assert a["hits"] == b["hits"]
        assert a["cost"]["predicted_rows"] == b["cost"]["predicted_rows"]
        assert a["cost"]["actual_rows"] == b["cost"]["actual_rows"]
        assert a["cost"]["exact_matches"] == b["cost"]["exact_matches"]

    def test_replay_records_workload(
        self, serve_fact4, serve_schema4, serve_model4, tmp_path
    ):
        """Recorder + concurrent replay: every entry lands in the log once."""
        from repro.io import load_query_log

        selection = advise_selection(serve_model4.lattice)
        log = generate_query_log(serve_schema4, 60, rng=6)
        path = tmp_path / "observed.jsonl"
        with WorkloadRecorder(path) as recorder:
            server = QueryServer(
                serve_fact4, selection, cost_model=serve_model4, recorder=recorder
            )
            server.replay(log, workers=2)
        replayed = load_query_log(path, serve_schema4)
        assert pattern_counts(replayed) == pattern_counts(log)
        assert sorted(e.values for e in replayed) == sorted(e.values for e in log)


class TestSnapshotMeta:
    def test_meta_carries_selection_and_catalog(
        self, serve_fact4, serve_model4
    ):
        selection = advise_selection(serve_model4.lattice)
        server = QueryServer(serve_fact4, selection, cost_model=serve_model4)
        snap = server.telemetry_snapshot()
        assert tuple(snap["meta"]["selection"]) == tuple(selection)
        assert snap["meta"]["generation"] == 0
        assert snap["meta"]["catalog"]["views"] >= 1
        assert snap["meta"]["readvises"] == 0

    def test_default_cost_model_is_exact(self, serve_fact4):
        """Without an explicit model the server measures the fact table."""
        server = QueryServer(serve_fact4, ["pscd"])
        top = server.cost_model.lattice.top
        assert server.cost_model.lattice.size(top) == serve_fact4.n_rows
