"""Recorder round-trip: recorded logs replay to identical workloads."""

import json
import subprocess
import sys
import textwrap

import pytest

from repro.cube.query_log import (
    LogEntry,
    estimate_frequencies,
    generate_query_log,
    pattern_counts,
)
from repro.io import load_query_log, save_query_log
from repro.serve import WorkloadRecorder


class TestRecorderRoundTrip:
    def test_write_replay_identical_frequencies(self, serve_schema4, tmp_path):
        """Satellite: write -> replay -> identical Workload frequencies."""
        log = generate_query_log(serve_schema4, 300, rng=3)
        path = tmp_path / "observed.jsonl"
        with WorkloadRecorder(path) as recorder:
            for entry in log:
                recorder.record(entry)
        replayed = load_query_log(path, serve_schema4)
        assert replayed == log  # entries, order, and bound values
        assert estimate_frequencies(replayed) == estimate_frequencies(log)
        assert pattern_counts(replayed) == pattern_counts(log)

    def test_empty_log(self, serve_schema4, tmp_path):
        path = tmp_path / "empty.jsonl"
        with WorkloadRecorder(path):
            pass
        assert path.exists()
        assert load_query_log(path, serve_schema4) == []
        assert pattern_counts([]) == {}

    def test_single_query(self, serve_schema4, tmp_path):
        entry = generate_query_log(serve_schema4, 1, rng=0)[0]
        path = tmp_path / "one.jsonl"
        with WorkloadRecorder(path) as recorder:
            recorder.record(entry)
        replayed = load_query_log(path, serve_schema4)
        assert replayed == [entry]
        assert estimate_frequencies(replayed) == {entry.query: 1.0}

    def test_in_memory_only(self, serve_schema4):
        log = generate_query_log(serve_schema4, 5, rng=0)
        recorder = WorkloadRecorder()
        for entry in log:
            recorder.record(entry)
        assert recorder.entries == log
        assert len(recorder) == 5
        recorder.close()

    def test_record_after_close_rejected(self, serve_schema4):
        entry = generate_query_log(serve_schema4, 1, rng=0)[0]
        recorder = WorkloadRecorder()
        recorder.close()
        with pytest.raises(ValueError, match="closed"):
            recorder.record(entry)

    def test_matches_save_query_log_format(self, serve_schema4, tmp_path):
        """The recorder's file is byte-identical to save_query_log."""
        log = generate_query_log(serve_schema4, 20, rng=5)
        recorded = tmp_path / "recorded.jsonl"
        saved = tmp_path / "saved.jsonl"
        with WorkloadRecorder(recorded) as recorder:
            for entry in log:
                recorder.record(entry)
        save_query_log(log, saved)
        assert recorded.read_bytes() == saved.read_bytes()


class TestCrashSafety:
    """A recorder that dies mid-stream still leaves a loadable log."""

    def test_sigkill_mid_stream_leaves_loadable_log(
        self, serve_schema4, tmp_path
    ):
        """A server process SIGKILLed between records (no atexit, no
        __exit__, no flush) leaves every recorded entry on disk — the
        line-buffered writer reaches the OS per record."""
        log = generate_query_log(serve_schema4, 25, rng=1)
        source = tmp_path / "workload.jsonl"
        save_query_log(log, source)
        path = tmp_path / "killed.jsonl"
        script = textwrap.dedent(
            f"""
            import os, signal
            from repro.datasets.tpcd import tpcd_serving_schema
            from repro.io import load_query_log
            from repro.serve import WorkloadRecorder

            schema = tpcd_serving_schema(4)
            recorder = WorkloadRecorder({str(path)!r})
            for entry in load_query_log({str(source)!r}, schema):
                recorder.record(entry)
            os.kill(os.getpid(), signal.SIGKILL)  # no cleanup of any kind
            """
        )
        proc = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True
        )
        assert proc.returncode == -9, proc.stderr
        assert load_query_log(path, serve_schema4) == log

    def test_exception_exit_closes_and_flushes(self, serve_schema4, tmp_path):
        log = generate_query_log(serve_schema4, 10, rng=2)
        path = tmp_path / "aborted.jsonl"
        with pytest.raises(RuntimeError, match="mid-serving crash"):
            with WorkloadRecorder(path) as recorder:
                for entry in log:
                    recorder.record(entry)
                raise RuntimeError("mid-serving crash")
        assert recorder.closed
        assert load_query_log(path, serve_schema4) == log

    def test_server_shutdown_closes_recorder(
        self, serve_fact4, serve_schema4, serve_model4, tmp_path
    ):
        """QueryServer.close (and context-manager exit, even on an
        exception) closes its recorder; the log loads afterwards."""
        from repro.serve import QueryServer

        log = generate_query_log(serve_schema4, 15, rng=4)
        path = tmp_path / "shutdown.jsonl"
        recorder = WorkloadRecorder(path)
        with pytest.raises(RuntimeError, match="serving aborted"):
            with QueryServer(
                serve_fact4, ["pscd"], cost_model=serve_model4, recorder=recorder
            ) as server:
                server.replay(log)
                raise RuntimeError("serving aborted")
        assert recorder.closed
        assert load_query_log(path, serve_schema4) == log
        server.close()  # idempotent


class TestQueryLogValidation:
    """repro.io rejects malformed query-log records with one-line errors."""

    def test_unknown_selection_attribute_rejected(self, serve_schema4, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps(
                {"groupby": ["p"], "selection": ["zz"], "values": {"zz": 0}}
            )
            + "\n"
        )
        with pytest.raises(ValueError, match="zz"):
            load_query_log(path, serve_schema4)

    def test_unknown_groupby_attribute_rejected(self, serve_schema4, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"groupby": ["qq"], "selection": [], "values": {}}) + "\n"
        )
        with pytest.raises(ValueError, match="qq"):
            load_query_log(path, serve_schema4)

    def test_error_names_the_line(self, serve_schema4, tmp_path):
        good = json.dumps({"groupby": ["p"], "selection": [], "values": {}})
        bad = json.dumps(
            {"groupby": [], "selection": ["zz"], "values": {"zz": 1}}
        )
        path = tmp_path / "mixed.jsonl"
        path.write_text(good + "\n" + bad + "\n")
        with pytest.raises(ValueError, match=r"mixed\.jsonl:2"):
            load_query_log(path, serve_schema4)

    def test_value_out_of_domain_rejected(self, serve_schema4, tmp_path):
        card = serve_schema4.cardinality("p")
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps(
                {"groupby": [], "selection": ["p"], "values": {"p": card}}
            )
            + "\n"
        )
        with pytest.raises(ValueError, match="p"):
            load_query_log(path, serve_schema4)

    def test_values_must_cover_selection(self, serve_schema4, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"groupby": [], "selection": ["p"], "values": {}}) + "\n"
        )
        with pytest.raises(ValueError):
            load_query_log(path, serve_schema4)

    def test_invalid_json_line_rejected(self, serve_schema4, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValueError, match=r"bad\.jsonl:1"):
            load_query_log(path, serve_schema4)
