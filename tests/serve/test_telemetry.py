"""Telemetry collector aggregation and snapshot validation."""

import threading

import pytest

from repro.serve import (
    RAW_LABEL,
    TELEMETRY_SCHEMA_VERSION,
    TelemetryCollector,
    validate_telemetry,
)
from repro.serve.telemetry import LATENCY_BUCKETS_US, _percentile


class TestPercentile:
    def test_empty(self):
        assert _percentile([], 0.5) == 0.0

    def test_single(self):
        assert _percentile([7.0], 0.99) == 7.0

    def test_median_and_tail(self):
        samples = [float(v) for v in range(1, 102)]  # 1..101, median 51
        assert _percentile(samples, 0.50) == 51.0
        assert _percentile(samples, 0.99) == 100.0
        assert _percentile(samples, 1.0) == 101.0


class TestCollector:
    def test_counts_and_hits(self):
        t = TelemetryCollector()
        t.record("q1", "ps", 10.0, 5.0, 5)
        t.record("q2", "ps", 20.0, 3.0, 4)
        t.record("q3", RAW_LABEL, 30.0, 100.0, 100, fallback=True)
        snap = t.snapshot()
        assert snap["queries"] == 3
        assert snap["fallbacks"] == 1
        assert snap["hits"] == {"ps": 2, RAW_LABEL: 1}
        assert snap["cost"]["exact_matches"] == 2
        assert snap["cost"]["max_abs_error"] == 1.0
        validate_telemetry(snap)

    def test_histogram_sums_to_queries(self):
        t = TelemetryCollector()
        for latency in (5.0, 50.0, 5_000.0, 5_000_000.0):
            t.record("q", "v", latency, 1.0, 1)
        snap = t.snapshot()
        histogram = snap["latency_us"]["histogram"]
        assert len(histogram) == len(LATENCY_BUCKETS_US)
        assert sum(b["count"] for b in histogram) == 4
        assert histogram[-1]["count"] == 1  # the 5-second outlier

    def test_swap_counter(self):
        t = TelemetryCollector()
        t.note_swap()
        t.note_swap()
        assert t.snapshot()["swaps"] == 2

    def test_records_optional(self):
        t = TelemetryCollector(keep_records=False)
        t.record("q", "v", 1.0, 1.0, 1)
        snap = t.snapshot()
        assert "records" not in snap
        validate_telemetry(snap)

    def test_meta_attached(self):
        t = TelemetryCollector()
        snap = t.snapshot(meta={"selection": ["psc"]})
        assert snap["meta"]["selection"] == ["psc"]

    def test_thread_safety(self):
        t = TelemetryCollector()

        def hammer():
            for _ in range(500):
                t.record("q", "v", 1.0, 2.0, 2)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snap = t.snapshot()
        assert snap["queries"] == 2000
        assert snap["hits"]["v"] == 2000
        validate_telemetry(snap)


class TestValidate:
    def _valid(self):
        t = TelemetryCollector()
        t.record("q", "v", 1.0, 1.0, 1)
        return t.snapshot()

    def test_accepts_valid(self):
        doc = self._valid()
        assert validate_telemetry(doc) is doc

    def test_rejects_non_object(self):
        with pytest.raises(ValueError, match="JSON object"):
            validate_telemetry([])

    def test_rejects_wrong_version(self):
        doc = self._valid()
        doc["schema_version"] = TELEMETRY_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema_version"):
            validate_telemetry(doc)

    def test_rejects_hit_mismatch(self):
        doc = self._valid()
        doc["hits"]["v"] = 5
        with pytest.raises(ValueError, match="hit counts"):
            validate_telemetry(doc)

    def test_rejects_fallback_raw_disagreement(self):
        doc = self._valid()
        doc["fallbacks"] = 1
        with pytest.raises(ValueError, match="raw hits"):
            validate_telemetry(doc)

    def test_rejects_bad_histogram(self):
        doc = self._valid()
        doc["latency_us"]["histogram"] = doc["latency_us"]["histogram"][:-1]
        with pytest.raises(ValueError, match="histogram"):
            validate_telemetry(doc)

    def test_rejects_record_count_mismatch(self):
        doc = self._valid()
        doc["records"] = []
        with pytest.raises(ValueError, match="records"):
            validate_telemetry(doc)

    def test_survives_json_round_trip(self):
        import json

        doc = json.loads(json.dumps(self._valid()))
        validate_telemetry(doc)


class TestResilienceCounters:
    """Schema v3: the resilience block records, merges, and validates."""

    def test_counters_in_snapshot(self):
        from repro.serve import RESILIENCE_COUNTER_FIELDS

        t = TelemetryCollector()
        t.record("q", "v", 1.0, 1.0, 1)
        t.note_executor_error("ps")
        t.note_executor_error("ps")
        t.note_raw_rescue()
        t.note_raw_rescue()
        t.note_breaker_trip()
        t.note_worker_crash()
        t.note_worker_restart()
        t.note_retry()
        t.note_deadline_timeout()
        t.note_readvise_failure()
        doc = validate_telemetry(t.snapshot())
        resilience = doc["resilience"]
        assert doc["schema_version"] == TELEMETRY_SCHEMA_VERSION
        assert resilience["executor_errors"] == {"ps": 2}
        assert resilience["raw_rescues"] == 2
        assert resilience["breaker_trips"] == 1
        assert resilience["worker_crashes"] == 1
        assert resilience["worker_restarts"] == 1
        assert resilience["retries"] == 1
        assert resilience["deadline_timeouts"] == 1
        assert resilience["readvise_failures"] == 1
        assert set(RESILIENCE_COUNTER_FIELDS) <= set(resilience)

    def test_counters_merge_additively(self):
        a, b = TelemetryCollector(), TelemetryCollector()
        for t in (a, b):
            t.record("q", "v", 1.0, 1.0, 1)
            t.note_executor_error("ps")
            t.note_raw_rescue()
            t.note_retry()
        merged = TelemetryCollector.merge([a, b])
        resilience = merged.resilience_stats()
        assert resilience["executor_errors"] == {"ps": 2}
        assert resilience["raw_rescues"] == 2
        assert resilience["retries"] == 2

    def test_rejects_rescues_exceeding_errors(self):
        t = TelemetryCollector()
        t.record("q", "v", 1.0, 1.0, 1)
        doc = t.snapshot()
        doc["resilience"]["raw_rescues"] = 5
        with pytest.raises(ValueError, match="raw_rescues"):
            validate_telemetry(doc)

    def test_rejects_negative_counter(self):
        t = TelemetryCollector()
        t.record("q", "v", 1.0, 1.0, 1)
        doc = t.snapshot()
        doc["resilience"]["retries"] = -1
        with pytest.raises(ValueError):
            validate_telemetry(doc)

    def test_upgrades_v1_and_v2(self):
        from repro.serve import upgrade_telemetry

        t = TelemetryCollector()
        t.record("q", "v", 1.0, 1.0, 1)
        doc = t.snapshot()
        for old_version in (1, 2):
            legacy = {
                k: v
                for k, v in doc.items()
                if k not in ("resilience", "cache", "merged_from")
            }
            legacy["schema_version"] = old_version
            upgraded = upgrade_telemetry(legacy)
            validated = validate_telemetry(upgraded)
            assert validated["schema_version"] == TELEMETRY_SCHEMA_VERSION
            assert validated["resilience"]["raw_rescues"] == 0
            assert validated["resilience"]["executor_errors"] == {}


class TestUpgradeChain:
    """Every legacy version upgrades to v4 and the chain composes."""

    #: What each historical schema version did not yet record.
    MISSING = {
        1: ("cache", "merged_from", "resilience", "fleet"),
        2: ("resilience", "fleet"),
        3: ("fleet",),
    }

    def _legacy(self, version):
        from repro.serve import upgrade_telemetry  # noqa: F401  (import check)

        t = TelemetryCollector()
        t.record("q", "ps", 10.0, 5.0, 5)
        t.record("q2", RAW_LABEL, 30.0, 100.0, 100, fallback=True)
        doc = t.snapshot()
        legacy = {
            k: v for k, v in doc.items() if k not in self.MISSING[version]
        }
        legacy["schema_version"] = version
        return legacy

    @pytest.mark.parametrize("version", [1, 2, 3])
    def test_each_version_upgrades_and_validates(self, version):
        from repro.serve import upgrade_telemetry

        upgraded = upgrade_telemetry(self._legacy(version))
        validated = validate_telemetry(upgraded)
        assert validated["schema_version"] == TELEMETRY_SCHEMA_VERSION
        # every historically-missing block is filled with its empty default
        assert validated["cache"]["enabled"] is False
        assert validated["merged_from"] == 1
        assert validated["resilience"]["raw_rescues"] == 0
        from repro.serve.telemetry import empty_fleet_stats

        assert validated["fleet"] == empty_fleet_stats()
        # and the recorded counters survive the upgrade untouched
        assert validated["queries"] == 2
        assert validated["fallbacks"] == 1

    def test_composed_chain_v1_through_v4(self):
        """v1 → v4 then re-upgrading the result is the identity: the
        whole chain composes into a single fixed point."""
        from repro.serve import upgrade_telemetry

        hop1 = upgrade_telemetry(self._legacy(1))
        hop2 = upgrade_telemetry(hop1)
        hop3 = upgrade_telemetry(hop2)
        assert hop2 is hop1  # v4 documents pass through unchanged
        assert hop3 is hop1
        validated = validate_telemetry(hop3)
        assert validated["schema_version"] == TELEMETRY_SCHEMA_VERSION

    def test_upgrade_does_not_mutate_the_legacy_document(self):
        from repro.serve import upgrade_telemetry

        legacy = self._legacy(2)
        upgrade_telemetry(legacy)
        assert legacy["schema_version"] == 2
        assert "resilience" not in legacy

    @pytest.mark.parametrize("version", [0, 5, "4", "x", None])
    def test_unknown_versions_are_rejected(self, version):
        """Unknown versions pass through the upgrader unchanged and are
        rejected by validation — never silently coerced."""
        from repro.serve import upgrade_telemetry

        legacy = self._legacy(1)
        legacy["schema_version"] = version
        passed = upgrade_telemetry(legacy)
        assert passed is legacy
        with pytest.raises(ValueError, match="schema_version must be 4"):
            validate_telemetry(passed)

    def test_non_dict_documents_pass_through(self):
        from repro.serve import upgrade_telemetry

        assert upgrade_telemetry("not a dict") == "not a dict"  # type: ignore[arg-type]
