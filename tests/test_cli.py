"""Tests for the command-line advisor."""

import json

import pytest

from repro.cli import main
from repro.io import save_lattice


@pytest.fixture
def cube_file(tmp_path, tpcd_lat):
    path = tmp_path / "cube.json"
    save_lattice(tpcd_lat, path)
    return str(path)


@pytest.fixture
def analytical_cube_file(tmp_path):
    path = tmp_path / "small.json"
    path.write_text(
        json.dumps({"dimensions": {"a": 20, "b": 12}, "raw_rows": 100})
    )
    return str(path)


class TestAdvise:
    def test_basic_run(self, cube_file, capsys):
        rc = main(["advise", "--lattice", cube_file, "--space", "25e6"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "average query cost" in out
        assert "psc" in out

    def test_writes_output_json(self, cube_file, tmp_path, capsys):
        out_file = tmp_path / "selection.json"
        rc = main(
            [
                "advise",
                "--lattice",
                cube_file,
                "--space",
                "25e6",
                "--algorithm",
                "1greedy",
                "--fit",
                "paper",
                "--output",
                str(out_file),
            ]
        )
        assert rc == 0
        doc = json.loads(out_file.read_text())
        assert doc["algorithm"] == "1-greedy"
        assert doc["selected"][0] == "psc"
        assert doc["average_query_cost"] < 0.75e6

    def test_budget_smaller_than_top_view_errors(self, cube_file, capsys):
        rc = main(["advise", "--lattice", cube_file, "--space", "1000"])
        assert rc == 2
        assert "top view" in capsys.readouterr().err

    def test_no_seed_top_allows_small_budget(self, cube_file, capsys):
        rc = main(
            [
                "advise",
                "--lattice",
                cube_file,
                "--space",
                "1.5e6",
                "--no-seed-top",
            ]
        )
        assert rc == 0

    def test_analytical_lattice_input(self, analytical_cube_file, capsys):
        rc = main(
            ["advise", "--lattice", analytical_cube_file, "--space", "300"]
        )
        assert rc == 0
        assert "average query cost" in capsys.readouterr().out

    @pytest.mark.parametrize("algo", ["2greedy", "inner", "two-step", "hru"])
    def test_every_algorithm_runs(self, analytical_cube_file, algo, capsys):
        rc = main(
            [
                "advise",
                "--lattice",
                analytical_cube_file,
                "--space",
                "400",
                "--algorithm",
                algo,
            ]
        )
        assert rc == 0

    def test_index_universe_none(self, analytical_cube_file, capsys):
        rc = main(
            [
                "advise",
                "--lattice",
                analytical_cube_file,
                "--space",
                "400",
                "--index-universe",
                "none",
            ]
        )
        assert rc == 0
        assert "I_" not in capsys.readouterr().out


class TestExplain:
    def test_explain_round_trip(self, cube_file, tmp_path, capsys):
        sel_file = tmp_path / "sel.json"
        assert (
            main(
                [
                    "advise",
                    "--lattice",
                    cube_file,
                    "--space",
                    "25e6",
                    "--output",
                    str(sel_file),
                ]
            )
            == 0
        )
        capsys.readouterr()
        rc = main(
            ["explain", "--lattice", cube_file, "--selection", str(sel_file)]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "structure contributions" in out
        assert "coverage" in out

    def test_explain_bad_selection_document(self, cube_file, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        rc = main(["explain", "--lattice", cube_file, "--selection", str(bad)])
        assert rc == 2
        assert "selected" in capsys.readouterr().err


class TestOtherCommands:
    def test_tpcd_demo(self, capsys):
        rc = main(["tpcd"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "improvement" in out

    def test_experiments_subset(self, capsys):
        rc = main(["experiments", "figure3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "knee" in out

    def test_experiments_unknown_name(self, capsys):
        rc = main(["experiments", "bogus"])
        assert rc == 2

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])


class TestHierarchicalDocuments:
    @pytest.fixture
    def hier_file(self, tmp_path):
        path = tmp_path / "hier.json"
        path.write_text(
            json.dumps(
                {
                    "hierarchies": {
                        "time": [["day", 100], ["month", 10]],
                        "p": [["p", 30]],
                    },
                    "raw_rows": 2000,
                    "max_fat_indexes_per_view": 2,
                }
            )
        )
        return str(path)

    def test_advise_on_hierarchical_cube(self, hier_file, capsys):
        rc = main(["advise", "--lattice", hier_file, "--space", "4000"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "day,p" in out  # the top view label

    def test_explain_on_hierarchical_cube(self, hier_file, tmp_path, capsys):
        sel = tmp_path / "sel.json"
        assert (
            main(
                [
                    "advise", "--lattice", hier_file, "--space", "4000",
                    "--output", str(sel),
                ]
            )
            == 0
        )
        capsys.readouterr()
        rc = main(["explain", "--lattice", hier_file, "--selection", str(sel)])
        assert rc == 0
        assert "coverage" in capsys.readouterr().out


class TestHierarchicalDocumentParsing:
    def test_missing_hierarchies_rejected(self):
        from repro.io import hierarchical_cube_from_dict

        with pytest.raises(ValueError, match="hierarchies"):
            hierarchical_cube_from_dict({"raw_rows": 10})

    def test_missing_raw_rows_rejected(self):
        from repro.io import hierarchical_cube_from_dict

        with pytest.raises(ValueError, match="raw_rows"):
            hierarchical_cube_from_dict({"hierarchies": {"a": [["a", 5]]}})

    def test_empty_levels_rejected(self):
        from repro.io import hierarchical_cube_from_dict

        with pytest.raises(ValueError, match="levels"):
            hierarchical_cube_from_dict(
                {"hierarchies": {"a": []}, "raw_rows": 10}
            )

    def test_round_trip_structure(self):
        from repro.io import hierarchical_cube_from_dict, is_hierarchical_document

        doc = {
            "hierarchies": {"t": [["day", 50], ["month", 5]]},
            "raw_rows": 100,
        }
        assert is_hierarchical_document(doc)
        cube = hierarchical_cube_from_dict(doc)
        assert cube.n_views() == 3


class TestErrorHandling:
    def test_missing_lattice_file_exits_2(self, capsys):
        rc = main(["advise", "--lattice", "/no/such/cube.json", "--space", "1e6"])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_malformed_json_exits_2(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{not json at all")
        rc = main(["advise", "--lattice", str(path), "--space", "1e6"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_nan_raw_rows_exits_2_naming_field(self, tmp_path, capsys):
        path = tmp_path / "nan.json"
        path.write_text('{"dimensions": {"a": 4, "b": 6}, "raw_rows": NaN}')
        rc = main(["advise", "--lattice", str(path), "--space", "1e6"])
        assert rc == 2
        assert "raw_rows" in capsys.readouterr().err

    def test_traceback_flag_reraises(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json at all")
        with pytest.raises(ValueError):
            main(
                ["--traceback", "advise", "--lattice", str(path),
                 "--space", "1e6"]
            )


class TestRuntimeFlags:
    def test_deadline_zero_exits_3_with_partial(
        self, cube_file, tmp_path, capsys
    ):
        out_file = tmp_path / "partial.json"
        rc = main(
            ["advise", "--lattice", cube_file, "--space", "25e6",
             "--deadline", "0", "--output", str(out_file)]
        )
        assert rc == 3
        captured = capsys.readouterr()
        assert "stopped early" in captured.err
        doc = json.loads(out_file.read_text())
        assert doc["interrupted"] is True
        assert doc["stop_reason"] == "budget-exceeded"
        assert doc["selected"] == ["psc"]  # the seed stage completed

    def test_checkpoint_resume_round_trip(self, cube_file, tmp_path, capsys):
        full_file = tmp_path / "full.json"
        assert (
            main(
                ["advise", "--lattice", cube_file, "--space", "25e6",
                 "--output", str(full_file)]
            )
            == 0
        )
        ckpt = tmp_path / "run.ckpt"
        rc = main(
            ["advise", "--lattice", cube_file, "--space", "25e6",
             "--deadline", "0", "--checkpoint", str(ckpt)]
        )
        assert rc == 3
        assert "repro resume" in capsys.readouterr().err
        resumed_file = tmp_path / "resumed.json"
        rc = main(
            ["resume", "--lattice", cube_file, "--checkpoint", str(ckpt),
             "--output", str(resumed_file)]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "resuming" in out
        full = json.loads(full_file.read_text())
        resumed = json.loads(resumed_file.read_text())
        assert resumed["selected"] == full["selected"]
        assert resumed["benefit"] == full["benefit"]
        assert resumed["interrupted"] is False

    def test_resume_wrong_index_universe_exits_2(
        self, cube_file, tmp_path, capsys
    ):
        ckpt = tmp_path / "run.ckpt"
        assert (
            main(
                ["advise", "--lattice", cube_file, "--space", "25e6",
                 "--deadline", "0", "--checkpoint", str(ckpt)]
            )
            == 3
        )
        capsys.readouterr()
        rc = main(
            ["resume", "--lattice", cube_file, "--checkpoint", str(ckpt),
             "--index-universe", "none"]
        )
        assert rc == 2
        assert "fingerprint" in capsys.readouterr().err

    def test_checkpoint_without_deadline_still_completes(
        self, cube_file, tmp_path, capsys
    ):
        ckpt = tmp_path / "run.ckpt"
        rc = main(
            ["advise", "--lattice", cube_file, "--space", "25e6",
             "--checkpoint", str(ckpt)]
        )
        assert rc == 0
        from repro.runtime import load_checkpoint

        assert load_checkpoint(ckpt).stage_counter >= 1


class TestWorkersFlag:
    def test_workers_2_selection_identical(self, cube_file, tmp_path):
        serial_file = tmp_path / "serial.json"
        parallel_file = tmp_path / "parallel.json"
        assert (
            main(
                ["advise", "--lattice", cube_file, "--space", "25e6",
                 "--workers", "1", "--output", str(serial_file)]
            )
            == 0
        )
        assert (
            main(
                ["advise", "--lattice", cube_file, "--space", "25e6",
                 "--workers", "2", "--output", str(parallel_file)]
            )
            == 0
        )
        serial = json.loads(serial_file.read_text())
        parallel = json.loads(parallel_file.read_text())
        assert parallel["selected"] == serial["selected"]
        assert parallel["benefit"] == serial["benefit"]
        from repro.parallel import leaked_segments

        assert leaked_segments() == []

    def test_resume_with_workers_override(self, cube_file, tmp_path, capsys):
        """A serially-written checkpoint resumes under --workers 2 to the
        exact uninterrupted selection."""
        full_file = tmp_path / "full.json"
        ckpt = tmp_path / "run.ckpt"
        assert (
            main(
                ["advise", "--lattice", cube_file, "--space", "25e6",
                 "--output", str(full_file)]
            )
            == 0
        )
        assert (
            main(
                ["advise", "--lattice", cube_file, "--space", "25e6",
                 "--deadline", "0", "--checkpoint", str(ckpt)]
            )
            == 3
        )
        capsys.readouterr()
        resumed_file = tmp_path / "resumed.json"
        rc = main(
            ["resume", "--lattice", cube_file, "--checkpoint", str(ckpt),
             "--workers", "2", "--output", str(resumed_file)]
        )
        assert rc == 0
        full = json.loads(full_file.read_text())
        resumed = json.loads(resumed_file.read_text())
        assert resumed["selected"] == full["selected"]
        assert resumed["benefit"] == full["benefit"]
        assert resumed["interrupted"] is False


class TestServeAndReplay:
    def test_serve_writes_telemetry_and_log(self, tmp_path, capsys):
        telemetry = tmp_path / "telemetry.json"
        log = tmp_path / "observed.jsonl"
        rc = main(
            ["serve", "--dims", "3", "--queries", "40",
             "--record", str(log), "--telemetry", str(telemetry)]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 raw-cube fallbacks" in out
        from repro.serve import validate_telemetry

        doc = json.loads(telemetry.read_text())
        validate_telemetry(doc)
        assert doc["queries"] == 40
        assert doc["fallbacks"] == 0
        assert doc["cost"]["exact_matches"] == 40
        assert len(log.read_text().splitlines()) == 40

    def test_replay_recorded_log_with_workers(self, tmp_path, capsys):
        log = tmp_path / "observed.jsonl"
        assert (
            main(["serve", "--dims", "3", "--queries", "30",
                  "--record", str(log)])
            == 0
        )
        capsys.readouterr()
        telemetry = tmp_path / "replayed.json"
        rc = main(
            ["replay", "--dims", "3", "--log", str(log), "--workers", "2",
             "--telemetry", str(telemetry), "--fail-on-fallback"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "workers 2" in out
        doc = json.loads(telemetry.read_text())
        assert doc["queries"] == 30
        assert doc["fallbacks"] == 0

    def test_replay_missing_log_is_input_error(self, tmp_path, capsys):
        rc = main(
            ["replay", "--dims", "3", "--log", str(tmp_path / "missing.jsonl")]
        )
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_replay_invalid_record_is_input_error(self, tmp_path, capsys):
        log = tmp_path / "bad.jsonl"
        log.write_text(
            '{"groupby": ["p"], "selection": ["zz"], "values": {"zz": 1}}\n'
        )
        rc = main(["replay", "--dims", "3", "--log", str(log)])
        assert rc == 2
        assert "zz" in capsys.readouterr().err

    def test_replay_empty_log_is_ok(self, tmp_path, capsys):
        log = tmp_path / "empty.jsonl"
        log.write_text("")
        rc = main(["replay", "--dims", "3", "--log", str(log)])
        assert rc == 0
        assert "nothing to replay" in capsys.readouterr().out

    def test_serve_with_saved_selection(self, tmp_path, capsys):
        """A selection advised on the matching lattice document serves
        without fallbacks."""
        from repro.core.costmodel import LinearCostModel
        from repro.datasets.tpcd import tpcd_serving_fact
        from repro.io import save_lattice

        lattice = LinearCostModel.from_fact(tpcd_serving_fact(3)).lattice
        cube = tmp_path / "cube3.json"
        save_lattice(lattice, cube)
        selection = tmp_path / "selection.json"
        assert (
            main(["advise", "--lattice", str(cube), "--space",
                  str(3 * lattice.size(lattice.top)), "--algorithm",
                  "1greedy", "--output", str(selection)])
            == 0
        )
        capsys.readouterr()
        rc = main(
            ["serve", "--dims", "3", "--queries", "25",
             "--selection", str(selection), "--fail-on-fallback"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 raw-cube fallbacks" in out

    def test_serve_concurrent_with_cache(self, tmp_path, capsys):
        """--workers/--cache-mb/--batch-size drive the batched front-end;
        merged telemetry still validates with exact cost accounting."""
        telemetry = tmp_path / "telemetry.json"
        rc = main(
            ["serve", "--dims", "3", "--queries", "60", "--workers", "2",
             "--cache-mb", "4", "--batch-size", "16",
             "--telemetry", str(telemetry), "--fail-on-fallback"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "workers 2, batch 16" in out
        assert "result cache:" in out
        from repro.serve import validate_telemetry

        doc = validate_telemetry(json.loads(telemetry.read_text()))
        assert doc["queries"] == 60
        assert doc["fallbacks"] == 0
        assert doc["cost"]["exact_matches"] == 60
        assert doc["merged_from"] >= 2  # per-worker collectors merged in
        assert doc["cache"]["enabled"] is True
        assert doc["cache"]["hits"] + doc["cache"]["misses"] == 60

    def test_replay_with_cache_matches_uncached(self, tmp_path, capsys):
        """Same log, cache on vs off: identical rows-scanned accounting."""
        log = tmp_path / "observed.jsonl"
        assert (
            main(["serve", "--dims", "3", "--queries", "50",
                  "--record", str(log)])
            == 0
        )
        plain = tmp_path / "plain.json"
        cached = tmp_path / "cached.json"
        assert (
            main(["replay", "--dims", "3", "--log", str(log),
                  "--telemetry", str(plain)])
            == 0
        )
        assert (
            main(["replay", "--dims", "3", "--log", str(log),
                  "--cache-mb", "4", "--telemetry", str(cached)])
            == 0
        )
        capsys.readouterr()
        a = json.loads(plain.read_text())
        b = json.loads(cached.read_text())
        assert a["cost"]["actual_rows"] == b["cost"]["actual_rows"]
        assert a["cost"]["predicted_rows"] == b["cost"]["predicted_rows"]
        assert a["hits"] == b["hits"]
        assert not a["cache"]["enabled"]
        assert b["cache"]["enabled"]

    def test_adaptive_replay_swaps_selection(self, tmp_path, capsys):
        """A drift-injected log triggers a re-advise and a hot swap."""
        from repro.core.query import enumerate_slice_queries
        from repro.cube.query_log import generate_query_log
        from repro.datasets.tpcd import tpcd_serving_schema
        from repro.io import save_query_log

        schema = tpcd_serving_schema(3)
        patterns = list(enumerate_slice_queries(schema.names))
        hot = next(
            q for q in patterns
            if q.groupby == frozenset({"c"}) and q.selection == frozenset({"s"})
        )
        log = tmp_path / "drifted.jsonl"
        save_query_log(
            generate_query_log(
                schema, 120, rng=3, pattern_frequencies={hot: 1.0}
            ),
            log,
        )
        # start from the poorest always-answering selection (top view
        # only) so the drifted workload has room to win a swap
        selection = tmp_path / "top_only.json"
        selection.write_text(json.dumps({"selected": ["psc"]}))
        telemetry = tmp_path / "telemetry.json"
        rc = main(
            ["replay", "--dims", "3", "--log", str(log), "--adaptive",
             "--selection", str(selection), "--space", "360",
             "--drift-min-queries", "30", "--telemetry", str(telemetry)]
        )
        out = capsys.readouterr().out
        assert rc == 0
        doc = json.loads(telemetry.read_text())
        assert doc["swaps"] >= 1
        assert doc["meta"]["readvises"] >= 1
        assert doc["meta"]["generation"] >= 1


class TestServeFleet:
    def test_serve_through_replica_fleet(self, tmp_path, capsys):
        telemetry = tmp_path / "fleet.json"
        rc = main(
            ["serve", "--dims", "3", "--queries", "60", "--replicas", "2",
             "--retry-attempts", "3", "--telemetry", str(telemetry),
             "--fail-on-fallback"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "through 2 replicas" in out
        assert "0 failed typed" in out
        assert "2/2 replicas healthy" in out
        doc = json.loads(telemetry.read_text())
        assert doc["queries"] == 60
        assert doc["fallbacks"] == 0
        assert doc["fleet"]["replicas"] == 2
        assert doc["fleet"]["routed"] == 60
        assert doc["resilience"]["raw_rescues"] == 0

    def test_fleet_replay(self, tmp_path, capsys):
        log = tmp_path / "observed.jsonl"
        assert (
            main(["serve", "--dims", "3", "--queries", "30",
                  "--record", str(log)])
            == 0
        )
        capsys.readouterr()
        rc = main(
            ["replay", "--dims", "3", "--log", str(log), "--replicas", "2"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "served 30/30" in out

    def test_fleet_rejects_single_server_features(self, tmp_path, capsys):
        rc = main(
            ["serve", "--dims", "3", "--queries", "10", "--replicas", "2",
             "--adaptive"]
        )
        assert rc == 2
        assert "single-server" in capsys.readouterr().err

    def test_replicas_help_matches_fleet_error(self, capsys):
        """The --replicas help documents the --adaptive/--record
        rejection in the same words the fleet path raises with."""
        phrase = (
            "the single-server features --adaptive and --record are "
            "rejected on the fleet path"
        )
        # argparse re-wraps help text at arbitrary points (including
        # inside hyphenated words), so compare whitespace-free
        squash = lambda text: "".join(text.split())  # noqa: E731
        with pytest.raises(SystemExit):
            main(["serve", "--help"])
        assert squash(phrase) in squash(capsys.readouterr().out)
        rc = main(
            ["serve", "--dims", "3", "--queries", "10", "--replicas", "2",
             "--record", "never-written.jsonl"]
        )
        assert rc == 2
        assert squash(phrase) in squash(capsys.readouterr().err)


class TestDivergentServing:
    def test_partition_command_writes_report(self, tmp_path, capsys):
        log = tmp_path / "observed.jsonl"
        assert (
            main(["serve", "--dims", "3", "--queries", "90",
                  "--record", str(log)])
            == 0
        )
        capsys.readouterr()
        report_path = tmp_path / "divergence.json"
        rc = main(
            ["partition", "--dims", "3", "--log", str(log),
             "--partitions", "3", "--output", str(report_path)]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "into 3 slices" in out
        assert "predicted-cost ratio" in out
        doc = json.loads(report_path.read_text())
        assert doc["replicas"] == 3
        assert len(doc["selections"]) == 3
        assert doc["predicted_cost_ratio"] <= 1.0
        assert len(doc["partitions"]) == 3

    def test_partition_empty_log_rejected(self, tmp_path, capsys):
        log = tmp_path / "empty.jsonl"
        log.write_text("")
        rc = main(["partition", "--dims", "3", "--log", str(log)])
        assert rc == 2
        assert "empty" in capsys.readouterr().err

    def test_divergent_serve_routes_by_cost(self, tmp_path, capsys):
        telemetry = tmp_path / "divergent.json"
        rc = main(
            ["serve", "--dims", "3", "--queries", "80", "--replicas", "3",
             "--divergent", "--telemetry", str(telemetry)]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "3 divergent replicas" in out
        assert "predicted-cost ratio" in out
        assert "predicted-cheapest replica" in out
        doc = json.loads(telemetry.read_text())
        assert doc["fleet"]["routed_dispatch"] is True
        assert doc["fleet"]["predicted_cost_ratio"] <= 1.0
        routed = sum(doc["fleet"]["routed_hits"].values()) + sum(
            doc["fleet"]["misroutes"].values()
        )
        assert routed == 80

    def test_divergent_requires_fleet(self, capsys):
        rc = main(["serve", "--dims", "3", "--queries", "10", "--divergent"])
        assert rc == 2
        assert "--replicas >= 2" in capsys.readouterr().err


@pytest.fixture
def mining_cube_file(tmp_path):
    path = tmp_path / "mcube.json"
    path.write_text(
        json.dumps(
            {"dimensions": {"a": 6, "b": 5, "c": 4}, "raw_rows": 500}
        )
    )
    return str(path)


@pytest.fixture
def mining_log_file(tmp_path):
    from repro.cube.query_log import generate_query_log
    from repro.cube.schema import CubeSchema, Dimension
    from repro.serve import WorkloadRecorder

    schema = CubeSchema(
        [Dimension("a", 6), Dimension("b", 5), Dimension("c", 4)]
    )
    path = tmp_path / "observed.jsonl"
    with WorkloadRecorder(path) as recorder:
        for entry in generate_query_log(schema, 150, rng=6):
            recorder.record(entry)
    return str(path)


class TestMine:
    def test_mine_reports_candidates_and_bound(
        self, mining_cube_file, mining_log_file, tmp_path, capsys
    ):
        report = tmp_path / "mined.json"
        rc = main(
            ["mine", "--lattice", mining_cube_file, "--log",
             mining_log_file, "--output", str(report)]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "candidates kept" in out
        assert "pruning gap" in out
        doc = json.loads(report.read_text())
        assert doc["kind"] == "repro-mining-report"
        assert doc["candidates"]["n_views"] >= 1
        assert doc["bound"]["ideal_tau"] <= doc["bound"]["kept_tau"]

    def test_mine_empty_log_exits_2(
        self, mining_cube_file, tmp_path, capsys
    ):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        rc = main(
            ["mine", "--lattice", mining_cube_file, "--log", str(empty)]
        )
        assert rc == 2
        assert "nothing to mine" in capsys.readouterr().err

    def test_mine_malformed_log_names_file_and_line(
        self, mining_cube_file, tmp_path, capsys
    ):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"groupby": ["a"], "selection": []}\nnot json\n')
        rc = main(
            ["mine", "--lattice", mining_cube_file, "--log", str(bad)]
        )
        assert rc == 2
        err = capsys.readouterr().err
        assert "bad.jsonl:2" in err


class TestPrunedAdvise:
    def test_prune_log_advises_and_reports_bound(
        self, mining_cube_file, mining_log_file, capsys
    ):
        rc = main(
            ["advise", "--lattice", mining_cube_file, "--space", "2000",
             "--prune-log", mining_log_file]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "mined" in out
        assert "full universe" in out
        assert "pruning bound: forgone benefit" in out

    def test_benefit_bound_gate_fails_when_exceeded(
        self, mining_cube_file, mining_log_file, capsys
    ):
        rc = main(
            ["advise", "--lattice", mining_cube_file, "--space", "2000",
             "--prune-log", mining_log_file, "--benefit-bound", "1e-12",
             "--support", "0.9", "--max-indexes-per-view", "0"]
        )
        assert rc == 2
        assert "exceeds --benefit-bound" in capsys.readouterr().err

    def test_benefit_bound_gate_passes_when_loose(
        self, mining_cube_file, mining_log_file, capsys
    ):
        rc = main(
            ["advise", "--lattice", mining_cube_file, "--space", "2000",
             "--prune-log", mining_log_file, "--benefit-bound", "1.0"]
        )
        assert rc == 0
        capsys.readouterr()

    def test_mining_flags_require_prune_log(self, mining_cube_file, capsys):
        rc = main(
            ["advise", "--lattice", mining_cube_file, "--space", "2000",
             "--support", "0.1"]
        )
        assert rc == 2
        assert "require --prune-log" in capsys.readouterr().err

    def test_prune_log_rejects_index_universe_none(
        self, mining_cube_file, mining_log_file, capsys
    ):
        rc = main(
            ["advise", "--lattice", mining_cube_file, "--space", "2000",
             "--prune-log", mining_log_file, "--index-universe", "none"]
        )
        assert rc == 2
        assert "fat" in capsys.readouterr().err

    def test_pruned_checkpoint_resume_round_trip(
        self, mining_cube_file, mining_log_file, tmp_path, capsys
    ):
        full_file = tmp_path / "full.json"
        assert (
            main(
                ["advise", "--lattice", mining_cube_file, "--space", "2000",
                 "--prune-log", mining_log_file, "--output", str(full_file)]
            )
            == 0
        )
        ckpt = tmp_path / "run.ckpt"
        assert (
            main(
                ["advise", "--lattice", mining_cube_file, "--space", "2000",
                 "--prune-log", mining_log_file, "--checkpoint", str(ckpt)]
            )
            == 0
        )
        from repro.runtime import load_checkpoint
        from repro.runtime.context import MINING_EXTRA_KEY

        record = load_checkpoint(ckpt).extra[MINING_EXTRA_KEY]
        assert record["log"] == mining_log_file
        assert len(record["fingerprint"]) == 64
        capsys.readouterr()
        resumed_file = tmp_path / "resumed.json"
        rc = main(
            ["resume", "--lattice", mining_cube_file, "--checkpoint",
             str(ckpt), "--output", str(resumed_file)]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "resuming" in out
        full = json.loads(full_file.read_text())
        resumed = json.loads(resumed_file.read_text())
        assert resumed["selected"] == full["selected"]
        assert resumed["benefit"] == full["benefit"]

    def test_pruned_resume_rejects_changed_log(
        self, mining_cube_file, mining_log_file, tmp_path, capsys
    ):
        ckpt = tmp_path / "run.ckpt"
        assert (
            main(
                ["advise", "--lattice", mining_cube_file, "--space", "2000",
                 "--prune-log", mining_log_file, "--checkpoint", str(ckpt)]
            )
            == 0
        )
        # truncate the recorded log: the resume's re-mine must not match
        log_path = tmp_path / "observed.jsonl"
        lines = log_path.read_text().splitlines()
        log_path.write_text("\n".join(lines[: len(lines) // 2]) + "\n")
        capsys.readouterr()
        rc = main(
            ["resume", "--lattice", mining_cube_file, "--checkpoint",
             str(ckpt)]
        )
        assert rc == 2
        assert "mining record" in capsys.readouterr().err

    def test_prune_log_deadline_zero_exits_3(
        self, mining_cube_file, mining_log_file, capsys
    ):
        rc = main(
            ["advise", "--lattice", mining_cube_file, "--space", "2000",
             "--prune-log", mining_log_file, "--deadline", "0"]
        )
        assert rc == 3
        assert "stopped early" in capsys.readouterr().err


class TestSqlBackend:
    def test_serve_backend_sqlite_reports_mirror(self, tmp_path, capsys):
        telemetry = tmp_path / "telemetry.json"
        rc = main(
            ["serve", "--dims", "3", "--queries", "40",
             "--backend", "sqlite", "--telemetry", str(telemetry)]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "backend: sqlite (1 mirror rebuild)" in out
        doc = json.loads(telemetry.read_text())
        assert doc["queries"] == 40
        assert doc["cost"]["exact_matches"] == 40
        assert doc["resilience"]["raw_rescues"] == 0

    def test_replay_backend_sqlite(self, tmp_path, capsys):
        log = tmp_path / "observed.jsonl"
        assert (
            main(["serve", "--dims", "3", "--queries", "30",
                  "--record", str(log)])
            == 0
        )
        capsys.readouterr()
        rc = main(
            ["replay", "--dims", "3", "--log", str(log),
             "--backend", "sqlite"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "30/30 exact" in out
        assert "backend: sqlite (1 mirror rebuild)" in out

    def test_backend_sqlite_rejects_fleet(self, capsys):
        rc = main(
            ["serve", "--dims", "3", "--queries", "10",
             "--backend", "sqlite", "--replicas", "2"]
        )
        assert rc == 2
        assert "single-server" in capsys.readouterr().err

    def test_validate_cost_reports_and_writes_json(self, tmp_path, capsys):
        out_file = tmp_path / "correlation.json"
        rc = main(
            ["validate-cost", "--dims", "3", "--queries", "80",
             "--output", str(out_file)]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "validate-cost: 80 queries, 0 answer mismatches" in out
        assert "overall" in out
        report = json.loads(out_file.read_text())
        assert report["dims"] == 3
        assert report["mismatches"] == 0
        assert report["overall"]["exact_rows"] == 80
        for stats in report["classes"].values():
            assert stats["exact_rows"] == stats["queries"]

    def test_validate_cost_with_saved_selection(self, tmp_path, capsys):
        """A selection advised on the matching lattice feeds straight in."""
        from repro.core.costmodel import LinearCostModel
        from repro.datasets.tpcd import tpcd_serving_fact
        from repro.io import save_lattice

        lattice = LinearCostModel.from_fact(tpcd_serving_fact(3)).lattice
        cube = tmp_path / "cube3.json"
        save_lattice(lattice, cube)
        selection_file = tmp_path / "selection.json"
        assert (
            main(["advise", "--lattice", str(cube), "--space",
                  str(3 * lattice.size(lattice.top)), "--algorithm",
                  "1greedy", "--output", str(selection_file)])
            == 0
        )
        capsys.readouterr()
        rc = main(
            ["validate-cost", "--dims", "3", "--queries", "40",
             "--selection", str(selection_file)]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 answer mismatches" in out
