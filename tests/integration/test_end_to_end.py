"""Integration: selection → physical materialization → execution.

These tests close the loop the paper leaves implicit: the space the
algorithms account for matches the rows the engine actually stores, and
the τ they optimize matches the rows the engine actually processes.
"""

import numpy as np
import pytest

from repro.algorithms import FIT_STRICT, InnerLevelGreedy, RGreedy
from repro.core.costmodel import LinearCostModel
from repro.core.lattice import CubeLattice
from repro.core.query import enumerate_slice_queries
from repro.core.qvgraph import QueryViewGraph
from repro.cube.generator import generate_fact_table
from repro.cube.schema import CubeSchema, Dimension
from repro.engine.catalog import Catalog
from repro.engine.executor import Executor
from repro.estimation.sizes import exact_sizes_from_rows


@pytest.fixture(scope="module")
def stack():
    schema = CubeSchema([Dimension("a", 25), Dimension("b", 12), Dimension("c", 8)])
    fact = generate_fact_table(schema, 3_000, rng=13, skew={"a": 0.4})
    lattice = CubeLattice.from_estimator(
        schema, exact_sizes_from_rows(schema, fact.columns)
    )
    graph = QueryViewGraph.from_cube(lattice)
    return schema, fact, lattice, graph


def materialize_selection(fact, graph, result) -> Catalog:
    catalog = Catalog(fact)
    for name in result.selected:
        struct = graph.structure(name)
        if struct.is_view:
            catalog.materialize(struct.payload)
    for name in result.selected:
        struct = graph.structure(name)
        if struct.is_index:
            catalog.build_index(struct.payload)
    return catalog


class TestSpaceAccountingMatchesPhysicalRows:
    @pytest.mark.parametrize("algo", [RGreedy(1), RGreedy(2), InnerLevelGreedy(fit=FIT_STRICT)])
    def test_catalog_rows_equal_accounted_space(self, stack, algo):
        schema, fact, lattice, graph = stack
        top = lattice.label(lattice.top)
        budget = lattice.size(lattice.top) + 0.3 * (
            graph.total_space() - lattice.size(lattice.top)
        )
        result = algo.run(graph, budget, seed=(top,))
        catalog = materialize_selection(fact, graph, result)
        assert catalog.total_rows() == pytest.approx(result.space_used)


class TestPredictedTauMatchesExecution:
    def test_average_measured_rows_tracks_predicted_tau(self, stack):
        """Execute every slice query (averaging over distinct prefix
        values for index plans); the measured total must match τ."""
        schema, fact, lattice, graph = stack
        top = lattice.label(lattice.top)
        budget = lattice.size(lattice.top) + 0.4 * (
            graph.total_space() - lattice.size(lattice.top)
        )
        result = RGreedy(2).run(graph, budget, seed=(top,))
        catalog = materialize_selection(fact, graph, result)
        model = LinearCostModel(lattice)
        executor = Executor(catalog, cost_model=model)

        total_measured = 0.0
        rng = np.random.default_rng(3)
        for query in enumerate_slice_queries(schema.names):
            view, index = executor.choose_plan(query)
            prefix = index.usable_prefix(query) if index else ()
            if not prefix:
                values = {}
                if query.selection:
                    row = int(rng.integers(0, fact.n_rows))
                    values = {
                        a: int(fact.column(a)[row]) for a in query.selection
                    }
                res = executor.execute(query, values, plan=(view, index))
                total_measured += res.rows_processed
                continue
            # average over all distinct prefix combinations = model cost
            stacked = np.stack([fact.column(a) for a in prefix], axis=1)
            distinct = np.unique(stacked, axis=0)
            anchor = int(rng.integers(0, fact.n_rows))
            residual = {
                a: int(fact.column(a)[anchor])
                for a in query.selection - set(prefix)
            }
            subtotal = 0
            for combo in distinct:
                values = dict(residual)
                values.update({a: int(v) for a, v in zip(prefix, combo)})
                res = executor.execute(query, values, plan=(view, index))
                subtotal += res.rows_processed
            total_measured += subtotal / len(distinct)

        assert total_measured == pytest.approx(result.tau, rel=0.01)

    def test_every_query_answerable_from_selection(self, stack):
        schema, fact, lattice, graph = stack
        top = lattice.label(lattice.top)
        result = RGreedy(1).run(graph, lattice.size(lattice.top) * 1.5, seed=(top,))
        catalog = materialize_selection(fact, graph, result)
        executor = Executor(catalog)
        for query in enumerate_slice_queries(schema.names):
            view, __ = executor.choose_plan(query)
            assert query.answerable_by(view)


class TestEstimatedVsExactSizes:
    def test_analytical_sizes_track_actual_independent_cube(self):
        """With independent uniform dimensions, the analytical model's
        sizes stay within a few percent of the realized distinct counts
        — the [HRU96] premise behind the Section 6 methodology."""
        from repro.estimation.sizes import analytical_view_size

        schema = CubeSchema([Dimension("a", 30), Dimension("b", 20)])
        fact = generate_fact_table(schema, 2_000, rng=21)
        from repro.core.view import View

        for attrs in (("a",), ("b",), ("a", "b")):
            predicted = analytical_view_size(schema, View(attrs), fact.n_rows)
            actual = fact.distinct_count(attrs)
            assert predicted == pytest.approx(actual, rel=0.06)
