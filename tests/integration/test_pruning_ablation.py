"""Ablation: fat-index pruning (Section 4.2.2).

The paper prunes prefix-dominated indexes, arguing this shrinks the
candidate space by ≈(e−1)× without losing solution quality (a dominated
index is never strictly better and costs the same space).  These tests
run the greedy family over both index universes and check the claim.
"""

import math

import pytest

from repro.algorithms import FIT_STRICT, InnerLevelGreedy, RGreedy
from repro.core.qvgraph import QueryViewGraph
from repro.datasets.tpcd import tpcd_lattice


@pytest.fixture(scope="module")
def graphs():
    lattice = tpcd_lattice()
    fat = QueryViewGraph.from_cube(lattice, index_universe="fat")
    full = QueryViewGraph.from_cube(lattice, index_universe="all")
    return fat, full


class TestPruningAblation:
    def test_universe_shrinks(self, graphs):
        fat, full = graphs
        assert len(full.indexes) > len(fat.indexes)
        # for n=3 the exact counts are 30 vs 15; asymptotically the ratio
        # approaches e/(e−1) ≈ 1.58 per the Section 4.2.2 discussion
        assert len(fat.indexes) == 15
        assert len(full.indexes) == 30

    @pytest.mark.parametrize("make_algo", [
        lambda: RGreedy(1, fit=FIT_STRICT),
        lambda: RGreedy(2, fit=FIT_STRICT),
        lambda: InnerLevelGreedy(fit=FIT_STRICT),
    ])
    def test_selection_quality_unchanged(self, graphs, make_algo):
        """Pruning never costs benefit: the fat-only run does at least as
        well as the unpruned run."""
        fat, full = graphs
        budget = 25e6
        fat_result = make_algo().run(fat, budget, seed=("psc",))
        full_result = make_algo().run(full, budget, seed=("psc",))
        assert fat_result.benefit >= full_result.benefit - 1e-6

    def test_non_fat_indexes_never_strictly_needed(self, graphs):
        """Every edge of a non-fat index is matched (or beaten) by some
        fat index on the same view."""
        __, full = graphs
        fat_edges = {}
        for q, s, cost in full.edges():
            struct = full.structure(s)
            if struct.is_index and struct.payload.is_fat:
                key = (q, struct.view_name)
                fat_edges[key] = min(cost, fat_edges.get(key, math.inf))
        for q, s, cost in full.edges():
            struct = full.structure(s)
            if struct.is_index and not struct.payload.is_fat:
                key = (q, struct.view_name)
                assert fat_edges.get(key, math.inf) <= cost
