"""Parallel load pipeline: wave materialization must produce a
LoadReport identical to the serial loop — same steps, same sources, same
row accounting, same ``on_step`` firing order — and bitwise-equal view
tables."""

import pytest

from repro.core.view import View
from repro.cube.generator import generate_fact_table
from repro.cube.schema import CubeSchema, Dimension
from repro.engine.catalog import Catalog
from repro.engine.pipeline import materialize_selection

VIEWS = [View(k) for k in ("abc", "ab", "ac", "bc", "a", "b", "c", "")]


@pytest.fixture(scope="module")
def fact():
    schema = CubeSchema(
        [Dimension("a", 20), Dimension("b", 12), Dimension("c", 6)]
    )
    return generate_fact_table(schema, 2_500, rng=6)


def load(fact, workers, steps):
    catalog = Catalog(fact)
    report = materialize_selection(
        catalog,
        VIEWS,
        workers=workers,
        on_step=lambda rep, st: steps.append(st.view.key if st else None),
    )
    return catalog, report


def test_workers_report_identical_to_serial(fact):
    serial_steps, parallel_steps = [], []
    serial_catalog, serial = load(fact, None, serial_steps)
    parallel_catalog, parallel = load(fact, 2, parallel_steps)

    assert [s.view.key for s in parallel.steps] == [
        s.view.key for s in serial.steps
    ]
    assert [
        s.source.key if s.source else None for s in parallel.steps
    ] == [s.source.key if s.source else None for s in serial.steps]
    assert [s.rows_scanned for s in parallel.steps] == [
        s.rows_scanned for s in serial.steps
    ]
    assert [s.rows_produced for s in parallel.steps] == [
        s.rows_produced for s in serial.steps
    ]
    assert parallel.rows_scanned == serial.rows_scanned
    assert parallel.total_cost == serial.total_cost
    assert parallel_steps == serial_steps
    for view in VIEWS:
        assert dict(parallel_catalog.view_table(view).iter_rows()) == dict(
            serial_catalog.view_table(view).iter_rows()
        )


def test_workers_env_default(fact, monkeypatch):
    from repro.parallel.evaluator import WORKERS_ENV

    monkeypatch.setenv(WORKERS_ENV, "2")
    serial_catalog = Catalog(fact)
    serial = materialize_selection(serial_catalog, VIEWS, workers=1)
    env_catalog = Catalog(fact)
    env_report = materialize_selection(env_catalog, VIEWS)  # workers=None
    assert [s.view.key for s in env_report.steps] == [
        s.view.key for s in serial.steps
    ]
    assert env_report.rows_scanned == serial.rows_scanned


def test_workers_with_indexes_and_resume(fact):
    """Indexes still build serially after the waves, and a parallel load
    resumed from a partial serial report skips the finished views."""
    from repro.core.index import Index

    catalog = Catalog(fact)
    first = materialize_selection(catalog, VIEWS[:3])
    resumed = materialize_selection(
        catalog,
        VIEWS,
        indexes=[Index(View("ab"), ("a",))],
        workers=2,
        resume_from=first,
    )
    assert len(resumed.steps) == len(VIEWS)
    assert resumed.indexes_built
    fresh_keys = {s.view.key for s in resumed.steps[len(first.steps):]}
    assert fresh_keys == {v.key for v in VIEWS[3:]}
