"""Tests for catalog persistence (save/load round trip)."""

import json

import numpy as np
import pytest

from repro.core.index import Index
from repro.core.query import SliceQuery
from repro.core.view import View
from repro.cube.generator import generate_fact_table
from repro.cube.schema import CubeSchema, Dimension
from repro.engine.catalog import Catalog
from repro.engine.executor import Executor
from repro.engine.storage import load_catalog, save_catalog


@pytest.fixture
def catalog():
    schema = CubeSchema(
        [Dimension("a", 15), Dimension("b", 9), Dimension("c", 4)],
        measure="revenue",
    )
    fact = generate_fact_table(schema, 600, rng=8)
    catalog = Catalog(fact)
    for attrs in ((), ("a",), ("a", "b"), ("a", "b", "c")):
        catalog.materialize(View(attrs))
    catalog.materialize(View.of("b"), agg="count")
    catalog.build_index(Index(View.of("a", "b"), ("b", "a")))
    catalog.build_index(Index(View.of("a", "b", "c"), ("c", "a", "b")))
    return catalog


class TestRoundTrip:
    def test_fact_table_preserved(self, catalog, tmp_path):
        save_catalog(catalog, tmp_path)
        loaded = load_catalog(tmp_path)
        assert loaded.fact.n_rows == catalog.fact.n_rows
        for name in catalog.fact.schema.names:
            assert np.array_equal(loaded.fact.column(name), catalog.fact.column(name))
        assert np.array_equal(loaded.fact.measures, catalog.fact.measures)

    def test_schema_preserved(self, catalog, tmp_path):
        save_catalog(catalog, tmp_path)
        loaded = load_catalog(tmp_path)
        assert loaded.fact.schema.names == catalog.fact.schema.names
        assert loaded.fact.schema.measure == "revenue"

    def test_views_preserved(self, catalog, tmp_path):
        save_catalog(catalog, tmp_path)
        loaded = load_catalog(tmp_path)
        assert set(loaded.views()) == set(catalog.views())
        for view in catalog.views():
            original = list(catalog.view_table(view).iter_rows())
            restored = list(loaded.view_table(view).iter_rows())
            assert original == restored

    def test_aggregate_kind_preserved(self, catalog, tmp_path):
        save_catalog(catalog, tmp_path)
        loaded = load_catalog(tmp_path)
        assert loaded.view_table(View.of("b")).agg == "count"

    def test_indexes_rebuilt(self, catalog, tmp_path):
        save_catalog(catalog, tmp_path)
        loaded = load_catalog(tmp_path)
        assert set(loaded.indexes()) == set(catalog.indexes())
        for index in catalog.indexes():
            assert list(loaded.index_tree(index).items()) == list(
                catalog.index_tree(index).items()
            )

    def test_query_results_identical(self, catalog, tmp_path):
        save_catalog(catalog, tmp_path)
        loaded = load_catalog(tmp_path)
        query = SliceQuery(groupby=("a",), selection=("b",))
        value = int(catalog.fact.column("b")[0])
        before = Executor(catalog).execute(query, {"b": value})
        after = Executor(loaded).execute(query, {"b": value})
        assert before.groups == after.groups
        assert before.rows_processed == after.rows_processed

    def test_space_accounting_identical(self, catalog, tmp_path):
        save_catalog(catalog, tmp_path)
        loaded = load_catalog(tmp_path)
        assert loaded.total_rows() == catalog.total_rows()


class TestFormat:
    def test_manifest_is_json(self, catalog, tmp_path):
        save_catalog(catalog, tmp_path)
        with open(tmp_path / "manifest.json") as f:
            manifest = json.load(f)
        assert manifest["format_version"] == 1
        assert len(manifest["views"]) == 5
        assert len(manifest["indexes"]) == 2

    def test_unknown_format_version_rejected(self, catalog, tmp_path):
        save_catalog(catalog, tmp_path)
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        manifest["format_version"] = 99
        (tmp_path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="unsupported"):
            load_catalog(tmp_path)

    def test_save_creates_directory(self, catalog, tmp_path):
        target = tmp_path / "nested" / "catalog"
        save_catalog(catalog, target)
        assert (target / "manifest.json").exists()

    def test_save_load_after_maintenance(self, catalog, tmp_path):
        """Persistence composes with the refresh path."""
        from repro.engine.maintenance import apply_delta

        schema = catalog.fact.schema
        delta = generate_fact_table(schema, 50, rng=99)
        # only sum/count views survive refresh; this catalog qualifies
        apply_delta(catalog, delta.columns, delta.measures)
        save_catalog(catalog, tmp_path)
        loaded = load_catalog(tmp_path)
        assert loaded.fact.n_rows == catalog.fact.n_rows
        for view in catalog.views():
            assert list(loaded.view_table(view).iter_rows()) == list(
                catalog.view_table(view).iter_rows()
            )
