"""Tests for OLAP navigation (drill-down / roll-up / slice / dice)."""

import numpy as np
import pytest

from repro.core.query import SliceQuery
from repro.core.view import View
from repro.cube.generator import generate_fact_table
from repro.cube.schema import CubeSchema, Dimension
from repro.engine.catalog import Catalog
from repro.engine.executor import Executor
from repro.engine.navigate import NavigationError, dice, drill_down, roll_up, slice_


@pytest.fixture(scope="module")
def executor():
    schema = CubeSchema([Dimension("a", 8), Dimension("b", 6), Dimension("c", 4)])
    fact = generate_fact_table(schema, 900, rng=2)
    catalog = Catalog(fact)
    for attrs in ((), ("a",), ("b",), ("a", "b"), ("a", "b", "c")):
        catalog.materialize(View(attrs))
    return Executor(catalog)


class TestDrillDown:
    def test_adds_groupby_dimension(self, executor):
        query = SliceQuery(groupby=("a",))
        refined, result = drill_down(executor, query, {}, "b")
        assert refined.groupby == {"a", "b"}
        assert result.n_groups >= 1

    def test_totals_preserved(self, executor):
        """Drilling down redistributes but never changes the total."""
        query = SliceQuery(groupby=("a",))
        __, before = drill_down(executor, query, {}, "b")
        coarse = executor.execute(query, {})
        assert sum(before.groups.values()) == pytest.approx(
            sum(coarse.groups.values())
        )

    def test_already_grouped_rejected(self, executor):
        with pytest.raises(NavigationError, match="already"):
            drill_down(executor, SliceQuery(groupby=("a",)), {}, "a")

    def test_sliced_dim_rejected(self, executor):
        query = SliceQuery(groupby=("b",), selection=("a",))
        with pytest.raises(NavigationError, match="sliced"):
            drill_down(executor, query, {"a": 1}, "a")

    def test_unknown_dim_rejected(self, executor):
        with pytest.raises(NavigationError, match="unknown"):
            drill_down(executor, SliceQuery(), {}, "z")


class TestRollUp:
    def test_removes_groupby_dimension(self, executor):
        query = SliceQuery(groupby=("a", "b"))
        coarser, result = roll_up(executor, query, {}, "b")
        assert coarser.groupby == {"a"}
        fine = executor.execute(query, {})
        assert sum(result.groups.values()) == pytest.approx(
            sum(fine.groups.values())
        )

    def test_drops_slice(self, executor):
        query = SliceQuery(groupby=("b",), selection=("a",))
        coarser, result = roll_up(executor, query, {"a": 2}, "a")
        assert coarser.selection == frozenset()
        assert result.n_groups >= 1

    def test_absent_dim_rejected(self, executor):
        with pytest.raises(NavigationError, match="does not appear"):
            roll_up(executor, SliceQuery(groupby=("a",)), {}, "c")


class TestSliceDice:
    def test_slice_moves_dim_to_selection(self, executor):
        query = SliceQuery(groupby=("a", "b"))
        sliced, result = slice_(executor, query, {}, "a", 3)
        assert sliced.selection == {"a"}
        assert sliced.groupby == {"b"}
        # groups only contain rows with a == 3
        fact = executor.catalog.fact
        mask = fact.column("a") == 3
        assert sum(result.groups.values()) == pytest.approx(
            float(fact.measures[mask].sum())
        )

    def test_slice_twice_rejected(self, executor):
        query = SliceQuery(groupby=("b",), selection=("a",))
        with pytest.raises(NavigationError, match="already sliced"):
            slice_(executor, query, {"a": 1}, "a", 2)

    def test_dice_rebinds_value(self, executor):
        query = SliceQuery(groupby=("b",), selection=("a",))
        __, first = dice(executor, query, {"a": 1}, "a", 2)
        fact = executor.catalog.fact
        mask = fact.column("a") == 2
        assert sum(first.groups.values()) == pytest.approx(
            float(fact.measures[mask].sum())
        )

    def test_dice_requires_sliced_dim(self, executor):
        with pytest.raises(NavigationError, match="not sliced"):
            dice(executor, SliceQuery(groupby=("a",)), {}, "a", 1)


class TestSession:
    def test_analyst_walk(self, executor):
        """A realistic session: total → by a → slice a → drill to b → dice."""
        fact = executor.catalog.fact
        query, values = SliceQuery(), {}
        total = executor.execute(query, values)
        assert total.groups[()] == pytest.approx(float(fact.measures.sum()))

        query, __ = drill_down(executor, query, values, "a")
        query, result = slice_(executor, query, values, "a", 0)
        values = {"a": 0}
        query, result = drill_down(executor, query, values, "b")
        assert query == SliceQuery(groupby=("b",), selection=("a",))
        query, result = dice(executor, query, values, "a", 1)
        mask = fact.column("a") == 1
        assert sum(result.groups.values()) == pytest.approx(
            float(fact.measures[mask].sum())
        )
