"""Tests for the engine catalog."""

import pytest

from repro.core.index import Index
from repro.core.view import View
from repro.cube.generator import generate_fact_table
from repro.cube.schema import CubeSchema, Dimension
from repro.engine.catalog import Catalog


@pytest.fixture
def fact():
    schema = CubeSchema([Dimension("a", 8), Dimension("b", 5)])
    return generate_fact_table(schema, 200, rng=0)


@pytest.fixture
def catalog(fact):
    return Catalog(fact)


class TestViews:
    def test_materialize(self, catalog):
        table = catalog.materialize(View.of("a"))
        assert catalog.has_view(View.of("a"))
        assert table.n_rows == catalog.view_rows(View.of("a"))

    def test_materialize_idempotent(self, catalog):
        t1 = catalog.materialize(View.of("a"))
        t2 = catalog.materialize(View.of("a"))
        assert t1 is t2

    def test_total_rows_counts_views(self, catalog):
        catalog.materialize(View.of("a"))
        catalog.materialize(View.of("b"))
        assert catalog.total_rows() == (
            catalog.view_rows(View.of("a")) + catalog.view_rows(View.of("b"))
        )


class TestIndexes:
    def test_index_requires_materialized_view(self, catalog):
        idx = Index(View.of("a"), ("a",))
        with pytest.raises(ValueError, match="not materialized"):
            catalog.build_index(idx)

    def test_build_index(self, catalog):
        catalog.materialize(View.of("a", "b"))
        idx = Index(View.of("a", "b"), ("b", "a"))
        tree = catalog.build_index(idx)
        assert catalog.has_index(idx)
        assert len(tree) == catalog.view_rows(View.of("a", "b"))

    def test_index_size_model_is_physical(self, catalog):
        """index rows == view rows: the paper's size model, literally."""
        view = View.of("a", "b")
        catalog.materialize(view)
        idx = Index(view, ("a", "b"))
        catalog.build_index(idx)
        assert catalog.index_rows(idx) == catalog.view_rows(view)

    def test_build_index_idempotent(self, catalog):
        catalog.materialize(View.of("a"))
        idx = Index(View.of("a"), ("a",))
        t1 = catalog.build_index(idx)
        t2 = catalog.build_index(idx)
        assert t1 is t2

    def test_indexes_on(self, catalog):
        view = View.of("a", "b")
        catalog.materialize(view)
        i1 = Index(view, ("a", "b"))
        i2 = Index(view, ("b", "a"))
        catalog.build_index(i1)
        catalog.build_index(i2)
        assert set(catalog.indexes_on(view)) == {i1, i2}
        assert catalog.indexes_on(View.of("a")) == []

    def test_index_entries_sorted_by_key(self, catalog):
        view = View.of("a", "b")
        catalog.materialize(view)
        idx = Index(view, ("b", "a"))
        tree = catalog.build_index(idx)
        keys = [k for k, __ in tree.items()]
        assert keys == sorted(keys)

    def test_index_values_carry_row_and_measure(self, catalog):
        view = View.of("a")
        table = catalog.materialize(view)
        idx = Index(view, ("a",))
        tree = catalog.build_index(idx)
        for key, (row, value) in tree.items():
            assert value == pytest.approx(float(table.values[row]))
            assert key[0] == int(table.key_columns["a"][row])
