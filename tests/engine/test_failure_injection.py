"""Failure-injection tests: corrupted artifacts and misuse must fail
loudly, never silently return wrong answers."""

import json

import numpy as np
import pytest

from repro.core.index import Index
from repro.core.view import View
from repro.cube.generator import generate_fact_table
from repro.cube.schema import CubeSchema, Dimension
from repro.engine.catalog import Catalog
from repro.engine.storage import load_catalog, save_catalog


@pytest.fixture
def saved_catalog(tmp_path):
    schema = CubeSchema([Dimension("a", 6), Dimension("b", 4)])
    fact = generate_fact_table(schema, 100, rng=0)
    catalog = Catalog(fact)
    catalog.materialize(View.of("a"))
    catalog.materialize(View.of("a", "b"))
    catalog.build_index(Index(View.of("a", "b"), ("a", "b")))
    save_catalog(catalog, tmp_path)
    return catalog, tmp_path


class TestStorageCorruption:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_catalog(tmp_path / "nowhere")

    def test_truncated_manifest(self, saved_catalog):
        __, path = saved_catalog
        (path / "manifest.json").write_text("{ not json")
        with pytest.raises(json.JSONDecodeError):
            load_catalog(path)

    def test_missing_view_file(self, saved_catalog):
        __, path = saved_catalog
        manifest = json.loads((path / "manifest.json").read_text())
        (path / manifest["views"][0]["file"]).unlink()
        with pytest.raises(FileNotFoundError):
            load_catalog(path)

    def test_missing_fact_file(self, saved_catalog):
        __, path = saved_catalog
        (path / "fact.npz").unlink()
        with pytest.raises(FileNotFoundError):
            load_catalog(path)

    def test_manifest_referencing_unknown_dimension(self, saved_catalog):
        __, path = saved_catalog
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["views"].append({"attrs": ["zz"], "agg": "sum", "file": "view_zz.npz"})
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(FileNotFoundError):
            load_catalog(path)

    def test_index_on_unmaterialized_view_in_manifest(self, saved_catalog):
        __, path = saved_catalog
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["indexes"].append({"view": ["b"], "key": ["b"]})
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="not materialized"):
            load_catalog(path)

    def test_corrupt_npz_payload(self, saved_catalog):
        __, path = saved_catalog
        (path / "fact.npz").write_bytes(b"garbage")
        with pytest.raises(Exception):
            load_catalog(path)


class TestEngineMisuse:
    def test_out_of_domain_delta_rejected_before_any_mutation(self):
        from repro.engine.maintenance import apply_delta

        schema = CubeSchema([Dimension("a", 6), Dimension("b", 4)])
        catalog = Catalog(generate_fact_table(schema, 50, rng=0))
        catalog.materialize(View.of("a"))
        before_rows = catalog.fact.n_rows
        before_view = list(catalog.view_table(View.of("a")).iter_rows())
        with pytest.raises(ValueError):
            apply_delta(
                catalog,
                {"a": np.array([99]), "b": np.array([0])},
                np.array([1.0]),
            )
        # nothing changed
        assert catalog.fact.n_rows == before_rows
        assert list(catalog.view_table(View.of("a")).iter_rows()) == before_view

    def test_mismatched_delta_lengths_rejected(self):
        from repro.engine.maintenance import apply_delta

        schema = CubeSchema([Dimension("a", 6), Dimension("b", 4)])
        catalog = Catalog(generate_fact_table(schema, 50, rng=0))
        with pytest.raises(ValueError, match="lengths"):
            apply_delta(
                catalog,
                {"a": np.array([0, 1]), "b": np.array([0])},
                np.array([1.0, 2.0]),
            )

    def test_executor_rejects_value_for_wrong_attr_silently_never(self):
        """Values for attributes outside the selection are ignored by
        design (the query defines the semantics), but missing required
        values raise."""
        from repro.core.query import SliceQuery
        from repro.engine.executor import Executor

        schema = CubeSchema([Dimension("a", 6), Dimension("b", 4)])
        catalog = Catalog(generate_fact_table(schema, 50, rng=0))
        catalog.materialize(View.of("a", "b"))
        executor = Executor(catalog)
        with pytest.raises(ValueError, match="missing selection values"):
            executor.execute(SliceQuery(selection=("a",)), {"b": 0})

    def test_graph_document_with_edge_to_missing_structure(self):
        from repro.io import graph_from_dict

        doc = {
            "queries": [{"name": "q", "default_cost": 5}],
            "views": [{"name": "v", "space": 1}],
            "edges": [{"query": "q", "structure": "ghost", "cost": 1}],
        }
        with pytest.raises(ValueError, match="unknown structure"):
            graph_from_dict(doc)
