"""Tests for incremental view/index maintenance."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.index import Index
from repro.core.view import View
from repro.cube.generator import generate_fact_table
from repro.cube.schema import CubeSchema, Dimension
from repro.engine.catalog import Catalog
from repro.engine.maintenance import (
    apply_delta,
    estimate_refresh_cost,
    merge_view_tables,
)
from repro.engine.materialize import materialize_view
from repro.engine.table import FactTable


@pytest.fixture
def schema():
    return CubeSchema([Dimension("a", 10), Dimension("b", 6)])


def make_catalog(schema, n_rows=300, rng=0) -> Catalog:
    fact = generate_fact_table(schema, n_rows, rng=rng)
    catalog = Catalog(fact)
    for attrs in ((), ("a",), ("b",), ("a", "b")):
        catalog.materialize(View(attrs))
    catalog.build_index(Index(View.of("a", "b"), ("a", "b")))
    catalog.build_index(Index(View.of("a", "b"), ("b", "a")))
    return catalog


def make_delta(schema, n_rows=50, rng=99):
    fact = generate_fact_table(schema, n_rows, rng=rng)
    return fact.columns, fact.measures


class TestMergeViewTables:
    def test_merge_sums_shared_keys(self, schema):
        fact_a = FactTable(
            schema, {"a": np.array([1, 2]), "b": np.array([0, 0])}, np.array([1.0, 2.0])
        )
        fact_b = FactTable(
            schema, {"a": np.array([1, 3]), "b": np.array([0, 0])}, np.array([10.0, 5.0])
        )
        t1 = materialize_view(fact_a, View.of("a"))
        t2 = materialize_view(fact_b, View.of("a"))
        merged = merge_view_tables(t1, t2)
        assert dict(merged.iter_rows()) == {(1,): 11.0, (2,): 2.0, (3,): 5.0}

    def test_merge_keeps_sorted_keys(self, schema):
        cat = make_catalog(schema)
        table = cat.view_table(View.of("a", "b"))
        merged = merge_view_tables(table, table)
        keys = [k for k, __ in merged.iter_rows()]
        assert keys == sorted(keys)

    def test_view_mismatch_rejected(self, schema):
        cat = make_catalog(schema)
        with pytest.raises(ValueError, match="cannot merge"):
            merge_view_tables(
                cat.view_table(View.of("a")), cat.view_table(View.of("b"))
            )

    def test_grand_total_merge(self, schema):
        cat = make_catalog(schema)
        total = cat.view_table(View.none())
        merged = merge_view_tables(total, total)
        assert merged.values[0] == pytest.approx(2 * total.values[0])


class TestApplyDelta:
    def test_views_match_full_recompute(self, schema):
        """Incremental refresh must equal recomputation from scratch —
        the defining correctness property."""
        catalog = make_catalog(schema)
        delta_cols, delta_measures = make_delta(schema)
        apply_delta(catalog, delta_cols, delta_measures)

        for attrs in ((), ("a",), ("b",), ("a", "b")):
            view = View(attrs)
            recomputed = materialize_view(catalog.fact, view)
            incremental = catalog.view_table(view)
            got = dict(incremental.iter_rows())
            expected = dict(recomputed.iter_rows())
            assert got.keys() == expected.keys()
            for key in expected:
                assert got[key] == pytest.approx(expected[key])

    def test_fact_table_extended(self, schema):
        catalog = make_catalog(schema, n_rows=300)
        delta_cols, delta_measures = make_delta(schema, n_rows=50)
        apply_delta(catalog, delta_cols, delta_measures)
        assert catalog.fact.n_rows == 350

    def test_indexes_rebuilt_consistently(self, schema):
        catalog = make_catalog(schema)
        delta_cols, delta_measures = make_delta(schema)
        apply_delta(catalog, delta_cols, delta_measures)
        view = View.of("a", "b")
        table = catalog.view_table(view)
        for index in catalog.indexes_on(view):
            tree = catalog.index_tree(index)
            assert len(tree) == table.n_rows
            for key, (row, value) in tree.items():
                assert value == pytest.approx(float(table.values[row]))

    def test_report_accounting(self, schema):
        catalog = make_catalog(schema)
        before_rows = {
            str(v): catalog.view_table(v).n_rows for v in catalog.views()
        }
        delta_cols, delta_measures = make_delta(schema, n_rows=40)
        report = apply_delta(catalog, delta_cols, delta_measures)
        assert report.delta_rows == 40
        assert len(report.views_refreshed) == 4
        assert len(report.indexes_rebuilt) == 2
        assert report.view_rows_scanned >= sum(before_rows.values())
        assert report.total_rows_touched > 0

    def test_count_views_maintainable(self, schema):
        fact = generate_fact_table(schema, 100, rng=1)
        catalog = Catalog(fact)
        catalog.materialize(View.of("a"), agg="count")
        delta_cols, delta_measures = make_delta(schema, n_rows=20)
        apply_delta(catalog, delta_cols, delta_measures)
        recomputed = materialize_view(catalog.fact, View.of("a"), agg="count")
        assert dict(catalog.view_table(View.of("a")).iter_rows()) == dict(
            recomputed.iter_rows()
        )

    def test_min_views_rejected(self, schema):
        fact = generate_fact_table(schema, 100, rng=1)
        catalog = Catalog(fact)
        catalog.materialize(View.of("a"), agg="min")
        delta_cols, delta_measures = make_delta(schema, n_rows=20)
        with pytest.raises(ValueError, match="not.*self-maintainable"):
            apply_delta(catalog, delta_cols, delta_measures)

    def test_invalid_delta_rejected(self, schema):
        catalog = make_catalog(schema)
        with pytest.raises(ValueError):
            apply_delta(
                catalog,
                {"a": np.array([999]), "b": np.array([0])},
                np.array([1.0]),
            )

    def test_repeated_deltas_accumulate(self, schema):
        catalog = make_catalog(schema, n_rows=100)
        for seed in (7, 8, 9):
            cols, measures = make_delta(schema, n_rows=30, rng=seed)
            apply_delta(catalog, cols, measures)
        assert catalog.fact.n_rows == 190
        recomputed = materialize_view(catalog.fact, View.of("a", "b"))
        got = dict(catalog.view_table(View.of("a", "b")).iter_rows())
        for key, value in recomputed.iter_rows():
            assert got[key] == pytest.approx(value)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=1, max_value=200), st.integers(min_value=0, max_value=10_000))
    def test_property_incremental_equals_recompute(self, delta_rows, seed):
        schema = CubeSchema([Dimension("x", 7), Dimension("y", 4)])
        catalog = Catalog(generate_fact_table(schema, 80, rng=seed))
        catalog.materialize(View.of("x"))
        catalog.materialize(View.of("x", "y"))
        delta = generate_fact_table(schema, delta_rows, rng=seed + 1)
        apply_delta(catalog, delta.columns, delta.measures)
        for view in (View.of("x"), View.of("x", "y")):
            expected = dict(materialize_view(catalog.fact, view).iter_rows())
            got = dict(catalog.view_table(view).iter_rows())
            assert got.keys() == expected.keys()
            for key in expected:
                assert got[key] == pytest.approx(expected[key])


class TestEstimateRefreshCost:
    def test_estimate_upper_bounds_view_scan(self, schema):
        catalog = make_catalog(schema)
        view_rows = {
            **{str(v): catalog.view_table(v).n_rows for v in catalog.views()},
            **{
                str(i): catalog.view_table(i.view).n_rows
                for i in catalog.indexes()
            },
        }
        selection = {
            **{str(v): False for v in catalog.views()},
            **{str(i): True for i in catalog.indexes()},
        }
        estimate = estimate_refresh_cost(view_rows, selection, delta_rows=40)
        report = apply_delta(catalog, *make_delta(schema, n_rows=40))
        assert estimate <= report.total_rows_touched + 1e-9 or estimate >= (
            report.view_rows_scanned
        )

    def test_negative_delta_rejected(self):
        with pytest.raises(ValueError):
            estimate_refresh_cost({}, {}, -1)

    def test_index_cheaper_than_view_in_model(self):
        view_rows = {"v": 100.0, "i": 100.0}
        view_only = estimate_refresh_cost(view_rows, {"v": False}, 50)
        index_only = estimate_refresh_cost(view_rows, {"i": True}, 50)
        assert index_only < view_only
