"""Tests for multi-measure support across the engine stack."""

import numpy as np
import pytest

from repro.core.index import Index
from repro.core.query import SliceQuery
from repro.core.view import View
from repro.cube.schema import CubeSchema, Dimension
from repro.engine.catalog import Catalog
from repro.engine.executor import Executor
from repro.engine.maintenance import apply_delta
from repro.engine.materialize import materialize_view, rollup_view
from repro.engine.storage import load_catalog, save_catalog
from repro.engine.table import FactTable
from repro.sql import SqlError, run_sql


@pytest.fixture
def schema():
    return CubeSchema(
        [Dimension("a", 6), Dimension("b", 4)], measure="sales"
    )


@pytest.fixture
def fact(schema):
    rng = np.random.default_rng(0)
    n = 200
    return FactTable(
        schema,
        {
            "a": rng.integers(0, 6, size=n),
            "b": rng.integers(0, 4, size=n),
        },
        rng.uniform(0, 100, size=n),
        extra_measures={
            "quantity": rng.integers(1, 10, size=n).astype(float),
            "discount": rng.uniform(0, 1, size=n),
        },
    )


class TestFactTable:
    def test_measure_names(self, fact):
        assert fact.measure_names == ("sales", "quantity", "discount")

    def test_measure_column_lookup(self, fact):
        assert fact.measure_column() is fact.measures
        assert fact.measure_column("sales") is fact.measures
        assert fact.measure_column("quantity") is fact.extra_measures["quantity"]

    def test_unknown_measure(self, fact):
        with pytest.raises(KeyError, match="unknown measure"):
            fact.measure_column("profit")

    def test_name_collisions_rejected(self, schema):
        with pytest.raises(ValueError, match="collide"):
            FactTable(
                schema,
                {"a": np.array([0]), "b": np.array([0])},
                np.array([1.0]),
                extra_measures={"sales": np.array([1.0])},
            )
        with pytest.raises(ValueError, match="collide"):
            FactTable(
                schema,
                {"a": np.array([0]), "b": np.array([0])},
                np.array([1.0]),
                extra_measures={"a": np.array([1.0])},
            )

    def test_length_mismatch_rejected(self, schema):
        with pytest.raises(ValueError, match="lengths"):
            FactTable(
                schema,
                {"a": np.array([0]), "b": np.array([0])},
                np.array([1.0]),
                extra_measures={"q": np.array([1.0, 2.0])},
            )


class TestMaterialization:
    def test_all_measures_aggregated_together(self, fact):
        table = materialize_view(fact, View.of("a"))
        assert set(table.extra_values) == {"quantity", "discount"}
        for measure in ("sales", "quantity", "discount"):
            column = fact.measure_column(measure)
            expected = {}
            for row in range(fact.n_rows):
                key = (int(fact.column("a")[row]),)
                expected[key] = expected.get(key, 0.0) + float(column[row])
            got = table.values_for(measure)
            for i, key in enumerate(
                (int(v),) for v in table.key_columns["a"]
            ):
                assert got[i] == pytest.approx(expected[key])

    def test_rollup_carries_extras(self, fact):
        top = materialize_view(fact, View.of("a", "b"))
        rolled = rollup_view(top, View.of("a"), schema=fact.schema)
        direct = materialize_view(fact, View.of("a"))
        for measure in ("quantity", "discount"):
            assert np.allclose(
                rolled.values_for(measure), direct.values_for(measure)
            )

    def test_values_for_unknown_measure(self, fact):
        table = materialize_view(fact, View.of("a"))
        with pytest.raises(KeyError, match="no measure"):
            table.values_for("profit")


class TestExecution:
    @pytest.fixture
    def executor(self, fact):
        catalog = Catalog(fact)
        catalog.materialize(View.of("a", "b"))
        catalog.materialize(View.of("a"))
        catalog.build_index(Index(View.of("a", "b"), ("b", "a")))
        return Executor(catalog)

    def test_execute_with_measure(self, executor, fact):
        query = SliceQuery(groupby=("a",), selection=("b",))
        result = executor.execute(query, {"b": 1}, measure="quantity")
        mask = fact.column("b") == 1
        expected = float(fact.extra_measures["quantity"][mask].sum())
        assert sum(result.groups.values()) == pytest.approx(expected)

    def test_index_path_respects_measure(self, executor, fact):
        view = View.of("a", "b")
        idx = Index(view, ("b", "a"))
        query = SliceQuery(groupby=("a",), selection=("b",))
        via_index = executor.execute(
            query, {"b": 2}, plan=(view, idx), measure="discount"
        )
        via_scan = executor.execute(
            query, {"b": 2}, plan=(view, None), measure="discount"
        )
        assert via_index.groups.keys() == via_scan.groups.keys()
        for key in via_scan.groups:
            assert via_index.groups[key] == pytest.approx(via_scan.groups[key])

    def test_default_measure_unchanged(self, executor, fact):
        query = SliceQuery(groupby=("a",))
        result = executor.execute(query, {})
        assert sum(result.groups.values()) == pytest.approx(
            float(fact.measures.sum())
        )


class TestSql:
    @pytest.fixture
    def executor(self, fact):
        catalog = Catalog(fact)
        catalog.materialize(View.of("a"))
        catalog.materialize(View.of("a", "b"))
        return Executor(catalog)

    def test_select_extra_measure(self, executor, fact):
        result = run_sql(executor, "SELECT a, SUM(quantity) FROM cube GROUP BY a")
        assert sum(result.groups.values()) == pytest.approx(
            float(fact.extra_measures["quantity"].sum())
        )

    def test_select_primary_measure(self, executor, fact):
        result = run_sql(executor, "SELECT a, SUM(sales) FROM cube GROUP BY a")
        assert sum(result.groups.values()) == pytest.approx(
            float(fact.measures.sum())
        )

    def test_unknown_measure_rejected(self, executor):
        with pytest.raises(SqlError, match="unknown measure"):
            run_sql(executor, "SELECT a, SUM(profit) FROM cube GROUP BY a")


class TestMaintenanceAndStorage:
    def test_delta_with_extras_refreshes_all_measures(self, fact):
        catalog = Catalog(fact)
        catalog.materialize(View.of("a"))
        rng = np.random.default_rng(5)
        n = 30
        apply_delta(
            catalog,
            {"a": rng.integers(0, 6, size=n), "b": rng.integers(0, 4, size=n)},
            rng.uniform(0, 100, size=n),
            delta_extra_measures={
                "quantity": rng.integers(1, 10, size=n).astype(float),
                "discount": rng.uniform(0, 1, size=n),
            },
        )
        recomputed = materialize_view(catalog.fact, View.of("a"))
        table = catalog.view_table(View.of("a"))
        for measure in ("sales", "quantity", "discount"):
            assert np.allclose(
                table.values_for(measure), recomputed.values_for(measure)
            )

    def test_delta_missing_extras_rejected(self, fact):
        catalog = Catalog(fact)
        with pytest.raises(ValueError, match="do not match"):
            apply_delta(
                catalog,
                {"a": np.array([0]), "b": np.array([0])},
                np.array([1.0]),
            )

    def test_storage_round_trip_with_extras(self, fact, tmp_path):
        catalog = Catalog(fact)
        catalog.materialize(View.of("a"))
        catalog.materialize(View.of("a", "b"))
        save_catalog(catalog, tmp_path)
        loaded = load_catalog(tmp_path)
        assert loaded.fact.measure_names == fact.measure_names
        for view in catalog.views():
            original = catalog.view_table(view)
            restored = loaded.view_table(view)
            for measure in fact.measure_names:
                assert np.allclose(
                    original.values_for(measure), restored.values_for(measure)
                )
