"""Tests for the query executor: correctness of results and of the
rows-processed accounting the cost model is validated against."""

import numpy as np
import pytest

from repro.core.costmodel import LinearCostModel
from repro.core.index import Index, enumerate_fat_indexes
from repro.core.lattice import CubeLattice
from repro.core.query import SliceQuery
from repro.core.view import View
from repro.cube.generator import generate_fact_table
from repro.cube.schema import CubeSchema, Dimension
from repro.engine.catalog import Catalog
from repro.engine.executor import Executor
from repro.estimation.sizes import exact_sizes_from_rows


@pytest.fixture(scope="module")
def setup():
    schema = CubeSchema([Dimension("a", 10), Dimension("b", 6), Dimension("c", 4)])
    fact = generate_fact_table(schema, 800, rng=5)
    lattice = CubeLattice.from_estimator(
        schema, exact_sizes_from_rows(schema, fact.columns)
    )
    catalog = Catalog(fact)
    for view in lattice.views():
        catalog.materialize(view)
    for index in enumerate_fat_indexes(View.of("a", "b", "c")):
        catalog.build_index(index)
    catalog.build_index(Index(View.of("a", "b"), ("a", "b")))
    executor = Executor(catalog, cost_model=LinearCostModel(lattice))
    return schema, fact, lattice, catalog, executor


def brute_force(fact, query, values):
    """Reference evaluation straight off the fact table."""
    mask = np.ones(fact.n_rows, dtype=bool)
    for attr, val in values.items():
        mask &= fact.column(attr) == val
    groups = {}
    gb = sorted(query.groupby, key=lambda a: fact.schema.names.index(a))
    for row in np.flatnonzero(mask):
        key = tuple(int(fact.column(a)[row]) for a in gb)
        groups[key] = groups.get(key, 0.0) + float(fact.measures[row])
    return groups


class TestCorrectness:
    @pytest.mark.parametrize(
        "groupby,selection",
        [
            (("a",), ("b",)),
            (("b",), ("a",)),
            ((), ("a", "b")),
            (("a", "b"), ("c",)),
            (("c",), ("a", "b")),
            ((), ("a", "b", "c")),
        ],
    )
    def test_results_match_brute_force(self, setup, groupby, selection):
        schema, fact, lattice, catalog, executor = setup
        query = SliceQuery(groupby=groupby, selection=selection)
        rng = np.random.default_rng(0)
        for __ in range(5):
            row = int(rng.integers(0, fact.n_rows))
            values = {a: int(fact.column(a)[row]) for a in selection}
            result = executor.execute(query, values)
            expected = brute_force(fact, query, values)
            assert set(result.groups) == set(expected)
            for key in expected:
                assert result.groups[key] == pytest.approx(expected[key])

    def test_subcube_query_full_scan(self, setup):
        __, fact, lattice, catalog, executor = setup
        query = SliceQuery(groupby=("a",))
        result = executor.execute(query, {})
        assert result.rows_processed == lattice.size(View.of("a"))
        assert len(result.groups) == lattice.size(View.of("a"))

    def test_missing_selection_values_rejected(self, setup):
        *__, executor = setup
        query = SliceQuery(groupby=("a",), selection=("b",))
        with pytest.raises(ValueError, match="missing selection values"):
            executor.execute(query, {})

    def test_plan_view_must_answer(self, setup):
        *__, executor = setup
        query = SliceQuery(groupby=("a",), selection=("b",))
        with pytest.raises(ValueError, match="cannot answer"):
            executor.execute(query, {"b": 0}, plan=(View.of("a"), None))

    def test_plan_index_must_match_view(self, setup):
        *__, executor = setup
        query = SliceQuery(groupby=("a",), selection=("b",))
        idx = Index(View.of("a", "b"), ("b", "a"))
        with pytest.raises(ValueError, match="not on view"):
            executor.execute(query, {"b": 0}, plan=(View.of("a", "b", "c"), idx))


class TestRowsProcessed:
    def test_scan_plan_counts_whole_view(self, setup):
        __, fact, lattice, catalog, executor = setup
        query = SliceQuery(groupby=("a",), selection=("b",))
        view = View.of("a", "b")
        result = executor.execute(query, {"b": 1}, plan=(view, None))
        assert result.rows_processed == lattice.size(view)

    def test_index_plan_counts_only_matching_prefix(self, setup):
        __, fact, lattice, catalog, executor = setup
        view = View.of("a", "b")
        idx = Index(view, ("a", "b"))
        query = SliceQuery(groupby=("b",), selection=("a",))
        table = catalog.view_table(view)
        value = int(table.key_columns["a"][0])
        result = executor.execute(query, {"a": value}, plan=(view, idx))
        expected = int((table.key_columns["a"] == value).sum())
        assert result.rows_processed == expected

    def test_index_with_no_usable_prefix_falls_back_to_scan(self, setup):
        __, fact, lattice, catalog, executor = setup
        view = View.of("a", "b")
        idx = Index(view, ("a", "b"))
        query = SliceQuery(groupby=("a",), selection=("b",))  # b is not a prefix
        result = executor.execute(query, {"b": 0}, plan=(view, idx))
        assert result.rows_processed == lattice.size(view)

    def test_same_answer_via_index_and_scan(self, setup):
        __, fact, lattice, catalog, executor = setup
        view = View.of("a", "b", "c")
        idx = Index(view, ("a", "b", "c"))
        query = SliceQuery(groupby=("c",), selection=("a", "b"))
        values = {"a": int(fact.column("a")[0]), "b": int(fact.column("b")[0])}
        via_index = executor.execute(query, values, plan=(view, idx))
        via_scan = executor.execute(query, values, plan=(view, None))
        assert via_index.groups.keys() == via_scan.groups.keys()
        for key in via_scan.groups:
            assert via_index.groups[key] == pytest.approx(via_scan.groups[key])
        assert via_index.rows_processed <= via_scan.rows_processed


class TestPlanning:
    def test_chooses_cheapest_plan(self, setup):
        __, fact, lattice, catalog, executor = setup
        query = SliceQuery(groupby=("b",), selection=("a",))
        view, index = executor.choose_plan(query)
        # ab with the ab-index beats any scan
        assert view == View.of("a", "b")
        assert index == Index(View.of("a", "b"), ("a", "b"))

    def test_subcube_query_prefers_smallest_view(self, setup):
        *__, executor = setup
        view, index = executor.choose_plan(SliceQuery(groupby=("a",)))
        assert view == View.of("a")
        assert index is None

    def test_no_plan_raises(self):
        schema = CubeSchema([Dimension("a", 4)])
        fact = generate_fact_table(schema, 10, rng=0)
        executor = Executor(Catalog(fact))
        with pytest.raises(LookupError):
            executor.choose_plan(SliceQuery(groupby=("a",)))

    def test_planning_without_cost_model_uses_statistics(self, setup):
        schema, fact, lattice, catalog, __ = setup
        executor = Executor(catalog)  # no cost model: actual statistics
        query = SliceQuery(groupby=("b",), selection=("a",))
        view, index = executor.choose_plan(query)
        assert index is not None
        assert index.usable_prefix(query)


class TestExplain:
    def test_head_matches_choose_plan(self, setup):
        *__, executor = setup
        query = SliceQuery(groupby=("b",), selection=("a",))
        choices = executor.explain(query)
        view, index = executor.choose_plan(query)
        assert choices[0].view == view
        assert choices[0].index == index

    def test_sorted_by_cost(self, setup):
        *__, executor = setup
        choices = executor.explain(SliceQuery(groupby=("b",), selection=("a",)))
        costs = [c.estimated_cost for c in choices]
        assert costs == sorted(costs)

    def test_includes_scan_and_index_alternatives(self, setup):
        *__, executor = setup
        choices = executor.explain(SliceQuery(groupby=("c",), selection=("a", "b")))
        kinds = {c.index is None for c in choices}
        assert kinds == {True, False}

    def test_usable_prefix_recorded(self, setup):
        *__, executor = setup
        query = SliceQuery(groupby=("c",), selection=("a", "b"))
        for choice in executor.explain(query):
            if choice.index is not None:
                assert choice.usable_prefix == choice.index.usable_prefix(query)

    def test_str_rendering(self, setup):
        *__, executor = setup
        choices = executor.explain(SliceQuery(groupby=("b",), selection=("a",)))
        assert "rows" in str(choices[0])

    def test_unanswerable_query_has_no_choices(self):
        schema = CubeSchema([Dimension("a", 4), Dimension("b", 4)])
        fact = generate_fact_table(schema, 20, rng=0)
        catalog = Catalog(fact)
        catalog.materialize(View.of("a"))
        executor = Executor(catalog)
        assert executor.explain(SliceQuery(groupby=("b",))) == []
