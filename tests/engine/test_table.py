"""Tests for FactTable and ViewTable."""

import numpy as np
import pytest

from repro.core.view import View
from repro.cube.schema import CubeSchema, Dimension
from repro.engine.table import FactTable, ViewTable


@pytest.fixture
def schema():
    return CubeSchema([Dimension("a", 5), Dimension("b", 3)])


class TestFactTable:
    def test_construction(self, schema):
        fact = FactTable(
            schema,
            {"a": np.array([0, 1, 2]), "b": np.array([0, 1, 2])},
            np.array([1.0, 2.0, 3.0]),
        )
        assert fact.n_rows == 3

    def test_missing_column_rejected(self, schema):
        with pytest.raises(ValueError, match="missing"):
            FactTable(schema, {"a": np.array([0])}, np.array([1.0]))

    def test_length_mismatch_rejected(self, schema):
        with pytest.raises(ValueError, match="lengths"):
            FactTable(
                schema,
                {"a": np.array([0, 1]), "b": np.array([0])},
                np.array([1.0, 2.0]),
            )

    def test_out_of_domain_rejected(self, schema):
        with pytest.raises(ValueError, match="outside"):
            FactTable(
                schema,
                {"a": np.array([7]), "b": np.array([0])},
                np.array([1.0]),
            )

    def test_negative_value_rejected(self, schema):
        with pytest.raises(ValueError, match="outside"):
            FactTable(
                schema,
                {"a": np.array([-1]), "b": np.array([0])},
                np.array([1.0]),
            )

    def test_distinct_count(self, schema):
        fact = FactTable(
            schema,
            {"a": np.array([0, 0, 1, 1]), "b": np.array([0, 0, 0, 1])},
            np.zeros(4),
        )
        assert fact.distinct_count(["a"]) == 2
        assert fact.distinct_count(["a", "b"]) == 3
        assert fact.distinct_count([]) == 1


class TestViewTable:
    def test_construction_and_rows(self):
        table = ViewTable(
            View.of("a"),
            ("a",),
            {"a": np.array([0, 1, 2])},
            np.array([1.0, 2.0, 3.0]),
        )
        assert table.n_rows == 3

    def test_attrs_must_match_view(self):
        with pytest.raises(ValueError, match="do not match"):
            ViewTable(View.of("a"), ("b",), {"b": np.array([0])}, np.array([1.0]))

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="lengths"):
            ViewTable(
                View.of("a"), ("a",), {"a": np.array([0, 1])}, np.array([1.0])
            )

    def test_row_key(self):
        table = ViewTable(
            View.of("a", "b"),
            ("a", "b"),
            {"a": np.array([3, 4]), "b": np.array([5, 6])},
            np.array([1.0, 2.0]),
        )
        assert table.row_key(1, ("b", "a")) == (6, 4)

    def test_iter_rows(self):
        table = ViewTable(
            View.of("a", "b"),
            ("a", "b"),
            {"a": np.array([1, 2]), "b": np.array([3, 4])},
            np.array([10.0, 20.0]),
        )
        assert list(table.iter_rows()) == [((1, 3), 10.0), ((2, 4), 20.0)]
