"""Tests for subcube materialization (GROUP BY aggregation)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.view import View
from repro.cube.generator import generate_fact_table
from repro.cube.schema import CubeSchema, Dimension
from repro.engine.materialize import materialize_view, rollup_view
from repro.engine.table import FactTable


@pytest.fixture
def schema():
    return CubeSchema([Dimension("a", 4), Dimension("b", 3), Dimension("c", 2)])


@pytest.fixture
def fact(schema):
    columns = {
        "a": np.array([0, 0, 1, 1, 2]),
        "b": np.array([0, 0, 0, 1, 2]),
        "c": np.array([0, 1, 0, 0, 1]),
    }
    return FactTable(schema, columns, np.array([1.0, 2.0, 3.0, 4.0, 5.0]))


class TestMaterializeView:
    def test_group_by_one_attr(self, fact):
        table = materialize_view(fact, View.of("a"))
        assert list(table.iter_rows()) == [((0,), 3.0), ((1,), 7.0), ((2,), 5.0)]

    def test_group_by_two_attrs(self, fact):
        table = materialize_view(fact, View.of("a", "b"))
        assert table.n_rows == 4
        assert dict(table.iter_rows())[(0, 0)] == 3.0

    def test_empty_view_is_grand_total(self, fact):
        table = materialize_view(fact, View.none())
        assert table.n_rows == 1
        assert table.values[0] == 15.0

    def test_top_view_when_no_duplicates(self, fact):
        table = materialize_view(fact, View.of("a", "b", "c"))
        assert table.n_rows == 5  # all rows distinct here

    def test_count_aggregate(self, fact):
        table = materialize_view(fact, View.of("a"), agg="count")
        assert dict(table.iter_rows())[(0,)] == 2.0

    def test_min_max_aggregates(self, fact):
        mins = materialize_view(fact, View.of("a"), agg="min")
        maxs = materialize_view(fact, View.of("a"), agg="max")
        assert dict(mins.iter_rows())[(0,)] == 1.0
        assert dict(maxs.iter_rows())[(0,)] == 2.0

    def test_invalid_aggregate(self, fact):
        with pytest.raises(ValueError, match="agg"):
            materialize_view(fact, View.of("a"), agg="median")

    def test_keys_sorted(self, fact):
        table = materialize_view(fact, View.of("a", "b"))
        keys = [k for k, __ in table.iter_rows()]
        assert keys == sorted(keys)

    def test_row_count_is_distinct_count(self, schema):
        fact = generate_fact_table(schema, 100, rng=0)
        for attrs in (("a",), ("a", "b"), ("a", "b", "c")):
            table = materialize_view(fact, View(attrs))
            assert table.n_rows == fact.distinct_count(table.attrs)


class TestRollup:
    def test_rollup_matches_direct(self, fact, schema):
        top = materialize_view(fact, View.of("a", "b", "c"))
        direct = materialize_view(fact, View.of("a"))
        rolled = rollup_view(top, View.of("a"), schema=schema)
        assert list(rolled.iter_rows()) == list(direct.iter_rows())

    def test_rollup_from_intermediate(self, fact, schema):
        ab = materialize_view(fact, View.of("a", "b"))
        direct = materialize_view(fact, View.of("b"))
        rolled = rollup_view(ab, View.of("b"), schema=schema)
        assert list(rolled.iter_rows()) == list(direct.iter_rows())

    def test_rollup_to_grand_total(self, fact, schema):
        ab = materialize_view(fact, View.of("a", "b"))
        rolled = rollup_view(ab, View.none(), schema=schema)
        assert rolled.values[0] == 15.0

    def test_rollup_requires_descendant(self, fact, schema):
        ab = materialize_view(fact, View.of("a", "b"))
        with pytest.raises(ValueError, match="not computable"):
            rollup_view(ab, View.of("c"), schema=schema)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=300))
    def test_rollup_always_matches_direct(self, n_rows):
        """The dependence relation in action: any path down the lattice
        yields the same table."""
        schema = CubeSchema([Dimension("x", 6), Dimension("y", 4), Dimension("z", 3)])
        fact = generate_fact_table(schema, n_rows, rng=n_rows)
        top = materialize_view(fact, View.of("x", "y", "z"))
        mid = rollup_view(top, View.of("x", "y"), schema=schema)
        bottom_via_path = rollup_view(mid, View.of("x"), schema=schema)
        bottom_direct = materialize_view(fact, View.of("x"))
        got = {k: pytest.approx(v) for k, v in bottom_direct.iter_rows()}
        assert dict(bottom_via_path.iter_rows()) == got
