"""Kill/resume tests for the load pipeline's ``on_step``/``resume_from``.

The selection runtime checkpoints *selection* runs at stage boundaries;
these tests exercise the analogous contract for *materialization*: kill
``materialize_selection`` after every completed unit of work (view step
or index build), resume on the same catalog with the partial report, and
require the combined row accounting to match an uninterrupted load
exactly.
"""

import pytest

from repro.core.index import Index
from repro.core.view import View
from repro.cube.generator import generate_fact_table
from repro.cube.schema import CubeSchema, Dimension
from repro.engine.catalog import Catalog
from repro.engine.pipeline import materialize_selection


class _Killed(RuntimeError):
    """Raised by the on_step hook to abort a load at a chosen boundary."""


@pytest.fixture
def schema():
    return CubeSchema(
        [Dimension("a", 20), Dimension("b", 12), Dimension("c", 6)]
    )


def _fresh_fact(schema):
    return generate_fact_table(schema, 2_500, rng=6)


ABC = View.of("a", "b", "c")
AB = View.of("a", "b")
A = View.of("a")
B = View.of("b")

VIEWS = [ABC, AB, A, B, View.none()]
INDEXES = [Index(AB, ("a", "b")), Index(AB, ("b", "a")), Index(A, ("a",))]


def _golden(schema):
    catalog = Catalog(_fresh_fact(schema))
    return materialize_selection(catalog, VIEWS, indexes=INDEXES)


def _kill_after(n_units):
    """An on_step hook that raises once ``n_units`` units have completed."""
    state = {"count": 0, "report": None}

    def hook(report, step):
        state["count"] += 1
        state["report"] = report
        if state["count"] == n_units:
            raise _Killed(f"killed after unit {n_units}")

    return hook, state


def _units(report):
    return len(report.steps) + len(report.indexes_built)


class TestPipelineKillResume:
    def test_resume_matches_uninterrupted_at_every_boundary(self, schema):
        golden = _golden(schema)
        total_units = _units(golden)
        assert total_units == len(VIEWS) + len(INDEXES)

        for kill_at in range(1, total_units + 1):
            catalog = Catalog(_fresh_fact(schema))
            hook, state = _kill_after(kill_at)
            with pytest.raises(_Killed):
                materialize_selection(
                    catalog, VIEWS, indexes=INDEXES, on_step=hook
                )
            partial = state["report"]
            assert partial is not None
            assert _units(partial) == kill_at

            resumed = materialize_selection(
                catalog, VIEWS, indexes=INDEXES, resume_from=partial
            )
            assert _units(resumed) == total_units, f"kill at {kill_at}"
            assert resumed.rows_scanned == golden.rows_scanned
            assert resumed.index_entries_built == golden.index_entries_built
            assert resumed.indexes_built == golden.indexes_built
            assert resumed.total_cost == golden.total_cost
            assert [
                (s.view, s.source, s.rows_scanned, s.rows_produced)
                for s in resumed.steps
            ] == [
                (s.view, s.source, s.rows_scanned, s.rows_produced)
                for s in golden.steps
            ]

    def test_resumed_catalog_contents_match(self, schema):
        """The data, not just the accounting: killing mid-load and
        resuming leaves the same tables as a clean load."""
        clean = Catalog(_fresh_fact(schema))
        materialize_selection(clean, VIEWS, indexes=INDEXES)

        catalog = Catalog(_fresh_fact(schema))
        hook, state = _kill_after(2)
        with pytest.raises(_Killed):
            materialize_selection(catalog, VIEWS, indexes=INDEXES, on_step=hook)
        materialize_selection(
            catalog, VIEWS, indexes=INDEXES, resume_from=state["report"]
        )
        for view in VIEWS:
            got = dict(catalog.view_table(view).iter_rows())
            expected = dict(clean.view_table(view).iter_rows())
            assert got.keys() == expected.keys()
        for index in INDEXES:
            assert catalog.has_index(index)

    def test_resume_skips_built_indexes(self, schema):
        """Index entries are not recounted on resume — the combined
        count equals the uninterrupted one even when the kill lands
        between index builds."""
        golden = _golden(schema)
        kill_at = len(VIEWS) + 1  # after the first index
        catalog = Catalog(_fresh_fact(schema))
        hook, state = _kill_after(kill_at)
        with pytest.raises(_Killed):
            materialize_selection(catalog, VIEWS, indexes=INDEXES, on_step=hook)
        partial = state["report"]
        assert len(partial.indexes_built) == 1
        resumed = materialize_selection(
            catalog, VIEWS, indexes=INDEXES, resume_from=partial
        )
        assert resumed.indexes_built == golden.indexes_built
        assert resumed.index_entries_built == golden.index_entries_built

    def test_on_step_sees_every_unit(self, schema):
        catalog = Catalog(_fresh_fact(schema))
        seen = []
        materialize_selection(
            catalog,
            VIEWS,
            indexes=INDEXES,
            on_step=lambda report, step: seen.append(step),
        )
        view_steps = [s for s in seen if s is not None]
        index_steps = [s for s in seen if s is None]
        assert len(view_steps) == len(VIEWS)
        assert len(index_steps) == len(INDEXES)
