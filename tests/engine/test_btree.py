"""Tests for the B+tree, including property-based checks against a
sorted-list reference implementation."""

import bisect

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.btree import BPlusTree

KEYS = st.lists(
    st.tuples(st.integers(0, 50), st.integers(0, 50)), unique=True, max_size=200
)


def reference_pairs(keys):
    return sorted((k, i) for i, k in enumerate(keys))


class TestBasics:
    def test_empty_tree(self):
        tree = BPlusTree()
        assert len(tree) == 0
        assert tree.search((1,)) is None
        assert list(tree.items()) == []

    def test_order_validation(self):
        with pytest.raises(ValueError):
            BPlusTree(order=2)

    def test_insert_and_search(self):
        tree = BPlusTree(order=4)
        for i in range(100):
            tree.insert((i,), i * 2)
        assert len(tree) == 100
        for i in range(100):
            assert tree.search((i,)) == i * 2
        assert tree.search((200,)) is None

    def test_duplicate_key_rejected(self):
        tree = BPlusTree()
        tree.insert((1,), "a")
        with pytest.raises(KeyError):
            tree.insert((1,), "b")

    def test_non_tuple_key_rejected(self):
        tree = BPlusTree()
        with pytest.raises(TypeError):
            tree.insert(1, "a")

    def test_items_sorted(self):
        tree = BPlusTree(order=4)
        for i in [5, 2, 8, 1, 9, 3]:
            tree.insert((i,), i)
        assert [k for k, __ in tree.items()] == [(i,) for i in [1, 2, 3, 5, 8, 9]]

    def test_height_grows_logarithmically(self):
        tree = BPlusTree(order=4)
        for i in range(1000):
            tree.insert((i,), i)
        assert 3 <= tree.height <= 8

    def test_n_leaves_counts_chain(self):
        tree = BPlusTree(order=4)
        for i in range(100):
            tree.insert((i,), i)
        assert tree.n_leaves >= 100 // 5


class TestRangeScan:
    @pytest.fixture
    def tree(self):
        t = BPlusTree(order=4)
        for i in range(0, 100, 2):  # even numbers
            t.insert((i,), i)
        return t

    def test_half_open(self, tree):
        got = [k[0] for k, __ in tree.range_scan((10,), (20,))]
        assert got == [10, 12, 14, 16, 18]

    def test_inclusive_high(self, tree):
        got = [k[0] for k, __ in tree.range_scan((10,), (20,), inclusive_high=True)]
        assert got == [10, 12, 14, 16, 18, 20]

    def test_empty_range(self, tree):
        assert list(tree.range_scan((11,), (12,))) == []

    def test_range_past_end(self, tree):
        got = [k[0] for k, __ in tree.range_scan((96,), (1000,))]
        assert got == [96, 98]


class TestPrefixScan:
    @pytest.fixture
    def tree(self):
        t = BPlusTree(order=4)
        for a in range(5):
            for b in range(4):
                t.insert((a, b), a * 10 + b)
        return t

    def test_prefix_matches_exactly(self, tree):
        got = [k for k, __ in tree.prefix_scan((2,))]
        assert got == [(2, 0), (2, 1), (2, 2), (2, 3)]

    def test_full_key_prefix(self, tree):
        got = list(tree.prefix_scan((3, 1)))
        assert got == [((3, 1), 31)]

    def test_empty_prefix_scans_everything(self, tree):
        assert len(list(tree.prefix_scan(()))) == 20

    def test_missing_prefix(self, tree):
        assert list(tree.prefix_scan((9,))) == []

    def test_non_tuple_prefix_rejected(self, tree):
        with pytest.raises(TypeError):
            list(tree.prefix_scan(2))


class TestBulkLoad:
    def test_roundtrip(self):
        entries = [((i,), i * i) for i in range(500)]
        tree = BPlusTree.bulk_load(entries, order=8)
        assert len(tree) == 500
        assert list(tree.items()) == entries

    def test_requires_strictly_increasing(self):
        with pytest.raises(ValueError):
            BPlusTree.bulk_load([((1,), 0), ((1,), 1)])
        with pytest.raises(ValueError):
            BPlusTree.bulk_load([((2,), 0), ((1,), 1)])

    def test_empty(self):
        tree = BPlusTree.bulk_load([])
        assert len(tree) == 0

    def test_single_entry(self):
        tree = BPlusTree.bulk_load([((1,), "x")])
        assert tree.search((1,)) == "x"

    def test_search_after_bulk_load(self):
        entries = [((i, i % 3), i) for i in range(200)]
        entries.sort()
        tree = BPlusTree.bulk_load(entries, order=6)
        for key, value in entries:
            assert tree.search(key) == value

    @pytest.mark.parametrize("n", [1, 2, 3, 5, 17, 64, 100])
    @pytest.mark.parametrize("order", [3, 4, 32])
    def test_various_sizes_and_orders(self, n, order):
        entries = [((i,), i) for i in range(n)]
        tree = BPlusTree.bulk_load(entries, order=order)
        assert list(tree.items()) == entries


class TestAgainstReference:
    @settings(max_examples=80, deadline=None)
    @given(KEYS)
    def test_insert_matches_reference(self, keys):
        tree = BPlusTree(order=4)
        for i, k in enumerate(keys):
            tree.insert(k, i)
        assert list(tree.items()) == reference_pairs(keys)

    @settings(max_examples=80, deadline=None)
    @given(KEYS, st.tuples(st.integers(0, 50), st.integers(0, 50)),
           st.tuples(st.integers(0, 50), st.integers(0, 50)))
    def test_range_scan_matches_reference(self, keys, low, high):
        tree = BPlusTree(order=4)
        pairs = reference_pairs(keys)
        for k, v in pairs:
            tree.insert(k, v)
        expected = [(k, v) for k, v in pairs if low <= k < high]
        assert list(tree.range_scan(low, high)) == expected

    @settings(max_examples=80, deadline=None)
    @given(KEYS, st.integers(0, 50))
    def test_prefix_scan_matches_reference(self, keys, prefix_val):
        tree = BPlusTree(order=4)
        pairs = reference_pairs(keys)
        for k, v in pairs:
            tree.insert(k, v)
        expected = [(k, v) for k, v in pairs if k[0] == prefix_val]
        assert list(tree.prefix_scan((prefix_val,))) == expected

    @settings(max_examples=50, deadline=None)
    @given(KEYS)
    def test_bulk_load_equals_insertion(self, keys):
        pairs = reference_pairs(keys)
        inserted = BPlusTree(order=4)
        for k, v in pairs:
            inserted.insert(k, v)
        bulk = BPlusTree.bulk_load(pairs, order=4)
        assert list(inserted.items()) == list(bulk.items())

    @settings(max_examples=50, deadline=None)
    @given(KEYS, st.tuples(st.integers(0, 50), st.integers(0, 50)))
    def test_search_matches_reference(self, keys, probe):
        tree = BPlusTree(order=3)
        pairs = reference_pairs(keys)
        for k, v in pairs:
            tree.insert(k, v)
        expected = dict(pairs).get(probe)
        assert tree.search(probe) == expected


class TestInvariants:
    @settings(max_examples=40, deadline=None)
    @given(KEYS)
    def test_node_occupancy_bound(self, keys):
        """No node ever exceeds the order."""
        tree = BPlusTree(order=4)
        for i, k in enumerate(keys):
            tree.insert(k, i)
        self._check_node(tree._root, tree.order)

    def _check_node(self, node, order):
        assert len(node.keys) <= order
        if hasattr(node, "children"):
            assert len(node.children) == len(node.keys) + 1
            for child in node.children:
                self._check_node(child, order)

    @settings(max_examples=40, deadline=None)
    @given(KEYS)
    def test_leaf_chain_covers_all_entries(self, keys):
        tree = BPlusTree(order=4)
        for i, k in enumerate(keys):
            tree.insert(k, i)
        assert sum(1 for __ in tree.items()) == len(keys)


class TestDelete:
    def test_delete_and_search(self):
        tree = BPlusTree(order=4)
        for i in range(50):
            tree.insert((i,), i)
        for i in range(0, 50, 2):
            tree.delete((i,))
        assert len(tree) == 25
        for i in range(50):
            expected = None if i % 2 == 0 else i
            assert tree.search((i,)) == expected

    def test_delete_missing_key_raises(self):
        tree = BPlusTree()
        tree.insert((1,), "a")
        with pytest.raises(KeyError):
            tree.delete((2,))

    def test_delete_non_tuple_rejected(self):
        tree = BPlusTree()
        with pytest.raises(TypeError):
            tree.delete(1)

    def test_delete_everything(self):
        tree = BPlusTree(order=3)
        for i in range(40):
            tree.insert((i,), i)
        for i in range(40):
            tree.delete((i,))
        assert len(tree) == 0
        assert list(tree.items()) == []

    def test_root_collapses(self):
        tree = BPlusTree(order=3)
        for i in range(30):
            tree.insert((i,), i)
        height_before = tree.height
        for i in range(28):
            tree.delete((i,))
        assert tree.height < height_before

    def test_delete_from_bulk_loaded_tree(self):
        entries = [((i,), i) for i in range(100)]
        tree = BPlusTree.bulk_load(entries, order=6)
        for i in range(0, 100, 3):
            tree.delete((i,))
        remaining = [k[0] for k, __ in tree.items()]
        assert remaining == [i for i in range(100) if i % 3 != 0]

    def test_prefix_scan_after_deletes(self):
        tree = BPlusTree(order=4)
        for a in range(6):
            for b in range(5):
                tree.insert((a, b), a * 10 + b)
        for b in range(5):
            tree.delete((3, b))
        assert list(tree.prefix_scan((3,))) == []
        assert len(list(tree.prefix_scan((2,)))) == 5

    @settings(max_examples=60, deadline=None)
    @given(KEYS, st.data())
    def test_random_deletes_match_reference(self, keys, data):
        tree = BPlusTree(order=4)
        pairs = reference_pairs(keys)
        for k, v in pairs:
            tree.insert(k, v)
        to_delete = data.draw(
            st.lists(st.sampled_from(sorted(keys)), unique=True)
        ) if keys else []
        surviving = dict(pairs)
        for k in to_delete:
            tree.delete(k)
            surviving.pop(k)
        assert list(tree.items()) == sorted(surviving.items())

    @settings(max_examples=40, deadline=None)
    @given(KEYS, st.data())
    def test_occupancy_invariant_after_deletes(self, keys, data):
        tree = BPlusTree(order=4)
        for i, k in enumerate(keys):
            tree.insert(k, i)
        to_delete = data.draw(
            st.lists(st.sampled_from(sorted(keys)), unique=True)
        ) if keys else []
        for k in to_delete:
            tree.delete(k)
        TestInvariants()._check_node(tree._root, tree.order)

    @settings(max_examples=40, deadline=None)
    @given(KEYS, st.data())
    def test_interleaved_insert_delete(self, keys, data):
        tree = BPlusTree(order=3)
        reference = {}
        ops = data.draw(
            st.lists(
                st.tuples(st.booleans(),
                          st.tuples(st.integers(0, 20), st.integers(0, 20))),
                max_size=120,
            )
        )
        for is_insert, key in ops:
            if is_insert and key not in reference:
                tree.insert(key, key[0])
                reference[key] = key[0]
            elif not is_insert and key in reference:
                tree.delete(key)
                del reference[key]
        assert list(tree.items()) == sorted(reference.items())
        assert len(tree) == len(reference)
