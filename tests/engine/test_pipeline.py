"""Tests for the lattice-aware materialization pipeline."""

import pytest

from repro.core.index import Index
from repro.core.view import View
from repro.cube.generator import generate_fact_table
from repro.cube.schema import CubeSchema, Dimension
from repro.engine.catalog import Catalog
from repro.engine.materialize import materialize_view
from repro.engine.pipeline import (
    load_cost_estimate,
    materialize_selection,
    naive_load_cost,
)


@pytest.fixture
def fact():
    schema = CubeSchema([Dimension("a", 20), Dimension("b", 12), Dimension("c", 6)])
    return generate_fact_table(schema, 2_500, rng=6)


ABC = View.of("a", "b", "c")
AB = View.of("a", "b")
A = View.of("a")


class TestPipelineCorrectness:
    def test_results_equal_direct_materialization(self, fact):
        catalog = Catalog(fact)
        materialize_selection(catalog, [ABC, AB, A, View.none()])
        for view in (ABC, AB, A, View.none()):
            direct = materialize_view(fact, view)
            got = dict(catalog.view_table(view).iter_rows())
            expected = dict(direct.iter_rows())
            assert got.keys() == expected.keys()
            for key in expected:
                assert got[key] == pytest.approx(expected[key])

    def test_rollup_chain_sources(self, fact):
        """Each view rolls up from the smallest ancestor: abc from raw,
        ab from abc, a from ab."""
        catalog = Catalog(fact)
        report = materialize_selection(catalog, [A, AB, ABC])
        assert report.source_of(ABC) is None
        assert report.source_of(AB) == ABC
        assert report.source_of(A) == AB

    def test_existing_views_reused_not_recomputed(self, fact):
        catalog = Catalog(fact)
        catalog.materialize(AB)
        report = materialize_selection(catalog, [A, AB])
        assert all(step.view != AB for step in report.steps)
        assert report.source_of(A) == AB

    def test_incomparable_views_fall_back_to_raw(self, fact):
        catalog = Catalog(fact)
        report = materialize_selection(catalog, [View.of("a"), View.of("b")])
        assert report.source_of(View.of("a")) is None
        assert report.source_of(View.of("b")) is None

    def test_indexes_built(self, fact):
        catalog = Catalog(fact)
        idx = Index(AB, ("b", "a"))
        report = materialize_selection(catalog, [AB], indexes=[idx])
        assert catalog.has_index(idx)
        assert report.index_entries_built == catalog.view_rows(AB)

    def test_index_without_view_rejected(self, fact):
        catalog = Catalog(fact)
        with pytest.raises(ValueError, match="neither requested"):
            materialize_selection(catalog, [A], indexes=[Index(AB, ("a", "b"))])

    def test_duplicate_views_deduped(self, fact):
        catalog = Catalog(fact)
        report = materialize_selection(catalog, [A, A, AB, AB])
        assert len(report.steps) == 2


class TestLoadCost:
    def test_pipeline_beats_naive(self, fact):
        catalog = Catalog(fact)
        views = [ABC, AB, A, View.of("b"), View.none()]
        naive = naive_load_cost(catalog, views)
        report = materialize_selection(catalog, views)
        assert report.rows_scanned < naive

    def test_rows_scanned_accounting(self, fact):
        catalog = Catalog(fact)
        report = materialize_selection(catalog, [ABC, AB])
        abc_rows = catalog.view_rows(ABC)
        assert report.rows_scanned == fact.n_rows + abc_rows

    def test_total_cost_includes_indexes(self, fact):
        catalog = Catalog(fact)
        idx = Index(AB, ("a", "b"))
        report = materialize_selection(catalog, [AB], indexes=[idx])
        assert report.total_cost == report.rows_scanned + catalog.view_rows(AB)

    def test_source_of_unknown_view(self, fact):
        catalog = Catalog(fact)
        report = materialize_selection(catalog, [A])
        with pytest.raises(KeyError):
            report.source_of(AB)


class TestAnalyticalEstimate:
    def test_matches_actual_pipeline(self, fact):
        """The advising-time estimate equals the measured scan count when
        fed the realized view sizes."""
        catalog = Catalog(fact)
        views = [ABC, AB, A, View.none()]
        report = materialize_selection(catalog, views)
        sizes = {v: float(catalog.view_rows(v)) for v in views}
        estimate = load_cost_estimate(sizes, views, raw_rows=fact.n_rows)
        assert estimate == pytest.approx(report.rows_scanned)

    def test_estimate_on_tpcd_figure1(self, tpcd_lat):
        """Loading the paper's two-step view pick: psc from raw (6M),
        everything else rolls up the chain."""
        views = [
            View.of("p", "s", "c"),
            View.of("p", "s"),
            View.of("p"),
            View.of("s"),
            View.of("c"),
            View.none(),
        ]
        sizes = {v: tpcd_lat.size(v) for v in views}
        estimate = load_cost_estimate(sizes, views, raw_rows=6e6)
        # psc: 6M raw; ps: 6M (from psc); c: 6M (from psc);
        # p, s: 0.8M each (from ps); none: 0.01M (from s)
        assert estimate == pytest.approx(
            6e6 + 6e6 + 6e6 + 0.8e6 + 0.8e6 + 0.01e6
        )
