"""Stateful (model-based) hypothesis tests for the engine.

Two state machines:

* :class:`BPlusTreeMachine` — random interleavings of insert / delete /
  search / scans against a plain-dict model, checking structural
  invariants after every step;
* :class:`CatalogMachine` — random interleavings of view
  materialization, index builds, delta batches, and query execution,
  checking that every materialized view always equals a from-scratch
  recomputation over the accumulated facts.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.core.index import Index
from repro.core.query import SliceQuery
from repro.core.view import View
from repro.cube.schema import CubeSchema, Dimension
from repro.engine.btree import BPlusTree
from repro.engine.catalog import Catalog
from repro.engine.executor import Executor
from repro.engine.maintenance import apply_delta
from repro.engine.materialize import materialize_view
from repro.engine.table import FactTable

KEY = st.tuples(st.integers(0, 12), st.integers(0, 12))


class BPlusTreeMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.tree = BPlusTree(order=4)
        self.model = {}

    @rule(key=KEY, value=st.integers())
    def insert(self, key, value):
        if key in self.model:
            return
        self.tree.insert(key, value)
        self.model[key] = value

    @rule(key=KEY)
    def delete(self, key):
        if key not in self.model:
            return
        self.tree.delete(key)
        del self.model[key]

    @rule(key=KEY)
    def search(self, key):
        assert self.tree.search(key) == self.model.get(key)

    @rule(prefix=st.integers(0, 12))
    def prefix_scan(self, prefix):
        got = list(self.tree.prefix_scan((prefix,)))
        expected = sorted(
            (k, v) for k, v in self.model.items() if k[0] == prefix
        )
        assert got == expected

    @rule(low=KEY, high=KEY)
    def range_scan(self, low, high):
        got = list(self.tree.range_scan(low, high))
        expected = sorted(
            (k, v) for k, v in self.model.items() if low <= k < high
        )
        assert got == expected

    @invariant()
    def size_matches(self):
        assert len(self.tree) == len(self.model)

    @invariant()
    def items_sorted_and_complete(self):
        assert list(self.tree.items()) == sorted(self.model.items())

    @invariant()
    def node_occupancy(self):
        self._check(self.tree._root)

    def _check(self, node):
        assert len(node.keys) <= self.tree.order
        if hasattr(node, "children"):
            assert len(node.children) == len(node.keys) + 1
            for child in node.children:
                self._check(child)


TestBPlusTreeStateful = BPlusTreeMachine.TestCase
TestBPlusTreeStateful.settings = settings(
    max_examples=30, stateful_step_count=40, deadline=None
)


SCHEMA = CubeSchema([Dimension("x", 6), Dimension("y", 4)])
ALL_VIEWS = [View(()), View.of("x"), View.of("y"), View.of("x", "y")]


class CatalogMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.rng = np.random.default_rng(0)
        columns = {
            "x": np.array([0, 1, 2], dtype=np.int64),
            "y": np.array([0, 1, 0], dtype=np.int64),
        }
        self.catalog = Catalog(
            FactTable(SCHEMA, columns, np.array([1.0, 2.0, 3.0]))
        )

    @rule(view_i=st.integers(0, 3))
    def materialize(self, view_i):
        self.catalog.materialize(ALL_VIEWS[view_i])

    @rule(reverse=st.booleans())
    def build_index(self, reverse):
        view = View.of("x", "y")
        if not self.catalog.has_view(view):
            return
        key = ("y", "x") if reverse else ("x", "y")
        self.catalog.build_index(Index(view, key))

    @rule(n=st.integers(1, 12), seed=st.integers(0, 1000))
    def apply_delta_batch(self, n, seed):
        rng = np.random.default_rng(seed)
        apply_delta(
            self.catalog,
            {
                "x": rng.integers(0, 6, size=n),
                "y": rng.integers(0, 4, size=n),
            },
            rng.uniform(0, 10, size=n),
        )

    @rule(x=st.integers(0, 5))
    def execute_slice(self, x):
        view = View.of("x", "y")
        if not self.catalog.has_view(view):
            return
        executor = Executor(self.catalog)
        query = SliceQuery(groupby=("y",), selection=("x",))
        result = executor.execute(query, {"x": x})
        # brute force over the (current) fact table
        fact = self.catalog.fact
        mask = fact.column("x") == x
        expected = {}
        for row in np.flatnonzero(mask):
            key = (int(fact.column("y")[row]),)
            expected[key] = expected.get(key, 0.0) + float(fact.measures[row])
        assert result.groups.keys() == expected.keys()
        for key, value in expected.items():
            assert abs(result.groups[key] - value) < 1e-6

    @invariant()
    def views_equal_recompute(self):
        for view in self.catalog.views():
            expected = dict(
                materialize_view(self.catalog.fact, view).iter_rows()
            )
            got = dict(self.catalog.view_table(view).iter_rows())
            assert got.keys() == expected.keys()
            for key, value in expected.items():
                assert abs(got[key] - value) < 1e-6

    @invariant()
    def index_entries_match_views(self):
        for index in self.catalog.indexes():
            table = self.catalog.view_table(index.view)
            assert len(self.catalog.index_tree(index)) == table.n_rows


TestCatalogStateful = CatalogMachine.TestCase
TestCatalogStateful.settings = settings(
    max_examples=15, stateful_step_count=25, deadline=None
)
