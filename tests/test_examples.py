"""Smoke tests: every example script must run end to end.

Examples are documentation; a broken one is a broken promise.  Each is
executed in-process via ``runpy`` (same interpreter, coverage-friendly).
The long-running optimal-search study is excluded from the default run
and exercised in the benchmarks instead.
"""

import runpy
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "tpcd_advisor.py",
    "engine_validation.py",
    "hierarchical_cube.py",
    "incremental_maintenance.py",
    "sql_workbench.py",
    "closed_loop_advisor.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script, capsys):
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"


def test_quickstart_reports_the_headline_number(capsys):
    runpy.run_path(str(EXAMPLES / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "average query cost" in out
    assert "0.71M rows" in out


def test_tpcd_advisor_reports_paper_anchors(capsys):
    runpy.run_path(str(EXAMPLES / "tpcd_advisor.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "600 rows (paper: 600)" in out
    assert "around 80M" in out
    assert "40" in out  # the ~40% improvement


def test_all_examples_are_either_fast_or_known_slow():
    scripts = {p.name for p in EXAMPLES.glob("*.py")}
    known_slow = {"synthetic_cube_study.py"}
    assert scripts == set(FAST_EXAMPLES) | known_slow
