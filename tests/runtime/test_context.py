"""Tests for the cooperative execution context (budgets, signals,
checkpoint writes)."""

import os
import signal

import pytest

from repro.algorithms import RGreedy
from repro.core.benefit import BenefitEngine
from repro.runtime import (
    BudgetExceeded,
    Interrupted,
    RunContext,
    load_checkpoint,
)
from repro.runtime.faults import (
    _cube_graph,
    compare_results,
    smoke_budget,
    top_view_of,
)


@pytest.fixture(scope="module")
def graph():
    return _cube_graph(3)


@pytest.fixture(scope="module")
def engine(graph):
    return BenefitEngine(graph)


@pytest.fixture(scope="module")
def space(engine):
    return smoke_budget(engine, 0.2)


@pytest.fixture(scope="module")
def seed(engine):
    return [top_view_of(engine)]


def run_greedy(engine, space, seed, context=None):
    return RGreedy(2).run(engine, space, seed=seed, context=context)


class FakeClock:
    """A monotonic clock advanced by a fixed step per call."""

    def __init__(self, step=0.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        self.now += self.step
        return self.now


class TestValidation:
    def test_negative_deadline_rejected(self):
        with pytest.raises(ValueError, match="deadline"):
            RunContext(deadline=-1)

    def test_zero_deadline_allowed(self):
        assert RunContext(deadline=0).deadline == 0

    def test_nonpositive_memory_limit_rejected(self):
        with pytest.raises(ValueError, match="memory_limit_mb"):
            RunContext(memory_limit_mb=0)

    def test_negative_checkpoint_interval_rejected(self):
        with pytest.raises(ValueError, match="checkpoint_interval"):
            RunContext(checkpoint_interval=-0.1)

    def test_stage_boundary_requires_bind(self, engine):
        with pytest.raises(RuntimeError, match="bind"):
            RunContext().stage_boundary(engine)


class TestDeadline:
    def test_zero_deadline_stops_at_first_boundary(self, engine, space, seed):
        with pytest.raises(BudgetExceeded) as excinfo:
            run_greedy(engine, space, seed, RunContext(deadline=0))
        stop = excinfo.value
        assert stop.budget == "deadline"
        # the in-flight stage (the seed) finished before the stop
        assert stop.result is not None
        assert stop.result.interrupted
        assert stop.result.stop_reason == "budget-exceeded"
        assert tuple(stop.result.selected) == tuple(seed)
        assert stop.checkpoint is not None
        assert stop.checkpoint.stage_counter == 1

    def test_deadline_checked_against_injected_clock(self, engine, space, seed):
        clock = FakeClock(step=10.0)
        with pytest.raises(BudgetExceeded):
            run_greedy(
                engine, space, seed, RunContext(deadline=5, clock=clock)
            )

    def test_generous_deadline_does_not_stop(self, engine, space, seed):
        golden = run_greedy(engine, space, seed)
        result = run_greedy(engine, space, seed, RunContext(deadline=3600))
        assert not result.interrupted
        assert compare_results(golden, result) == ""


class TestMemoryBudget:
    def test_tiny_memory_limit_stops(self, engine, space, seed):
        # any real process has a peak RSS far above a fraction of a MiB
        with pytest.raises(BudgetExceeded) as excinfo:
            run_greedy(engine, space, seed, RunContext(memory_limit_mb=0.01))
        assert excinfo.value.budget == "memory"
        assert excinfo.value.result.interrupted


class TestSignals:
    def test_requested_stop_interrupts_at_boundary(self, engine, space, seed):
        context = RunContext()
        context.request_stop(signal.SIGTERM)
        with pytest.raises(Interrupted) as excinfo:
            run_greedy(engine, space, seed, context)
        stop = excinfo.value
        assert "SIGTERM" in str(stop)
        assert stop.result is not None and stop.result.interrupted
        assert stop.result.stop_reason == "interrupted"

    def test_sigint_during_run_is_cooperative(self, engine, space, seed):
        """A real SIGINT under handle_signals() stops at the next stage
        boundary with a checkpoint, instead of dying mid-commit."""
        context = RunContext()
        with context.handle_signals():
            os.kill(os.getpid(), signal.SIGINT)
            with pytest.raises(Interrupted) as excinfo:
                run_greedy(engine, space, seed, context)
        assert excinfo.value.checkpoint is not None
        assert excinfo.value.checkpoint.stage_counter >= 1

    def test_handlers_restored_after_context(self, engine):
        before = signal.getsignal(signal.SIGINT)
        with RunContext().handle_signals():
            assert signal.getsignal(signal.SIGINT) is not before
        assert signal.getsignal(signal.SIGINT) is before

    def test_resume_after_interrupt_matches_golden(self, engine, space, seed):
        golden = run_greedy(engine, space, seed)
        context = RunContext()
        context.request_stop()
        with pytest.raises(Interrupted) as excinfo:
            run_greedy(engine, space, seed, context)
        checkpoint = excinfo.value.checkpoint
        resumed = run_greedy(
            engine, space, seed, RunContext(resume_from=checkpoint)
        )
        assert compare_results(golden, resumed) == ""


class TestCheckpointWrites:
    def test_interval_zero_writes_every_boundary(
        self, engine, space, seed, tmp_path
    ):
        path = tmp_path / "run.ckpt"
        context = RunContext(checkpoint_path=path, checkpoint_interval=0)
        result = run_greedy(engine, space, seed, context)
        checkpoint = load_checkpoint(path)
        assert checkpoint.stage_counter == context.stage_counter
        assert tuple(checkpoint.selected) == tuple(result.selected)

    def test_writes_throttled_by_interval(self, engine, space, seed, tmp_path):
        """With a frozen clock only the first boundary is written — later
        boundaries are within the interval."""
        path = tmp_path / "run.ckpt"
        context = RunContext(
            checkpoint_path=path, clock=FakeClock(step=0.0)
        )
        run_greedy(engine, space, seed, context)
        assert context.stage_counter > 1
        assert load_checkpoint(path).stage_counter == 1

    def test_stop_flushes_latest_checkpoint(self, engine, space, seed, tmp_path):
        """A cooperative stop writes the stopping boundary even when the
        throttle would have skipped it."""
        path = tmp_path / "run.ckpt"
        clock = FakeClock(step=0.0)
        context = RunContext(
            checkpoint_path=path, deadline=5, clock=clock
        )
        clock.step = 2.0  # now every check advances toward the deadline
        with pytest.raises(BudgetExceeded) as excinfo:
            run_greedy(engine, space, seed, context)
        on_disk = load_checkpoint(path)
        assert on_disk.stage_counter == excinfo.value.checkpoint.stage_counter

    def test_no_temp_files_left_behind(self, engine, space, seed, tmp_path):
        path = tmp_path / "run.ckpt"
        run_greedy(
            engine, space, seed,
            RunContext(checkpoint_path=path, checkpoint_interval=0),
        )
        assert [p.name for p in tmp_path.iterdir()] == ["run.ckpt"]
