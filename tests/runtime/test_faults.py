"""The fault-injection acceptance matrix: kill every algorithm at every
stage boundary, resume from the JSON checkpoint, require bit-identical
selections."""

import dataclasses

import pytest

from repro.algorithms import FIT_PAPER, LocalSearchRefiner, RGreedy
from repro.core.benefit import BenefitEngine
from repro.datasets.paper_figure2 import FIGURE2_SPACE
from repro.runtime.faults import (
    _cube_graph,
    compare_results,
    default_algorithms,
    fault_matrix,
    fault_scan,
    main,
    smoke_budget,
    top_view_of,
)


class TestFaultMatrixD5:
    """The ISSUE acceptance matrix at d=5: every algorithm, every stage
    boundary, dense + sparse backends, lazy loops on and off.

    The budget fraction is the smallest that still gives local search an
    improving move to checkpoint (~460 cases in ~10s); the CI smoke and
    ``python -m repro.runtime.faults --dims 5`` run the wider-budget
    version.
    """

    @pytest.fixture(scope="class")
    def cases(self):
        graph = _cube_graph(5)
        probe = BenefitEngine(graph)
        return fault_matrix(graph, smoke_budget(probe, 0.02))

    def test_every_case_resumes_bit_identical(self, cases):
        failures = [str(case) for case in cases if not case.ok]
        assert failures == []

    def test_matrix_covers_all_algorithms_and_modes(self, cases):
        expected = {label for label, __ in default_algorithms(lazy=False)}
        assert {case.algorithm for case in cases} == expected
        assert {case.backend for case in cases} == {"dense", "sparse"}
        assert {case.lazy for case in cases} == {False, True}

    def test_every_boundary_was_killed(self, cases):
        """Each (algorithm, backend, lazy) combination has one case per
        stage boundary, 1..n_stages."""
        by_combo = {}
        for case in cases:
            key = (case.algorithm, case.backend, case.lazy)
            by_combo.setdefault(key, []).append(case)
        for key, combo_cases in by_combo.items():
            stages = sorted(case.stage for case in combo_cases)
            n = combo_cases[0].n_stages
            assert stages == list(range(1, n + 1)), key
            if key[0] != "LocalSearchRefiner":  # may have few moves
                assert n >= 2, key  # the matrix must exercise resume


class TestWorkersColumn:
    """Kills with a live worker pool: the stop path must checkpoint,
    drain the pool, unlink the shared-memory segments, and resume
    bit-identically — at d=4 so the pool is forced (workers=2)."""

    def test_kill_with_live_pool_resumes_identically(self):
        from repro.parallel import leaked_segments

        graph = _cube_graph(4)
        probe = BenefitEngine(graph)
        cases = fault_matrix(
            graph,
            smoke_budget(probe, 0.05),
            backends=("sparse",),
            lazy_modes=(True,),
            workers_modes=(2,),
        )
        assert [str(case) for case in cases if not case.ok] == []
        assert {case.workers for case in cases} == {2}
        assert len(cases) >= 5
        assert leaked_segments() == []


class TestLocalSearchOnFigure2:
    """Local search only emits moves on instances where greedy is
    suboptimal; Figure 2 is the paper's pathology for exactly that."""

    def test_kill_resume_with_real_moves(self, fig2_g):
        engine = BenefitEngine(fig2_g)
        base = RGreedy(1, fit=FIT_PAPER).run(engine, FIGURE2_SPACE)
        refiner = LocalSearchRefiner()

        def run(context=None):
            return refiner.refine(
                engine, FIGURE2_SPACE, base.selected, context=context
            )

        golden, cases = fault_scan(
            run, algorithm="LocalSearchRefiner", backend="dense", lazy=False
        )
        assert golden.benefit >= 194  # it escaped the 1-greedy trap (46)
        assert len(cases) >= 2  # improving rounds produced boundaries
        assert [str(c) for c in cases if not c.ok] == []


class TestHarnessSelfChecks:
    def test_compare_results_detects_divergence(self, fig2_g):
        engine = BenefitEngine(fig2_g)
        golden = RGreedy(1, fit=FIT_PAPER).run(engine, FIGURE2_SPACE)
        assert compare_results(golden, golden) == ""
        tampered = dataclasses.replace(golden, selected=golden.selected[:-1])
        assert "selected" in compare_results(golden, tampered)
        flagged = dataclasses.replace(golden, interrupted=True)
        assert "interrupted" in compare_results(golden, flagged)

    def test_smoke_budget_includes_top_view(self):
        engine = BenefitEngine(_cube_graph(3))
        top = top_view_of(engine)
        top_space = float(engine.spaces[engine.structure_id(top)])
        assert smoke_budget(engine, 0.0) == pytest.approx(top_space)
        assert smoke_budget(engine, 0.1) > top_space

    def test_cli_smoke_passes(self, capsys):
        assert main(["--dims", "3", "--budget-fraction", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "0 failure(s)" in out
