"""Tests for checkpoint serialization, validation, and resume guards."""

import dataclasses
import json

import pytest

from repro.algorithms import HRUGreedy, RGreedy
from repro.core.benefit import BenefitEngine
from repro.runtime import (
    CheckpointError,
    RunContext,
    load_checkpoint,
    save_checkpoint,
)
from repro.runtime.checkpoint import (
    CHECKPOINT_KIND,
    CHECKPOINT_VERSION,
    StageRecord,
    algorithm_from_config,
    records_picked_order,
)
from repro.runtime.context import InjectedFault
from repro.runtime.faults import _cube_graph, smoke_budget, top_view_of


@pytest.fixture(scope="module")
def engine():
    return BenefitEngine(_cube_graph(3))


@pytest.fixture(scope="module")
def space(engine):
    return smoke_budget(engine, 0.2)


@pytest.fixture(scope="module")
def seed(engine):
    return [top_view_of(engine)]


def checkpoint_at(engine, space, seed, stage=2, algorithm=None):
    """Run until the injected fault at ``stage`` and return the checkpoint."""
    algorithm = algorithm or RGreedy(2)
    with pytest.raises(InjectedFault) as excinfo:
        algorithm.run(
            engine, space, seed=seed, context=RunContext(fault_stage=stage)
        )
    return excinfo.value.checkpoint


class TestRoundTrip:
    def test_file_round_trip_is_exact(self, engine, space, seed, tmp_path):
        checkpoint = checkpoint_at(engine, space, seed)
        path = tmp_path / "run.ckpt"
        save_checkpoint(checkpoint, path)
        restored = load_checkpoint(path)
        assert restored == checkpoint  # dataclass equality, floats exact

    def test_document_shape(self, engine, space, seed):
        document = checkpoint_at(engine, space, seed).to_dict()
        assert document["kind"] == CHECKPOINT_KIND
        assert document["version"] == CHECKPOINT_VERSION
        assert document["stage_counter"] == 2
        assert document["algorithm"]["class"] == "RGreedy"
        assert len(document["stages"]) == 2
        assert document["remaining_space"] == pytest.approx(
            document["space_budget"] - document["space_used"]
        )


class TestValidation:
    def test_wrong_kind_rejected(self, engine, space, seed, tmp_path):
        document = checkpoint_at(engine, space, seed).to_dict()
        document["kind"] = "something-else"
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(document))
        with pytest.raises(CheckpointError, match="kind"):
            load_checkpoint(path)

    def test_unknown_version_rejected(self, engine, space, seed, tmp_path):
        document = checkpoint_at(engine, space, seed).to_dict()
        document["version"] = 99
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(document))
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(path)

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(CheckpointError, match="not valid JSON"):
            load_checkpoint(path)

    def test_missing_field_rejected(self, engine, space, seed, tmp_path):
        document = checkpoint_at(engine, space, seed).to_dict()
        del document["fingerprint"]
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(document))
        with pytest.raises(CheckpointError, match="malformed"):
            load_checkpoint(path)

    def test_malformed_stage_record_rejected(self, engine, space, seed):
        document = checkpoint_at(engine, space, seed).to_dict()
        del document["stages"][0]["benefit"]
        from repro.runtime import Checkpoint

        with pytest.raises(CheckpointError, match="stage record"):
            Checkpoint.from_dict(document)

    def test_missing_file_is_oserror(self, tmp_path):
        with pytest.raises(OSError):
            load_checkpoint(tmp_path / "nope.json")


class TestAlgorithmFromConfig:
    def test_round_trips_constructor_params(self):
        rebuilt = algorithm_from_config(RGreedy(2, lazy=True).config())
        assert isinstance(rebuilt, RGreedy)
        assert rebuilt.config() == RGreedy(2, lazy=True).config()

    def test_unknown_class_rejected(self):
        with pytest.raises(CheckpointError, match="unknown algorithm"):
            algorithm_from_config({"class": "EvilAlgorithm", "params": {}})

    def test_non_dict_params_rejected(self):
        with pytest.raises(CheckpointError, match="params"):
            algorithm_from_config({"class": "RGreedy", "params": [1]})

    def test_bad_params_rejected(self):
        with pytest.raises(CheckpointError, match="cannot rebuild"):
            algorithm_from_config(
                {"class": "RGreedy", "params": {"bogus_kw": 1}}
            )


class TestResumeGuards:
    def test_wrong_algorithm_rejected(self, engine, space, seed):
        checkpoint = checkpoint_at(engine, space, seed)
        with pytest.raises(CheckpointError, match="cannot resume"):
            HRUGreedy().run(
                engine, space, seed=seed,
                context=RunContext(resume_from=checkpoint),
            )

    def test_wrong_fingerprint_rejected(self, engine, space, seed):
        checkpoint = checkpoint_at(engine, space, seed)
        tampered = dataclasses.replace(checkpoint, fingerprint="0" * 64)
        with pytest.raises(CheckpointError, match="fingerprint"):
            RGreedy(2).run(
                engine, space, seed=seed,
                context=RunContext(resume_from=tampered),
            )

    def test_wrong_budget_rejected(self, engine, space, seed):
        checkpoint = checkpoint_at(engine, space, seed)
        with pytest.raises(CheckpointError, match="budget"):
            RGreedy(2).run(
                engine, space * 2, seed=seed,
                context=RunContext(resume_from=checkpoint),
            )

    def test_wrong_seed_rejected(self, engine, space, seed):
        checkpoint = checkpoint_at(engine, space, seed)
        with pytest.raises(CheckpointError, match="seed"):
            RGreedy(2).run(
                engine, space, seed=(),
                context=RunContext(resume_from=checkpoint),
            )


class TestAtomicSave:
    def test_overwrite_leaves_single_file(self, engine, space, seed, tmp_path):
        path = tmp_path / "run.ckpt"
        first = checkpoint_at(engine, space, seed, stage=1)
        second = checkpoint_at(engine, space, seed, stage=2)
        save_checkpoint(first, path)
        save_checkpoint(second, path)
        assert [p.name for p in tmp_path.iterdir()] == ["run.ckpt"]
        assert load_checkpoint(path).stage_counter == 2

    def test_failed_write_preserves_previous(
        self, engine, space, seed, tmp_path, monkeypatch
    ):
        path = tmp_path / "run.ckpt"
        save_checkpoint(checkpoint_at(engine, space, seed, stage=1), path)
        bad = checkpoint_at(engine, space, seed, stage=2)
        import repro.runtime.checkpoint as ckpt_module

        def boom(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(ckpt_module.os, "replace", boom)
        with pytest.raises(OSError):
            save_checkpoint(bad, path)
        monkeypatch.undo()
        assert load_checkpoint(path).stage_counter == 1
        assert [p.name for p in tmp_path.iterdir()] == ["run.ckpt"]


class TestRecordsPickedOrder:
    def test_move_records_excluded(self):
        records = [
            StageRecord("seed", ("top",), 0.0, 10.0, 100.0),
            StageRecord("RGreedy", ("v1", "i1"), 5.0, 3.0, 95.0),
            StageRecord("move", ("swap v1 -> v2",), 7.0, 0.0, 93.0),
        ]
        assert records_picked_order(records) == ("top", "v1", "i1")
