"""Kill/resume matrix for pruned (workload-mined) advise runs.

The mining stage is boundary 1 of every pruned run: killing there leaves
no checkpoint (no engine exists yet) and recovery is a fresh run; every
later kill resumes from a checkpoint whose ``extra`` block carries the
mining record, which ``mining_boundary`` verifies fingerprint-exactly
before a single greedy stage replays.
"""

import pytest

from repro.core.benefit import BenefitEngine
from repro.core.qvgraph import QueryViewGraph
from repro.mining import mine_candidates
from repro.runtime.context import (
    MINING_EXTRA_KEY,
    CheckpointError,
    InjectedFault,
    RunContext,
)
from repro.runtime.faults import mined_cube_instance, pruned_fault_matrix


class TestPrunedFaultMatrix:
    @pytest.fixture(scope="class")
    def cases(self):
        # sparse backend, eager+lazy: the fast cross-section (the full
        # matrix runs in CI via python -m repro.runtime.faults --pruned)
        return pruned_fault_matrix(3, backends=("sparse",))

    def test_every_case_resumes_bit_identical(self, cases):
        failures = [str(case) for case in cases if not case.ok]
        assert failures == []

    def test_mining_boundary_killed_in_every_combination(self, cases):
        by_combo = {}
        for case in cases:
            by_combo.setdefault((case.algorithm, case.lazy), []).append(case)
        for key, combo_cases in by_combo.items():
            stages = sorted(case.stage for case in combo_cases)
            n = combo_cases[0].n_stages
            assert stages == list(range(1, n + 1)), key
            assert 1 in stages  # the mining boundary itself

    def test_algorithms_labeled_pruned(self, cases):
        assert all(case.algorithm.startswith("pruned:") for case in cases)


class TestMiningBoundary:
    def make_run(self, n_dims=3):
        lattice, log, params = mined_cube_instance(n_dims)
        mined = mine_candidates(log, lattice.schema.names, **params)
        record = {"fingerprint": mined.fingerprint(), **params}
        return lattice, mined, record

    def test_fault_at_mining_boundary_is_pre_engine(self):
        __, __mined, record = self.make_run()
        context = RunContext(fault_stage=1)
        with pytest.raises(InjectedFault) as exc:
            context.mining_boundary(record)
        assert exc.value.pre_engine is True
        assert exc.value.checkpoint is None

    def test_checkpoints_carry_the_mining_record(self, tmp_path):
        from repro.algorithms import RGreedy
        from repro.runtime import load_checkpoint

        lattice, mined, record = self.make_run()
        engine = BenefitEngine(QueryViewGraph.from_mined(lattice, mined))
        path = tmp_path / "run.ckpt"
        context = RunContext(checkpoint_path=path)
        context.mining_boundary(record)
        RGreedy(1).run(
            engine,
            1.2 * lattice.size(lattice.top),
            seed=(lattice.label(lattice.top),),
            context=context,
        )
        checkpoint = load_checkpoint(path)
        assert checkpoint.extra[MINING_EXTRA_KEY] == record

    def test_resume_rejects_a_different_mined_set(self, tmp_path):
        from repro.algorithms import RGreedy
        from repro.runtime import load_checkpoint

        lattice, mined, record = self.make_run()
        engine = BenefitEngine(QueryViewGraph.from_mined(lattice, mined))
        path = tmp_path / "run.ckpt"
        context = RunContext(checkpoint_path=path)
        context.mining_boundary(record)
        RGreedy(1).run(
            engine,
            1.2 * lattice.size(lattice.top),
            seed=(lattice.label(lattice.top),),
            context=context,
        )
        resumed = RunContext(resume_from=load_checkpoint(path))
        tampered = dict(record, fingerprint="0" * 64)
        with pytest.raises(CheckpointError, match="mining record"):
            resumed.mining_boundary(tampered)

    def test_resume_accepts_the_identical_record(self, tmp_path):
        from repro.algorithms import RGreedy
        from repro.runtime import load_checkpoint

        lattice, mined, record = self.make_run()
        engine = BenefitEngine(QueryViewGraph.from_mined(lattice, mined))
        path = tmp_path / "run.ckpt"
        context = RunContext(checkpoint_path=path)
        context.mining_boundary(record)
        golden = RGreedy(1).run(
            engine,
            1.2 * lattice.size(lattice.top),
            seed=(lattice.label(lattice.top),),
            context=context,
        )
        resumed = RunContext(resume_from=load_checkpoint(path))
        resumed.mining_boundary(dict(record))
        engine2 = BenefitEngine(QueryViewGraph.from_mined(lattice, mined))
        result = RGreedy(1).run(
            engine2,
            1.2 * lattice.size(lattice.top),
            seed=(lattice.label(lattice.top),),
            context=resumed,
        )
        assert list(result.selected) == list(golden.selected)
        assert result.tau == golden.tau
