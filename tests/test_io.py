"""Tests for JSON persistence (repro.io)."""

import json

import pytest

from repro.core.view import View
from repro.io import (
    lattice_from_dict,
    lattice_to_dict,
    load_lattice,
    round_trip_lattice,
    save_lattice,
    save_selection,
    selection_to_dict,
)


class TestLatticeRoundTrip:
    def test_exact_sizes_preserved(self, tpcd_lat):
        restored = round_trip_lattice(tpcd_lat)
        for view in tpcd_lat.views():
            assert restored.size(view) == tpcd_lat.size(view)

    def test_schema_preserved(self, tpcd_lat):
        restored = round_trip_lattice(tpcd_lat)
        assert restored.schema.names == tpcd_lat.schema.names
        assert restored.schema.measure == tpcd_lat.schema.measure

    def test_file_round_trip(self, tpcd_lat, tmp_path):
        path = tmp_path / "cube.json"
        save_lattice(tpcd_lat, path)
        restored = load_lattice(path)
        assert restored.sizes() == tpcd_lat.sizes()

    def test_document_is_plain_json(self, tpcd_lat, tmp_path):
        path = tmp_path / "cube.json"
        save_lattice(tpcd_lat, path)
        with open(path) as f:
            doc = json.load(f)
        assert doc["dimensions"] == {"p": 200_000, "s": 10_000, "c": 100_000}
        assert doc["view_rows"]["psc"] == 6_000_000


class TestLatticeFromDict:
    def test_analytical_fallback(self):
        doc = {"dimensions": {"a": 10, "b": 20}, "raw_rows": 150}
        lattice = lattice_from_dict(doc)
        assert lattice.size(lattice.top) <= 150
        assert len(lattice) == 4

    def test_missing_dimensions_rejected(self):
        with pytest.raises(ValueError, match="dimensions"):
            lattice_from_dict({"raw_rows": 10})

    def test_missing_sizes_rejected(self):
        with pytest.raises(ValueError, match="view_rows"):
            lattice_from_dict({"dimensions": {"a": 10}})

    def test_unknown_view_dimension_rejected(self):
        doc = {
            "dimensions": {"a": 10},
            "view_rows": {"a": 10, "none": 1, "z": 5},
        }
        with pytest.raises(ValueError, match="unknown dimensions"):
            lattice_from_dict(doc)

    def test_incomplete_view_rows_rejected(self):
        doc = {"dimensions": {"a": 10, "b": 5}, "view_rows": {"a": 10, "none": 1}}
        with pytest.raises(ValueError, match="missing"):
            lattice_from_dict(doc)

    def test_default_measure(self):
        doc = {"dimensions": {"a": 10}, "raw_rows": 10}
        assert lattice_from_dict(doc).schema.measure == "sales"


class TestSelectionSerialization:
    @pytest.fixture
    def result(self, fig2_g):
        from repro.algorithms import FIT_PAPER, RGreedy

        return RGreedy(2, fit=FIT_PAPER).run(fig2_g, 7)

    def test_headline_fields(self, result):
        doc = selection_to_dict(result)
        assert doc["algorithm"] == "2-greedy"
        assert doc["benefit"] == 194
        assert doc["selected"][0] == "V1"

    def test_stages_serialized(self, result):
        doc = selection_to_dict(result)
        assert doc["stages"][0]["structures"] == ["V1", "I1,1"]
        assert doc["stages"][0]["benefit"] == 90

    def test_save_is_valid_json(self, result, tmp_path):
        path = tmp_path / "sel.json"
        save_selection(result, path)
        with open(path) as f:
            doc = json.load(f)
        assert doc["space_used"] == 7


class TestGraphDocuments:
    def test_round_trip_figure2(self, fig2_g):
        from repro.io import graph_from_dict, graph_to_dict

        doc = graph_to_dict(fig2_g)
        restored = graph_from_dict(doc)
        assert restored.n_queries == fig2_g.n_queries
        assert restored.n_structures == fig2_g.n_structures
        assert restored.n_edges == fig2_g.n_edges
        # anchor preserved: 2-greedy still finds 194
        from repro.algorithms import FIT_PAPER, RGreedy

        assert RGreedy(2, fit=FIT_PAPER).run(restored, 7).benefit == 194

    def test_frequencies_survive(self, fig2_g):
        from repro.core.qvgraph import QueryViewGraph
        from repro.io import graph_from_dict, graph_to_dict

        g = QueryViewGraph()
        g.add_query("q", 10, frequency=2.5)
        g.add_view("v", 1)
        g.add_edge("q", "v", 1)
        restored = graph_from_dict(graph_to_dict(g))
        assert restored.query("q").frequency == 2.5

    def test_missing_sections_rejected(self):
        from repro.io import graph_from_dict

        with pytest.raises(ValueError, match="queries"):
            graph_from_dict({"views": []})

    def test_handwritten_document(self):
        from repro.io import graph_from_dict

        doc = {
            "queries": [{"name": "q1", "default_cost": 100}],
            "views": [
                {"name": "v", "space": 2,
                 "indexes": [{"name": "i", "space": 1}]}
            ],
            "edges": [{"query": "q1", "structure": "i", "cost": 1}],
        }
        graph = graph_from_dict(doc)
        assert graph.structure("i").space == 1
        assert graph.edge_cost("q1", "i") == 1

    def test_cli_advise_on_graph_document(self, tmp_path, capsys):
        from repro.cli import main
        from repro.datasets.paper_figure2 import figure2_graph
        from repro.io import graph_to_dict

        path = tmp_path / "fig2.json"
        path.write_text(json.dumps(graph_to_dict(figure2_graph())))
        rc = main(
            ["advise", "--lattice", str(path), "--space", "7",
             "--algorithm", "2greedy", "--fit", "paper"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "benefit 194" in out or "V1" in out


class TestFiniteValidation:
    """NaN/inf inputs are rejected at load with the offending field named
    (``NaN <= x`` is always false, so they would otherwise silently
    disable every budget comparison downstream)."""

    def test_nan_view_rows_rejected(self):
        doc = {
            "dimensions": {"a": 4, "b": 6},
            "view_rows": {"ab": float("nan"), "a": 4, "b": 6, "none": 1},
        }
        with pytest.raises(ValueError, match=r"view_rows\['ab'\]"):
            lattice_from_dict(doc)

    def test_inf_raw_rows_rejected(self):
        doc = {"dimensions": {"a": 4}, "raw_rows": float("inf")}
        with pytest.raises(ValueError, match="raw_rows"):
            lattice_from_dict(doc)

    def test_non_numeric_raw_rows_rejected(self):
        doc = {"dimensions": {"a": 4}, "raw_rows": "lots"}
        with pytest.raises(ValueError, match="raw_rows"):
            lattice_from_dict(doc)

    def test_nan_survives_json_parse_but_not_load(self, tmp_path):
        """Python's json module accepts the non-standard NaN token; the
        loader must still reject it."""
        from repro.io import load_lattice

        path = tmp_path / "nan.json"
        path.write_text('{"dimensions": {"a": 4}, "raw_rows": NaN}')
        with pytest.raises(ValueError, match="finite"):
            load_lattice(path)

    def test_hierarchical_nan_raw_rows_rejected(self):
        from repro.io import hierarchical_cube_from_dict

        doc = {
            "hierarchies": {"a": [["a", 5]]},
            "raw_rows": float("nan"),
        }
        with pytest.raises(ValueError, match="raw_rows"):
            hierarchical_cube_from_dict(doc)

    @pytest.mark.parametrize(
        "patch, field",
        [
            (("queries", 0, "default_cost"), "default_cost"),
            (("queries", 0, "frequency"), "frequency"),
            (("views", 0, "space"), r"views\['v'\].space"),
            (("views", 0, "indexes", 0, "space"), r"indexes\['i'\].space"),
            (("edges", 0, "cost"), "cost"),
        ],
    )
    def test_nan_graph_fields_rejected(self, patch, field):
        from repro.io import graph_from_dict

        doc = {
            "queries": [{"name": "q", "default_cost": 10, "frequency": 1}],
            "views": [
                {"name": "v", "space": 2,
                 "indexes": [{"name": "i", "space": 1}]}
            ],
            "edges": [{"query": "q", "structure": "i", "cost": 1}],
        }
        target = doc
        for key in patch[:-1]:
            target = target[key]
        target[patch[-1]] = float("nan")
        with pytest.raises(ValueError, match=field):
            graph_from_dict(doc)


class TestIterQueryLog:
    """Streaming JSONL loading (the miner's O(1)-RSS input path)."""

    @pytest.fixture
    def schema(self):
        from repro.cube.schema import CubeSchema, Dimension

        return CubeSchema([Dimension("a", 4), Dimension("b", 3)])

    @pytest.fixture
    def log_file(self, schema, tmp_path):
        from repro.cube.query_log import generate_query_log
        from repro.io import save_query_log

        path = tmp_path / "log.jsonl"
        save_query_log(generate_query_log(schema, 25, rng=1), path)
        return path

    def test_streams_same_entries_as_load(self, schema, log_file):
        from repro.io import iter_query_log, load_query_log

        assert list(iter_query_log(log_file, schema)) == load_query_log(
            log_file, schema
        )

    def test_is_lazy(self, schema, log_file):
        from repro.io import iter_query_log

        iterator = iter_query_log(log_file, schema)
        first = next(iterator)
        assert first.query is not None

    def test_empty_file_is_empty_iterator(self, schema, tmp_path):
        from repro.io import iter_query_log

        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert list(iter_query_log(path, schema)) == []

    def test_blank_lines_skipped(self, schema, log_file):
        from repro.io import iter_query_log, load_query_log

        padded = log_file.parent / "padded.jsonl"
        padded.write_text("\n" + log_file.read_text().replace("\n", "\n\n"))
        assert list(iter_query_log(padded, schema)) == load_query_log(
            log_file, schema
        )

    def test_invalid_json_names_file_and_line(self, schema, tmp_path):
        from repro.io import iter_query_log

        path = tmp_path / "bad.jsonl"
        path.write_text('{"groupby": ["a"], "selection": []}\n{oops\n')
        with pytest.raises(ValueError, match=r"bad\.jsonl:2.*invalid JSON"):
            list(iter_query_log(path, schema))

    def test_invalid_record_names_file_and_line(self, schema, tmp_path):
        from repro.io import iter_query_log

        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"groupby": ["a"], "selection": []}\n'
            '{"groupby": ["zz"], "selection": []}\n'
        )
        with pytest.raises(ValueError, match=r"bad\.jsonl:2"):
            list(iter_query_log(path, schema))
