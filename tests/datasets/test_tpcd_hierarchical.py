"""Tests for the hierarchical TPC-D dataset."""

import pytest

from repro.algorithms import FIT_STRICT, InnerLevelGreedy, RGreedy
from repro.core.hierarchy import ALL, HierarchicalView
from repro.datasets.tpcd_hierarchical import (
    tpcd_hierarchical_cube,
    tpcd_hierarchical_graph,
)


@pytest.fixture(scope="module")
def cube():
    return tpcd_hierarchical_cube()


class TestCube:
    def test_lattice_size(self, cube):
        assert cube.n_views() == 2 * 4 * 4

    def test_top_view_is_flat_psc(self, cube):
        assert cube.label(cube.top()) == "p,s,c"
        assert cube.size(cube.top()) == pytest.approx(6e6, rel=0.01)

    def test_nation_level_sizes(self, cube):
        # p × s_nation: 200k × 25 = 5M cells, 6M rows → ~3.5M distinct
        view = HierarchicalView([0, 1, ALL])
        assert cube.label(view) == "p,s_nation"
        assert 2e6 < cube.size(view) < 5e6

    def test_region_rollup_is_tiny(self, cube):
        view = HierarchicalView([ALL, 2, 2])  # s_region × c_region
        assert cube.size(view) == pytest.approx(25, rel=0.01)

    def test_flat_sublattice_matches_flat_tpcd(self, cube):
        """Level-0/ALL choices reproduce the flat example's independence
        sizes (ps is the known deviation: the flat dataset's 0.8M comes
        from the part→supplier correlation, which the hierarchy does not
        model — documented in DESIGN.md)."""
        sc = HierarchicalView([ALL, 0, 0])
        assert cube.size(sc) == pytest.approx(6e6, rel=0.01)
        c = HierarchicalView([ALL, ALL, 0])
        assert cube.size(c) == pytest.approx(0.1e6, rel=0.01)


class TestGraph:
    @pytest.fixture(scope="class")
    def graph(self):
        # cap permutations: the 3-attribute views get at most 2 indexes,
        # keeping the bench-sized graph quick while exercising the cap
        return tpcd_hierarchical_graph(max_fat_indexes_per_view=2)

    def test_views_match_lattice(self, graph, cube):
        assert len(graph.views) == cube.n_views()

    def test_index_cap_respected(self, graph):
        for view in graph.views:
            assert len(graph.indexes_of(view.name)) <= 2

    def test_selection_uses_hierarchy_levels(self, graph, cube):
        """A sensible budget should buy nation/region summaries — the
        whole point of hierarchies."""
        top = cube.label(cube.top())
        top_rows = cube.size(cube.top())
        budget = top_rows + 0.05 * (graph.total_space() - top_rows)
        result = InnerLevelGreedy(fit=FIT_STRICT).run(graph, budget, seed=(top,))
        picked_levels = " ".join(result.selected)
        assert "nation" in picked_levels or "region" in picked_levels

    def test_greedy_family_consistent(self, graph, cube):
        top = cube.label(cube.top())
        top_rows = cube.size(cube.top())
        budget = top_rows + 0.05 * (graph.total_space() - top_rows)
        b1 = RGreedy(1, fit=FIT_STRICT).run(graph, budget, seed=(top,)).benefit
        b2 = RGreedy(2, fit=FIT_STRICT).run(graph, budget, seed=(top,)).benefit
        assert b2 >= b1 > 0
