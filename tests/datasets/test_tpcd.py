"""Tests for the TPC-D running example (Figure 1)."""

import pytest

from repro.core.view import View
from repro.datasets.tpcd import (
    TPCD_CARDINALITIES,
    TPCD_RAW_ROWS,
    TPCD_VIEW_ROWS,
    tpcd_fact_table,
    tpcd_graph,
    tpcd_lattice,
    tpcd_schema,
)


class TestFigure1:
    def test_schema_dimensions(self):
        schema = tpcd_schema()
        assert schema.names == ("p", "s", "c")
        assert schema.cardinality("p") == 200_000

    def test_all_eight_view_sizes(self, tpcd_lat):
        expected = {
            "psc": 6e6, "pc": 6e6, "sc": 6e6, "ps": 0.8e6,
            "p": 0.2e6, "c": 0.1e6, "s": 0.01e6, "none": 1,
        }
        for view in tpcd_lat.views():
            assert tpcd_lat.size(view) == expected[tpcd_lat.label(view)]

    def test_top_is_raw_size(self, tpcd_lat):
        assert tpcd_lat.size(tpcd_lat.top) == TPCD_RAW_ROWS

    def test_ps_deviates_from_independence(self, tpcd_lat):
        """ps = 0.8M, far below the ~6M the independence model predicts —
        the part→supplier correlation the paper's Figure 1 reflects."""
        from repro.estimation.sizes import expected_distinct

        schema = tpcd_schema()
        independent = expected_distinct(
            schema.cells_of(View.of("p", "s")), TPCD_RAW_ROWS
        )
        assert tpcd_lat.size(View.of("p", "s")) < 0.2 * independent

    def test_other_2d_views_match_independence(self, tpcd_lat):
        from repro.estimation.sizes import expected_distinct

        schema = tpcd_schema()
        for attrs in (("p", "c"), ("s", "c")):
            independent = expected_distinct(schema.cells_of(View(attrs)), TPCD_RAW_ROWS)
            assert tpcd_lat.size(View(attrs)) == pytest.approx(independent, rel=0.02)


class TestGraph:
    def test_shape(self, tpcd_g):
        assert tpcd_g.n_queries == 27
        assert len(tpcd_g.views) == 8
        assert len(tpcd_g.indexes) == 15

    def test_frequencies_default_uniform(self, tpcd_g):
        assert {q.frequency for q in tpcd_g.queries} == {1.0}

    def test_index_universe_passthrough(self):
        g = tpcd_graph(index_universe="none")
        assert g.indexes == []


class TestFactTable:
    def test_scaled_generation(self):
        fact = tpcd_fact_table(scale=0.001, rng=0)
        assert fact.n_rows == 6000
        assert fact.schema.cardinality("p") == 200

    def test_supplier_fanout_preserved(self):
        """Each part maps to at most 4 suppliers — the ps correlation."""
        import numpy as np

        fact = tpcd_fact_table(scale=0.002, rng=1)
        p, s = fact.column("p"), fact.column("s")
        fanouts = [
            len(np.unique(s[p == part])) for part in np.unique(p)[:50]
        ]
        assert max(fanouts) <= 4

    def test_ps_ratio_shape(self):
        """|ps| / |p| ≈ 4 in the scaled data, matching 0.8M / 0.2M."""
        fact = tpcd_fact_table(scale=0.002, rng=1)
        ratio = fact.distinct_count(["p", "s"]) / fact.distinct_count(["p"])
        assert 2.0 <= ratio <= 4.5

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            tpcd_fact_table(scale=0)
        with pytest.raises(ValueError):
            tpcd_fact_table(scale=2)
