"""Tests for the adversarial instance families (Section 6's worst-case
statements, made executable)."""

import pytest

from repro.algorithms import (
    FIT_PAPER,
    BranchAndBoundOptimal,
    InnerLevelGreedy,
    RGreedy,
    r_greedy_guarantee,
)
from repro.datasets.adversarial import one_greedy_trap, r_greedy_stress, trap_space


class TestOneGreedyTrap:
    @pytest.mark.parametrize("n", [2, 5, 10, 25])
    def test_1greedy_benefit_is_constant(self, n):
        graph = one_greedy_trap(n)
        result = RGreedy(1, fit=FIT_PAPER).run(graph, trap_space(n))
        assert result.benefit == 11.0  # decoy only, for every n

    @pytest.mark.parametrize("n", [2, 5, 10, 25])
    def test_optimal_benefit_grows_linearly(self, n):
        graph = one_greedy_trap(n)
        optimal = BranchAndBoundOptimal().run(graph, trap_space(n))
        # decoy (11) + trap with n−1 indexes (10 each) beats the pure trap
        assert optimal.benefit == 10.0 * (n - 1) + 11.0

    def test_ratio_vanishes(self):
        """The Section 6 claim: the 1-greedy/optimal ratio is arbitrarily
        small — strictly decreasing in the family parameter."""
        ratios = []
        for n in (2, 5, 10, 25, 50):
            graph = one_greedy_trap(n)
            greedy = RGreedy(1, fit=FIT_PAPER).run(graph, trap_space(n))
            optimal = BranchAndBoundOptimal().run(graph, trap_space(n))
            ratios.append(greedy.benefit / optimal.benefit)
        assert ratios == sorted(ratios, reverse=True)
        assert ratios[-1] < 0.03

    @pytest.mark.parametrize("n", [2, 10])
    def test_2greedy_escapes_the_trap(self, n):
        graph = one_greedy_trap(n)
        result = RGreedy(2, fit=FIT_PAPER).run(graph, trap_space(n))
        assert "trap" in result.selected
        assert result.benefit >= n * 10.0  # trap bundle fully harvested

    @pytest.mark.parametrize("n", [2, 10])
    def test_inner_level_escapes_the_trap(self, n):
        graph = one_greedy_trap(n)
        result = InnerLevelGreedy(fit=FIT_PAPER).run(graph, trap_space(n))
        assert "trap" in result.selected

    def test_validation(self):
        with pytest.raises(ValueError):
            one_greedy_trap(0)
        with pytest.raises(ValueError):
            one_greedy_trap(3, index_value=0)


class TestRGreedyStress:
    @pytest.mark.parametrize("r", [2, 3])
    def test_r_greedy_below_optimal_but_above_bound(self, r):
        graph = r_greedy_stress(r, n_bundles=3)
        space = 2 * (r + 2)
        greedy = RGreedy(r, fit=FIT_PAPER).run(graph, space)
        optimal = BranchAndBoundOptimal().run(graph, space)
        ratio = greedy.benefit / optimal.benefit
        assert ratio < 1.0
        # Theorem 5.1 must still hold at the space greedy actually used
        optimal_at_used = BranchAndBoundOptimal().run(graph, greedy.space_used)
        assert greedy.benefit >= r_greedy_guarantee(r) * optimal_at_used.benefit - 1e-9

    def test_higher_r_does_better_on_stress_instance(self):
        graph = r_greedy_stress(2, n_bundles=3)
        space = 8
        b2 = RGreedy(2, fit=FIT_PAPER).run(graph, space).benefit
        b4 = RGreedy(4, fit=FIT_PAPER).run(graph, space).benefit
        assert b4 >= b2

    def test_validation(self):
        with pytest.raises(ValueError):
            r_greedy_stress(0)
        with pytest.raises(ValueError):
            r_greedy_stress(2, n_bundles=0)
