"""Tests for the reconstructed Figure 2 instance — every anchor of the
paper's Examples 5.1/5.2 must reproduce exactly."""

import pytest

from repro.algorithms import (
    FIT_PAPER,
    BranchAndBoundOptimal,
    InnerLevelGreedy,
    RGreedy,
)
from repro.core.benefit import BenefitEngine
from repro.datasets.paper_figure2 import FIGURE2_SPACE, PAPER_ANCHORS, figure2_graph


@pytest.fixture(scope="module")
def engine():
    return BenefitEngine(figure2_graph())


class TestInstanceShape:
    def test_five_views(self, fig2_g):
        assert len(fig2_g.views) == 5

    def test_index_counts(self, fig2_g):
        expected = {"V1": 1, "V2": 8, "V3": 4, "V4": 4, "V5": 4}
        for view, count in expected.items():
            assert len(fig2_g.indexes_of(view)) == count

    def test_all_unit_space(self, fig2_g):
        assert {s.space for s in fig2_g.structures} == {1.0}

    def test_absolute_view_benefits(self, engine):
        """The paper: benefits of views in subscript order are 0,0,6,5,7."""
        expected = {"V1": 0, "V2": 0, "V3": 6, "V4": 5, "V5": 7}
        for name, benefit in expected.items():
            assert engine.absolute_benefit([engine.structure_id(name)]) == benefit

    def test_v1_pair_worth_90(self, engine):
        ids = [engine.structure_id("V1"), engine.structure_id("I1,1")]
        assert engine.absolute_benefit(ids) == 90

    def test_v2_pairs_worth_50(self, engine):
        for i in range(1, 9):
            ids = [engine.structure_id("V2"), engine.structure_id(f"I2,{i}")]
            assert engine.absolute_benefit(ids) == 50

    def test_v2_bundle_worth_400(self, engine):
        ids = [engine.structure_id("V2")] + [
            engine.structure_id(f"I2,{i}") for i in range(1, 9)
        ]
        assert engine.absolute_benefit(ids) == 400


class TestPaperAnchors:
    def test_1greedy_46(self, engine):
        result = RGreedy(1, fit=FIT_PAPER).run(engine, FIGURE2_SPACE)
        assert result.benefit == PAPER_ANCHORS["1-greedy"]
        assert result.selected == ("V5", "I5,1", "I5,2", "I5,3", "I5,4", "V3", "V4")

    def test_2greedy_194_with_paper_trace(self, engine):
        result = RGreedy(2, fit=FIT_PAPER).run(engine, FIGURE2_SPACE)
        assert result.benefit == PAPER_ANCHORS["2-greedy"]
        assert result.stages[0].structures == ("V1", "I1,1")
        assert result.stages[0].benefit == PAPER_ANCHORS["first-pick"]
        assert result.stages[1].structures == ("V4", "I4,1")
        assert result.stages[1].benefit == 41

    def test_3greedy_at_least_2greedy(self, engine):
        two = RGreedy(2, fit=FIT_PAPER).run(engine, FIGURE2_SPACE)
        three = RGreedy(3, fit=FIT_PAPER).run(engine, FIGURE2_SPACE)
        assert three.benefit >= two.benefit
        assert three.stages[0].structures == ("V1", "I1,1")

    def test_optimal_7_is_300(self, engine):
        result = BranchAndBoundOptimal().run(engine, 7)
        assert result.benefit == PAPER_ANCHORS["optimal(7)"]
        assert "V2" in result.selected
        assert sum(1 for s in result.selected if s.startswith("I2")) == 6

    def test_inner_level_330_on_9_units(self, engine):
        result = InnerLevelGreedy(fit=FIT_PAPER).run(engine, FIGURE2_SPACE)
        assert result.benefit == PAPER_ANCHORS["inner-level"]
        assert result.space_used == 9

    def test_optimal_9_is_400(self, engine):
        result = BranchAndBoundOptimal().run(engine, 9)
        assert result.benefit == PAPER_ANCHORS["optimal(9)"]
        assert set(result.selected) == {"V2"} | {f"I2,{i}" for i in range(1, 9)}

    def test_ordering_1greedy_far_below_everything(self, engine):
        """The qualitative story of Example 5.1."""
        one = RGreedy(1, fit=FIT_PAPER).run(engine, FIGURE2_SPACE).benefit
        two = RGreedy(2, fit=FIT_PAPER).run(engine, FIGURE2_SPACE).benefit
        three = RGreedy(3, fit=FIT_PAPER).run(engine, FIGURE2_SPACE).benefit
        opt = BranchAndBoundOptimal().run(engine, FIGURE2_SPACE).benefit
        assert one < 0.2 * opt
        assert one < two <= three <= opt
