"""Per-partition advising: budgets, checkpoint/resume, runtime stops."""

import json

import pytest

from repro.distributed import advise_partitions, partition_workload
from repro.runtime.context import BudgetExceeded, RunContext
from tests.distributed.conftest import make_algorithm


@pytest.fixture(scope="module")
def partitioned4(dist_counts4):
    return partition_workload(dist_counts4, 3)


def advise(lattice, partitioned, space=None, **kwargs):
    if space is None:
        space = 3.0 * lattice.size(lattice.top)
    top_label = lattice.label(lattice.top)
    return advise_partitions(
        lattice,
        partitioned,
        make_algorithm(),
        space,
        seed=(top_label,),
        **kwargs,
    )


class TestAdvise:
    def test_one_plan_per_partition_under_budget(
        self, dist_model4, partitioned4
    ):
        lattice = dist_model4.lattice
        space = 3.0 * lattice.size(lattice.top)
        advice = advise(lattice, partitioned4, space=space)
        assert len(advice.plans) == partitioned4.n_partitions
        top_label = lattice.label(lattice.top)
        for plan, partition in zip(advice.plans, partitioned4.partitions):
            assert plan.replica_id == partition.partition_id
            assert plan.space_used <= space
            assert top_label in plan.selection
            assert not plan.resumed
        assert advice.fingerprint == partitioned4.fingerprint()

    def test_selections_diverge(self, dist_model4, partitioned4):
        """Different partitions want different structures — that is the
        entire point of the subsystem."""
        advice = advise(dist_model4.lattice, partitioned4)
        assert len(set(advice.selections)) > 1

    def test_empty_partition_gets_seed_only(self, dist_model4, dist_counts4):
        lattice = dist_model4.lattice
        few = dict(list(dist_counts4.items())[:2])
        partitioned = partition_workload(few, 4)
        advice = advise(lattice, partitioned)
        top_label = lattice.label(lattice.top)
        empty_plans = [
            plan
            for plan, part in zip(advice.plans, partitioned.partitions)
            if part.empty
        ]
        assert empty_plans
        for plan in empty_plans:
            assert plan.selection == (top_label,)
            assert plan.n_patterns == 0

    def test_invalid_space_rejected(self, dist_model4, partitioned4):
        with pytest.raises(ValueError, match="space"):
            advise(dist_model4.lattice, partitioned4, space=0.0)


class TestCheckpoint:
    def test_full_resume_replays_every_partition(
        self, dist_model4, partitioned4, tmp_path
    ):
        lattice = dist_model4.lattice
        path = str(tmp_path / "divergent.ckpt")
        first = advise(lattice, partitioned4, checkpoint_path=path)
        second = advise(lattice, partitioned4, checkpoint_path=path)
        assert all(plan.resumed for plan in second.plans)
        assert second.selections == first.selections
        assert [p.tau for p in second.plans] == [p.tau for p in first.plans]

    def test_partial_resume_advises_only_the_rest(
        self, dist_model4, partitioned4, tmp_path
    ):
        lattice = dist_model4.lattice
        path = str(tmp_path / "divergent.ckpt")
        first = advise(lattice, partitioned4, checkpoint_path=path)
        # simulate a kill after partition 0: drop the later plans
        document = json.loads((tmp_path / "divergent.ckpt").read_text())
        document["plans"] = document["plans"][:1]
        (tmp_path / "divergent.ckpt").write_text(json.dumps(document))
        second = advise(lattice, partitioned4, checkpoint_path=path)
        assert [plan.resumed for plan in second.plans] == [True, False, False]
        assert second.selections == first.selections

    def test_fingerprint_mismatch_rejected(
        self, dist_model4, dist_counts4, partitioned4, tmp_path
    ):
        lattice = dist_model4.lattice
        path = str(tmp_path / "divergent.ckpt")
        advise(lattice, partitioned4, checkpoint_path=path)
        other = partition_workload(dist_counts4, 4)
        with pytest.raises(ValueError, match="fingerprint"):
            advise(lattice, other, checkpoint_path=path)

    def test_space_mismatch_rejected(
        self, dist_model4, partitioned4, tmp_path
    ):
        lattice = dist_model4.lattice
        path = str(tmp_path / "divergent.ckpt")
        space = 3.0 * lattice.size(lattice.top)
        advise(lattice, partitioned4, space=space, checkpoint_path=path)
        with pytest.raises(ValueError, match="space"):
            advise(lattice, partitioned4, space=space / 2, checkpoint_path=path)


class TestRuntimeStops:
    def test_budget_stop_fires_at_partition_boundary(
        self, dist_model4, partitioned4
    ):
        with pytest.raises(BudgetExceeded):
            advise(
                dist_model4.lattice,
                partitioned4,
                context=RunContext(deadline=0),
            )

    def test_stopped_run_resumes_from_checkpoint(
        self, dist_model4, partitioned4, tmp_path
    ):
        """A stop mid-run leaves completed partitions committed; the
        rerun replays them and advises only the remainder."""
        lattice = dist_model4.lattice
        path = str(tmp_path / "divergent.ckpt")

        class StopAfter:
            def __init__(self, allowed):
                self.allowed = allowed

            def check(self):
                if self.allowed <= 0:
                    raise BudgetExceeded("out of budget")
                self.allowed -= 1

        with pytest.raises(BudgetExceeded):
            advise(
                lattice,
                partitioned4,
                context=StopAfter(2),
                checkpoint_path=path,
            )
        document = json.loads((tmp_path / "divergent.ckpt").read_text())
        assert len(document["plans"]) == 2
        resumed = advise(lattice, partitioned4, checkpoint_path=path)
        assert [plan.resumed for plan in resumed.plans] == [True, True, False]
