"""RoutingTable: predictions match the servers, fallback, rank order."""

import pytest

from repro.core.query import SliceQuery
from repro.distributed import RoutingTable, plan_divergent
from repro.serve import QueryServer
from repro.serve.telemetry import RAW_LABEL
from tests.distributed.conftest import make_algorithm


@pytest.fixture(scope="module")
def planned4(dist_model4, dist_counts4):
    lattice = dist_model4.lattice
    top_label = lattice.label(lattice.top)
    return plan_divergent(
        lattice,
        dist_counts4,
        make_algorithm(),
        3.0 * lattice.size(lattice.top),
        3,
        seed=(top_label,),
        cost_model=dist_model4,
    )


class TestPricing:
    def test_predictions_match_replica_servers(
        self, dist_fact4, dist_model4, dist_log4, planned4
    ):
        """best_plan's predicted cost equals what that replica's server
        records when it actually serves the query — the property that
        makes routed dispatch honest."""
        __partitioned, advice, router = planned4
        for replica_id, selection in enumerate(advice.selections):
            with QueryServer(
                dist_fact4, selection, cost_model=dist_model4
            ) as server:
                seen = set()
                for entry in dist_log4:
                    if entry.query in seen:
                        continue
                    seen.add(entry.query)
                    decision = router.best_plan(entry.query, replica_id)
                    outcome = server.serve(entry)
                    assert outcome.predicted_rows == decision.predicted
                    assert outcome.fallback == decision.fallback

    def test_raw_fallback_prices_at_default_cost(self, dist_model4):
        """A selection that cannot answer a query falls back to the raw
        cube at the model's default cost."""
        lattice = dist_model4.lattice
        narrow_view = next(
            lattice.label(view)
            for view in lattice.views()
            if len(view.attrs) == 1
        )
        router = RoutingTable(dist_model4, [(narrow_view,)])
        missed = SliceQuery(
            [name for name in lattice.schema.names if name not in narrow_view][:2]
        )
        decision = router.best_plan(missed, 0)
        assert decision.fallback
        assert decision.structure == RAW_LABEL
        assert decision.predicted == dist_model4.default_cost(missed)


class TestRanking:
    def test_ranking_is_cheapest_first(self, dist_counts4, planned4):
        __partitioned, __advice, router = planned4
        for query in dist_counts4:
            ranking = router.ranking(query)
            assert len(ranking) == router.n_replicas
            costs = [decision.predicted for decision in ranking]
            assert costs == sorted(costs)
            assert router.route(query) == ranking[0]

    def test_ranking_memoized(self, dist_counts4, planned4):
        __partitioned, __advice, router = planned4
        query = next(iter(dist_counts4))
        assert router.ranking(query) is router.ranking(query)

    def test_to_dict_shape(self, dist_counts4, planned4):
        __partitioned, __advice, router = planned4
        table = router.to_dict(list(dist_counts4))
        assert table["replicas"] == router.n_replicas
        assert len(table["routes"]) == len(set(dist_counts4))
        for route in table["routes"].values():
            assert 0 <= route["replica"] < router.n_replicas
            assert route["predicted_rows"] > 0

    def test_empty_selections_rejected(self, dist_model4):
        with pytest.raises(ValueError, match="selections"):
            RoutingTable(dist_model4, [])
