"""The acceptance criteria: divergence wins, answers stay byte-identical.

* d=5, 4 divergent replicas: predicted-cost ratio strictly below 1.0
  against N identical copies of the workload-weighted single advise.
* Routed fleet answers are byte-identical to a golden serial server.
* Killing any one replica mid-run re-routes with zero wrong answers.
* The ``repro.distributed.smoke`` module passes end to end.
"""

import pytest

from repro.core.qvgraph import QueryViewGraph
from repro.distributed import divergence_report, plan_divergent
from repro.io import save_query_log
from repro.serve import QueryServer, ReplicaFleet, validate_telemetry
from tests.distributed.conftest import make_algorithm


def plan(model, counts, n_replicas):
    lattice = model.lattice
    top_label = lattice.label(lattice.top)
    return plan_divergent(
        lattice,
        counts,
        make_algorithm(),
        3.0 * lattice.size(lattice.top),
        n_replicas,
        seed=(top_label,),
        cost_model=model,
    )


def identical_selection(model, counts):
    lattice = model.lattice
    top_label = lattice.label(lattice.top)
    return make_algorithm().run(
        QueryViewGraph.from_cube(lattice, frequencies=counts),
        3.0 * lattice.size(lattice.top),
        seed=(top_label,),
    ).selected


@pytest.fixture(scope="module")
def planned5(dist_model5, dist_counts5):
    return plan(dist_model5, dist_counts5, 4)


class TestDivergenceWins:
    def test_d5_four_replicas_beat_identical_copies(
        self, dist_model5, dist_counts5, planned5
    ):
        """The headline number: 4 divergent replicas price the d=5
        workload strictly below 4 identical copies."""
        partitioned, advice, router = planned5
        report = divergence_report(
            dist_model5,
            dist_counts5,
            advice,
            identical_selection(dist_model5, dist_counts5),
            partitioned=partitioned,
            router=router,
        )
        assert report["replicas"] == 4
        assert report["predicted_cost_ratio"] < 1.0
        assert report["divergent_predicted_cost"] < report[
            "identical_predicted_cost"
        ]

    def test_report_routed_load_accounts_every_pattern(
        self, dist_model5, dist_counts5, planned5
    ):
        partitioned, advice, router = planned5
        report = divergence_report(
            dist_model5,
            dist_counts5,
            advice,
            identical_selection(dist_model5, dist_counts5),
            partitioned=partitioned,
            router=router,
        )
        load = report["routed_load"]
        assert sum(entry["patterns"] for entry in load.values()) == len(
            dist_counts5
        )
        assert sum(entry["weight"] for entry in load.values()) == (
            pytest.approx(sum(dist_counts5.values()))
        )


class TestRoutedServing:
    def test_answers_byte_identical_to_serial_golden(
        self, dist_fact4, dist_model4, dist_counts4, dist_log4
    ):
        __partitioned, advice, router = plan(dist_model4, dist_counts4, 3)
        identical = identical_selection(dist_model4, dist_counts4)
        with QueryServer(
            dist_fact4, identical, cost_model=dist_model4
        ) as golden_server:
            golden = [golden_server.serve(e).groups for e in dist_log4]
        fleet = ReplicaFleet(
            dist_fact4,
            advice.selections,
            cost_model=dist_model4,
            router=router,
        )
        try:
            outcomes = [fleet.serve(entry) for entry in dist_log4]
        finally:
            fleet.close()
        assert [o.groups for o in outcomes] == golden
        snapshot = validate_telemetry(fleet.merged_telemetry().snapshot())
        hits = sum(snapshot["fleet"]["routed_hits"].values())
        misroutes = sum(snapshot["fleet"]["misroutes"].values())
        assert hits + misroutes == len(dist_log4)
        assert misroutes == 0  # nothing failed, nothing re-routed

    @pytest.mark.parametrize("victim", [0, 1, 2])
    def test_killing_any_replica_reroutes_without_wrong_answers(
        self, dist_fact4, dist_model4, dist_counts4, dist_log4, victim
    ):
        __partitioned, advice, router = plan(dist_model4, dist_counts4, 3)
        identical = identical_selection(dist_model4, dist_counts4)
        with QueryServer(
            dist_fact4, identical, cost_model=dist_model4
        ) as golden_server:
            golden = [golden_server.serve(e).groups for e in dist_log4]
        fleet = ReplicaFleet(
            dist_fact4,
            advice.selections,
            cost_model=dist_model4,
            router=router,
        )
        half = len(dist_log4) // 2
        try:
            answers = [fleet.serve(e).groups for e in dist_log4[:half]]
            fleet.replicas[victim].kill()
            answers += [fleet.serve(e).groups for e in dist_log4[half:]]
        finally:
            fleet.close()
        assert answers == golden
        snapshot = validate_telemetry(fleet.merged_telemetry().snapshot())
        counters = snapshot["fleet"]
        assert sum(counters["routed_hits"].values()) + sum(
            counters["misroutes"].values()
        ) == len(dist_log4)
        # misroutes credit the replica that served; the dead one never does
        assert not counters["misroutes"].get(str(victim))

    def test_failover_prefers_next_cheapest(
        self, dist_fact4, dist_model4, dist_counts4, dist_log4
    ):
        """With the cheapest replica dead, queries land on the runner-up
        from the routing table, not an arbitrary rotation slot."""
        __partitioned, advice, router = plan(dist_model4, dist_counts4, 3)
        fleet = ReplicaFleet(
            dist_fact4,
            advice.selections,
            cost_model=dist_model4,
            router=router,
        )
        try:
            entry = dist_log4[0]
            ranking = router.ranking(entry.query)
            fleet.replicas[ranking[0].replica_id].kill()
            fleet.serve(entry)
            misroutes = fleet.telemetry.fleet_stats()["misroutes"]
            assert misroutes.get(str(ranking[1].replica_id)) == 1
        finally:
            fleet.close()

    def test_router_replica_count_must_match_fleet(
        self, dist_fact4, dist_model4, dist_counts4
    ):
        __partitioned, advice, router = plan(dist_model4, dist_counts4, 3)
        with pytest.raises(ValueError, match="router"):
            ReplicaFleet(
                dist_fact4,
                advice.selections[:2],
                cost_model=dist_model4,
                router=router,
            )


class TestSmoke:
    def test_smoke_passes_end_to_end(self, dist_log4, tmp_path):
        from repro.distributed.smoke import run_smoke

        log_path = str(tmp_path / "observed.jsonl")
        save_query_log(dist_log4[:150], log_path)
        report = run_smoke(4, log_path, n_partitions=3)
        smoke = report["smoke"]
        assert smoke["ok"], smoke
        assert smoke["wrong_answers"] == 0
        assert smoke["killed_replica"] == 0
        assert report["predicted_cost_ratio"] <= 1.0
