"""Shared divergent-serving fixtures.

The facts use *integral* measures: divergent replicas answer the same
query from different structures, so group sums must be bit-identical
under every aggregation order — exact integer-valued float64 arithmetic
is what makes "zero wrong answers" an equality, not a tolerance.
"""

from __future__ import annotations

import pytest

from repro.algorithms import FIT_STRICT, RGreedy
from repro.core.costmodel import LinearCostModel
from repro.cube.query_log import generate_query_log, pattern_counts
from repro.datasets.tpcd import tpcd_serving_fact, tpcd_serving_schema


def make_algorithm():
    """A fresh 1-greedy (algorithm objects are single-use per run)."""
    return RGreedy(1, fit=FIT_STRICT)


@pytest.fixture(scope="session")
def dist_schema4():
    return tpcd_serving_schema(4)


@pytest.fixture(scope="session")
def dist_fact4():
    return tpcd_serving_fact(4, rng=0, integral_measures=True)


@pytest.fixture(scope="session")
def dist_model4(dist_fact4):
    return LinearCostModel.from_fact(dist_fact4)


@pytest.fixture(scope="session")
def dist_log4(dist_schema4):
    return generate_query_log(dist_schema4, 300, rng=0)


@pytest.fixture(scope="session")
def dist_counts4(dist_log4):
    return pattern_counts(dist_log4)


@pytest.fixture(scope="session")
def dist_schema5():
    return tpcd_serving_schema(5)


@pytest.fixture(scope="session")
def dist_fact5():
    return tpcd_serving_fact(5, rng=0, integral_measures=True)


@pytest.fixture(scope="session")
def dist_model5(dist_fact5):
    return LinearCostModel.from_fact(dist_fact5)


@pytest.fixture(scope="session")
def dist_log5(dist_schema5):
    return generate_query_log(dist_schema5, 500, rng=0)


@pytest.fixture(scope="session")
def dist_counts5(dist_log5):
    return pattern_counts(dist_log5)
