"""Balanced k-way workload partitioning: determinism, coverage, balance."""

import pytest

from repro.core.query import SliceQuery
from repro.distributed import partition_workload


def total_weight(partitioned):
    return sum(p.weight for p in partitioned.partitions)


class TestDeterminism:
    def test_same_input_same_fingerprint(self, dist_counts4):
        a = partition_workload(dist_counts4, 3)
        b = partition_workload(dist_counts4, 3)
        assert a.fingerprint() == b.fingerprint()
        for pa, pb in zip(a.partitions, b.partitions):
            assert pa.counts == pb.counts
            assert list(pa.counts) == list(pb.counts)  # member order too

    def test_fingerprint_tracks_parameters(self, dist_counts4):
        assert (
            partition_workload(dist_counts4, 3).fingerprint()
            != partition_workload(dist_counts4, 4).fingerprint()
        )
        assert (
            partition_workload(dist_counts4, 3, similarity=0.5).fingerprint()
            != partition_workload(dist_counts4, 3, similarity=0.9).fingerprint()
        )


class TestCoverage:
    def test_every_pattern_assigned_exactly_once(self, dist_counts4):
        partitioned = partition_workload(dist_counts4, 3)
        seen = {}
        for partition in partitioned.partitions:
            for query, weight in partition.counts.items():
                assert query not in seen
                seen[query] = weight
        expected = {q: float(w) for q, w in dist_counts4.items() if w > 0}
        assert seen == expected
        assert total_weight(partitioned) == pytest.approx(
            sum(expected.values())
        )

    def test_nonpositive_weights_dropped(self):
        counts = {
            SliceQuery(["p"]): 5.0,
            SliceQuery(["s"]): 0.0,
            SliceQuery(["c"]): -3.0,
        }
        partitioned = partition_workload(counts, 2)
        assigned = [
            q for p in partitioned.partitions for q in p.counts
        ]
        assert assigned == [SliceQuery(["p"])]

    def test_partition_attrs_cover_members(self, dist_counts4):
        for partition in partition_workload(dist_counts4, 3).partitions:
            for query in partition.counts:
                assert query.attrs <= partition.attrs


class TestBalance:
    def test_no_replica_starves(self, dist_counts4):
        """More patterns than partitions: every partition gets work."""
        for k in (2, 3, 4):
            partitioned = partition_workload(dist_counts4, k)
            assert partitioned.n_partitions == k
            assert all(not p.empty for p in partitioned.partitions)

    def test_lpt_bound_holds(self, dist_counts4):
        """Max load never exceeds fair share + the heaviest unit."""
        partitioned = partition_workload(dist_counts4, 3)
        total = total_weight(partitioned)
        heaviest_pattern = max(
            float(w) for w in dist_counts4.values() if w > 0
        )
        assert max(p.weight for p in partitioned.partitions) <= (
            total / 3 + heaviest_pattern
        )

    def test_mega_cluster_splits_across_partitions(self):
        """One cluster holding ~all the weight must not pin one replica."""
        heavy = {
            SliceQuery(["p"], ["s"]): 400.0,
            SliceQuery(["s"], ["p"]): 350.0,
            SliceQuery(["p", "s"]): 250.0,
        }
        light = {SliceQuery(["c"]): 10.0, SliceQuery(["d"]): 10.0}
        partitioned = partition_workload({**heavy, **light}, 3)
        total = total_weight(partitioned)
        assert all(not p.empty for p in partitioned.partitions)
        assert max(p.weight for p in partitioned.partitions) < 0.6 * total

    def test_fewer_patterns_than_partitions_leaves_empties(self):
        counts = {SliceQuery(["p"]): 2.0, SliceQuery(["s"]): 1.0}
        partitioned = partition_workload(counts, 4)
        assert sum(1 for p in partitioned.partitions if p.empty) == 2
        assert sum(p.n_patterns for p in partitioned.partitions) == 2

    def test_single_partition_takes_everything(self, dist_counts4):
        partitioned = partition_workload(dist_counts4, 1)
        assert partitioned.n_partitions == 1
        assert partitioned.partitions[0].n_patterns == len(
            [q for q, w in dist_counts4.items() if w > 0]
        )

    def test_invalid_partition_count_rejected(self, dist_counts4):
        with pytest.raises(ValueError, match="n_partitions"):
            partition_workload(dist_counts4, 0)
