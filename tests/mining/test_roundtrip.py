"""Recorder → miner round trip.

A workload recorded to JSONL by the serving layer must mine to the
byte-identical candidate space (same fingerprint) as the in-memory log
it came from — otherwise an offline ``repro mine`` and an online
adaptive re-advise would disagree about the same workload, and pruned
checkpoint resumes (which re-mine from the recorded file) would refuse
to continue.
"""

import pytest

from repro.cube.query_log import generate_query_log, pattern_counts
from repro.cube.schema import CubeSchema, Dimension
from repro.io import iter_query_log, load_query_log
from repro.mining import mine_candidates
from repro.serve import WorkloadRecorder


@pytest.fixture
def schema():
    return CubeSchema(
        [Dimension("a", 4), Dimension("b", 6), Dimension("c", 8)]
    )


def record(entries, path):
    with WorkloadRecorder(path) as recorder:
        for entry in entries:
            recorder.record(entry)
    return path


class TestRoundTrip:
    def test_jsonl_log_mines_identically(self, schema, tmp_path):
        entries = generate_query_log(schema, 300, rng=5)
        path = record(entries, tmp_path / "obs.jsonl")
        from_memory = mine_candidates(entries, schema.names)
        from_disk = mine_candidates(
            iter_query_log(path, schema), schema.names
        )
        assert from_disk.fingerprint() == from_memory.fingerprint()
        assert from_disk.queries == from_memory.queries
        assert from_disk.view_attrs == from_memory.view_attrs
        assert from_disk.index_keys == from_memory.index_keys

    def test_streamed_and_loaded_counts_agree(self, schema, tmp_path):
        entries = generate_query_log(schema, 200, rng=9)
        path = record(entries, tmp_path / "obs.jsonl")
        assert pattern_counts(iter_query_log(path, schema)) == pattern_counts(
            load_query_log(path, schema)
        )

    def test_single_query_log(self, schema, tmp_path):
        entries = generate_query_log(schema, 1, rng=0)
        path = record(entries, tmp_path / "one.jsonl")
        from_memory = mine_candidates(entries, schema.names)
        from_disk = mine_candidates(
            iter_query_log(path, schema), schema.names
        )
        assert from_disk.fingerprint() == from_memory.fingerprint()
        assert from_disk.n_queries == 1
        # the lone query's pattern is covered by a non-top view or is top
        assert from_disk.covers(entries[0].query)

    def test_empty_log(self, schema, tmp_path):
        path = record([], tmp_path / "empty.jsonl")
        assert path.exists()  # recorder leaves a valid empty file
        from_memory = mine_candidates([], schema.names)
        from_disk = mine_candidates(
            iter_query_log(path, schema), schema.names
        )
        assert from_disk.fingerprint() == from_memory.fingerprint()
        assert from_disk.n_queries == 0
        assert from_disk.view_attrs == [frozenset(schema.names)]

    def test_counts_mapping_equals_entry_stream(self, schema, tmp_path):
        entries = generate_query_log(schema, 250, rng=2)
        path = record(entries, tmp_path / "obs.jsonl")
        by_stream = mine_candidates(iter_query_log(path, schema), schema.names)
        by_counts = mine_candidates(
            pattern_counts(load_query_log(path, schema)), schema.names
        )
        assert by_stream.fingerprint() == by_counts.fingerprint()

    def test_mining_parameters_change_fingerprint_not_roundtrip(
        self, schema, tmp_path
    ):
        entries = generate_query_log(schema, 100, rng=4)
        path = record(entries, tmp_path / "obs.jsonl")
        loose = mine_candidates(
            iter_query_log(path, schema), schema.names, support=0.0
        )
        tight = mine_candidates(
            iter_query_log(path, schema), schema.names, support=0.5
        )
        assert loose.fingerprint() != tight.fingerprint()
        again = mine_candidates(
            iter_query_log(path, schema), schema.names, support=0.5
        )
        assert tight.fingerprint() == again.fingerprint()
