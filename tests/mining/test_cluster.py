"""Tests for workload clustering (repro.mining.cluster)."""

import pytest

from repro.core.query import SliceQuery
from repro.mining import cluster_queries, jaccard


def q(groupby, selection=()):
    return SliceQuery(groupby=list(groupby), selection=list(selection))


class TestJaccard:
    def test_identical_sets(self):
        assert jaccard(frozenset("ab"), frozenset("ab")) == 1.0

    def test_disjoint_sets(self):
        assert jaccard(frozenset("ab"), frozenset("cd")) == 0.0

    def test_two_empty_sets_are_similar(self):
        assert jaccard(frozenset(), frozenset()) == 1.0

    def test_partial_overlap(self):
        assert jaccard(frozenset("ab"), frozenset("bc")) == pytest.approx(1 / 3)


class TestClusterQueries:
    def test_identical_attr_sets_share_a_cluster(self):
        clusters = cluster_queries({q("ab"): 5.0, q("a", "b"): 3.0})
        assert len(clusters) == 1
        assert clusters[0].attrs == frozenset("ab")
        assert clusters[0].size == 2

    def test_dissimilar_sets_stay_apart(self):
        clusters = cluster_queries({q("ab"): 5.0, q("cd"): 3.0}, similarity=0.5)
        assert len(clusters) == 2

    def test_similar_sets_merge_and_union_attrs(self):
        # {a,b,c} vs {a,b}: Jaccard 2/3 >= 0.5 — one cluster, union attrs
        clusters = cluster_queries({q("abc"): 5.0, q("ab"): 3.0}, similarity=0.5)
        assert len(clusters) == 1
        assert clusters[0].attrs == frozenset("abc")
        assert clusters[0].weight == pytest.approx(8.0)

    def test_similarity_zero_merges_everything(self):
        clusters = cluster_queries({q("ab"): 1.0, q("cd"): 1.0}, similarity=0.0)
        assert len(clusters) == 1
        assert clusters[0].attrs == frozenset("abcd")

    def test_clusters_sorted_heaviest_first(self):
        clusters = cluster_queries({q("ab"): 1.0, q("cd"): 9.0}, similarity=0.5)
        assert [c.weight for c in clusters] == [9.0, 1.0]

    def test_supports_sum_to_one(self):
        clusters = cluster_queries({q("ab"): 1.0, q("cd"): 3.0}, similarity=0.5)
        assert sum(c.support for c in clusters) == pytest.approx(1.0)

    def test_members_ordered_heaviest_first(self):
        clusters = cluster_queries({q("ab"): 1.0, q("a", "b"): 7.0})
        assert clusters[0].queries[0] == q("a", "b")

    def test_nonpositive_weights_ignored(self):
        clusters = cluster_queries({q("ab"): 0.0, q("cd"): 2.0})
        assert len(clusters) == 1
        assert clusters[0].attrs == frozenset("cd")

    def test_deterministic_across_insertion_orders(self):
        counts = {q("ab"): 2.0, q("bc"): 2.0, q("cd"): 2.0, q("a"): 1.0}
        reordered = dict(reversed(list(counts.items())))
        assert cluster_queries(counts) == cluster_queries(reordered)

    def test_similarity_validated(self):
        with pytest.raises(ValueError, match="similarity"):
            cluster_queries({q("ab"): 1.0}, similarity=1.5)

    def test_empty_counts(self):
        assert cluster_queries({}) == []
