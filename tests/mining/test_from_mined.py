"""QueryViewGraph.from_mined must agree with from_cube edge for edge.

A pruned graph is a *subgraph* of the full-universe graph over the
observed queries: same costs, same spaces, same tie-break order.  These
tests pin that down by committing identical selections on both and
comparing τ, and by running greedy end-to-end on a workload whose mined
space happens to cover everything greedy would pick.
"""

import pytest

from repro.algorithms import InnerLevelGreedy, RGreedy
from repro.core.benefit import BenefitEngine
from repro.core.qvgraph import QueryViewGraph
from repro.core.query import enumerate_slice_queries
from repro.cube.query_log import generate_query_log, pattern_counts
from repro.cube.schema import CubeSchema, Dimension
from repro.estimation.sizes import analytical_lattice
from repro.mining import mine_candidates


@pytest.fixture(scope="module")
def instance():
    schema = CubeSchema(
        [Dimension("a", 4), Dimension("b", 6), Dimension("c", 8)]
    )
    lattice = analytical_lattice(schema, 0.1 * schema.dense_cells)
    counts = pattern_counts(generate_query_log(schema, 500, rng=3))
    return lattice, counts


def full_graph(lattice, counts):
    frequencies = {
        q: float(counts.get(q, 0))
        for q in enumerate_slice_queries(lattice.schema.names)
    }
    return QueryViewGraph.from_cube(lattice, frequencies=frequencies)


def mined_all(lattice, counts):
    """Mine with support 0 — keeps every observed cluster's view."""
    mined = mine_candidates(
        counts, lattice.schema.names, support=0.0, max_indexes_per_view=100
    )
    mined.ensure_structures([lattice.label(lattice.top)])
    return mined


class TestAgreement:
    def test_same_tau_for_identical_committed_selection(self, instance):
        lattice, counts = instance
        pruned_engine = BenefitEngine(
            QueryViewGraph.from_mined(lattice, mined_all(lattice, counts))
        )
        full_engine = BenefitEngine(full_graph(lattice, counts))
        # commit every structure the pruned universe has, on both engines
        names = list(pruned_engine.structure_names)
        assert set(names) <= set(full_engine.structure_names)
        pruned_engine.replay_commit(names)
        full_engine.replay_commit(names)
        assert pruned_engine.tau() == pytest.approx(full_engine.tau())

    def test_initial_tau_matches(self, instance):
        lattice, counts = instance
        pruned = BenefitEngine(
            QueryViewGraph.from_mined(lattice, mined_all(lattice, counts))
        )
        full = BenefitEngine(full_graph(lattice, counts))
        top = lattice.label(lattice.top)
        pruned.replay_commit([top])
        full.replay_commit([top])
        assert pruned.tau() == pytest.approx(full.tau())

    @pytest.mark.parametrize(
        "algorithm",
        [RGreedy(1), RGreedy(2), InnerLevelGreedy()],
        ids=["1greedy", "2greedy", "inner"],
    )
    def test_greedy_selection_identical_when_nothing_pruned(
        self, instance, algorithm
    ):
        # force the mined set to contain the entire full universe, in the
        # full graph's own structure order: the two graphs then differ
        # only in their zero-weight queries, which contribute no benefit
        # — every greedy must select identically.
        from repro.mining import MinedCandidates

        lattice, counts = instance
        full_engine = BenefitEngine(full_graph(lattice, counts))
        mined = MinedCandidates(
            schema_names=tuple(lattice.schema.names),
            queries={q: float(w) for q, w in counts.items()},
            view_attrs=[],
            index_keys={},
            total_weight=float(sum(counts.values())),
        )
        mined.ensure_structures(full_engine.structure_names)
        pruned_engine = BenefitEngine(
            QueryViewGraph.from_mined(lattice, mined)
        )
        assert list(pruned_engine.structure_names) == list(
            full_engine.structure_names
        )
        space = 1.5 * lattice.size(lattice.top)
        seed = (lattice.label(lattice.top),)
        pruned = algorithm.run(pruned_engine, space, seed=seed)
        full = algorithm.run(full_engine, space, seed=seed)
        assert list(pruned.selected) == list(full.selected)
        assert pruned.tau == pytest.approx(full.tau, rel=1e-12)

    def test_weights_are_observed_counts(self, instance):
        lattice, counts = instance
        graph = QueryViewGraph.from_mined(lattice, mined_all(lattice, counts))
        engine = BenefitEngine(graph)
        assert engine.frequencies.sum() == pytest.approx(
            sum(counts.values())
        )


class TestValidation:
    def test_rejects_view_outside_lattice(self, instance):
        lattice, counts = instance
        mined = mine_candidates(counts, ("a", "b", "c", "z"))
        with pytest.raises(ValueError):
            QueryViewGraph.from_mined(lattice, mined)
