"""Tests for mined candidate sets (repro.mining.candidates)."""

import pytest

from repro.core.query import SliceQuery
from repro.mining import mine_candidates

SCHEMA = ("p", "s", "c", "d")


def q(groupby, selection=()):
    return SliceQuery(groupby=list(groupby), selection=list(selection))


@pytest.fixture
def counts():
    return {
        q("s", "p"): 60.0,
        q("ps"): 25.0,
        q("", "c"): 10.0,
        q("d"): 4.0,
        q("pscd"): 1.0,
    }


class TestMineCandidates:
    def test_top_view_always_kept(self, counts):
        mined = mine_candidates(counts, SCHEMA)
        assert frozenset(SCHEMA) in mined.view_attrs

    def test_every_observed_query_covered(self, counts):
        mined = mine_candidates(counts, SCHEMA, support=0.5)
        for query in counts:
            assert mined.covers(query)

    def test_upward_closure_beyond_top(self, counts):
        # even queries whose cluster was dropped keep an answering view
        # below the top (except the top pattern itself)
        mined = mine_candidates(counts, SCHEMA, support=0.5)
        for query in counts:
            if query.attrs == frozenset(SCHEMA):
                continue
            assert any(
                attrs >= query.attrs
                for attrs in mined.view_attrs
                if attrs != frozenset(SCHEMA)
            )

    def test_support_threshold_drops_weight(self, counts):
        mined = mine_candidates(counts, SCHEMA, support=0.10)
        # the pscd pattern merges into the ps cluster (Jaccard 0.5), so
        # only the d cluster (4%) falls below 10% support
        assert mined.dropped_weight == pytest.approx(4.0)
        assert mined.kept_clusters < len(mined.clusters)

    def test_total_weight(self, counts):
        assert mine_candidates(counts, SCHEMA).total_weight == pytest.approx(100.0)

    def test_view_order_matches_lattice(self, counts):
        mined = mine_candidates(counts, SCHEMA)
        keys = [
            (len(attrs), tuple(sorted(SCHEMA.index(a) for a in attrs)))
            for attrs in mined.view_attrs
        ]
        assert keys == sorted(keys)

    def test_index_keys_capped(self, counts):
        mined = mine_candidates(counts, SCHEMA, max_indexes_per_view=1)
        assert all(len(keys) <= 1 for keys in mined.index_keys.values())

    def test_hot_selection_leads_key(self, counts):
        mined = mine_candidates(counts, SCHEMA)
        ps = frozenset("ps")
        assert ps in mined.index_keys
        # the dominant selection set on view ps is {p}: key starts with p
        assert mined.index_keys[ps][0][0] == "p"

    def test_key_is_a_permutation_of_the_view(self, counts):
        mined = mine_candidates(counts, SCHEMA)
        for attrs, keys in mined.index_keys.items():
            for key in keys:
                assert frozenset(key) == attrs
                assert len(set(key)) == len(key)

    def test_log_entries_and_counts_agree(self, counts):
        from repro.cube.query_log import LogEntry

        entries = []
        for query, weight in counts.items():
            values = tuple((a, 0) for a in sorted(query.selection))
            entries.extend([LogEntry(query=query, values=values)] * int(weight))
        by_entries = mine_candidates(entries, SCHEMA)
        by_counts = mine_candidates(counts, SCHEMA)
        assert by_entries.fingerprint() == by_counts.fingerprint()

    def test_unknown_attr_rejected(self):
        with pytest.raises(ValueError, match="not cube dimensions"):
            mine_candidates({q("xz"): 1.0}, SCHEMA)

    def test_empty_workload_keeps_only_top(self):
        mined = mine_candidates({}, SCHEMA)
        assert mined.view_attrs == [frozenset(SCHEMA)]
        assert mined.n_indexes == 0
        assert mined.n_queries == 0

    def test_parameters_validated(self):
        with pytest.raises(ValueError, match="support"):
            mine_candidates({}, SCHEMA, support=-0.1)
        with pytest.raises(ValueError, match="max_indexes_per_view"):
            mine_candidates({}, SCHEMA, max_indexes_per_view=-1)
        with pytest.raises(ValueError, match="schema_names"):
            mine_candidates({}, ())


class TestEnsure:
    def test_ensure_view_inserts_in_lattice_order(self, counts):
        mined = mine_candidates(counts, SCHEMA, support=0.5)
        before = list(mined.view_attrs)
        mined.ensure_view("sc")
        assert frozenset("sc") in mined.view_attrs
        assert all(attrs in mined.view_attrs for attrs in before)
        keys = [
            (len(attrs), tuple(sorted(SCHEMA.index(a) for a in attrs)))
            for attrs in mined.view_attrs
        ]
        assert keys == sorted(keys)

    def test_ensure_view_is_idempotent(self, counts):
        mined = mine_candidates(counts, SCHEMA)
        n = mined.n_views
        mined.ensure_view(frozenset(SCHEMA))
        assert mined.n_views == n

    def test_ensure_structures_parses_labels(self, counts):
        mined = mine_candidates(counts, SCHEMA, support=0.5)
        mined.ensure_structures(["cd", "I_dc(cd)"])
        assert frozenset("cd") in mined.view_attrs
        assert ("d", "c") in mined.index_keys[frozenset("cd")]

    def test_ensure_index_rejects_extraneous_key(self, counts):
        mined = mine_candidates(counts, SCHEMA)
        with pytest.raises(ValueError, match="not in view"):
            mined.ensure_index("ps", ("p", "c"))

    def test_ensure_view_rejects_unknown_attr(self, counts):
        mined = mine_candidates(counts, SCHEMA)
        with pytest.raises(ValueError, match="not cube dimensions"):
            mined.ensure_view("px")


class TestFingerprint:
    def test_stable_for_identical_input(self, counts):
        a = mine_candidates(counts, SCHEMA)
        b = mine_candidates(dict(counts), SCHEMA)
        assert a.fingerprint() == b.fingerprint()

    def test_insensitive_to_mapping_order(self, counts):
        reordered = dict(reversed(list(counts.items())))
        assert (
            mine_candidates(counts, SCHEMA).fingerprint()
            == mine_candidates(reordered, SCHEMA).fingerprint()
        )

    def test_sensitive_to_weights(self, counts):
        heavier = dict(counts)
        heavier[q("d")] = 5.0
        assert (
            mine_candidates(counts, SCHEMA).fingerprint()
            != mine_candidates(heavier, SCHEMA).fingerprint()
        )

    def test_sensitive_to_parameters(self, counts):
        assert (
            mine_candidates(counts, SCHEMA, support=0.01).fingerprint()
            != mine_candidates(counts, SCHEMA, support=0.02).fingerprint()
        )

    def test_changes_when_structures_injected(self, counts):
        mined = mine_candidates(counts, SCHEMA, support=0.5)
        before = mined.fingerprint()
        mined.ensure_structures(["cd"])
        assert mined.fingerprint() != before
