"""Tests for the forgone-benefit bound (repro.mining.bound)."""

import pytest

from repro.algorithms import RGreedy
from repro.core.benefit import BenefitEngine
from repro.core.qvgraph import QueryViewGraph
from repro.core.query import SliceQuery, enumerate_slice_queries
from repro.cube.query_log import generate_query_log, pattern_counts
from repro.cube.schema import CubeSchema, Dimension
from repro.estimation.sizes import analytical_lattice
from repro.mining import compute_benefit_bound, mine_candidates


def cube(n_dims):
    cards = [4 + 2 * i for i in range(n_dims)]
    schema = CubeSchema(
        [Dimension(chr(ord("a") + i), c) for i, c in enumerate(cards)]
    )
    return analytical_lattice(schema, 0.1 * schema.dense_cells)


@pytest.fixture(scope="module")
def instance():
    lattice = cube(4)
    schema = lattice.schema
    counts = pattern_counts(generate_query_log(schema, 400, rng=7))
    mined = mine_candidates(counts, schema.names, support=0.02)
    mined.ensure_structures([lattice.label(lattice.top)])
    return lattice, counts, mined


class TestBoundStructure:
    def test_floor_ordering(self, instance):
        lattice, __, mined = instance
        bound = compute_benefit_bound(mined, lattice)
        assert bound.ideal_tau <= bound.kept_tau <= bound.default_tau

    def test_forgone_bound_formula(self, instance):
        lattice, __, mined = instance
        bound = compute_benefit_bound(mined, lattice)
        assert bound.forgone_bound(bound.ideal_tau + 5.0) == pytest.approx(5.0)
        assert bound.forgone_bound(bound.ideal_tau - 1.0) == 0.0

    def test_relative_forgone_uses_default_tau(self, instance):
        lattice, __, mined = instance
        bound = compute_benefit_bound(mined, lattice)
        tau = bound.ideal_tau + 10.0
        assert bound.relative_forgone(tau) == pytest.approx(
            10.0 / bound.default_tau
        )
        assert bound.relative_forgone(tau, baseline=20.0) == pytest.approx(0.5)

    def test_to_dict_round_numbers(self, instance):
        lattice, __, mined = instance
        doc = compute_benefit_bound(mined, lattice).to_dict()
        assert set(doc) == {
            "ideal_tau",
            "kept_tau",
            "default_tau",
            "pruning_gap",
            "total_weight",
        }
        assert doc["pruning_gap"] >= 0.0


class TestBoundAgainstFullAdvise:
    """The certificate checked against a real full-universe run (d=4)."""

    def _advise(self, graph, lattice):
        return RGreedy(1).run(
            BenefitEngine(graph),
            3.0 * lattice.size(lattice.top),
            seed=(lattice.label(lattice.top),),
        )

    def test_ideal_tau_floors_full_advise(self, instance):
        lattice, counts, mined = instance
        bound = compute_benefit_bound(mined, lattice)
        frequencies = {
            q: float(counts.get(q, 0))
            for q in enumerate_slice_queries(lattice.schema.names)
        }
        full = self._advise(
            QueryViewGraph.from_cube(lattice, frequencies=frequencies), lattice
        )
        assert full.tau >= bound.ideal_tau - 1e-6

    def test_measured_gap_within_certified_bound(self, instance):
        lattice, counts, mined = instance
        bound = compute_benefit_bound(mined, lattice)
        pruned = self._advise(
            QueryViewGraph.from_mined(lattice, mined), lattice
        )
        frequencies = {
            q: float(counts.get(q, 0))
            for q in enumerate_slice_queries(lattice.schema.names)
        }
        full = self._advise(
            QueryViewGraph.from_cube(lattice, frequencies=frequencies), lattice
        )
        gap = pruned.tau - full.tau
        assert gap <= bound.forgone_bound(pruned.tau) + 1e-6


class TestEdgeCases:
    def test_empty_workload_bound_is_zero(self):
        lattice = cube(3)
        mined = mine_candidates({}, lattice.schema.names)
        bound = compute_benefit_bound(mined, lattice)
        assert bound.ideal_tau == bound.kept_tau == bound.default_tau == 0.0
        assert bound.forgone_bound(0.0) == 0.0
        assert bound.relative_forgone(123.0) == 0.0

    def test_empty_pattern_query(self):
        # the none-view query (no groupby, no selection) must price cleanly
        lattice = cube(3)
        counts = {SliceQuery(groupby=[], selection=[]): 3.0}
        mined = mine_candidates(counts, lattice.schema.names)
        bound = compute_benefit_bound(mined, lattice)
        assert bound.ideal_tau <= bound.kept_tau <= bound.default_tau
