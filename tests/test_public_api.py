"""API-contract tests: the public surface is importable and documented.

Every name in every package's ``__all__`` must resolve, and every public
callable/class must carry a docstring — the deliverable is a library, and
an undocumented export is a regression.
"""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.algorithms",
    "repro.estimation",
    "repro.cube",
    "repro.engine",
    "repro.datasets",
    "repro.experiments",
    "repro.serve",
]

MODULES_WITHOUT_ALL = [
    "repro.analysis",
    "repro.sql",
    "repro.io",
    "repro.cli",
    "repro.core.hierarchy",
    "repro.core.lattice_draw",
    "repro.engine.navigate",
    "repro.engine.storage",
    "repro.engine.pipeline",
    "repro.engine.maintenance",
    "repro.cube.query_log",
    "repro.datasets.adversarial",
    "repro.datasets.tpcd_hierarchical",
    "repro.algorithms.local_search",
    "repro.algorithms.maintenance_aware",
    "repro.algorithms.pbs",
    "repro.serve.adaptive",
    "repro.serve.drift",
    "repro.serve.recorder",
    "repro.serve.server",
    "repro.serve.structures",
    "repro.serve.telemetry",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    assert hasattr(module, "__all__"), f"{package} has no __all__"
    for name in module.__all__:
        assert hasattr(module, name), f"{package}.{name} listed but missing"


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_documented(package):
    module = importlib.import_module(package)
    for name in module.__all__:
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            assert inspect.getdoc(obj), f"{package}.{name} has no docstring"


@pytest.mark.parametrize("module_name", PACKAGES + MODULES_WITHOUT_ALL)
def test_module_docstrings(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), (
        f"{module_name} has no module docstring"
    )


@pytest.mark.parametrize("module_name", MODULES_WITHOUT_ALL)
def test_public_members_documented(module_name):
    """Every public top-level class/function defined in the module itself
    carries a docstring."""
    module = importlib.import_module(module_name)
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue  # re-export
        assert inspect.getdoc(obj), f"{module_name}.{name} has no docstring"


def test_version_is_exposed():
    import repro

    assert repro.__version__ == "1.0.0"


def test_no_private_leaks_in_all():
    for package in PACKAGES:
        module = importlib.import_module(package)
        for name in module.__all__:
            assert not name.startswith("_") or name == "__version__", (
                f"{package} exports private name {name}"
            )
