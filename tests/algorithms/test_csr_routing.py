"""Regression for the PR-3 dense-eager caveat: requesting any worker
count routes the dense backend's eager benefit kernels through the CSR
store, so serial and pooled stage scans are *bitwise* equal — not just
last-ulp-equal as the dense matmul kernel used to be.
"""

import numpy as np
import pytest

from repro.algorithms import RGreedy
from repro.core.benefit import BenefitEngine
from repro.parallel import make_evaluator
from repro.parallel.evaluator import WORKERS_ENV
from repro.runtime.context import InjectedFault, RunContext
from repro.runtime.faults import (
    _cube_graph,
    _roundtrip,
    compare_results,
    smoke_budget,
    top_view_of,
)


@pytest.fixture(scope="module")
def d4():
    graph = _cube_graph(4)
    engine = BenefitEngine(graph)
    return graph, smoke_budget(engine, 0.3), (top_view_of(engine),)


class TestRoutingFlag:
    def test_sparse_backend_always_uses_csr(self):
        engine = BenefitEngine(_cube_graph(4), backend="sparse")
        assert engine.uses_csr_kernels

    def test_default_dense_run_keeps_matmul(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        engine = BenefitEngine(_cube_graph(4), backend="dense")
        assert not engine.uses_csr_kernels
        make_evaluator(engine, None).close()
        assert not engine.uses_csr_kernels

    @pytest.mark.parametrize("workers", [1, 0, 2])
    def test_explicit_workers_route_dense(self, monkeypatch, workers):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        engine = BenefitEngine(_cube_graph(4), backend="dense")
        make_evaluator(engine, workers).close()
        assert engine.uses_csr_kernels

    def test_env_workers_route_dense(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "1")
        engine = BenefitEngine(_cube_graph(4), backend="dense")
        make_evaluator(engine, None).close()
        assert engine.uses_csr_kernels


class TestKernelEquality:
    """Routed dense eager kernels reproduce the sparse backend's values
    bit for bit (``==`` on float64 arrays, no tolerance)."""

    def test_eager_singles_bitwise(self, d4):
        graph, _space, seed = d4
        dense = BenefitEngine(graph, backend="dense")
        sparse = BenefitEngine(graph, backend="sparse")
        dense.route_through_csr()
        for engine in (dense, sparse):
            engine.replay_commit(seed)
        got = dense.single_benefits(lazy=False)
        want = sparse.single_benefits(lazy=False)
        assert np.array_equal(got, want)

    def test_gains_for_bitwise(self, d4):
        graph, _space, seed = d4
        dense = BenefitEngine(graph, backend="dense")
        sparse = BenefitEngine(graph, backend="sparse")
        dense.route_through_csr()
        for engine in (dense, sparse):
            engine.replay_commit(seed)
        ids = dense.stage_candidates()
        base = dense.best_costs
        got = dense.gains_for(ids, base)
        want = sparse.gains_for(ids, base)
        assert np.array_equal(got, want)


def _exact_same(a, b):
    assert compare_results(a, b) == ""
    assert [s.benefit for s in a.stages] == [s.benefit for s in b.stages]


class TestRunEquality:
    def test_dense_eager_matches_sparse_when_workers_requested(self, d4):
        """The caveat itself: with workers=1 requested, a dense eager
        2-greedy run is bitwise identical to the sparse run (before the
        fix the dense matmul kernel differed in the last ulp)."""
        graph, space, seed = d4
        dense = RGreedy(2, lazy=False, workers=1).run(
            BenefitEngine(graph, backend="dense"), space, seed=seed
        )
        sparse = RGreedy(2, lazy=False, workers=1).run(
            BenefitEngine(graph, backend="sparse"), space, seed=seed
        )
        _exact_same(dense, sparse)

    def test_serial_resume_after_parallel_checkpoint(self, d4):
        """A serial scan following a pooled one: kill a dense eager
        workers=2 run mid-way, resume it at workers=1 — the resumed
        stages run the CSR-routed serial scan against pool-written
        state and must finish bitwise equal to the golden pooled run."""
        graph, space, seed = d4

        def run(workers, context=None):
            return RGreedy(2, lazy=False, workers=workers).run(
                BenefitEngine(graph, backend="dense"),
                space,
                seed=seed,
                context=context,
            )

        golden_context = RunContext()
        golden = run(2, golden_context)
        assert golden_context.stage_counter >= 2
        with pytest.raises(InjectedFault) as info:
            run(2, RunContext(fault_stage=1))
        checkpoint = _roundtrip(info.value.checkpoint)
        resumed = run(1, RunContext(resume_from=checkpoint))
        _exact_same(golden, resumed)
