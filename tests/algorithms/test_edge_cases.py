"""Edge-case behaviour every algorithm must get right.

Zero frequencies, ties, enormous and tiny magnitudes, single-query
graphs, and selections that cannot improve anything.
"""

import pytest

from repro.algorithms import (
    FIT_PAPER,
    FIT_STRICT,
    BranchAndBoundOptimal,
    HRUGreedy,
    InnerLevelGreedy,
    RGreedy,
    TwoStep,
    exhaustive_optimal,
)
from repro.core.benefit import BenefitEngine
from repro.core.qvgraph import QueryViewGraph

ALL_ALGOS = [
    RGreedy(1, fit=FIT_STRICT),
    RGreedy(2, fit=FIT_STRICT),
    InnerLevelGreedy(fit=FIT_STRICT),
    HRUGreedy(),
    TwoStep(0.5),
    BranchAndBoundOptimal(),
]


def graph_with(queries, views, edges):
    g = QueryViewGraph()
    for name, cost, freq in queries:
        g.add_query(name, cost, frequency=freq)
    for name, space, indexes in views:
        g.add_view(name, space)
        for idx in indexes:
            g.add_index(name, idx)
    for q, s, c in edges:
        g.add_edge(q, s, c)
    return g


class TestZeroFrequency:
    @pytest.fixture
    def graph(self):
        return graph_with(
            queries=[("hot", 100, 1.0), ("dead", 1000, 0.0)],
            views=[("v_hot", 1, []), ("v_dead", 1, [])],
            edges=[("hot", "v_hot", 1), ("dead", "v_dead", 1)],
        )

    @pytest.mark.parametrize("algo", ALL_ALGOS, ids=lambda a: a.name)
    def test_zero_frequency_queries_ignored(self, graph, algo):
        result = algo.run(graph, 1)
        assert "v_dead" not in result.selected
        if "two-step" not in algo.name:
            assert result.benefit == 99.0

    def test_tau_unaffected_by_dead_query_structures(self, graph):
        engine = BenefitEngine(graph)
        before = engine.tau()
        engine.commit([engine.structure_id("v_dead")])
        assert engine.tau() == before


class TestExtremeMagnitudes:
    def test_huge_costs_do_not_overflow(self):
        g = graph_with(
            queries=[("q", 1e15, 1.0)],
            views=[("v", 1e12, [])],
            edges=[("q", "v", 1e3)],
        )
        result = RGreedy(1).run(g, 2e12)
        assert result.benefit == pytest.approx(1e15 - 1e3)

    def test_tiny_spaces(self):
        g = graph_with(
            queries=[("q", 10, 1.0)],
            views=[("v", 1e-9, [])],
            edges=[("q", "v", 1)],
        )
        result = RGreedy(1).run(g, 1e-6)
        assert result.selected == ("v",)

    def test_fractional_frequencies(self):
        g = graph_with(
            queries=[("a", 100, 0.25), ("b", 100, 0.75)],
            views=[("va", 1, []), ("vb", 1, [])],
            edges=[("a", "va", 0), ("b", "vb", 0)],
        )
        result = RGreedy(1).run(g, 1)
        # higher-weighted query wins the single slot
        assert result.selected == ("vb",)
        assert result.benefit == pytest.approx(75.0)


class TestTies:
    def test_tied_candidates_resolved_deterministically(self):
        g = graph_with(
            queries=[("q1", 10, 1.0), ("q2", 10, 1.0)],
            views=[("v1", 1, []), ("v2", 1, [])],
            edges=[("q1", "v1", 1), ("q2", "v2", 1)],
        )
        picks = {RGreedy(1).run(g, 1).selected for __ in range(5)}
        assert len(picks) == 1  # same winner every time

    def test_tie_breaks_toward_first_structure(self):
        g = graph_with(
            queries=[("q1", 10, 1.0), ("q2", 10, 1.0)],
            views=[("v1", 1, []), ("v2", 1, [])],
            edges=[("q1", "v1", 1), ("q2", "v2", 1)],
        )
        assert RGreedy(1).run(g, 1).selected == ("v1",)


class TestEdgeCostEqualDefault:
    def test_useless_edge_never_picked(self):
        """An edge exactly at the default cost yields zero benefit."""
        g = graph_with(
            queries=[("q", 50, 1.0)],
            views=[("v", 1, [])],
            edges=[("q", "v", 50)],
        )
        for algo in (RGreedy(1), HRUGreedy(), InnerLevelGreedy(fit=FIT_STRICT)):
            assert algo.run(g, 5).selected == ()

    def test_edge_above_default_never_hurts(self):
        g = graph_with(
            queries=[("q", 50, 1.0)],
            views=[("v", 1, [])],
            edges=[("q", "v", 80)],  # worse than raw data
        )
        engine = BenefitEngine(g)
        engine.commit([engine.structure_id("v")])
        assert engine.tau() == 50.0  # min(T, t) keeps the default


class TestSingleStructureSpaces:
    def test_structure_exactly_filling_budget(self):
        g = graph_with(
            queries=[("q", 10, 1.0)],
            views=[("v", 7, [])],
            edges=[("q", "v", 1)],
        )
        assert RGreedy(1).run(g, 7).selected == ("v",)

    def test_structure_epsilon_over_budget_skipped(self):
        g = graph_with(
            queries=[("q", 10, 1.0)],
            views=[("v", 7.001, [])],
            edges=[("q", "v", 1)],
        )
        assert RGreedy(1).run(g, 7).selected == ()

    def test_optimal_agrees_on_exact_fill(self):
        g = graph_with(
            queries=[("q", 10, 1.0)],
            views=[("v", 7, [])],
            edges=[("q", "v", 1)],
        )
        assert exhaustive_optimal(g, 7).selected == ["v"] or (
            exhaustive_optimal(g, 7).selected == ("v",)
        )


class TestPaperFitOvershootBound:
    def test_last_pick_overshoot_only(self):
        """Paper fit may overshoot once, never repeatedly."""
        g = graph_with(
            queries=[(f"q{i}", 100, 1.0) for i in range(4)],
            views=[(f"v{i}", 3, []) for i in range(4)],
            edges=[(f"q{i}", f"v{i}", 1) for i in range(4)],
        )
        result = RGreedy(1, fit=FIT_PAPER).run(g, 7)
        # picks while used < 7: v,v (6) then one more (9); stops
        assert result.space_used == 9
