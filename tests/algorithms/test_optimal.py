"""Tests for the exact optimal solvers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import BranchAndBoundOptimal, SearchBudgetExceeded, exhaustive_optimal
from repro.core.benefit import BenefitEngine
from repro.core.qvgraph import QueryViewGraph

from tests.conftest import unit_graph_strategy


def small_graph() -> QueryViewGraph:
    g = QueryViewGraph()
    g.add_view("v1", 2)
    g.add_index("v1", "i1", space=1)
    g.add_view("v2", 1)
    g.add_query("q1", 100)
    g.add_query("q2", 30)
    g.add_edge("q1", "i1", 1)
    g.add_edge("q1", "v1", 60)
    g.add_edge("q2", "v2", 5)
    return g


class TestBranchAndBound:
    def test_tiny_instance(self):
        result = BranchAndBoundOptimal().run(small_graph(), 4)
        assert set(result.selected) == {"v1", "i1", "v2"}
        assert result.benefit == 99 + 25

    def test_space_constraint_binds(self):
        result = BranchAndBoundOptimal().run(small_graph(), 3)
        assert set(result.selected) == {"v1", "i1"}
        assert result.benefit == 99

    def test_index_never_without_view(self):
        result = BranchAndBoundOptimal().run(small_graph(), 1)
        # only v2 fits meaningfully: i1 alone is inadmissible
        assert set(result.selected) == {"v2"}

    def test_zero_space_raises(self):
        with pytest.raises(ValueError):
            BranchAndBoundOptimal().run(small_graph(), 0)

    def test_node_limit_raises(self, fig2_g):
        with pytest.raises(SearchBudgetExceeded):
            BranchAndBoundOptimal(node_limit=3).run(fig2_g, 7)

    def test_figure2_optima(self, fig2_g):
        assert BranchAndBoundOptimal().run(fig2_g, 7).benefit == 300
        assert BranchAndBoundOptimal().run(fig2_g, 9).benefit == 400

    def test_seed_forced_into_solution(self, fig2_g):
        result = BranchAndBoundOptimal().run(fig2_g, 7, seed=("V5",))
        assert "V5" in result.selected
        # V5 (benefit 7) wastes a unit vs the V2 bundle: optimum drops by 50
        assert result.benefit == 7 + 250

    def test_seed_exceeding_budget_raises(self, fig2_g):
        with pytest.raises(ValueError, match="seed"):
            BranchAndBoundOptimal().run(fig2_g, 0.5, seed=("V1",))

    def test_monotone_in_space(self, fig2_g):
        benefits = [
            BranchAndBoundOptimal().run(fig2_g, s).benefit for s in (2, 4, 6, 8)
        ]
        assert benefits == sorted(benefits)


class TestExhaustive:
    def test_matches_branch_and_bound_on_small_graph(self):
        g = small_graph()
        for space in (1, 2, 3, 4):
            bb = BranchAndBoundOptimal().run(g, space)
            ex = exhaustive_optimal(g, space)
            assert bb.benefit == pytest.approx(ex.benefit)

    def test_refuses_large_graphs(self, fig2_g):
        with pytest.raises(ValueError, match="limited"):
            exhaustive_optimal(fig2_g, 7, max_structures=10)

    @settings(max_examples=40, deadline=None)
    @given(unit_graph_strategy(), st.integers(min_value=1, max_value=6))
    def test_branch_and_bound_agrees_with_exhaustive(self, graph, space):
        """The headline correctness property of the B&B pruning bounds."""
        engine = BenefitEngine(graph)
        bb = BranchAndBoundOptimal().run(engine, space)
        ex = exhaustive_optimal(engine, space)
        assert bb.benefit == pytest.approx(ex.benefit)

    @settings(max_examples=25, deadline=None)
    @given(unit_graph_strategy(), st.integers(min_value=1, max_value=6))
    def test_optimal_dominates_greedy(self, graph, space):
        from repro.algorithms import FIT_STRICT, RGreedy

        engine = BenefitEngine(graph)
        opt = exhaustive_optimal(engine, space)
        for r in (1, 2):
            greedy = RGreedy(r, fit=FIT_STRICT).run(engine, space)
            assert greedy.benefit <= opt.benefit + 1e-9
