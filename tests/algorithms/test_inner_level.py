"""Tests for the inner-level greedy algorithm (Algorithm 5.2)."""

import pytest

from repro.algorithms import FIT_PAPER, FIT_STRICT, InnerLevelGreedy, RGreedy
from repro.algorithms.inner_level import IG_PEAK, IG_SPACE
from repro.core.qvgraph import QueryViewGraph
from repro.datasets.paper_figure2 import FIGURE2_SPACE


class TestConstruction:
    def test_invalid_ig_rule(self):
        with pytest.raises(ValueError):
            InnerLevelGreedy(ig_rule="bogus")

    def test_invalid_fit(self):
        with pytest.raises(ValueError):
            InnerLevelGreedy(fit="bogus")


class TestPaperTrace:
    def test_paper_example_52(self, fig2_g):
        """Stage 1 picks {V1, I1,1}; stage 2 picks V2 + six indexes with
        incremental benefit 240; total 330 on 9 units."""
        result = InnerLevelGreedy(fit=FIT_PAPER).run(fig2_g, FIGURE2_SPACE)
        assert result.benefit == 330
        assert result.space_used == 9
        assert result.stages[0].structures == ("V1", "I1,1")
        assert result.stages[0].benefit == 90
        assert result.stages[1].benefit == 240
        assert len(result.stages[1].structures) == 7  # V2 + 6 indexes

    def test_space_bound_theorem_52(self, fig2_g):
        """Selection never exceeds 2·S (Theorem 5.2)."""
        for s in (3, 5, 7, 9):
            result = InnerLevelGreedy(fit=FIT_PAPER).run(fig2_g, s)
            assert result.space_used <= 2 * s


class TestIGRules:
    def test_peak_rule_never_worse_ratio_first_stage(self, fig2_g):
        space_rule = InnerLevelGreedy(ig_rule=IG_SPACE, fit=FIT_PAPER).run(
            fig2_g, FIGURE2_SPACE
        )
        peak_rule = InnerLevelGreedy(ig_rule=IG_PEAK, fit=FIT_PAPER).run(
            fig2_g, FIGURE2_SPACE
        )
        # both land the same quality on this instance
        assert peak_rule.benefit >= 0.9 * space_rule.benefit

    def test_strict_fit_respects_budget(self, tpcd_g):
        result = InnerLevelGreedy(fit=FIT_STRICT).run(tpcd_g, 25e6, seed=("psc",))
        assert result.space_used <= 25e6


class TestMechanics:
    def test_indexes_follow_views(self, fig2_g):
        result = InnerLevelGreedy(fit=FIT_PAPER).run(fig2_g, FIGURE2_SPACE)
        seen = set()
        for name in result.selected:
            struct = fig2_g.structure(name)
            if struct.is_index:
                assert struct.view_name in seen
            seen.add(name)

    def test_stage_benefits_sum(self, fig2_g):
        result = InnerLevelGreedy(fit=FIT_PAPER).run(fig2_g, FIGURE2_SPACE)
        assert sum(s.benefit for s in result.stages) == pytest.approx(result.benefit)

    def test_phase2_single_index_pick(self):
        """After a view is in, a hot single index must win a later stage."""
        g = QueryViewGraph()
        g.add_view("v", 1)
        g.add_index("v", "i1")
        g.add_index("v", "i2")
        g.add_query("qv", 100)
        g.add_query("q1", 50)
        g.add_query("q2", 50)
        g.add_edge("qv", "v", 1)
        g.add_edge("q1", "i1", 1)
        g.add_edge("q2", "i2", 1)
        result = InnerLevelGreedy(fit=FIT_PAPER).run(g, 3)
        assert set(result.selected) == {"v", "i1", "i2"}
        assert result.benefit == 99 + 49 + 49

    def test_beats_1greedy_on_figure2(self, fig2_g):
        one = RGreedy(1, fit=FIT_PAPER).run(fig2_g, FIGURE2_SPACE)
        inner = InnerLevelGreedy(fit=FIT_PAPER).run(fig2_g, FIGURE2_SPACE)
        assert inner.benefit > one.benefit

    def test_deterministic(self, tpcd_g):
        a = InnerLevelGreedy(fit=FIT_STRICT).run(tpcd_g, 20e6, seed=("psc",))
        b = InnerLevelGreedy(fit=FIT_STRICT).run(tpcd_g, 20e6, seed=("psc",))
        assert a.selected == b.selected

    def test_seed_stage_recorded(self, tpcd_g):
        result = InnerLevelGreedy(fit=FIT_STRICT).run(tpcd_g, 25e6, seed=("psc",))
        assert result.stages[0].structures == ("psc",)
