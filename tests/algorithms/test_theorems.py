"""Property-based checks of the paper's theorems on random instances.

Theorem 5.1: with unit-space structures, r-greedy uses at most ``S+r−1``
units and achieves at least ``1 − e^{−(r−1)/r}`` of the optimal benefit
achievable *in the space it used*.

Theorem 5.2: inner-level greedy uses at most ``2S`` and achieves at least
``1 − e^{−0.63} ≈ 0.467`` of the optimal benefit achievable in the space
it used.

The optimal reference is the exhaustive solver, so instances are kept
small; the properties must hold on *every* generated instance.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    FIT_PAPER,
    InnerLevelGreedy,
    RGreedy,
    exhaustive_optimal,
    inner_level_guarantee,
    r_greedy_guarantee,
)
from repro.core.benefit import BenefitEngine

from tests.conftest import unit_graph_strategy

TOL = 1e-9


@settings(max_examples=50, deadline=None)
@given(unit_graph_strategy(), st.integers(min_value=1, max_value=5), st.sampled_from([2, 3]))
def test_theorem_51_guarantee(graph, space, r):
    engine = BenefitEngine(graph)
    greedy = RGreedy(r, fit=FIT_PAPER).run(engine, space)
    assert greedy.space_used <= space + r - 1 + TOL
    optimal = exhaustive_optimal(engine, max(greedy.space_used, space))
    bound = r_greedy_guarantee(r)
    assert greedy.benefit >= bound * optimal.benefit - TOL


@settings(max_examples=50, deadline=None)
@given(unit_graph_strategy(), st.integers(min_value=1, max_value=5))
def test_theorem_52_guarantee(graph, space):
    engine = BenefitEngine(graph)
    inner = InnerLevelGreedy(fit=FIT_PAPER).run(engine, space)
    assert inner.space_used <= 2 * space + TOL
    optimal = exhaustive_optimal(engine, max(inner.space_used, space))
    assert inner.benefit >= inner_level_guarantee() * optimal.benefit - TOL


@settings(max_examples=40, deadline=None)
@given(unit_graph_strategy(), st.integers(min_value=1, max_value=5))
def test_1greedy_has_no_lower_bound_but_is_sane(graph, space):
    """1-greedy carries no guarantee (the bound is 0), but it can never
    exceed the optimum for the space it used."""
    engine = BenefitEngine(graph)
    greedy = RGreedy(1, fit=FIT_PAPER).run(engine, space)
    optimal = exhaustive_optimal(engine, max(greedy.space_used, space))
    assert greedy.benefit <= optimal.benefit + TOL


def test_figure2_shows_1greedy_gap(fig2_g):
    """On the Figure 2 instance 1-greedy achieves only 46/300 ≈ 15% —
    far below the r>=2 guarantees, demonstrating why the bound is 0."""
    greedy = RGreedy(1, fit=FIT_PAPER).run(fig2_g, 7)
    from repro.algorithms import BranchAndBoundOptimal

    optimal = BranchAndBoundOptimal().run(fig2_g, 7)
    ratio = greedy.benefit / optimal.benefit
    assert ratio < r_greedy_guarantee(2)
    assert ratio == pytest.approx(46 / 300)
