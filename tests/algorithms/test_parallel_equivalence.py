"""Parallel/serial equivalence: the determinism contract of the pool.

A run with ``workers=2`` (forced, even below the auto threshold) must
select **bit-identical** structures to the serial run — same picks in
the same order, with equal per-stage benefits, spaces, and τ, compared
with ``==`` (no tolerance) on every backend and lazy mode: requesting
any worker count (``workers=1`` included) routes the serial scans
through the same CSR kernels the pool workers run
(:meth:`BenefitEngine.route_through_csr` via ``make_evaluator``), so
even the dense backend's eager scans are bitwise-aligned with the
pooled ones.  Enforced on the paper fixtures, on d=4/d=5 cube
instances across both engine backends and both lazy modes, and on
tie-heavy seeded random graphs (the regime where an offer-order slip
in the reduction would surface as a different selection).

Every run also asserts the pool left no shared-memory segments behind.
"""

import pytest

from repro.algorithms import (
    HRUGreedy,
    InnerLevelGreedy,
    MaintenanceAwareGreedy,
    RGreedy,
    TwoStep,
)
from repro.core.benefit import BenefitEngine
from repro.datasets.paper_figure2 import FIGURE2_SPACE
from repro.parallel import leaked_segments
from repro.runtime.faults import _cube_graph, smoke_budget, top_view_of

from tests.algorithms.test_lazy_equivalence import budget_for, random_graph

ALGORITHMS = [
    ("1-greedy", lambda lz, w: RGreedy(1, lazy=lz, workers=w)),
    ("2-greedy", lambda lz, w: RGreedy(2, lazy=lz, workers=w)),
    ("hru", lambda lz, w: HRUGreedy(lazy=lz, workers=w)),
    ("inner", lambda lz, w: InnerLevelGreedy(lazy=lz, workers=w)),
    ("two-step", lambda lz, w: TwoStep(lazy=lz, workers=w)),
    (
        "maintenance",
        lambda lz, w: MaintenanceAwareGreedy(update_weight=0.5, workers=w),
    ),
]
IDS = [a[0] for a in ALGORITHMS]


def assert_bit_identical(serial, parallel, exact=True):
    check = (lambda v: v) if exact else (lambda v: pytest.approx(v, rel=1e-12))
    assert parallel.selected == serial.selected
    assert parallel.benefit == check(serial.benefit)
    assert parallel.tau == serial.tau
    assert parallel.space_used == serial.space_used
    assert len(parallel.stages) == len(serial.stages)
    for got, want in zip(parallel.stages, serial.stages):
        assert got.structures == want.structures
        assert got.benefit == check(want.benefit)
        assert got.space == want.space
        assert got.tau_after == want.tau_after


def run_pair(make, graph, space, backend, lazy, seed=()):
    serial = make(lazy, 1).run(
        BenefitEngine(graph, backend=backend), space, seed=seed
    )
    parallel = make(lazy, 2).run(
        BenefitEngine(graph, backend=backend), space, seed=seed
    )
    assert_bit_identical(serial, parallel)
    assert leaked_segments() == []


@pytest.mark.parametrize("label,make", ALGORITHMS, ids=IDS)
class TestOnFixtures:
    def test_figure2(self, label, make, fig2_g):
        run_pair(make, fig2_g, FIGURE2_SPACE, "sparse", True)

    def test_example_2_1(self, label, make, tpcd_g):
        space = 0.25 * sum(s.space for s in tpcd_g.structures)
        run_pair(make, tpcd_g, space, "dense", False, seed=("psc",))


@pytest.mark.parametrize("label,make", ALGORITHMS, ids=IDS)
@pytest.mark.parametrize("backend", ["dense", "sparse"])
@pytest.mark.parametrize("lazy", [False, True], ids=["eager", "lazy"])
class TestOnCubeD4:
    def test_d4(self, label, make, backend, lazy, d4_setup):
        graph, space, seed = d4_setup
        run_pair(make, graph, space, backend, lazy, seed=seed)


@pytest.fixture(scope="module")
def d4_setup():
    graph = _cube_graph(4)
    engine = BenefitEngine(graph)
    return graph, smoke_budget(engine, 0.3), (top_view_of(engine),)


@pytest.fixture(scope="module")
def d5_setup():
    graph = _cube_graph(5)
    engine = BenefitEngine(graph)
    return graph, smoke_budget(engine, 0.1), (top_view_of(engine),)


@pytest.mark.parametrize("label,make", ALGORITHMS, ids=IDS)
class TestOnCubeD5:
    def test_d5(self, label, make, d5_setup):
        graph, space, seed = d5_setup
        run_pair(make, graph, space, "sparse", True, seed=seed)


@pytest.mark.parametrize("label,make", ALGORITHMS, ids=IDS)
@pytest.mark.parametrize("seed", range(4))
class TestOnRandomGraphs:
    def test_tie_heavy(self, label, make, seed):
        graph = random_graph(seed)
        run_pair(make, graph, budget_for(graph), "sparse", True)
