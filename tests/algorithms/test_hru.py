"""Tests for the [HRU96] views-only greedy baseline."""

import pytest

from repro.algorithms import HRUGreedy, RGreedy
from repro.core.qvgraph import QueryViewGraph


class TestHRU:
    def test_never_selects_indexes(self, tpcd_g):
        result = HRUGreedy().run(tpcd_g, 25e6, seed=("psc",))
        for name in result.selected:
            assert tpcd_g.structure(name).is_view

    def test_tpcd_view_selection(self, tpcd_g):
        """With the paper's sizes, the beneficial views are the small
        half of the lattice — pc/sc are as big as the raw data and add
        nothing."""
        result = HRUGreedy().run(tpcd_g, 25e6, seed=("psc",))
        assert set(result.selected) == {"psc", "none", "s", "c", "p", "ps"}

    def test_respects_budget(self, tpcd_g):
        result = HRUGreedy().run(tpcd_g, 7e6, seed=("psc",))
        assert result.space_used <= 7e6

    def test_greedy_order_by_density(self, tpcd_g):
        """Stage ratios are nonincreasing (a property of greedy + benefit
        monotonicity)."""
        result = HRUGreedy().run(tpcd_g, 25e6)
        ratios = [s.benefit_per_space for s in result.stages]
        assert ratios == sorted(ratios, reverse=True)

    def test_agrees_with_1greedy_when_no_indexes(self, tpcd_lat):
        g = QueryViewGraph.from_cube(tpcd_lat, index_universe="none")
        hru = HRUGreedy().run(g, 25e6, seed=("psc",))
        one = RGreedy(1).run(g, 25e6, seed=("psc",))
        assert hru.selected == one.selected
        assert hru.benefit == one.benefit

    def test_zero_benefit_views_not_picked(self, tpcd_g):
        result = HRUGreedy().run(tpcd_g, 100e6, seed=("psc",))
        assert "pc" not in result.selected
        assert "sc" not in result.selected

    def test_invalid_space(self, tpcd_g):
        with pytest.raises(ValueError):
            HRUGreedy().run(tpcd_g, -1)
