"""Contract tests every selection algorithm must satisfy.

These are the invariants a caller may rely on regardless of which
algorithm produced the selection: admissibility, space accounting,
benefit bookkeeping, determinism, and sane behaviour on degenerate
graphs.  They run over the paper instances and random unit-space graphs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    FIT_PAPER,
    FIT_STRICT,
    BranchAndBoundOptimal,
    HRUGreedy,
    InnerLevelGreedy,
    RGreedy,
    TwoStep,
)
from repro.core.benefit import BenefitEngine
from repro.core.qvgraph import QueryViewGraph

from tests.conftest import unit_graph_strategy

ALGORITHMS = {
    "1-greedy": lambda: RGreedy(1, fit=FIT_STRICT),
    "2-greedy": lambda: RGreedy(2, fit=FIT_STRICT),
    "3-greedy": lambda: RGreedy(3, fit=FIT_STRICT),
    "inner-level": lambda: InnerLevelGreedy(fit=FIT_STRICT),
    "hru": lambda: HRUGreedy(fit=FIT_STRICT),
    "two-step": lambda: TwoStep(0.5, fit=FIT_STRICT),
    "optimal": lambda: BranchAndBoundOptimal(),
}

PAPER_MODE = {
    "1-greedy": lambda: RGreedy(1, fit=FIT_PAPER),
    "2-greedy": lambda: RGreedy(2, fit=FIT_PAPER),
    "inner-level": lambda: InnerLevelGreedy(fit=FIT_PAPER),
}


def assert_contract(graph, result, space, strict):
    engine = BenefitEngine(graph)
    ids = [engine.structure_id(name) for name in result.selected]
    # admissible: indexes always with their views
    assert engine.is_admissible(ids)
    # no duplicates
    assert len(set(result.selected)) == len(result.selected)
    # space accounting
    assert result.space_used == pytest.approx(engine.space_of(ids))
    if strict:
        assert result.space_used <= space + 1e-9
    # benefit bookkeeping: recommit and compare τ
    engine.reset()
    views_first = sorted(ids, key=lambda i: not engine.is_view[i])
    engine.commit(views_first)
    assert engine.tau() == pytest.approx(result.tau)
    assert result.benefit == pytest.approx(result.initial_tau - result.tau)
    assert result.benefit >= -1e-9
    assert result.benefit <= engine.max_achievable_benefit() + 1e-9


@pytest.mark.parametrize("name", list(ALGORITHMS))
class TestOnPaperInstances:
    def test_figure2_contract(self, name, fig2_g):
        result = ALGORITHMS[name]().run(fig2_g, 7)
        assert_contract(fig2_g, result, 7, strict=True)

    def test_tpcd_contract(self, name, tpcd_g):
        if name == "optimal":
            pytest.skip("exact search on the full TPC-D graph is out of budget")
        result = ALGORITHMS[name]().run(tpcd_g, 25e6, seed=("psc",))
        assert_contract(tpcd_g, result, 25e6, strict=True)

    def test_deterministic_on_figure2(self, name, fig2_g):
        a = ALGORITHMS[name]().run(fig2_g, 7)
        b = ALGORITHMS[name]().run(fig2_g, 7)
        assert a.selected == b.selected
        assert a.benefit == b.benefit


@pytest.mark.parametrize("name", list(ALGORITHMS))
class TestDegenerateGraphs:
    def test_no_edges_graph(self, name):
        g = QueryViewGraph()
        g.add_view("v", 1)
        g.add_query("q", 10)
        result = ALGORITHMS[name]().run(g, 5)
        assert result.benefit == 0.0

    def test_single_structure_graph(self, name):
        g = QueryViewGraph()
        g.add_view("v", 1)
        g.add_query("q", 10)
        g.add_edge("q", "v", 2)
        result = ALGORITHMS[name]().run(g, 5)
        assert result.benefit == 8.0
        assert result.selected == ("v",)

    def test_budget_too_small_for_anything(self, name):
        g = QueryViewGraph()
        g.add_view("v", 10)
        g.add_query("q", 100)
        g.add_edge("q", "v", 1)
        result = ALGORITHMS[name]().run(g, 5)
        assert result.selected == ()
        assert result.benefit == 0.0


@settings(max_examples=30, deadline=None)
@given(unit_graph_strategy(), st.integers(min_value=1, max_value=6))
@pytest.mark.parametrize("name", ["1-greedy", "2-greedy", "inner-level", "hru", "two-step"])
def test_contract_on_random_graphs(name, graph, space):
    result = ALGORITHMS[name]().run(graph, space)
    assert_contract(graph, result, space, strict=True)


@settings(max_examples=20, deadline=None)
@given(unit_graph_strategy(), st.integers(min_value=1, max_value=5))
@pytest.mark.parametrize("name", list(PAPER_MODE))
def test_paper_mode_contract_on_random_graphs(name, graph, space):
    result = PAPER_MODE[name]().run(graph, space)
    assert_contract(graph, result, space, strict=False)
