"""Tests for the PBS (pick-by-size) baseline of [HRU96]."""

import pytest

from repro.algorithms import FIT_PAPER, HRUGreedy, RGreedy
from repro.algorithms.pbs import PickBySmallest
from repro.core.benefit import BenefitEngine


class TestPBS:
    def test_views_picked_smallest_first(self, tpcd_g):
        result = PickBySmallest().run(tpcd_g, 25e6, seed=("psc",))
        picked = [n for n in result.selected if n != "psc"]
        sizes = [tpcd_g.structure(n).space for n in picked]
        assert sizes == sorted(sizes)

    def test_views_only_by_default(self, tpcd_g):
        result = PickBySmallest().run(tpcd_g, 25e6, seed=("psc",))
        for name in result.selected:
            assert tpcd_g.structure(name).is_view

    def test_respects_budget(self, tpcd_g):
        result = PickBySmallest().run(tpcd_g, 10e6, seed=("psc",))
        assert result.space_used <= 10e6

    def test_with_indexes_fills_more_space(self, tpcd_g):
        plain = PickBySmallest().run(tpcd_g, 25e6, seed=("psc",))
        with_idx = PickBySmallest(include_indexes=True).run(
            tpcd_g, 25e6, seed=("psc",)
        )
        assert with_idx.space_used >= plain.space_used
        assert with_idx.benefit >= plain.benefit

    def test_indexes_never_precede_views(self, tpcd_g):
        result = PickBySmallest(include_indexes=True).run(
            tpcd_g, 25e6, seed=("psc",)
        )
        seen = set()
        for name in result.selected:
            struct = tpcd_g.structure(name)
            if struct.is_index:
                assert struct.view_name in seen
            seen.add(name)

    def test_matches_hru_on_tpcd_views(self, tpcd_g):
        """On the TPC-D sizes the small half of the lattice is exactly
        what the benefit-greedy picks too — PBS's raison d'être."""
        pbs = PickBySmallest().run(tpcd_g, 25e6, seed=("psc",))
        hru = HRUGreedy().run(tpcd_g, 25e6, seed=("psc",))
        # PBS additionally space-fills with the zero-benefit pc/sc views
        assert set(hru.selected) <= set(pbs.selected)
        assert pbs.benefit == pytest.approx(hru.benefit)

    def test_one_step_greedy_beats_pbs_when_indexes_matter(self, fig2_g):
        """PBS is size-blind to value: on Figure 2 every structure has
        unit size, so PBS picks arbitrarily and loses to 2-greedy."""
        engine = BenefitEngine(fig2_g)
        pbs = PickBySmallest(include_indexes=True).run(engine, 7)
        greedy = RGreedy(2, fit=FIT_PAPER).run(engine, 7)
        assert greedy.benefit > pbs.benefit

    def test_deterministic(self, tpcd_g):
        a = PickBySmallest(include_indexes=True).run(tpcd_g, 20e6, seed=("psc",))
        b = PickBySmallest(include_indexes=True).run(tpcd_g, 20e6, seed=("psc",))
        assert a.selected == b.selected
