"""Tests for the local-search refiner extension."""

import pytest

from repro.algorithms import FIT_PAPER, FIT_STRICT, BranchAndBoundOptimal, RGreedy
from repro.algorithms.local_search import LocalSearchRefiner
from repro.core.benefit import BenefitEngine
from repro.datasets.paper_figure2 import FIGURE2_SPACE


class TestValidation:
    def test_max_rounds_positive(self):
        with pytest.raises(ValueError):
            LocalSearchRefiner(max_rounds=0)

    def test_rejects_inadmissible_input(self, fig2_g):
        with pytest.raises(ValueError, match="not admissible"):
            LocalSearchRefiner().refine(fig2_g, 7, ["I2,1"])

    def test_rejects_overfull_input(self, fig2_g):
        names = [s.name for s in fig2_g.views] + fig2_g.indexes_of("V2")
        with pytest.raises(ValueError, match="exceeds"):
            LocalSearchRefiner().refine(fig2_g, 3, names)

    def test_protected_must_be_selected(self, fig2_g):
        with pytest.raises(ValueError, match="protected"):
            LocalSearchRefiner().refine(fig2_g, 7, ["V5"], protected=["V1"])


class TestRefinement:
    def test_repairs_1greedy_on_figure2(self, fig2_g):
        """The headline: local search escapes the 1-greedy trap (46) and
        reaches the neighbourhood of the optimum (300)."""
        engine = BenefitEngine(fig2_g)
        greedy = RGreedy(1, fit=FIT_PAPER).run(engine, FIGURE2_SPACE)
        assert greedy.benefit == 46
        refined = LocalSearchRefiner().refine(
            engine, FIGURE2_SPACE, greedy.selected
        )
        assert refined.benefit >= 194
        assert refined.space_used <= FIGURE2_SPACE

    def test_never_hurts(self, fig2_g):
        engine = BenefitEngine(fig2_g)
        for r in (1, 2, 3):
            greedy = RGreedy(r, fit=FIT_STRICT).run(engine, FIGURE2_SPACE)
            refined = LocalSearchRefiner().refine(
                engine, FIGURE2_SPACE, greedy.selected
            )
            assert refined.benefit >= greedy.benefit - 1e-9

    def test_never_exceeds_optimum(self, fig2_g):
        engine = BenefitEngine(fig2_g)
        greedy = RGreedy(1, fit=FIT_STRICT).run(engine, FIGURE2_SPACE)
        refined = LocalSearchRefiner().refine(engine, FIGURE2_SPACE, greedy.selected)
        optimal = BranchAndBoundOptimal().run(engine, FIGURE2_SPACE)
        assert refined.benefit <= optimal.benefit + 1e-9

    def test_respects_budget(self, fig2_g):
        engine = BenefitEngine(fig2_g)
        greedy = RGreedy(1, fit=FIT_STRICT).run(engine, 5)
        refined = LocalSearchRefiner().refine(engine, 5, greedy.selected)
        assert refined.space_used <= 5 + 1e-9

    def test_admissible_output(self, fig2_g):
        engine = BenefitEngine(fig2_g)
        greedy = RGreedy(1, fit=FIT_STRICT).run(engine, FIGURE2_SPACE)
        refined = LocalSearchRefiner().refine(engine, FIGURE2_SPACE, greedy.selected)
        views = {n for n in refined.selected if fig2_g.structure(n).is_view}
        for name in refined.selected:
            struct = fig2_g.structure(name)
            if struct.is_index:
                assert struct.view_name in views

    def test_protected_structures_survive(self, tpcd_g):
        engine = BenefitEngine(tpcd_g)
        greedy = RGreedy(1, fit=FIT_STRICT).run(engine, 25e6, seed=("psc",))
        refined = LocalSearchRefiner().refine(
            engine, 25e6, greedy.selected, protected=["psc"]
        )
        assert "psc" in refined.selected
        assert refined.benefit >= greedy.benefit - 1e-9

    def test_empty_selection_grows_greedily(self, fig2_g):
        refined = LocalSearchRefiner().refine(fig2_g, FIGURE2_SPACE, [])
        assert refined.benefit > 0

    def test_terminates_with_single_round(self, fig2_g):
        engine = BenefitEngine(fig2_g)
        greedy = RGreedy(1, fit=FIT_STRICT).run(engine, FIGURE2_SPACE)
        refined = LocalSearchRefiner(max_rounds=1).refine(
            engine, FIGURE2_SPACE, greedy.selected
        )
        assert refined.benefit >= greedy.benefit - 1e-9

    def test_moves_recorded_in_stages(self, fig2_g):
        engine = BenefitEngine(fig2_g)
        greedy = RGreedy(1, fit=FIT_PAPER).run(engine, FIGURE2_SPACE)
        refined = LocalSearchRefiner().refine(engine, FIGURE2_SPACE, greedy.selected)
        assert refined.stages  # at least one improving move on this instance
        for stage in refined.stages:
            assert stage.structures[0].startswith(("+", "swap"))


class TestLocalOptimality:
    def test_output_is_add_stable(self, fig2_g):
        """After refinement, no single admissible addition that fits can
        still improve — the definition of the add-move fixed point."""
        from repro.core.benefit import BenefitEngine

        engine = BenefitEngine(fig2_g)
        greedy = RGreedy(1, fit=FIT_STRICT).run(engine, FIGURE2_SPACE)
        refined = LocalSearchRefiner().refine(
            engine, FIGURE2_SPACE, greedy.selected
        )
        engine.reset()
        ids = [engine.structure_id(n) for n in refined.selected]
        views_first = sorted(ids, key=lambda i: not engine.is_view[i])
        engine.commit(views_first)
        space_left = FIGURE2_SPACE - engine.space_used()
        for sid in range(engine.n_structures):
            if sid in set(ids):
                continue
            if float(engine.spaces[sid]) > space_left + 1e-9:
                continue
            if not engine.is_view[sid] and int(engine.view_id_of[sid]) not in set(ids):
                continue
            assert engine.benefit_of([sid]) <= 1e-9, engine.name_of(sid)
