"""Cross-checks: dense vs sparse backends, lazy vs eager stage loops.

Every selection algorithm gained a ``lazy`` switch whose loops consult
the engine's maintained single-benefit cache and skip provably-no-op
work (CELF-style).  The contract is *bit-identical selections*: on any
graph, every (backend, lazy) combination must return the same structures
in the same order, with equal benefit and τ.  These tests enforce the
contract on the paper fixtures and on seeded random graphs (both unit
and heterogeneous spaces).
"""

import numpy as np
import pytest

from repro.algorithms import (
    HRUGreedy,
    InnerLevelGreedy,
    LocalSearchRefiner,
    MaintenanceAwareGreedy,
    PickBySmallest,
    RGreedy,
    TwoStep,
)
from repro.core.benefit import BenefitEngine
from repro.core.qvgraph import QueryViewGraph
from repro.datasets.paper_figure2 import FIGURE2_SPACE

SEEDS = [0, 1, 2, 3, 4, 5, 6, 7]


def random_graph(seed: int) -> QueryViewGraph:
    """A seeded random graph with heterogeneous spaces and frequencies.

    Symmetric enough to produce exact benefit ties (the regime where an
    offer-order slip would show up as a selection difference).
    """
    rng = np.random.default_rng(seed)
    g = QueryViewGraph()
    names = []
    n_views = int(rng.integers(2, 7))
    for v in range(n_views):
        vname = f"V{v}"
        g.add_view(vname, float(rng.integers(1, 8)))
        names.append(vname)
        for i in range(int(rng.integers(0, 4))):
            iname = f"I{v}.{i}"
            g.add_index(vname, iname, float(rng.integers(1, 8)))
            names.append(iname)
    n_queries = int(rng.integers(4, 20))
    for q in range(n_queries):
        default = float(rng.integers(10, 60))
        g.add_query(f"q{q}", default, frequency=float(rng.integers(1, 4)))
        for s in names:
            if rng.random() < 0.4:
                # small integer costs: exact ties are common
                g.add_edge(f"q{q}", s, float(rng.integers(0, 10)))
    return g


def budget_for(graph: QueryViewGraph) -> float:
    total = sum(s.space for s in graph.structures)
    return max(1.0, 0.4 * total)


ALGORITHMS = [
    ("1-greedy", lambda lz: RGreedy(1, lazy=lz)),
    ("2-greedy", lambda lz: RGreedy(2, lazy=lz)),
    ("1-greedy-paper", lambda lz: RGreedy(1, fit="paper", lazy=lz)),
    ("hru", lambda lz: HRUGreedy(lazy=lz)),
    ("inner-space", lambda lz: InnerLevelGreedy(lazy=lz)),
    ("inner-peak", lambda lz: InnerLevelGreedy(ig_rule="peak", lazy=lz)),
    ("two-step", lambda lz: TwoStep(lazy=lz)),
    ("two-step-remaining", lambda lz: TwoStep(index_budget_mode="remaining", lazy=lz)),
]


def all_variants(make, graph, space, seed=()):
    out = {}
    for backend in ("dense", "sparse"):
        engine = BenefitEngine(graph, backend=backend)
        for lazy in (False, True):
            result = make(lazy).run(engine, space, seed=seed)
            out[(backend, lazy)] = result
    return out


def assert_identical(results):
    ((_, reference), *rest) = results.items()
    for key, result in rest:
        assert result.selected == reference.selected, key
        assert result.benefit == pytest.approx(reference.benefit, rel=1e-12), key
        assert result.tau == pytest.approx(reference.tau, rel=1e-12), key


@pytest.mark.parametrize("label,make", ALGORITHMS, ids=[a[0] for a in ALGORITHMS])
class TestOnFixtures:
    def test_figure2(self, label, make, fig2_g):
        assert_identical(all_variants(make, fig2_g, FIGURE2_SPACE))

    def test_example_2_1(self, label, make, tpcd_g):
        space = 0.25 * sum(s.space for s in tpcd_g.structures)
        assert_identical(all_variants(make, tpcd_g, space, seed=("psc",)))


@pytest.mark.parametrize("label,make", ALGORITHMS, ids=[a[0] for a in ALGORITHMS])
@pytest.mark.parametrize("seed", SEEDS)
class TestOnRandomGraphs:
    def test_random(self, label, make, seed):
        graph = random_graph(seed)
        assert_identical(all_variants(make, graph, budget_for(graph)))


@pytest.mark.parametrize("seed", SEEDS)
def test_local_search_equivalence(seed):
    graph = random_graph(seed)
    space = budget_for(graph)
    start = RGreedy(1).run(BenefitEngine(graph, backend="dense"), space)
    results = {}
    for backend in ("dense", "sparse"):
        engine = BenefitEngine(graph, backend=backend)
        for lazy in (False, True):
            results[(backend, lazy)] = LocalSearchRefiner(lazy=lazy).refine(
                engine, space, start.selected
            )
    assert_identical(results)


@pytest.mark.parametrize("seed", SEEDS[:4])
@pytest.mark.parametrize("weight", [0.0, 0.5])
def test_maintenance_aware_backend_parity(seed, weight):
    graph = random_graph(seed)
    space = budget_for(graph)
    results = {
        backend: MaintenanceAwareGreedy(update_weight=weight).run(
            BenefitEngine(graph, backend=backend), space
        )
        for backend in ("dense", "sparse")
    }
    assert_identical(results)


@pytest.mark.parametrize("seed", SEEDS[:4])
def test_pbs_backend_parity(seed):
    graph = random_graph(seed)
    space = budget_for(graph)
    results = {
        backend: PickBySmallest(include_indexes=True).run(
            BenefitEngine(graph, backend=backend), space
        )
        for backend in ("dense", "sparse")
    }
    assert_identical(results)
