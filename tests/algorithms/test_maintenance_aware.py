"""Tests for maintenance-aware selection (the [G97] objective)."""

import pytest

from repro.algorithms import FIT_STRICT, RGreedy
from repro.algorithms.maintenance_aware import (
    MaintenanceAwareGreedy,
    structure_update_costs,
)
from repro.core.benefit import BenefitEngine
from repro.datasets.paper_figure2 import FIGURE2_SPACE


class TestUpdateCosts:
    def test_view_costs_delta_plus_view(self, tpcd_g):
        engine = BenefitEngine(tpcd_g)
        costs = structure_update_costs(engine, delta_rows=1000)
        ps = engine.structure_id("ps")
        assert costs[ps] == 1000 + 800_000

    def test_index_costs_owner_view(self, tpcd_g):
        engine = BenefitEngine(tpcd_g)
        costs = structure_update_costs(engine, delta_rows=1000)
        idx = engine.structure_id("I_sp(ps)")
        assert costs[idx] == 800_000

    def test_negative_delta_rejected(self, tpcd_g):
        engine = BenefitEngine(tpcd_g)
        with pytest.raises(ValueError):
            structure_update_costs(engine, -1)


class TestMaintenanceAwareGreedy:
    def test_lambda_zero_matches_plain_greedy_quality(self, fig2_g):
        """With no update pressure the penalized greedy is plain greedy."""
        plain = RGreedy(2, fit=FIT_STRICT).run(fig2_g, FIGURE2_SPACE)
        aware = MaintenanceAwareGreedy(update_weight=0.0).run(
            fig2_g, FIGURE2_SPACE
        )
        assert aware.benefit == pytest.approx(plain.benefit)
        assert aware.selected == plain.selected

    def test_update_pressure_shrinks_selection(self, tpcd_g):
        """As λ grows, hot-to-maintain structures (the 6M-row psc indexes)
        drop out before the cheap small-view structures."""
        light = MaintenanceAwareGreedy(update_weight=0.0).run(
            tpcd_g, 25e6, seed=("psc",)
        )
        heavy = MaintenanceAwareGreedy(update_weight=5.0).run(
            tpcd_g, 25e6, seed=("psc",)
        )
        assert len(heavy.selected) <= len(light.selected)
        psc_indexes_light = sum(1 for n in light.selected if "(psc)" in n)
        psc_indexes_heavy = sum(1 for n in heavy.selected if "(psc)" in n)
        assert psc_indexes_heavy <= psc_indexes_light

    def test_extreme_pressure_selects_nothing_beyond_seed(self, tpcd_g):
        result = MaintenanceAwareGreedy(update_weight=1e9).run(
            tpcd_g, 25e6, seed=("psc",)
        )
        assert result.selected == ("psc",)

    def test_query_benefit_monotone_in_lambda(self, tpcd_g):
        """Raw query benefit can only drop as update pressure rises."""
        benefits = [
            MaintenanceAwareGreedy(update_weight=w)
            .run(tpcd_g, 25e6, seed=("psc",))
            .benefit
            for w in (0.0, 0.5, 2.0, 10.0)
        ]
        assert benefits == sorted(benefits, reverse=True)

    def test_respects_budget(self, tpcd_g):
        result = MaintenanceAwareGreedy(update_weight=0.1).run(
            tpcd_g, 25e6, seed=("psc",)
        )
        assert result.space_used <= 25e6

    def test_admissible_output(self, fig2_g):
        result = MaintenanceAwareGreedy(update_weight=0.2).run(fig2_g, 7)
        engine = BenefitEngine(fig2_g)
        ids = [engine.structure_id(n) for n in result.selected]
        assert engine.is_admissible(ids)

    def test_validation(self):
        with pytest.raises(ValueError):
            MaintenanceAwareGreedy(update_weight=-1)
        with pytest.raises(ValueError):
            MaintenanceAwareGreedy(delta_rows=-1)

    def test_name_mentions_lambda(self):
        assert "λ=0.5" in MaintenanceAwareGreedy(update_weight=0.5).name
