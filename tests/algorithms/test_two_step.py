"""Tests for the two-step baseline (Section 2, [MS95])."""

import pytest

from repro.algorithms import FIT_PAPER, RGreedy, TwoStep


class TestConstruction:
    @pytest.mark.parametrize("fraction", [0.0, 1.0, -0.5, 2.0])
    def test_fraction_must_be_strictly_inside_unit_interval(self, fraction):
        with pytest.raises(ValueError):
            TwoStep(fraction)

    def test_name_mentions_split(self):
        assert "50%" in TwoStep(0.5).name


class TestTwoStepStructure:
    def test_views_precede_indexes_in_pick_order(self, tpcd_g):
        result = TwoStep(0.5).run(tpcd_g, 25e6, seed=("psc",))
        kinds = [tpcd_g.structure(n).kind for n in result.selected]
        first_index = kinds.index("index") if "index" in kinds else len(kinds)
        assert all(k == "view" for k in kinds[:first_index])
        assert all(k == "index" for k in kinds[first_index:])

    def test_indexes_only_on_selected_views(self, tpcd_g):
        result = TwoStep(0.5).run(tpcd_g, 25e6, seed=("psc",))
        views = {n for n in result.selected if tpcd_g.structure(n).is_view}
        for name in result.selected:
            struct = tpcd_g.structure(name)
            if struct.is_index:
                assert struct.view_name in views

    def test_view_share_respected(self, tpcd_g):
        result = TwoStep(0.5).run(tpcd_g, 25e6, seed=("psc",))
        view_space = sum(
            tpcd_g.structure(n).space
            for n in result.selected
            if tpcd_g.structure(n).is_view
        )
        assert view_space <= 12.5e6

    def test_index_share_respected(self, tpcd_g):
        result = TwoStep(0.5).run(tpcd_g, 25e6, seed=("psc",))
        index_space = sum(
            tpcd_g.structure(n).space
            for n in result.selected
            if tpcd_g.structure(n).is_index
        )
        assert index_space <= 12.5e6

    def test_paper_average_query_cost(self, tpcd_g):
        """Example 2.1: the equal split lands at 1.18M rows per query."""
        result = TwoStep(0.5).run(tpcd_g, 25e6, seed=("psc",))
        assert result.average_query_cost == pytest.approx(1.18e6, rel=0.01)

    def test_one_step_beats_two_step_on_tpcd(self, tpcd_g):
        """The paper's headline: integrating the steps wins ~40%."""
        two = TwoStep(0.5).run(tpcd_g, 25e6, seed=("psc",))
        one = RGreedy(1, fit=FIT_PAPER).run(tpcd_g, 25e6, seed=("psc",))
        improvement = 1 - one.average_query_cost / two.average_query_cost
        assert 0.3 < improvement < 0.5

    def test_extreme_splits_are_worse(self, tpcd_g):
        balanced = TwoStep(0.5).run(tpcd_g, 25e6, seed=("psc",))
        all_views = TwoStep(0.9).run(tpcd_g, 25e6, seed=("psc",))
        assert all_views.average_query_cost >= balanced.average_query_cost

    def test_deterministic(self, tpcd_g):
        a = TwoStep(0.3).run(tpcd_g, 25e6, seed=("psc",))
        b = TwoStep(0.3).run(tpcd_g, 25e6, seed=("psc",))
        assert a.selected == b.selected


class TestIndexBudgetModes:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="index_budget_mode"):
            TwoStep(0.5, index_budget_mode="bogus")

    def test_remaining_mode_uses_leftover_view_space(self, tpcd_g):
        """The view step leaves ~5.4M of its 12.5M share unused; the
        'remaining' variant lets the index step spend it — it fits a
        third fat psc index and reaches the one-step plateau."""
        fraction = TwoStep(0.5, index_budget_mode="fraction").run(
            tpcd_g, 25e6, seed=("psc",)
        )
        remaining = TwoStep(0.5, index_budget_mode="remaining").run(
            tpcd_g, 25e6, seed=("psc",)
        )
        assert remaining.benefit >= fraction.benefit
        assert remaining.space_used <= 25e6

    def test_remaining_mode_still_loses_to_bad_splits(self, tpcd_g):
        """Smarter budgeting cannot rescue a view-heavy split: with 90%
        of the budget spent on views there is nothing left to recover."""
        from repro.algorithms import FIT_PAPER, RGreedy

        bad_split = TwoStep(0.9, index_budget_mode="remaining").run(
            tpcd_g, 25e6, seed=("psc",)
        )
        one_step = RGreedy(1, fit=FIT_PAPER).run(tpcd_g, 25e6, seed=("psc",))
        assert bad_split.average_query_cost > one_step.average_query_cost
