"""Tests for the Theorem 5.1/5.2 guarantee formulas (Figure 3)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.algorithms.guarantees import (
    guarantee_curve,
    inner_level_guarantee,
    inner_level_space_bound,
    knee_of_curve,
    r_greedy_guarantee,
    r_greedy_limit,
    r_greedy_space_bound,
)


class TestRGreedyGuarantee:
    def test_1greedy_has_no_guarantee(self):
        assert r_greedy_guarantee(1) == 0.0

    @pytest.mark.parametrize(
        "r,expected", [(2, 0.39), (3, 0.49), (4, 0.53)]
    )
    def test_paper_printed_values(self, r, expected):
        assert r_greedy_guarantee(r) == pytest.approx(expected, abs=0.005)

    def test_limit_is_one_minus_inverse_e(self):
        assert r_greedy_limit() == pytest.approx(1 - 1 / math.e)

    def test_invalid_r(self):
        with pytest.raises(ValueError):
            r_greedy_guarantee(0)

    @given(st.integers(min_value=1, max_value=1000))
    def test_monotone_increasing_in_r(self, r):
        assert r_greedy_guarantee(r + 1) > r_greedy_guarantee(r)

    @given(st.integers(min_value=1, max_value=10_000))
    def test_bounded_by_limit(self, r):
        assert 0.0 <= r_greedy_guarantee(r) < r_greedy_limit()

    def test_diminishing_increments(self):
        increments = [
            r_greedy_guarantee(r + 1) - r_greedy_guarantee(r) for r in range(1, 10)
        ]
        assert increments == sorted(increments, reverse=True)


class TestInnerLevel:
    def test_paper_value(self):
        assert inner_level_guarantee() == pytest.approx(0.467, abs=0.001)

    def test_between_2greedy_and_3greedy(self):
        assert r_greedy_guarantee(2) < inner_level_guarantee() < r_greedy_guarantee(3)

    def test_space_bound_is_2s(self):
        assert inner_level_space_bound(7) == 14


class TestSpaceBounds:
    def test_r_greedy_space_bound(self):
        assert r_greedy_space_bound(7, 3) == 9

    def test_r_greedy_space_bound_1greedy_is_tight(self):
        assert r_greedy_space_bound(7, 1) == 7

    def test_invalid_r(self):
        with pytest.raises(ValueError):
            r_greedy_space_bound(7, 0)


class TestCurve:
    def test_curve_values(self):
        curve = dict(guarantee_curve(range(1, 5)))
        assert curve[1] == 0.0
        assert curve[4] == pytest.approx(0.528, abs=0.001)

    def test_knee_at_4(self):
        assert knee_of_curve(range(1, 17)) == 4

    def test_knee_needs_two_points(self):
        with pytest.raises(ValueError):
            knee_of_curve([3])

    def test_knee_with_tight_threshold_moves_right(self):
        assert knee_of_curve(range(1, 30), threshold=0.001) > 4
