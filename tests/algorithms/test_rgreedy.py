"""Tests for the r-greedy algorithm (Algorithm 5.1)."""

import pytest

from repro.algorithms import FIT_PAPER, FIT_STRICT, RGreedy
from repro.core.benefit import BenefitEngine
from repro.core.qvgraph import QueryViewGraph
from repro.datasets.paper_figure2 import FIGURE2_SPACE


def chain_graph() -> QueryViewGraph:
    """One view whose value lives entirely in its two indexes."""
    g = QueryViewGraph()
    g.add_view("v", 2)
    g.add_index("v", "i1")
    g.add_index("v", "i2")
    g.add_view("w", 1)
    g.add_query("qa", 100)
    g.add_query("qb", 100)
    g.add_query("qc", 10)
    g.add_edge("qa", "i1", 1)
    g.add_edge("qb", "i2", 1)
    g.add_edge("qc", "w", 1)
    return g


class TestConstruction:
    def test_r_must_be_positive(self):
        with pytest.raises(ValueError):
            RGreedy(0)

    def test_invalid_fit_rejected(self):
        with pytest.raises(ValueError):
            RGreedy(1, fit="loose")

    def test_name_reflects_r(self):
        assert RGreedy(3).name == "3-greedy"

    def test_invalid_space_rejected(self):
        with pytest.raises(ValueError):
            RGreedy(1).run(chain_graph(), 0)


class TestOneGreedyPathology:
    """The Section 1 failure mode: 1-greedy never unlocks index-only value."""

    def test_1greedy_misses_view_with_index_only_value(self):
        result = RGreedy(1).run(chain_graph(), 4)
        assert "v" not in result.selected
        assert result.selected == ("w",)
        assert result.benefit == 9

    def test_2greedy_unlocks_it(self):
        result = RGreedy(2).run(chain_graph(), 7)
        assert "v" in result.selected and "i1" in result.selected
        assert result.benefit == 99 + 99 + 9  # {v,i1}, then i2, then w


class TestMechanics:
    def test_view_committed_before_its_indexes(self, fig2_g):
        result = RGreedy(2, fit=FIT_PAPER).run(fig2_g, FIGURE2_SPACE)
        seen = set()
        for name in result.selected:
            struct = fig2_g.structure(name)
            if struct.is_index:
                assert struct.view_name in seen
            seen.add(name)

    def test_stage_benefits_sum_to_total(self, fig2_g):
        result = RGreedy(2, fit=FIT_PAPER).run(fig2_g, FIGURE2_SPACE)
        assert sum(s.benefit for s in result.stages) == pytest.approx(result.benefit)

    def test_stage_tau_monotone_decreasing(self, fig2_g):
        result = RGreedy(3, fit=FIT_PAPER).run(fig2_g, FIGURE2_SPACE)
        taus = [s.tau_after for s in result.stages]
        assert taus == sorted(taus, reverse=True)

    def test_strict_fit_respects_budget(self, tpcd_g):
        result = RGreedy(1, fit=FIT_STRICT).run(tpcd_g, 25e6, seed=("psc",))
        assert result.space_used <= 25e6

    def test_paper_fit_overshoot_bounded_unit_spaces(self, fig2_g):
        for r in (1, 2, 3):
            result = RGreedy(r, fit=FIT_PAPER).run(fig2_g, FIGURE2_SPACE)
            assert result.space_used <= FIGURE2_SPACE + r - 1

    def test_no_duplicate_picks(self, fig2_g):
        result = RGreedy(3, fit=FIT_PAPER).run(fig2_g, FIGURE2_SPACE)
        assert len(set(result.selected)) == len(result.selected)

    def test_stops_when_no_benefit_left(self):
        g = QueryViewGraph()
        g.add_view("v", 1)
        g.add_query("q", 10)
        g.add_edge("q", "v", 1)
        result = RGreedy(1).run(g, 100)
        assert result.selected == ("v",)  # nothing else worth picking

    def test_engine_reuse_resets_state(self, fig2_g):
        engine = BenefitEngine(fig2_g)
        first = RGreedy(1, fit=FIT_PAPER).run(engine, FIGURE2_SPACE)
        second = RGreedy(1, fit=FIT_PAPER).run(engine, FIGURE2_SPACE)
        assert first.selected == second.selected
        assert first.benefit == second.benefit

    def test_deterministic_across_runs(self, tpcd_g):
        a = RGreedy(2).run(tpcd_g, 20e6, seed=("psc",))
        b = RGreedy(2).run(tpcd_g, 20e6, seed=("psc",))
        assert a.selected == b.selected


class TestSeed:
    def test_seed_counted_in_space(self, tpcd_g):
        result = RGreedy(1).run(tpcd_g, 25e6, seed=("psc",))
        assert result.selected[0] == "psc"
        assert result.space_used >= 6e6

    def test_seed_recorded_as_stage(self, tpcd_g):
        result = RGreedy(1).run(tpcd_g, 25e6, seed=("psc",))
        assert result.stages[0].structures == ("psc",)

    def test_unknown_seed_raises(self, tpcd_g):
        with pytest.raises(KeyError):
            RGreedy(1).run(tpcd_g, 25e6, seed=("nope",))

    def test_seed_unlocks_indexes_for_1greedy(self):
        result = RGreedy(1).run(chain_graph(), 6, seed=("v",))
        assert "i1" in result.selected and "i2" in result.selected


class TestMonotoneInR:
    """Larger r never hurts on these instances (not a theorem, but holds
    on the paper's instances and is a useful regression check)."""

    def test_figure2_benefits_nondecreasing_in_r(self, fig2_g):
        benefits = [
            RGreedy(r, fit=FIT_PAPER).run(fig2_g, FIGURE2_SPACE).benefit
            for r in (1, 2, 3, 4)
        ]
        assert benefits == sorted(benefits)

    def test_more_space_never_hurts(self, fig2_g):
        b_small = RGreedy(2, fit=FIT_PAPER).run(fig2_g, 5).benefit
        b_large = RGreedy(2, fit=FIT_PAPER).run(fig2_g, 9).benefit
        assert b_large >= b_small
