"""Tests for query workload generation."""

import pytest

from repro.cube.workload import (
    normalize_frequencies,
    sampled_workload,
    uniform_workload,
    zipf_frequencies,
)


class TestUniformWorkload:
    def test_count(self):
        assert len(uniform_workload(["a", "b", "c"])) == 27

    def test_no_duplicates(self):
        queries = uniform_workload(["a", "b"])
        assert len(set(queries)) == len(queries)


class TestZipfFrequencies:
    def test_sums_to_total(self):
        queries = uniform_workload(["a", "b"])
        freqs = zipf_frequencies(queries, 1.0, rng=0, total=5.0)
        assert sum(freqs.values()) == pytest.approx(5.0)

    def test_all_queries_covered(self):
        queries = uniform_workload(["a", "b"])
        freqs = zipf_frequencies(queries, 1.0, rng=0)
        assert set(freqs) == set(queries)

    def test_unshuffled_is_rank_ordered(self):
        queries = uniform_workload(["a", "b"])
        freqs = zipf_frequencies(queries, 1.0, shuffle=False)
        values = [freqs[q] for q in queries]
        assert values == sorted(values, reverse=True)

    def test_shuffle_reproducible_with_seed(self):
        queries = uniform_workload(["a", "b"])
        a = zipf_frequencies(queries, 1.0, rng=7)
        b = zipf_frequencies(queries, 1.0, rng=7)
        assert a == b

    def test_zero_exponent_is_uniform(self):
        queries = uniform_workload(["a"])
        freqs = zipf_frequencies(queries, 0.0, shuffle=False)
        assert len(set(round(f, 12) for f in freqs.values())) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_frequencies([], 1.0)
        with pytest.raises(ValueError):
            zipf_frequencies(uniform_workload(["a"]), -1.0)


class TestSampledWorkload:
    def test_subset_size(self):
        sampled = sampled_workload(["a", "b", "c"], 10, rng=0)
        assert len(sampled) == 10

    def test_subset_of_population(self):
        population = set(uniform_workload(["a", "b", "c"]))
        sampled = sampled_workload(["a", "b", "c"], 10, rng=0)
        assert set(sampled) <= population
        assert len(set(sampled)) == 10  # no replacement

    def test_oversized_request_returns_everything(self):
        assert len(sampled_workload(["a"], 100, rng=0)) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            sampled_workload(["a"], 0)


class TestNormalize:
    def test_rescales(self):
        queries = uniform_workload(["a"])
        freqs = {q: 2.0 for q in queries}
        normalized = normalize_frequencies(freqs, total=1.0)
        assert sum(normalized.values()) == pytest.approx(1.0)

    def test_zero_sum_rejected(self):
        queries = uniform_workload(["a"])
        with pytest.raises(ValueError):
            normalize_frequencies({q: 0.0 for q in queries})
