"""Tests for query-log generation and frequency estimation."""

import numpy as np
import pytest

from repro.core.query import SliceQuery, enumerate_slice_queries
from repro.cube.query_log import (
    LogEntry,
    estimate_frequencies,
    generate_query_log,
    hot_selection_values,
)
from repro.cube.schema import CubeSchema, Dimension


@pytest.fixture
def schema():
    return CubeSchema([Dimension("a", 8), Dimension("b", 5)])


class TestGenerateLog:
    def test_entry_count(self, schema):
        assert len(generate_query_log(schema, 100, rng=0)) == 100

    def test_values_bound_for_every_selection_attr(self, schema):
        for entry in generate_query_log(schema, 200, rng=0):
            assert set(entry.bound_values) == set(entry.query.selection)

    def test_values_in_domain(self, schema):
        for entry in generate_query_log(schema, 200, rng=0):
            for attr, value in entry.values:
                assert 0 <= value < schema.cardinality(attr)

    def test_seeded_reproducibility(self, schema):
        a = generate_query_log(schema, 50, rng=3)
        b = generate_query_log(schema, 50, rng=3)
        assert a == b

    def test_explicit_pattern_frequencies(self, schema):
        only = SliceQuery(groupby=["a"], selection=["b"])
        log = generate_query_log(
            schema, 30, rng=0, pattern_frequencies={only: 1.0}
        )
        assert all(entry.query == only for entry in log)

    def test_zero_weight_frequencies_rejected(self, schema):
        only = SliceQuery(groupby=["a"])
        with pytest.raises(ValueError, match="positive sum"):
            generate_query_log(schema, 5, rng=0, pattern_frequencies={only: 0.0})

    def test_n_entries_validation(self, schema):
        with pytest.raises(ValueError):
            generate_query_log(schema, 0)


class TestEstimateFrequencies:
    def test_sums_to_one(self, schema):
        log = generate_query_log(schema, 500, rng=1)
        freqs = estimate_frequencies(log)
        assert sum(freqs.values()) == pytest.approx(1.0)

    def test_recovers_planted_distribution(self, schema):
        q1 = SliceQuery(groupby=["a"], selection=["b"])
        q2 = SliceQuery(groupby=["b"], selection=["a"])
        log = generate_query_log(
            schema, 4000, rng=2, pattern_frequencies={q1: 0.75, q2: 0.25}
        )
        freqs = estimate_frequencies(log)
        assert freqs[q1] == pytest.approx(0.75, abs=0.03)
        assert freqs[q2] == pytest.approx(0.25, abs=0.03)

    def test_smoothing_covers_universe(self, schema):
        universe = list(enumerate_slice_queries(schema.names))
        only = universe[0]
        log = generate_query_log(
            schema, 10, rng=0, pattern_frequencies={only: 1.0}
        )
        freqs = estimate_frequencies(log, smoothing=0.5, universe=universe)
        assert set(freqs) == set(universe)
        assert all(f > 0 for f in freqs.values())

    def test_smoothing_requires_universe(self, schema):
        log = generate_query_log(schema, 10, rng=0)
        with pytest.raises(ValueError, match="universe"):
            estimate_frequencies(log, smoothing=1.0)

    def test_empty_log_rejected(self):
        with pytest.raises(ValueError):
            estimate_frequencies([])

    def test_feeds_into_selection(self, schema):
        """Round trip: log → frequencies → graph → selection."""
        from repro.algorithms import RGreedy
        from repro.core.qvgraph import QueryViewGraph
        from repro.estimation.sizes import analytical_lattice

        log = generate_query_log(schema, 300, rng=5)
        freqs = estimate_frequencies(log)
        lattice = analytical_lattice(schema, 30)
        graph = QueryViewGraph.from_cube(
            lattice, queries=list(freqs), frequencies=freqs
        )
        result = RGreedy(2).run(graph, 60, seed=(lattice.label(lattice.top),))
        assert result.benefit >= 0


class TestHotValues:
    def test_counts_ranked(self, schema):
        entries = [
            LogEntry(SliceQuery(selection=["a"]), (("a", v),))
            for v in [1, 1, 1, 2, 2, 3]
        ]
        assert hot_selection_values(entries, "a", top_k=2) == [(1, 3), (2, 2)]

    def test_missing_attr_empty(self, schema):
        entries = [LogEntry(SliceQuery(selection=["a"]), (("a", 1),))]
        assert hot_selection_values(entries, "b") == []

    def test_top_k_validation(self):
        with pytest.raises(ValueError):
            hot_selection_values([], "a", top_k=0)
