"""Tests for the synthetic fact-table generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cube.generator import (
    draw_dimension,
    generate_fact_table,
    sparsity_of,
    zipf_probabilities,
)
from repro.cube.schema import CubeSchema, Dimension


@pytest.fixture
def schema():
    return CubeSchema([Dimension("a", 50), Dimension("b", 30), Dimension("c", 10)])


class TestZipf:
    def test_uniform_when_exponent_zero(self):
        probs = zipf_probabilities(4, 0.0)
        assert np.allclose(probs, 0.25)

    def test_probabilities_sum_to_one(self):
        assert zipf_probabilities(100, 1.5).sum() == pytest.approx(1.0)

    def test_rank_ordering(self):
        probs = zipf_probabilities(10, 1.0)
        assert all(probs[i] >= probs[i + 1] for i in range(9))

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            zipf_probabilities(0, 1.0)
        with pytest.raises(ValueError):
            zipf_probabilities(10, -1.0)


class TestDrawDimension:
    def test_values_in_domain(self):
        rng = np.random.default_rng(0)
        values = draw_dimension(10, 5000, rng)
        assert values.min() >= 0 and values.max() < 10

    def test_skew_concentrates_mass(self):
        rng = np.random.default_rng(0)
        uniform = draw_dimension(100, 10_000, rng, exponent=0.0)
        skewed = draw_dimension(100, 10_000, rng, exponent=1.5)
        top_u = np.bincount(uniform, minlength=100).max()
        top_s = np.bincount(skewed, minlength=100).max()
        assert top_s > 3 * top_u


class TestGenerateFactTable:
    def test_shape_and_domains(self, schema):
        fact = generate_fact_table(schema, 1000, rng=0)
        assert fact.n_rows == 1000
        for name in schema.names:
            col = fact.column(name)
            assert col.min() >= 0 and col.max() < schema.cardinality(name)

    def test_seeded_reproducibility(self, schema):
        a = generate_fact_table(schema, 500, rng=42)
        b = generate_fact_table(schema, 500, rng=42)
        for name in schema.names:
            assert np.array_equal(a.column(name), b.column(name))
        assert np.array_equal(a.measures, b.measures)

    def test_different_seeds_differ(self, schema):
        a = generate_fact_table(schema, 500, rng=1)
        b = generate_fact_table(schema, 500, rng=2)
        assert not np.array_equal(a.column("a"), b.column("a"))

    def test_invalid_rows(self, schema):
        with pytest.raises(ValueError):
            generate_fact_table(schema, 0)

    def test_correlation_bounds_fanout(self, schema):
        """Each parent value maps to at most `fanout` child values."""
        fact = generate_fact_table(
            schema, 5000, rng=0, correlated={"b": ("a", 3)}
        )
        a, b = fact.column("a"), fact.column("b")
        for parent in np.unique(a):
            children = np.unique(b[a == parent])
            assert len(children) <= 3

    def test_correlation_shrinks_pair_distinct_count(self, schema):
        free = generate_fact_table(schema, 5000, rng=0)
        tied = generate_fact_table(schema, 5000, rng=0, correlated={"b": ("a", 2)})
        assert tied.distinct_count(["a", "b"]) < free.distinct_count(["a", "b"])

    def test_correlation_validation(self, schema):
        with pytest.raises(KeyError):
            generate_fact_table(schema, 10, correlated={"z": ("a", 2)})
        with pytest.raises(ValueError):
            generate_fact_table(schema, 10, correlated={"b": ("a", 0)})

    def test_chained_correlation_rejected(self, schema):
        with pytest.raises(ValueError, match="itself correlated"):
            generate_fact_table(
                schema, 10, correlated={"b": ("a", 2), "c": ("b", 2)}
            )

    def test_skew_passes_through(self, schema):
        fact = generate_fact_table(schema, 10_000, rng=0, skew={"a": 2.0})
        counts = np.bincount(fact.column("a"), minlength=50)
        assert counts.max() > 0.3 * 10_000  # rank-1 dominates under a=2

    def test_measures_in_range(self, schema):
        fact = generate_fact_table(schema, 1000, rng=0)
        assert fact.measures.min() >= 0.0 and fact.measures.max() < 100.0

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=2000))
    def test_any_row_count_works(self, n_rows):
        schema = CubeSchema.from_cardinalities({"x": 7, "y": 3})
        fact = generate_fact_table(schema, n_rows, rng=0)
        assert fact.n_rows == n_rows


class TestSparsity:
    def test_sparsity_of(self, schema):
        assert sparsity_of(schema, 1500) == pytest.approx(1500 / 15000)


class TestExtraMeasures:
    def test_extra_measure_columns_generated(self):
        schema = CubeSchema.from_cardinalities({"a": 10, "b": 5})
        fact = generate_fact_table(
            schema, 300, rng=0, extra_measures=("quantity", "discount")
        )
        assert fact.measure_names == ("sales", "quantity", "discount")
        assert len(fact.measure_column("quantity")) == 300

    def test_extras_differ_from_primary(self):
        schema = CubeSchema.from_cardinalities({"a": 10})
        fact = generate_fact_table(schema, 100, rng=0, extra_measures=("q",))
        import numpy as np

        assert not np.array_equal(fact.measures, fact.measure_column("q"))
