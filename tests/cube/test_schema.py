"""Tests for repro.cube.schema."""

import pytest

from repro.core.view import View
from repro.cube.schema import CubeSchema, Dimension


class TestDimension:
    def test_valid(self):
        d = Dimension("part", 100)
        assert d.cardinality == 100

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Dimension("", 10)

    def test_zero_cardinality_rejected(self):
        with pytest.raises(ValueError):
            Dimension("a", 0)

    def test_str(self):
        assert str(Dimension("a", 10)) == "a(10)"

    def test_frozen(self):
        d = Dimension("a", 10)
        with pytest.raises(AttributeError):
            d.cardinality = 20


class TestCubeSchema:
    def test_names_preserve_order(self):
        schema = CubeSchema([Dimension("p", 1), Dimension("s", 2), Dimension("c", 3)])
        assert schema.names == ("p", "s", "c")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            CubeSchema([Dimension("a", 1), Dimension("a", 2)])

    def test_measure_collision_rejected(self):
        with pytest.raises(ValueError, match="collides"):
            CubeSchema([Dimension("sales", 1)], measure="sales")

    def test_empty_schema_rejected(self):
        with pytest.raises(ValueError):
            CubeSchema([])

    def test_from_cardinalities(self):
        schema = CubeSchema.from_cardinalities({"a": 10, "b": 20})
        assert schema.cardinality("a") == 10
        assert schema.names == ("a", "b")

    def test_dense_cells(self):
        schema = CubeSchema.from_cardinalities({"a": 10, "b": 20})
        assert schema.dense_cells == 200

    def test_cells_of_view(self):
        schema = CubeSchema.from_cardinalities({"a": 10, "b": 20, "c": 5})
        assert schema.cells_of(View.of("a", "c")) == 50
        assert schema.cells_of(View.none()) == 1

    def test_cells_of_unknown_attr(self):
        schema = CubeSchema.from_cardinalities({"a": 10})
        with pytest.raises(KeyError):
            schema.cells_of(["z"])

    def test_top_view(self):
        schema = CubeSchema.from_cardinalities({"a": 10, "b": 20})
        assert schema.top_view() == View.of("a", "b")

    def test_view_constructor_validates(self):
        schema = CubeSchema.from_cardinalities({"a": 10})
        with pytest.raises(KeyError):
            schema.view("a", "z")

    def test_sort_attrs_uses_schema_order(self):
        schema = CubeSchema.from_cardinalities({"p": 1, "s": 1, "c": 1})
        assert schema.sort_attrs({"c", "p"}) == ("p", "c")

    def test_iteration_and_len(self):
        schema = CubeSchema.from_cardinalities({"a": 10, "b": 20})
        assert len(schema) == 2
        assert [d.name for d in schema] == ["a", "b"]

    def test_contains(self):
        schema = CubeSchema.from_cardinalities({"a": 10})
        assert "a" in schema
        assert "z" not in schema
