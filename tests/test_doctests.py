"""Run the doctest examples embedded in the library's docstrings.

Docstrings are documentation; these checks keep every ``>>>`` example
executable so the docs cannot rot.
"""

import doctest

import pytest

import repro.core.costmodel
import repro.core.hierarchy
import repro.core.index
import repro.core.lattice
import repro.core.query
import repro.core.view
import repro.cube.generator
import repro.cube.schema
import repro.engine.btree
import repro.estimation.correlated
import repro.estimation.sampling
import repro.estimation.sizes
import repro.sql

MODULES = [
    repro.core.view,
    repro.core.lattice,
    repro.core.query,
    repro.core.index,
    repro.core.costmodel,
    repro.core.hierarchy,
    repro.cube.schema,
    repro.cube.generator,
    repro.engine.btree,
    repro.estimation.sizes,
    repro.estimation.sampling,
    repro.estimation.correlated,
    repro.sql,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"


def test_doctests_actually_cover_examples():
    """At least a handful of modules carry executable examples."""
    total = sum(
        doctest.testmod(module, verbose=False).attempted for module in MODULES
    )
    assert total >= 15
