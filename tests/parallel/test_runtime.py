"""Runtime integration for the parallel layer: cooperative stops drain
the worker pool and unlink its shared-memory segments, checkpoints
record the resolved worker count, and a checkpoint written at any
worker count resumes bit-identically at any other."""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.algorithms import RGreedy
from repro.core.benefit import BenefitEngine
from repro.parallel import leaked_segments
from repro.runtime.context import InjectedFault, Interrupted, RunContext
from repro.runtime.faults import (
    _cube_graph,
    _roundtrip,
    compare_results,
    smoke_budget,
    top_view_of,
)


@pytest.fixture(scope="module")
def d4():
    graph = _cube_graph(4)
    probe = BenefitEngine(graph, backend="sparse")
    return graph, smoke_budget(probe, 0.3), top_view_of(probe)


def make_run(graph, space, seed, workers):
    def run(context=None):
        engine = BenefitEngine(graph, backend="sparse")
        return RGreedy(2, workers=workers).run(
            engine, space, seed=[seed], context=context
        )

    return run


class TestStopDrain:
    def test_injected_fault_drains_pool(self, d4):
        graph, space, seed = d4
        with pytest.raises(InjectedFault) as info:
            make_run(graph, space, seed, workers=2)(RunContext(fault_stage=2))
        assert leaked_segments() == []
        checkpoint = info.value.checkpoint
        assert checkpoint is not None
        assert checkpoint.extra["workers"] == 2

    def test_signal_stop_drains_pool(self, d4):
        """The cooperative SIGTERM path: the stop lands at the next
        stage boundary, after the checkpoint, and tears the pool down."""
        graph, space, seed = d4
        context = RunContext()
        context.request_stop(signal.SIGTERM)
        with pytest.raises(Interrupted):
            make_run(graph, space, seed, workers=2)(context)
        assert leaked_segments() == []

    def test_deadline_stop_drains_pool(self, d4):
        graph, space, seed = d4
        from repro.runtime.context import BudgetExceeded

        with pytest.raises(BudgetExceeded):
            make_run(graph, space, seed, workers=2)(RunContext(deadline=0.0))
        assert leaked_segments() == []


class TestCheckpointWorkers:
    def test_serial_run_records_workers_1(self, d4):
        graph, space, seed = d4
        with pytest.raises(InjectedFault) as info:
            make_run(graph, space, seed, workers=1)(RunContext(fault_stage=1))
        assert info.value.checkpoint.extra["workers"] == 1


@pytest.mark.parametrize(
    "write_workers,resume_workers", [(2, 1), (1, 2), (2, 2)]
)
def test_resume_across_worker_counts(d4, write_workers, resume_workers):
    """A checkpoint is an execution artifact, not an algorithm identity:
    whatever worker count wrote it, resuming at any other count must
    reproduce the golden serial run bit for bit."""
    graph, space, seed = d4
    golden_context = RunContext()
    golden = make_run(graph, space, seed, workers=1)(golden_context)
    n_stages = golden_context.stage_counter
    assert n_stages >= 2
    kill_at = max(1, n_stages // 2)
    with pytest.raises(InjectedFault) as info:
        make_run(graph, space, seed, write_workers)(
            RunContext(fault_stage=kill_at)
        )
    checkpoint = _roundtrip(info.value.checkpoint)
    resumed = make_run(graph, space, seed, resume_workers)(
        RunContext(resume_from=checkpoint)
    )
    assert compare_results(golden, resumed) == ""
    assert leaked_segments() == []


_CHILD = """
import signal, sys
from repro.algorithms import RGreedy
from repro.core.benefit import BenefitEngine
from repro.parallel import leaked_segments
from repro.runtime.context import RunContext, RuntimeStop
from repro.runtime.faults import _cube_graph, smoke_budget, top_view_of

graph = _cube_graph(4)
probe = BenefitEngine(graph, backend="sparse")
space = smoke_budget(probe, 0.3)
seed = [top_view_of(probe)]

state = {"ctx": None, "sig": False}

def on_sig(signum, frame):
    state["sig"] = True
    if state["ctx"] is not None:
        state["ctx"].request_stop(signum)

signal.signal(signal.SIGTERM, on_sig)
print("ready", flush=True)
while not state["sig"]:
    context = RunContext()
    state["ctx"] = context
    engine = BenefitEngine(graph, backend="sparse")
    try:
        RGreedy(2, workers=2).run(engine, space, seed=seed, context=context)
    except RuntimeStop:
        break
print("drained", flush=True)
sys.exit(0 if not leaked_segments() else 3)
"""


def test_sigterm_mid_run_leaves_no_segments(tmp_path):
    """End to end: SIGTERM a process mid-parallel-run; the handler routes
    the signal to the run context, the next stage boundary drains the
    pool, and ``/dev/shm`` ends up clean (exit code 3 = child saw leaks)."""
    script = tmp_path / "child.py"
    script.write_text(_CHILD)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, str(script)],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        assert proc.stdout.readline().strip() == "ready"
        time.sleep(0.5)
        proc.send_signal(signal.SIGTERM)
        out, err = proc.communicate(timeout=120)
    finally:
        if proc.poll() is None:  # pragma: no cover - cleanup on failure
            proc.kill()
            proc.communicate()
    assert "drained" in out, err
    assert proc.returncode == 0, (out, err)
    assert leaked_segments() == []
