"""Unit tests for the parallel layer's pieces: worker-count resolution,
the candidate partitioner, and the chain-equivalence lemma the whole
reduction rests on."""

import numpy as np
import pytest

from repro.core.benefit import BenefitEngine
from repro.parallel import (
    PARALLEL_MIN_STRUCTURES,
    ChainSink,
    ParallelStageEvaluator,
    RecorderSink,
    StageEvaluator,
    make_evaluator,
    resolve_workers,
)
from repro.parallel.evaluator import WORKERS_ENV, _partition

from tests.algorithms.test_lazy_equivalence import random_graph


class TestResolveWorkers:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers(None) == (1, False)

    def test_explicit_one_is_serial(self):
        assert resolve_workers(1) == (1, False)

    def test_explicit_n_is_forced(self):
        assert resolve_workers(2) == (2, True)
        assert resolve_workers(6) == (6, True)

    def test_zero_is_auto_not_forced(self):
        import os

        count, forced = resolve_workers(0)
        assert count == min(os.cpu_count() or 1, 8)
        assert not forced

    def test_env_var_is_the_default(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "3")
        assert resolve_workers(None) == (3, True)
        monkeypatch.setenv(WORKERS_ENV, "")
        assert resolve_workers(None) == (1, False)

    def test_explicit_overrides_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "4")
        assert resolve_workers(1) == (1, False)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(-1)


class TestMakeEvaluator:
    def engine(self):
        return BenefitEngine(random_graph(0), backend="sparse")

    def test_serial_by_default(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        evaluator = make_evaluator(self.engine(), None)
        assert type(evaluator) is StageEvaluator
        assert not evaluator.is_parallel

    def test_auto_falls_back_to_serial_on_small_problems(self):
        engine = self.engine()
        assert engine.n_structures < PARALLEL_MIN_STRUCTURES
        evaluator = make_evaluator(engine, 0)
        assert type(evaluator) is StageEvaluator

    def test_explicit_count_forces_a_pool(self):
        evaluator = make_evaluator(self.engine(), 2)
        try:
            assert isinstance(evaluator, ParallelStageEvaluator)
            assert evaluator.workers == 2
        finally:
            evaluator.close()

    def test_close_before_first_dispatch_is_safe(self):
        evaluator = make_evaluator(self.engine(), 2)
        evaluator.close()
        evaluator.close()


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("workers", [1, 2, 3, 5])
class TestPartition:
    def test_partition_invariants(self, seed, workers):
        engine = BenefitEngine(random_graph(seed), backend="sparse")
        arrays = engine.shared_arrays()
        candidates = arrays["stage_candidates"]
        shards = _partition(
            candidates, engine.is_view, arrays["row_ptr"], workers
        )
        assert len(shards) == workers
        # contiguous cover of the canonical order
        assert shards[0][0] == 0
        assert shards[-1][1] == candidates.size
        for (_, hi), (lo, _) in zip(shards, shards[1:]):
            assert hi == lo
        # a view and its indexes never straddle a shard boundary
        for lo, hi in shards:
            if lo < hi:
                assert engine.is_view[candidates[lo]]
            for sid in candidates[lo:hi]:
                owner = int(engine.view_id_of[int(sid)])
                position = int(np.flatnonzero(candidates == owner)[0])
                assert lo <= position < hi

    def test_empty_candidates(self, seed, workers):
        del seed
        shards = _partition(
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=bool),
            np.zeros(1, dtype=np.int64),
            workers,
        )
        assert shards == [(0, 0)] * workers


@pytest.mark.parametrize("seed", range(10))
def test_chain_equivalence_lemma(seed):
    """Strict prefix maxima per slice, replayed slice-by-slice through a
    fresh chain, must land on the identical incumbent — the lemma that
    makes the parallel reduction exact.  Small integer benefits/spaces
    make exact ratio ties common, the regime where this could break."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(1, 50))
    offers = [
        ((i,), float(rng.integers(0, 6)), float(rng.integers(1, 4)))
        for i in range(n)
    ]
    serial = ChainSink()
    for offer in offers:
        serial.offer(*offer)
    for n_slices in (1, 2, 3, 5, 8):
        cuts = sorted(int(c) for c in rng.integers(0, n + 1, size=n_slices - 1))
        bounds = [0] + cuts + [n]
        merged = ChainSink()
        recorded = 0
        for lo, hi in zip(bounds, bounds[1:]):
            recorder = RecorderSink()
            for offer in offers[lo:hi]:
                recorder.offer(*offer)
            recorded += len(recorder.offers)
            for offer in recorder.offers:
                merged.offer(*offer)
        assert merged.ids == serial.ids
        assert merged.ratio == serial.ratio
        assert merged.benefit == serial.benefit
        assert merged.space == serial.space
        assert recorded <= n


def test_recorder_keeps_only_strict_prefix_maxima():
    recorder = RecorderSink()
    recorder.offer((0,), 4.0, 2.0)  # ratio 2 — kept
    recorder.offer((1,), 2.0, 1.0)  # ratio 2, tie — dropped
    recorder.offer((2,), 3.0, 1.0)  # ratio 3 — kept
    recorder.offer((3,), 0.0, 1.0)  # non-positive — dropped
    recorder.offer((4,), 5.0, 1.0)  # ratio 5 — kept
    assert [offer[0] for offer in recorder.offers] == [(0,), (2,), (4,)]


def test_chain_sink_tie_break_keeps_first():
    sink = ChainSink()
    sink.offer((0,), 4.0, 2.0)
    sink.offer((1,), 8.0, 4.0)  # exactly equal ratio — incumbent stays
    assert sink.ids == (0,)
    sink.offer((2,), 9.0, 4.0)
    assert sink.ids == (2,)
