"""Shared-memory pack: layout round-trip and segment lifetime.

The lifetime contract under test: the master *owns* the segment and is
the only unlinking party; workers attach without registering with any
resource tracker, so neither a worker exit nor the tracker can tear a
live segment out from under the master.  Every ``close()`` path must
leave ``/dev/shm`` clean.
"""

import numpy as np
import pytest

from repro.parallel import SHM_PREFIX, leaked_segments
from repro.parallel.shm import ShmPack


@pytest.fixture(autouse=True)
def no_preexisting_leaks():
    assert leaked_segments() == []
    yield
    assert leaked_segments() == []


def sample_arrays():
    return {
        "f64": np.arange(7, dtype=np.float64) * 0.5,
        "i64": np.array([3, 1, 4, 1, 5], dtype=np.int64),
        "mask": np.array([True, False, True], dtype=bool),
        "i32": np.arange(11, dtype=np.int32),
        "empty": np.empty(0, dtype=np.float64),
    }


class TestRoundTrip:
    def test_values_survive_create_and_attach(self):
        arrays = sample_arrays()
        with ShmPack.create(arrays, tag="t") as pack:
            attached = ShmPack.attach(pack.spec)
            try:
                for key, arr in arrays.items():
                    assert attached.arrays[key].dtype == arr.dtype
                    np.testing.assert_array_equal(attached.arrays[key], arr)
            finally:
                attached.close()

    def test_writes_are_shared_both_ways(self):
        with ShmPack.create(sample_arrays(), tag="t") as pack:
            attached = ShmPack.attach(pack.spec)
            try:
                attached.arrays["f64"][0] = 99.0
                assert pack.arrays["f64"][0] == 99.0
                pack.arrays["i64"][2] = -7
                assert attached.arrays["i64"][2] == -7
            finally:
                attached.close()

    def test_spec_is_plain_data(self):
        """The spec must survive pickling to worker processes."""
        import pickle

        with ShmPack.create(sample_arrays(), tag="t") as pack:
            spec = pickle.loads(pickle.dumps(pack.spec))
            assert spec == pack.spec

    def test_alignment(self):
        with ShmPack.create(sample_arrays(), tag="t") as pack:
            for _key, _dtype, _shape, offset in pack.spec["fields"]:
                assert offset % 64 == 0


class TestLifetime:
    def test_segment_name_carries_prefix(self):
        with ShmPack.create(sample_arrays(), tag="t") as pack:
            assert pack.spec["name"].startswith(SHM_PREFIX)
            assert pack.spec["name"] in leaked_segments()

    def test_owner_close_unlinks(self):
        pack = ShmPack.create(sample_arrays(), tag="t")
        name = pack.spec["name"]
        pack.close()
        assert name not in leaked_segments()

    def test_attach_close_does_not_unlink(self):
        pack = ShmPack.create(sample_arrays(), tag="t")
        try:
            attached = ShmPack.attach(pack.spec)
            attached.close()
            assert pack.spec["name"] in leaked_segments()
            # the owner can still read its views after a peer detaches
            np.testing.assert_array_equal(
                pack.arrays["i64"], sample_arrays()["i64"]
            )
        finally:
            pack.close()

    def test_close_is_idempotent(self):
        pack = ShmPack.create(sample_arrays(), tag="t")
        pack.close()
        pack.close()

    def test_attach_does_not_register_with_resource_tracker(self):
        """A worker-side attach must leave the process's resource
        tracker untouched — under fork a (de)registration would mutate
        the *master's* tracker entry (CPython gh-82300)."""
        from multiprocessing import resource_tracker

        calls = []
        original = resource_tracker.register
        pack = ShmPack.create(sample_arrays(), tag="t")
        try:
            resource_tracker.register = lambda name, rtype: calls.append(
                (name, rtype)
            )
            try:
                attached = ShmPack.attach(pack.spec)
                attached.close()
            finally:
                resource_tracker.register = original
            assert calls == []
        finally:
            pack.close()
