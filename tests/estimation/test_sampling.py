"""Tests for sampling-based distinct-value estimation ([HNS95])."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.estimation.sampling import (
    frequency_profile,
    gee_estimator,
    goodman_jackknife,
    sample_view_size,
    scale_up_estimator,
)


class TestFrequencyProfile:
    def test_simple(self):
        assert frequency_profile(["a", "a", "b"]) == {1: 1, 2: 1}

    def test_empty(self):
        assert frequency_profile([]) == {}

    def test_tuples_as_keys(self):
        assert frequency_profile([(1, 2), (1, 2), (3, 4)]) == {1: 1, 2: 1}

    @given(st.lists(st.integers(min_value=0, max_value=20), max_size=100))
    def test_profile_accounts_for_all_rows(self, sample):
        profile = frequency_profile(sample)
        assert sum(i * f for i, f in profile.items()) == len(sample)
        assert sum(profile.values()) == len(set(sample))


class TestEstimators:
    PROFILE = {1: 40, 2: 20, 3: 10}  # 40+40+30 = 110 rows, 70 distinct

    def test_validation_rejects_bad_row_count(self):
        with pytest.raises(ValueError, match="accounts for"):
            gee_estimator(self.PROFILE, 100, 1000)

    def test_validation_rejects_sample_bigger_than_relation(self):
        with pytest.raises(ValueError):
            gee_estimator(self.PROFILE, 110, 50)

    def test_validation_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            gee_estimator({}, 0, 100)

    def test_scale_up(self):
        # q = 0.11 -> 70 / 0.11 ≈ 636
        est = scale_up_estimator(self.PROFILE, 110, 1000)
        assert est == pytest.approx(70 / 0.11, rel=1e-6)

    def test_jackknife_formula(self):
        q = 110 / 1000
        expected = 70 + (1 - q) * 40 / q
        assert goodman_jackknife(self.PROFILE, 110, 1000) == pytest.approx(expected)

    def test_gee_formula(self):
        q = 110 / 1000
        expected = np.sqrt(1 / q) * 40 + 30
        assert gee_estimator(self.PROFILE, 110, 1000) == pytest.approx(expected)

    def test_full_sample_returns_exact_count(self):
        # q = 1: every estimator should return exactly d
        profile = {1: 3, 2: 1}
        for est in (scale_up_estimator, goodman_jackknife, gee_estimator):
            assert est(profile, 5, 5) == pytest.approx(4)

    @given(
        st.dictionaries(
            st.integers(min_value=1, max_value=5),
            st.integers(min_value=1, max_value=20),
            min_size=1,
        ),
        st.integers(min_value=2, max_value=100),
    )
    @settings(max_examples=50)
    def test_estimates_within_feasible_range(self, profile, scale):
        sample_rows = sum(i * f for i, f in profile.items())
        total_rows = sample_rows * scale
        d = sum(profile.values())
        for est in (scale_up_estimator, goodman_jackknife, gee_estimator):
            value = est(profile, sample_rows, total_rows)
            assert d <= value <= total_rows


class TestSampleViewSize:
    def test_recovers_exact_count_with_full_sample(self):
        rng = np.random.default_rng(0)
        columns = {"a": rng.integers(0, 20, size=500)}
        true = len(np.unique(columns["a"]))
        est = sample_view_size(columns, ["a"], 500, rng, estimator="gee")
        assert est == true

    def test_empty_attrs_is_one(self):
        rng = np.random.default_rng(0)
        assert sample_view_size({"a": np.arange(10)}, [], 5, rng) == 1.0

    def test_estimator_name_validated(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            sample_view_size({"a": np.arange(10)}, ["a"], 5, rng, estimator="x")

    def test_jackknife_reasonable_on_uniform_data(self):
        rng = np.random.default_rng(42)
        true_distinct = 200
        columns = {"a": rng.integers(0, true_distinct, size=20_000)}
        est = sample_view_size(
            columns, ["a"], 2_000, rng, estimator="jackknife"
        )
        assert est == pytest.approx(true_distinct, rel=0.5)

    def test_multi_attr_combination(self):
        rng = np.random.default_rng(1)
        columns = {
            "a": rng.integers(0, 10, size=1000),
            "b": rng.integers(0, 10, size=1000),
        }
        est = sample_view_size(columns, ["a", "b"], 1000, rng, estimator="gee")
        stacked = np.stack([columns["a"], columns["b"]], axis=1)
        assert est == len(np.unique(stacked, axis=0))
