"""Tests for the analytical size model (Section 4.2.1)."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.view import View
from repro.cube.schema import CubeSchema, Dimension
from repro.estimation.sizes import (
    analytical_lattice,
    analytical_view_size,
    exact_sizes_from_rows,
    expected_distinct,
    min_model,
    sparsity_to_rows,
)


@pytest.fixture
def schema():
    return CubeSchema([Dimension("a", 100), Dimension("b", 50), Dimension("c", 20)])


class TestExpectedDistinct:
    def test_zero_rows(self):
        assert expected_distinct(100, 0) == 0.0

    def test_one_row(self):
        assert expected_distinct(100, 1) == pytest.approx(1.0)

    def test_saturates_at_cells(self):
        assert expected_distinct(2, 10_000) == pytest.approx(2.0)

    def test_sparse_regime_close_to_rows(self):
        # rows << cells: nearly every draw is new
        assert expected_distinct(1e9, 1000) == pytest.approx(1000, rel=1e-3)

    def test_exact_small_case(self):
        # D(2, 2) = 2 * (1 - (1/2)^2) = 1.5
        assert expected_distinct(2, 2) == pytest.approx(1.5)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            expected_distinct(0, 10)
        with pytest.raises(ValueError):
            expected_distinct(10, -1)

    @given(
        st.floats(min_value=1, max_value=1e12),
        st.floats(min_value=0, max_value=1e12),
    )
    def test_bounds(self, cells, rows):
        d = expected_distinct(cells, rows)
        assert 0.0 <= d <= min(cells, rows) + 1e-6

    @given(st.floats(min_value=1, max_value=1e6))
    def test_monotone_in_rows(self, cells):
        values = [expected_distinct(cells, r) for r in (10, 100, 1000)]
        assert values == sorted(values)

    def test_matches_monte_carlo(self):
        rng = np.random.default_rng(0)
        cells, rows = 500, 800
        trials = [
            len(np.unique(rng.integers(0, cells, size=rows))) for __ in range(200)
        ]
        assert expected_distinct(cells, rows) == pytest.approx(
            np.mean(trials), rel=0.02
        )


class TestMinModel:
    def test_min(self):
        assert min_model(100, 40) == 40
        assert min_model(30, 40) == 30

    def test_invalid(self):
        with pytest.raises(ValueError):
            min_model(0, 5)


class TestAnalyticalViewSize:
    def test_empty_view_is_one_row(self, schema):
        assert analytical_view_size(schema, View.none(), 1000) == 1.0

    def test_expected_model(self, schema):
        size = analytical_view_size(schema, View.of("a", "b"), 10_000)
        assert size == pytest.approx(expected_distinct(5000, 10_000))

    def test_min_model(self, schema):
        size = analytical_view_size(schema, View.of("a"), 10_000, model="min")
        assert size == 100

    def test_invalid_model(self, schema):
        with pytest.raises(ValueError):
            analytical_view_size(schema, View.of("a"), 100, model="bogus")

    def test_at_least_one_row(self, schema):
        assert analytical_view_size(schema, View.of("a"), 1) >= 1.0


class TestAnalyticalLattice:
    def test_all_views_sized(self, schema):
        lattice = analytical_lattice(schema, 5_000)
        assert len(lattice) == 8
        for view in lattice.views():
            assert lattice.size(view) >= 1

    def test_monotone_along_lattice(self, schema):
        """A view never has more rows than any ancestor — the property
        the whole lattice-based optimization relies on."""
        lattice = analytical_lattice(schema, 5_000)
        for view in lattice.views():
            for parent in lattice.parents(view):
                assert lattice.size(parent) >= lattice.size(view) - 1e-9

    def test_top_size_bounded_by_rows(self, schema):
        lattice = analytical_lattice(schema, 5_000)
        assert lattice.size(lattice.top) <= 5_000

    def test_invalid_rows(self, schema):
        with pytest.raises(ValueError):
            analytical_lattice(schema, 0)


class TestSparsity:
    def test_conversion(self, schema):
        assert sparsity_to_rows(schema, 0.1) == pytest.approx(0.1 * 100 * 50 * 20)

    def test_bounds(self, schema):
        with pytest.raises(ValueError):
            sparsity_to_rows(schema, 0)
        with pytest.raises(ValueError):
            sparsity_to_rows(schema, 1.5)


class TestExactSizes:
    def test_counts_distinct_combinations(self, schema):
        columns = {
            "a": np.array([0, 0, 1, 1]),
            "b": np.array([0, 0, 0, 1]),
            "c": np.array([0, 1, 0, 0]),
        }
        estimator = exact_sizes_from_rows(schema, columns)
        assert estimator(View.of("a")) == 2
        assert estimator(View.of("a", "b")) == 3
        assert estimator(View.of("a", "b", "c")) == 4
        assert estimator(View.none()) == 1

    def test_agrees_with_fact_table_distinct_count(self, schema):
        from repro.cube.generator import generate_fact_table

        fact = generate_fact_table(schema, 500, rng=1)
        estimator = exact_sizes_from_rows(schema, fact.columns)
        for attrs in (("a",), ("a", "b"), ("a", "b", "c")):
            assert estimator(View(attrs)) == fact.distinct_count(attrs)
