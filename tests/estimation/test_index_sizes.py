"""Tests for the index-size model (Section 4.2.2)."""

import math

import pytest

from repro.core.index import Index
from repro.core.view import View
from repro.estimation.index_sizes import (
    btree_leaf_count,
    index_size,
    total_materialization_size,
    view_with_all_fat_indexes_size,
)


class TestIndexSize:
    def test_index_size_equals_view_size(self, tpcd_lat):
        idx = Index(View.of("p", "s"), ("s", "p"))
        assert index_size(tpcd_lat, idx) == 800_000

    def test_every_index_on_view_same_size(self, tpcd_lat):
        from repro.core.index import enumerate_all_indexes

        view = View.of("p", "s", "c")
        sizes = {index_size(tpcd_lat, i) for i in enumerate_all_indexes(view)}
        assert sizes == {6_000_000}


class TestAggregates:
    def test_view_with_fat_indexes(self, tpcd_lat):
        # psc: (3! + 1) * 6M = 42M
        assert view_with_all_fat_indexes_size(
            tpcd_lat, View.of("p", "s", "c")
        ) == 42_000_000

    def test_empty_view_is_just_itself(self, tpcd_lat):
        assert view_with_all_fat_indexes_size(tpcd_lat, View.none()) == 2

    def test_paper_80m_total(self, tpcd_lat):
        """Example 2.1: materializing everything needs ~80M rows."""
        total = total_materialization_size(tpcd_lat)
        assert total == pytest.approx(81e6, rel=0.02)


class TestLeafCount:
    def test_paper_model_one_entry_per_leaf(self):
        assert btree_leaf_count(1000) == 1000

    def test_physical_pages(self):
        assert btree_leaf_count(1000, entries_per_leaf=64) == math.ceil(1000 / 64)

    def test_validation(self):
        with pytest.raises(ValueError):
            btree_leaf_count(-1)
        with pytest.raises(ValueError):
            btree_leaf_count(10, entries_per_leaf=0)
