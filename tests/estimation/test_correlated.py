"""Tests for the correlation-aware size model — including the derivation
of the paper's Figure 1 sizes from first principles."""

import pytest

from repro.core.view import View
from repro.cube.schema import CubeSchema, Dimension
from repro.datasets.tpcd import (
    TPCD_RAW_ROWS,
    TPCD_SUPPLIERS_PER_PART,
    TPCD_VIEW_ROWS,
    tpcd_schema,
)
from repro.estimation.correlated import (
    correlated_lattice,
    correlated_view_size,
    effective_cells,
)
from repro.estimation.sizes import analytical_lattice


@pytest.fixture
def schema():
    return CubeSchema([Dimension("p", 100), Dimension("s", 40), Dimension("c", 60)])


CORR = {"s": ("p", 4)}


class TestEffectiveCells:
    def test_child_with_parent_multiplies_by_fanout(self, schema):
        assert effective_cells(schema, View.of("p", "s"), CORR) == 100 * 4

    def test_child_alone_uses_reachable_domain(self, schema):
        # min(40, 100*4) = 40: the whole child domain is reachable
        assert effective_cells(schema, View.of("s"), CORR) == 40

    def test_child_alone_clipped_by_parent_fanout(self):
        schema = CubeSchema([Dimension("p", 5), Dimension("s", 100)])
        assert effective_cells(schema, View.of("s"), {"s": ("p", 3)}) == 15

    def test_uncorrelated_attrs_multiply(self, schema):
        assert effective_cells(schema, View.of("p", "c"), CORR) == 6000

    def test_fanout_capped_by_child_cardinality(self):
        schema = CubeSchema([Dimension("p", 10), Dimension("s", 2)])
        assert effective_cells(schema, View.of("p", "s"), {"s": ("p", 5)}) == 20

    def test_validation(self, schema):
        with pytest.raises(KeyError):
            effective_cells(schema, View.of("p"), {"z": ("p", 2)})
        with pytest.raises(ValueError, match="itself"):
            effective_cells(schema, View.of("p"), {"p": ("p", 2)})
        with pytest.raises(ValueError, match="fanout"):
            effective_cells(schema, View.of("p"), {"s": ("p", 0)})
        with pytest.raises(ValueError, match="itself correlated"):
            effective_cells(
                schema, View.of("p"), {"s": ("p", 2), "c": ("s", 2)}
            )


class TestFigure1Derivation:
    """The headline: Figure 1 falls out of the model + one correlation."""

    @pytest.fixture(scope="class")
    def derived(self):
        return correlated_lattice(
            tpcd_schema(),
            TPCD_RAW_ROWS,
            {"s": ("p", TPCD_SUPPLIERS_PER_PART)},
        )

    @pytest.mark.parametrize(
        "label,paper_rows",
        [
            ("psc", 6e6),
            ("pc", 6e6),
            ("sc", 6e6),
            ("ps", 0.8e6),
            ("p", 0.2e6),
            ("s", 0.01e6),
            ("c", 0.1e6),
            ("none", 1),
        ],
    )
    def test_every_figure1_size_derived(self, derived, label, paper_rows):
        view = next(v for v in derived.views() if derived.label(v) == label)
        assert derived.size(view) == pytest.approx(paper_rows, rel=0.02)

    def test_independence_model_misses_ps(self):
        """Without the correlation, ps comes out ~6M — the deviation the
        correlated model exists to fix."""
        plain = analytical_lattice(tpcd_schema(), TPCD_RAW_ROWS)
        assert plain.size(View.of("p", "s")) > 5e6

    def test_derived_matches_dataset_constants(self, derived):
        for view, rows in TPCD_VIEW_ROWS.items():
            assert derived.size(view) == pytest.approx(rows, rel=0.02)


class TestCorrelatedLattice:
    def test_empty_correlations_equals_plain_model(self, schema):
        a = correlated_lattice(schema, 500, {})
        b = analytical_lattice(schema, 500)
        for view in a.views():
            assert a.size(view) == pytest.approx(b.size(view))

    def test_monotone_along_lattice(self, schema):
        lattice = correlated_lattice(schema, 500, CORR)
        for view in lattice.views():
            for parent in lattice.parents(view):
                assert lattice.size(parent) >= lattice.size(view) - 1e-9

    def test_matches_generator_statistics(self):
        """The model must track what the correlated generator actually
        produces — same correlation spec on both sides."""
        from repro.cube.generator import generate_fact_table

        schema = CubeSchema([Dimension("p", 200), Dimension("s", 150)])
        corr = {"s": ("p", 4)}
        fact = generate_fact_table(schema, 5_000, rng=3, correlated=corr)
        predicted = correlated_view_size(schema, View.of("p", "s"), 5_000, corr)
        actual = fact.distinct_count(["p", "s"])
        assert predicted == pytest.approx(actual, rel=0.1)

    def test_view_size_empty_view(self, schema):
        assert correlated_view_size(schema, View.none(), 100, CORR) == 1.0

    def test_raw_rows_validation(self, schema):
        with pytest.raises(ValueError):
            correlated_lattice(schema, 0, CORR)
