"""Tests for selection analysis (repro.analysis.explain)."""

import pytest

from repro.algorithms import FIT_PAPER, RGreedy
from repro.analysis import explain
from repro.datasets.paper_figure2 import FIGURE2_SPACE


@pytest.fixture
def fig2_explanation(fig2_g):
    result = RGreedy(2, fit=FIT_PAPER).run(fig2_g, FIGURE2_SPACE)
    return result, explain(fig2_g, result.selected)


class TestExplain:
    def test_benefit_matches_selection_result(self, fig2_explanation):
        result, explanation = fig2_explanation
        assert explanation.benefit == pytest.approx(result.benefit)

    def test_plan_costs_consistent_with_tau(self, fig2_explanation):
        __, explanation = fig2_explanation
        total = sum(p.frequency * p.cost for p in explanation.plans)
        assert total == pytest.approx(explanation.tau)

    def test_every_query_has_a_plan(self, fig2_g, fig2_explanation):
        __, explanation = fig2_explanation
        assert len(explanation.plans) == fig2_g.n_queries

    def test_winner_is_selected_structure(self, fig2_explanation):
        result, explanation = fig2_explanation
        for plan in explanation.plans:
            if plan.structure is not None:
                assert plan.structure in result.selected
                assert plan.cost < plan.default_cost

    def test_raw_fallback_queries_unimproved(self, fig2_explanation):
        __, explanation = fig2_explanation
        for plan in explanation.plans:
            if plan.structure is None:
                assert plan.cost == plan.default_cost
                assert plan.speedup == 1.0

    def test_coverage_between_zero_and_one(self, fig2_explanation):
        __, explanation = fig2_explanation
        assert 0.0 <= explanation.coverage() <= 1.0

    def test_attributed_benefits_sum_to_total(self, fig2_explanation):
        __, explanation = fig2_explanation
        attributed = sum(c.benefit_attributed for c in explanation.contributions)
        assert attributed == pytest.approx(explanation.benefit)

    def test_marginal_loss_nonnegative(self, fig2_explanation):
        __, explanation = fig2_explanation
        for contribution in explanation.contributions:
            assert contribution.marginal_loss >= -1e-9

    def test_marginal_loss_at_least_attributed_for_indexes(self, fig2_explanation):
        """Dropping an index loses at least the queries it uniquely wins
        (they fall back to the next-best plan, possibly cheaper than
        default, so loss <= attributed; for this instance every winner is
        unique so they are equal)."""
        __, explanation = fig2_explanation
        for c in explanation.contributions:
            if c.name.startswith("I"):
                assert c.marginal_loss == pytest.approx(c.benefit_attributed)

    def test_view_marginal_includes_orphaned_indexes(self, fig2_g):
        result = RGreedy(2, fit=FIT_PAPER).run(fig2_g, FIGURE2_SPACE)
        explanation = explain(fig2_g, result.selected)
        v4 = next(c for c in explanation.contributions if c.name == "V4")
        # dropping V4 also drops I4,* — the loss covers the whole bundle
        assert v4.marginal_loss >= 41 + 21 * 3 - 1e-9

    def test_inadmissible_selection_rejected(self, fig2_g):
        with pytest.raises(ValueError, match="not admissible"):
            explain(fig2_g, ["I2,1"])

    def test_empty_selection(self, fig2_g):
        explanation = explain(fig2_g, [])
        assert explanation.benefit == 0.0
        assert explanation.coverage() == 0.0

    def test_table_renders(self, fig2_explanation):
        __, explanation = fig2_explanation
        text = explanation.table()
        assert "query plans" in text
        assert "structure contributions" in text

    def test_tpcd_explanation(self, tpcd_g):
        result = RGreedy(1, fit=FIT_PAPER).run(tpcd_g, 25e6, seed=("psc",))
        explanation = explain(tpcd_g, result.selected)
        assert explanation.coverage() > 0.8
        # the three fat psc indexes carry most of the load
        top = explanation.contributions[0]
        assert "psc" in top.name


class TestCompare:
    @pytest.fixture
    def comparison(self, tpcd_g):
        from repro.algorithms import TwoStep
        from repro.analysis import compare

        two = TwoStep(0.5).run(tpcd_g, 25e6, seed=("psc",))
        one = RGreedy(1, fit=FIT_PAPER).run(tpcd_g, 25e6, seed=("psc",))
        return two, one, compare(tpcd_g, two.selected, one.selected)

    def test_tau_matches_selection_results(self, comparison):
        two, one, cmp = comparison
        assert cmp.tau_a == pytest.approx(two.tau)
        assert cmp.tau_b == pytest.approx(one.tau)

    def test_one_step_wins_on_tpcd(self, comparison):
        __, __, cmp = comparison
        assert cmp.tau_ratio < 0.7  # the ~40% improvement

    def test_structural_diff_partitions(self, comparison):
        two, one, cmp = comparison
        assert set(cmp.only_in_a) | set(cmp.shared) == set(two.selected)
        assert set(cmp.only_in_b) | set(cmp.shared) == set(one.selected)
        assert not set(cmp.only_in_a) & set(cmp.only_in_b)

    def test_deltas_sorted_by_magnitude(self, comparison):
        __, __, cmp = comparison
        gaps = [abs(a - b) for __q, a, b in cmp.query_deltas]
        assert gaps == sorted(gaps, reverse=True)

    def test_identical_selections_have_no_deltas(self, fig2_g):
        from repro.analysis import compare

        result = RGreedy(2, fit=FIT_PAPER).run(fig2_g, FIGURE2_SPACE)
        cmp = compare(fig2_g, result.selected, result.selected)
        assert cmp.query_deltas == ()
        assert cmp.tau_ratio == pytest.approx(1.0)

    def test_table_renders(self, comparison):
        __, __, cmp = comparison
        text = cmp.table()
        assert "only in A" in text and "cost under B" in text
