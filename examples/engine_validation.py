"""End-to-end: select, materialize, execute — and check the cost model.

This example closes the loop the paper leaves implicit:

1. generate a small skewed, correlated fact table;
2. run inner-level greedy on the cube's query-view graph (with *exact*
   sizes measured from the data);
3. physically materialize the selected views and build B+trees for the
   selected indexes;
4. execute every slice query through the executor's best plan and compare
   the measured rows-processed against the algorithm's predicted τ.

Run:  python examples/engine_validation.py
"""

import numpy as np

from repro import CubeSchema, Dimension, InnerLevelGreedy, LinearCostModel, QueryViewGraph
from repro.core.lattice import CubeLattice
from repro.core.query import enumerate_slice_queries
from repro.cube.generator import generate_fact_table
from repro.engine import Catalog, Executor
from repro.estimation import exact_sizes_from_rows
from repro.experiments.engine_validation import format_validation, run_validation


def main():
    print("Part 1 — per-plan validation of c(Q, V, J) (paper Section 4.1.1):\n")
    rows = run_validation()
    print(format_validation(rows))

    print("\nPart 2 — selection → materialization → execution round trip:\n")
    schema = CubeSchema([Dimension("a", 30), Dimension("b", 20), Dimension("c", 10)])
    fact = generate_fact_table(schema, 4_000, rng=3, skew={"b": 0.7})
    lattice = CubeLattice.from_estimator(schema, exact_sizes_from_rows(schema, fact.columns))
    graph = QueryViewGraph.from_cube(lattice)
    top = lattice.label(lattice.top)
    budget = lattice.size(lattice.top) + 0.3 * (graph.total_space() - lattice.size(lattice.top))

    result = InnerLevelGreedy(fit="strict").run(graph, budget, seed=(top,))
    print(result.table())

    catalog = Catalog(fact)
    for name in result.selected:
        struct = graph.structure(name)
        if struct.is_view:
            catalog.materialize(struct.payload)
    for name in result.selected:
        struct = graph.structure(name)
        if struct.is_index:
            catalog.build_index(struct.payload)
    print(f"\nmaterialized: {catalog}")
    print(f"algorithm's space accounting: {result.space_used:.0f} rows "
          f"(catalog: {catalog.total_rows()} rows)")

    executor = Executor(catalog, cost_model=LinearCostModel(lattice))
    rng = np.random.default_rng(0)
    measured = []
    for query in enumerate_slice_queries(schema.names):
        values = {}
        if query.selection:
            row = int(rng.integers(0, fact.n_rows))
            values = {a: int(fact.column(a)[row]) for a in query.selection}
        res = executor.execute(query, values)
        measured.append(res.rows_processed)
    print(f"\nexecuted all {len(measured)} slice queries; "
          f"mean measured rows: {np.mean(measured):.0f} "
          f"(algorithm predicted avg {result.average_query_cost:.0f})")


if __name__ == "__main__":
    main()
