"""SQL workbench: drive the whole stack with SQL statements.

Creates a cube, advises a selection, materializes it through the
lattice-aware load pipeline, answers SQL queries through the planner
(showing each EXPLAIN), persists the catalog to disk, reloads it, and
proves the reloaded warehouse answers identically.

Run:  python examples/sql_workbench.py
"""

import tempfile
from pathlib import Path

from repro import CubeSchema, Dimension, InnerLevelGreedy, LinearCostModel, QueryViewGraph
from repro.core.lattice import CubeLattice
from repro.core.lattice_draw import draw_lattice
from repro.cube.generator import generate_fact_table
from repro.engine import Catalog, Executor, load_catalog, materialize_selection, save_catalog
from repro.estimation import exact_sizes_from_rows
from repro.sql import parse_query, run_sql


def main():
    schema = CubeSchema(
        [Dimension("region", 8), Dimension("product", 40), Dimension("month", 12)],
        measure="sales",
    )
    fact = generate_fact_table(schema, 6_000, rng=1, skew={"product": 0.8})
    lattice = CubeLattice.from_estimator(
        schema, exact_sizes_from_rows(schema, fact.columns)
    )
    print("the cube lattice:\n")
    print(draw_lattice(lattice))

    graph = QueryViewGraph.from_cube(lattice)
    top = lattice.label(lattice.top)
    budget = lattice.size(lattice.top) + 0.3 * (
        graph.total_space() - lattice.size(lattice.top)
    )
    result = InnerLevelGreedy(fit="strict").run(graph, budget, seed=(top,))
    print(f"\nadvised selection ({result.space_used:.0f} rows): "
          f"{', '.join(result.selected)}")

    catalog = Catalog(fact)
    views = [graph.structure(n).payload for n in result.selected
             if graph.structure(n).is_view]
    indexes = [graph.structure(n).payload for n in result.selected
               if graph.structure(n).is_index]
    report = materialize_selection(catalog, views, indexes)
    print(f"loaded via the lattice pipeline: {report.rows_scanned:,} rows scanned "
          f"(naively from raw: {catalog.fact.n_rows * len(views):,})")

    executor = Executor(catalog, cost_model=LinearCostModel(lattice))
    statements = [
        "SELECT region, SUM(sales) FROM cube GROUP BY region",
        "SELECT product, SUM(sales) FROM cube WHERE region = 3 GROUP BY product",
        "SELECT SUM(sales) FROM cube WHERE region = 2 AND month = 5",
    ]
    for statement in statements:
        parsed = parse_query(statement, schema=schema)
        plans = executor.explain(parsed.query)
        answer = run_sql(executor, statement)
        print(f"\nSQL> {statement}")
        print(f"  plan: {plans[0]}  (of {len(plans)} candidates)")
        print(f"  rows processed: {answer.rows_processed}; "
              f"groups returned: {answer.n_groups}")

    with tempfile.TemporaryDirectory() as tmp:
        save_catalog(catalog, Path(tmp) / "warehouse")
        reloaded = load_catalog(Path(tmp) / "warehouse")
        check = Executor(reloaded, cost_model=LinearCostModel(lattice))
        again = run_sql(check, statements[1])
        original = run_sql(executor, statements[1])
        assert again.groups == original.groups
        print(f"\ncatalog persisted and reloaded: {reloaded} — "
              "identical answers after the round trip.")


if __name__ == "__main__":
    main()
