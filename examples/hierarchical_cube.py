"""Hierarchical dimensions: selection on a time/customer/product cube.

The paper's flat lattice generalizes to dimension hierarchies ([HRU96]):
a view picks one *level* per dimension (day/month/year for time,
customer/nation for the customer dimension).  The selection algorithms
run unchanged on the compiled query-view graph — this example shows the
inner-level greedy choosing, say, a `month,nation` summary with an index
over materializing the raw day-level data everywhere.

Run:  python examples/hierarchical_cube.py
"""

from repro import (
    HierarchicalCube,
    Hierarchy,
    InnerLevelGreedy,
    Level,
    LocalSearchRefiner,
    RGreedy,
    hierarchical_lattice_graph,
)


def main():
    cube = HierarchicalCube(
        [
            Hierarchy("time", [Level("day", 730), Level("month", 24),
                               Level("year", 2)]),
            Hierarchy("cust", [Level("customer", 2_000), Level("nation", 25)]),
            Hierarchy.flat("product", 300),
        ],
        raw_rows=200_000,
    )
    print(cube)
    print(f"lattice points: {cube.n_views()} (flat cube would have 8)\n")

    graph = hierarchical_lattice_graph(cube)
    print(f"compiled query-view graph: {graph}")

    top = cube.label(cube.top())
    top_rows = cube.size(cube.top())
    budget = top_rows + 0.15 * (graph.total_space() - top_rows)
    print(f"space budget: {budget:,.0f} rows (top view alone: {top_rows:,.0f})\n")

    result = InnerLevelGreedy(fit="strict").run(graph, budget, seed=(top,))
    print(result.table())
    print()
    print(f"average query cost: {result.average_query_cost:,.0f} rows "
          f"(raw data: {top_rows:,.0f})")

    refined = LocalSearchRefiner().refine(
        graph, budget, result.selected, protected=(top,)
    )
    gain = refined.benefit - result.benefit
    print(f"\nlocal-search refinement: {'+' if gain >= 0 else ''}{gain:,.0f} benefit "
          f"({len(refined.stages)} moves)")

    one = RGreedy(1, fit="strict").run(graph, budget, seed=(top,))
    print(f"for comparison, 1-greedy: avg {one.average_query_cost:,.0f} rows")


if __name__ == "__main__":
    main()
