"""Closed-loop advising: log → estimate → select → drift → re-advise.

The advisor's frequencies come from somewhere; this example shows the
full loop a production deployment would run:

1. observe a query log (synthetic here, Zipf-skewed patterns);
2. estimate the generic-query frequency distribution from it;
3. advise a selection for those frequencies;
4. let the workload drift, observe a new log;
5. re-advise, and *compare* the two selections — which structures the
   drift added/dropped, and what each workload costs under each
   selection.

Run:  python examples/closed_loop_advisor.py
"""

from repro import CubeSchema, Dimension, QueryViewGraph, RGreedy, analytical_lattice, compare
from repro.cube.query_log import estimate_frequencies, generate_query_log
from repro.cube.workload import uniform_workload


def advise_from_log(schema, lattice, log, budget, top):
    freqs = estimate_frequencies(
        log, smoothing=0.1, universe=uniform_workload(schema.names)
    )
    graph = QueryViewGraph.from_cube(
        lattice, queries=list(freqs), frequencies=freqs
    )
    result = RGreedy(2).run(graph, budget, seed=(top,))
    return graph, result


def main():
    schema = CubeSchema(
        [Dimension("store", 30), Dimension("item", 80), Dimension("week", 20)]
    )
    lattice = analytical_lattice(schema, 0.15 * schema.dense_cells)
    top = lattice.label(lattice.top)
    budget = lattice.size(lattice.top) * 2.2

    log_v1 = generate_query_log(schema, 2_000, rng=1, zipf_exponent=1.3)
    graph_v1, selection_v1 = advise_from_log(schema, lattice, log_v1, budget, top)
    print("=== epoch 1")
    print(f"observed {len(log_v1)} queries; advised: "
          f"{', '.join(selection_v1.selected)}")
    print(f"avg query cost under epoch-1 workload: "
          f"{selection_v1.average_query_cost:,.0f} rows")

    # the workload drifts: different hot patterns
    log_v2 = generate_query_log(schema, 2_000, rng=99, zipf_exponent=1.3)
    graph_v2, selection_v2 = advise_from_log(schema, lattice, log_v2, budget, top)
    print("\n=== epoch 2 (after drift)")
    print(f"re-advised: {', '.join(selection_v2.selected)}")

    diff = compare(graph_v2, selection_v1.selected, selection_v2.selected)
    print("\n=== what changed (evaluated under the epoch-2 workload)")
    print(diff.table(max_rows=8))
    print(f"\nkeeping the stale selection would cost "
          f"{diff.tau_a / diff.tau_b:.2f}x the re-advised one.")


if __name__ == "__main__":
    main()
