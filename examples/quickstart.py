"""Quickstart: select views and indexes for the TPC-D cube.

Builds the paper's TPC-D query-view graph (Figure 1 sizes, 27 slice
queries, all fat indexes) and runs the inner-level greedy algorithm with
25M rows of space, printing the selection stage by stage.

Run:  python examples/quickstart.py
"""

from repro import InnerLevelGreedy, TPCD_SPACE_BUDGET, tpcd_graph

def main():
    graph = tpcd_graph()
    print(f"TPC-D query-view graph: {graph}")
    print(f"space budget: {TPCD_SPACE_BUDGET / 1e6:g}M rows")
    print(f"materializing everything would need {graph.total_space() / 1e6:.1f}M rows")
    print()

    # The top view psc is the base data: always materialized, counted
    # against the budget (the [HRU96] convention the paper follows).
    algorithm = InnerLevelGreedy()
    result = algorithm.run(graph, TPCD_SPACE_BUDGET, seed=("psc",))

    print(result.table())
    print()
    print(f"average query cost: {result.average_query_cost / 1e6:.2f}M rows "
          f"(vs {result.initial_tau / result.total_frequency / 1e6:.1f}M from raw data)")


if __name__ == "__main__":
    main()
