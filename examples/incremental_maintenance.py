"""Incremental maintenance: keeping a selection fresh as facts arrive.

The space budget of Example 2.1 is equivalently a *load time* budget —
every materialized structure must be refreshed when the warehouse loads
new facts.  This example materializes a selection, streams three delta
batches through :func:`repro.engine.apply_delta`, verifies the views stay
exactly consistent with a from-scratch recomputation, and reports the
measured maintenance cost (rows touched) next to the analytical estimate.

Run:  python examples/incremental_maintenance.py
"""

import numpy as np

from repro import CubeSchema, Dimension, InnerLevelGreedy, QueryViewGraph
from repro.core.lattice import CubeLattice
from repro.core.view import View
from repro.cube.generator import generate_fact_table
from repro.engine import Catalog, apply_delta, estimate_refresh_cost, materialize_view
from repro.estimation.sizes import exact_sizes_from_rows


def main():
    schema = CubeSchema([Dimension("store", 40), Dimension("item", 120),
                         Dimension("week", 52)])
    fact = generate_fact_table(schema, 8_000, rng=4, skew={"item": 0.6})
    lattice = CubeLattice.from_estimator(
        schema, exact_sizes_from_rows(schema, fact.columns)
    )
    graph = QueryViewGraph.from_cube(lattice)
    top = lattice.label(lattice.top)
    budget = lattice.size(lattice.top) + 0.25 * (
        graph.total_space() - lattice.size(lattice.top)
    )
    selection = InnerLevelGreedy(fit="strict").run(graph, budget, seed=(top,))
    print(f"selection: {', '.join(selection.selected)}\n")

    catalog = Catalog(fact)
    for name in selection.selected:
        struct = graph.structure(name)
        if struct.is_view:
            catalog.materialize(struct.payload)
    for name in selection.selected:
        struct = graph.structure(name)
        if struct.is_index:
            catalog.build_index(struct.payload)
    print(f"materialized: {catalog}")

    view_rows = {
        **{str(v): catalog.view_table(v).n_rows for v in catalog.views()},
        **{str(i): catalog.view_table(i.view).n_rows for i in catalog.indexes()},
    }
    membership = {
        **{str(v): False for v in catalog.views()},
        **{str(i): True for i in catalog.indexes()},
    }

    rng = np.random.default_rng(10)
    for batch in range(1, 4):
        delta = generate_fact_table(schema, 500, rng=int(rng.integers(1e6)))
        estimate = estimate_refresh_cost(view_rows, membership, delta.n_rows)
        report = apply_delta(catalog, delta.columns, delta.measures)
        print(f"\nbatch {batch}: {report.delta_rows} new facts")
        print(f"  views refreshed: {len(report.views_refreshed)}, "
              f"indexes rebuilt: {len(report.indexes_rebuilt)}")
        print(f"  rows touched: {report.total_rows_touched:,} "
              f"(analytical estimate: {estimate:,.0f})")

        # consistency check against recomputation from scratch
        worst = 0.0
        for view in catalog.views():
            recomputed = dict(materialize_view(catalog.fact, view).iter_rows())
            incremental = dict(catalog.view_table(view).iter_rows())
            assert recomputed.keys() == incremental.keys()
            for key, value in recomputed.items():
                worst = max(worst, abs(incremental[key] - value))
        print(f"  max deviation vs full recompute: {worst:.2e}")

    print("\nincremental refresh stayed exactly consistent across all batches.")


if __name__ == "__main__":
    main()
