"""TPC-D precomputation advisor: the paper's Section 2 walkthrough.

Reproduces, end to end, the motivating example of the paper:

1. the Figure 1 lattice and the size of every subcube;
2. the Section 4.1.1 worked cost example (view psc + index I_scp answers
   γ_p σ_s at |psc| / |s| = 600 rows);
3. Example 2.1: two-step vs one-step selection with 25M rows of space,
   including where each strategy spends its space;
4. the diminishing-returns observation (the ~55M rows of structures left
   unmaterialized add virtually nothing).

Run:  python examples/tpcd_advisor.py
"""

from repro import LinearCostModel, SliceQuery, View
from repro.core.index import Index
from repro.datasets.tpcd import TPCD_SPACE_BUDGET, tpcd_lattice
from repro.estimation import total_materialization_size
from repro.experiments.example21 import format_example21, run_example21


def show_lattice(lattice):
    print("Figure 1 — the TPC-D view lattice:")
    for r in range(lattice.n_dims, -1, -1):
        row = "   ".join(
            f"{lattice.label(v)}={lattice.size(v) / 1e6:g}M" for v in lattice.level(r)
        )
        print(f"  level {r}: {row}")
    total = total_materialization_size(lattice)
    print(f"  materializing every view and fat index: {total / 1e6:.0f}M rows "
          f"(paper: around 80M)\n")


def show_cost_example(lattice):
    model = LinearCostModel(lattice)
    psc = View.of("p", "s", "c")
    query = SliceQuery(groupby=["p"], selection=["s"])
    index = Index(psc, ("s", "c", "p"))
    cost = model.cost(query, psc, index)
    print("Section 4.1.1 — worked cost example:")
    print(f"  query {query} via view psc with index I_scp(psc): "
          f"|psc| / |s| = {lattice.size(psc):g} / {lattice.size(View.of('s')):g} "
          f"= {cost:g} rows (paper: 600)")
    print(f"  same query without a usable index: {model.cost(query, psc):g} rows\n")


def main():
    lattice = tpcd_lattice()
    show_lattice(lattice)
    show_cost_example(lattice)
    result = run_example21(space=TPCD_SPACE_BUDGET)
    print(format_example21(result))
    print()
    for name in ("two-step (50/50)", "1-greedy"):
        picks = result.results[name].selected
        print(f"{name} selection: {', '.join(picks)}")


if __name__ == "__main__":
    main()
