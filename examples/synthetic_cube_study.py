"""Synthetic cube study: how close is greedy to optimal? (Section 6)

Builds a 4-dimensional cube with the analytical [HRU96] size model, runs
the whole algorithm family across a range of space budgets, and prints the
benefit each algorithm achieves as a fraction of the best known solution —
the experiment behind the paper's claim that low-r greedy is near-optimal
in practice.

Run:  python examples/synthetic_cube_study.py
"""

from repro import (
    BranchAndBoundOptimal,
    CubeSchema,
    Dimension,
    HRUGreedy,
    InnerLevelGreedy,
    QueryViewGraph,
    RGreedy,
    analytical_lattice,
)
from repro.algorithms import SearchBudgetExceeded
from repro.core.benefit import BenefitEngine
from repro.experiments.reporting import ascii_table


def main():
    schema = CubeSchema(
        [Dimension("a", 12), Dimension("b", 10), Dimension("c", 8), Dimension("d", 6)]
    )
    raw_rows = 0.2 * schema.dense_cells
    lattice = analytical_lattice(schema, raw_rows)
    graph = QueryViewGraph.from_cube(lattice)
    engine = BenefitEngine(graph)
    top = lattice.label(lattice.top)
    top_space = lattice.size(lattice.top)
    print(f"cube: {schema}")
    print(f"raw rows: {raw_rows:.0f}; graph: {graph}\n")

    algorithms = {
        "HRU (no indexes)": HRUGreedy(),
        "1-greedy": RGreedy(1),
        "2-greedy": RGreedy(2),
        "3-greedy": RGreedy(3),
        "inner-level": InnerLevelGreedy(fit="strict"),
    }

    rows = []
    for fraction in (0.1, 0.25, 0.5):
        budget = top_space + fraction * (graph.total_space() - top_space)
        benefits = {
            name: algo.run(engine, budget, seed=(top,)).benefit
            for name, algo in algorithms.items()
        }
        try:
            opt = BranchAndBoundOptimal(node_limit=2_000_000).run(
                engine, budget, seed=(top,)
            )
            reference, ref_kind = opt.benefit, "exact"
        except SearchBudgetExceeded:
            reference, ref_kind = max(benefits.values()), "best-found"
        rows.append(
            [f"{fraction:.0%}"]
            + [f"{benefits[name] / reference:.3f}" for name in algorithms]
            + [ref_kind]
        )

    print(
        ascii_table(
            ["space", *algorithms.keys(), "reference"],
            rows,
            title="benefit as a fraction of the best known solution",
        )
    )
    print("\nNote the HRU column: ignoring indexes leaves substantial benefit "
          "on the table — the paper's core argument.")


if __name__ == "__main__":
    main()
