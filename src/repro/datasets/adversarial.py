"""Adversarial instances: how bad can greedy get?

Two instance families back the paper's worst-case statements:

* :func:`one_greedy_trap` — "the performance guarantee of the 1-greedy is
  0; it is possible to construct examples where the ratio of the benefit
  of the 1-greedy choice to that of the optimal choice is arbitrarily
  small" (Section 6).  The family has a decoy view whose immediate
  benefit narrowly beats every other view, while the real value sits in
  the indexes of a zero-benefit view that 1-greedy therefore never
  unlocks.  As ``n_indexes`` grows, 1-greedy/optimal → 0.

* :func:`r_greedy_stress` — a generalization that hides value behind
  bundles *wider* than ``r`` (a view whose indexes each contribute only
  when the view plus many siblings are present cannot be built this way —
  benefits are subadditive — so instead the family dilutes each bundle's
  density below a decoy's, stressing r-greedy toward its bound without
  reaching it exactly; the paper states matching instances exist but does
  not print one).

Both are ordinary :class:`~repro.core.qvgraph.QueryViewGraph` instances;
tests drive 1-greedy/2-greedy/optimal over the families and check the
ratio trends.
"""

from __future__ import annotations

from repro.core.qvgraph import QueryViewGraph


def one_greedy_trap(n_indexes: int, index_value: float = 10.0) -> QueryViewGraph:
    """The 1-greedy trap with ``n_indexes`` hidden-value indexes.

    Structures (all unit space):

    * ``decoy`` — a view with immediate benefit ``index_value + 1``;
    * ``trap`` — a view with zero immediate benefit and ``n_indexes``
      indexes, each worth ``index_value`` once the view is selected.

    With space ``n_indexes + 1``:

    * optimal selects ``trap`` + all its indexes:
      benefit ``n_indexes * index_value``;
    * 1-greedy selects ``decoy`` first (the only positive-benefit
      structure), then nothing else has positive benefit — indexes are
      locked behind the unselected ``trap``: benefit ``index_value + 1``.

    The ratio ``(index_value + 1) / (n_indexes * index_value)`` vanishes
    as ``n_indexes`` grows.
    """
    if n_indexes < 1:
        raise ValueError("n_indexes must be >= 1")
    if index_value <= 0:
        raise ValueError("index_value must be positive")
    g = QueryViewGraph()
    g.add_view("decoy", space=1.0)
    g.add_query("q:decoy", default_cost=index_value + 2.0)
    g.add_edge("q:decoy", "decoy", cost=1.0)

    g.add_view("trap", space=1.0)
    for i in range(1, n_indexes + 1):
        idx = f"trap-idx-{i}"
        g.add_index("trap", idx, space=1.0)
        q = f"q:trap-{i}"
        g.add_query(q, default_cost=index_value + 1.0)
        g.add_edge(q, idx, cost=1.0)
    g.validate()
    return g


def trap_space(n_indexes: int) -> float:
    """The budget under which the trap's ratio statement holds."""
    return float(n_indexes + 1)


def r_greedy_stress(r: int, n_bundles: int = 4, scale: float = 100.0) -> QueryViewGraph:
    """A family that stresses r-greedy below 1 for a given ``r``.

    Each *bundle* is a view with ``r + 1`` indexes of equal per-index
    value; a single decoy pair (view + one index) has density just above
    any ``r``-subset of a bundle, so r-greedy opens with the decoy and
    pays an opportunity cost the optimum avoids.  The construction keeps
    r-greedy's ratio visibly below 1 while never violating Theorem 5.1's
    bound — both facts are asserted in the tests.
    """
    if r < 1:
        raise ValueError("r must be >= 1")
    if n_bundles < 1:
        raise ValueError("n_bundles must be >= 1")
    g = QueryViewGraph()

    # decoy: per-unit density inside the window
    #   ((r−1)/r · v,  (r+1)/(r+2) · v)
    # — above the best r-subset of a bundle (so r-greedy opens with it)
    # but below a *full* bundle (so the optimum skips it).
    bundle_index_value = scale
    decoy_value = bundle_index_value * ((r - 1) / r + (r + 1) / (r + 2))
    g.add_view("decoy", space=1.0)
    g.add_index("decoy", "decoy-idx", space=1.0)
    g.add_query("q:decoy", default_cost=decoy_value + 1.0)
    g.add_edge("q:decoy", "decoy-idx", cost=1.0)

    for b in range(1, n_bundles + 1):
        view = f"B{b}"
        g.add_view(view, space=1.0)
        for i in range(1, r + 2):
            idx = f"B{b}-idx-{i}"
            g.add_index(view, idx, space=1.0)
            q = f"q:B{b}-{i}"
            g.add_query(q, default_cost=bundle_index_value + 1.0)
            g.add_edge(q, idx, cost=1.0)
    g.validate()
    return g
