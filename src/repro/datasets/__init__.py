"""Reference instances: the TPC-D running example and Figure 2."""

from repro.datasets.paper_figure2 import (
    FIGURE2_SPACE,
    PAPER_ANCHORS,
    PAPER_INCONSISTENT,
    figure2_graph,
)
from repro.datasets.tpcd import (
    TPCD_CARDINALITIES,
    TPCD_RAW_ROWS,
    TPCD_SPACE_BUDGET,
    TPCD_VIEW_ROWS,
    tpcd_fact_table,
    tpcd_graph,
    tpcd_lattice,
    tpcd_schema,
)

__all__ = [
    "FIGURE2_SPACE",
    "PAPER_ANCHORS",
    "PAPER_INCONSISTENT",
    "TPCD_CARDINALITIES",
    "TPCD_RAW_ROWS",
    "TPCD_SPACE_BUDGET",
    "TPCD_VIEW_ROWS",
    "figure2_graph",
    "tpcd_fact_table",
    "tpcd_graph",
    "tpcd_lattice",
    "tpcd_schema",
]
