"""TPC-D with its real dimension hierarchies.

The flat running example (Section 2) projects TPC-D down to
part/supplier/customer.  The actual benchmark schema carries hierarchies
the paper's framework (via [HRU96]) handles directly:

* ``customer → c_nation → c_region`` (100k → 25 → 5)
* ``supplier → s_nation → s_region`` (10k → 25 → 5)
* ``part`` stays flat (200k).

This module builds the hierarchical cube and its query-view graph so the
paper's algorithms can be exercised on the *full* lattice
(``2 · 4 · 4 = 32`` lattice points instead of 8).
"""

from __future__ import annotations

from repro.core.hierarchy import (
    HierarchicalCube,
    Hierarchy,
    Level,
    hierarchical_lattice_graph,
)
from repro.core.qvgraph import QueryViewGraph
from repro.datasets.tpcd import TPCD_RAW_ROWS

#: TPC-D nation/region cardinalities (25 nations in 5 regions).
TPCD_NATIONS = 25
TPCD_REGIONS = 5


def tpcd_hierarchical_cube(raw_rows: float = TPCD_RAW_ROWS) -> HierarchicalCube:
    """The hierarchical TPC-D cube (part; supplier and customer chains)."""
    return HierarchicalCube(
        [
            Hierarchy.flat("p", 200_000),
            Hierarchy(
                "supplier",
                [
                    Level("s", 10_000),
                    Level("s_nation", TPCD_NATIONS),
                    Level("s_region", TPCD_REGIONS),
                ],
            ),
            Hierarchy(
                "customer",
                [
                    Level("c", 100_000),
                    Level("c_nation", TPCD_NATIONS),
                    Level("c_region", TPCD_REGIONS),
                ],
            ),
        ],
        raw_rows=raw_rows,
    )


def tpcd_hierarchical_graph(
    raw_rows: float = TPCD_RAW_ROWS,
    max_fat_indexes_per_view: int | None = None,
) -> QueryViewGraph:
    """The query-view graph of the hierarchical TPC-D cube."""
    cube = tpcd_hierarchical_cube(raw_rows)
    return hierarchical_lattice_graph(
        cube, max_fat_indexes_per_view=max_fat_indexes_per_view
    )
