"""The Figure 2 instance of Examples 5.1 and 5.2 — reconstructed.

The paper illustrates the r-greedy family on a hand-built query-view graph
with five unit-space views and unit-space indexes, space budget ``S = 7``.
The published scan of the example is partly garbled and internally
inconsistent (see DESIGN.md §5), so this module ships a *reconstruction*
that reproduces every self-consistent anchor of the printed traces
exactly:

* absolute view benefits ``(V1..V5) = (0, 0, 6, 5, 7)``;
* 1-greedy selects ``{V5, I5,1..I5,4, V3, V4}``, absolute benefit **46**;
* 2-/3-greedy first pick ``{V1, I1,1}`` with benefit **90** (45/unit);
* 2-greedy then picks ``{V4, I4,1}`` (benefit 41, 20.5/unit, narrowly
  beating the ``{V2, I2,i}`` pairs at 20/unit) and finishes with V4's
  other indexes (21 each): total **194**;
* the 7-unit optimum is V2 with six of its indexes, benefit **300**;
* inner-level greedy picks ``{V1, I1,1}`` then V2 with six indexes
  (incremental benefit 240 = 34.3/unit): total **330** on 9 units;
* the 9-unit optimum is V2 with all eight indexes, benefit **400**.

Structure of the instance (all structures cost 1 unit of space):

=====  =======  ==========================================================
view   indexes  benefit sources (queries; reduction via the structure)
=====  =======  ==========================================================
V1     1        one private query worth 10 via (V1, I1,1), plus 10 on each
                of V2's eight shared queries
V2     8        per index i: one shared query worth 10 (also covered by
                (V1, I1,1)) and one private query worth 40
V3     4        one query worth 6 via the view; one worth 4 per index
V4     4        one query worth 5 via the view; 36 via I4,1; 21 via each
                of I4,2..I4,4
V5     4        one query worth 7 via the view; one worth 7 per index
=====  =======  ==========================================================
"""

from __future__ import annotations

from repro.core.qvgraph import QueryViewGraph

#: The space budget used throughout Example 5.1.
FIGURE2_SPACE = 7

#: Anchor values recoverable from the paper's printed traces.
PAPER_ANCHORS = {
    "1-greedy": 46,
    "2-greedy": 194,
    "first-pick": 90,
    "optimal(7)": 300,
    "inner-level": 330,
    "optimal(9)": 400,
}

#: Values the paper prints that are *not* reproducible from any instance
#: consistent with its other numbers (see DESIGN.md §5); our reconstruction
#: yields 250 for 3-greedy.
PAPER_INCONSISTENT = {"3-greedy": 226}


def figure2_graph() -> QueryViewGraph:
    """Build the reconstructed Figure 2 query-view graph."""
    g = QueryViewGraph()

    # views, all unit space
    for v in range(1, 6):
        g.add_view(f"V{v}", space=1.0)

    index_counts = {1: 1, 2: 8, 3: 4, 4: 4, 5: 4}
    for v, count in index_counts.items():
        for i in range(1, count + 1):
            g.add_index(f"V{v}", f"I{v},{i}", space=1.0)

    # V1: worthless alone; its single index is worth 90 in total.
    g.add_query("q:V1-own", default_cost=11)
    g.add_edge("q:V1-own", "I1,1", cost=1)

    # V2: worthless alone; each index pair is worth 50 absolute
    # (10 shared with (V1, I1,1) + 40 private).
    for i in range(1, 9):
        shared = f"q:V2-shared-{i}"
        g.add_query(shared, default_cost=11)
        g.add_edge(shared, "I1,1", cost=1)
        g.add_edge(shared, f"I2,{i}", cost=1)

        private = f"q:V2-own-{i}"
        g.add_query(private, default_cost=41)
        g.add_edge(private, f"I2,{i}", cost=1)

    # V3: 6 via the view, 4 per index.
    g.add_query("q:V3-own", default_cost=7)
    g.add_edge("q:V3-own", "V3", cost=1)
    for i in range(1, 5):
        name = f"q:V3-idx-{i}"
        g.add_query(name, default_cost=5)
        g.add_edge(name, f"I3,{i}", cost=1)

    # V4: 5 via the view, 36 via I4,1, 21 via each later index.
    g.add_query("q:V4-own", default_cost=6)
    g.add_edge("q:V4-own", "V4", cost=1)
    g.add_query("q:V4-idx-1", default_cost=37)
    g.add_edge("q:V4-idx-1", "I4,1", cost=1)
    for i in range(2, 5):
        name = f"q:V4-idx-{i}"
        g.add_query(name, default_cost=22)
        g.add_edge(name, f"I4,{i}", cost=1)

    # V5: 7 via the view, 7 per index.
    g.add_query("q:V5-own", default_cost=8)
    g.add_edge("q:V5-own", "V5", cost=1)
    for i in range(1, 5):
        name = f"q:V5-idx-{i}"
        g.add_query(name, default_cost=8)
        g.add_edge(name, f"I5,{i}", cost=1)

    g.validate()
    return g
