"""The paper's TPC-D running example (Section 2, Figure 1).

TPC-D models a business warehouse with dimensions *part* (p), *supplier*
(s), and *customer* (c) and measure *sales*.  Figure 1 gives the row count
of every subcube:

    psc = 6M   pc = 6M    sc = 6M    ps = 0.8M
    p = 0.2M   c = 0.1M   s = 0.01M  none = 1

(Only ``ps`` deviates from the independence estimate, because in TPC-D
each part is supplied by about four suppliers — 0.2M parts × 4 ≈ 0.8M.)

Materializing all views and fat indexes needs "around 80M rows"; Example
2.1 gives the selection algorithms 25M rows of space.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.core.lattice import CubeLattice
from repro.core.qvgraph import QueryViewGraph
from repro.core.view import View
from repro.cube.generator import dense_fact_table, generate_fact_table
from repro.cube.schema import CubeSchema, Dimension
from repro.engine.table import FactTable

#: Dimension cardinalities of the scaled-down TPC-D schema the paper uses.
TPCD_CARDINALITIES = {"p": 200_000, "s": 10_000, "c": 100_000}

#: Raw fact rows (the ``psc`` subcube size).
TPCD_RAW_ROWS = 6_000_000

#: Figure 1: rows of every subcube.
TPCD_VIEW_ROWS: Mapping[View, float] = {
    View.of("p", "s", "c"): 6_000_000,
    View.of("p", "c"): 6_000_000,
    View.of("s", "c"): 6_000_000,
    View.of("p", "s"): 800_000,
    View.of("p"): 200_000,
    View.of("c"): 100_000,
    View.of("s"): 10_000,
    View.none(): 1,
}

#: Example 2.1's space budget, in rows.
TPCD_SPACE_BUDGET = 25_000_000

#: TPC-D correlation: each part is supplied by about this many suppliers.
TPCD_SUPPLIERS_PER_PART = 4


def tpcd_schema() -> CubeSchema:
    """The 3-dimensional TPC-D schema (p, s, c; measure ``sales``)."""
    return CubeSchema(
        [Dimension(name, card) for name, card in TPCD_CARDINALITIES.items()],
        measure="sales",
    )


def tpcd_lattice() -> CubeLattice:
    """The Figure 1 lattice with the paper's exact view sizes."""
    return CubeLattice(tpcd_schema(), TPCD_VIEW_ROWS)


def tpcd_graph(
    frequencies: Optional[Mapping] = None,
    index_universe: str = "fat",
) -> QueryViewGraph:
    """The full TPC-D query-view graph: 27 slice queries, 8 views, and all
    fat indexes, with linear-cost-model edges.

    ``frequencies`` optionally weights the queries (default equiprobable).
    """
    return QueryViewGraph.from_cube(
        tpcd_lattice(),
        frequencies=frequencies,
        index_universe=index_universe,
    )


#: Cardinalities of the serving fixtures: TPC-D's p/s/c plus *date* (d)
#: and *employee* (e) to reach 4 and 5 dimensions.  Deliberately tiny —
#: the dense d=5 cube is 720 rows, so serving tests run in milliseconds.
TPCD_SERVING_CARDINALITIES = {"p": 6, "s": 4, "c": 5, "d": 3, "e": 2}


def tpcd_serving_schema(n_dims: int = 4) -> CubeSchema:
    """The d-dimensional serving schema (p, s, c, then d, e)."""
    if not 3 <= n_dims <= len(TPCD_SERVING_CARDINALITIES):
        raise ValueError(
            f"n_dims must be in [3, {len(TPCD_SERVING_CARDINALITIES)}], got {n_dims}"
        )
    names = list(TPCD_SERVING_CARDINALITIES)[:n_dims]
    return CubeSchema(
        [Dimension(name, TPCD_SERVING_CARDINALITIES[name]) for name in names],
        measure="sales",
    )


def tpcd_serving_fact(
    n_dims: int = 4, rng=0, integral_measures: bool = False
) -> FactTable:
    """A **dense** TPC-D-shaped fact table for the serving fixtures.

    Density is the point: with every dimension combination present, the
    rows behind any bound index prefix equal ``|C| / |E|`` exactly, so
    replaying a workload through :mod:`repro.serve` must report actual
    rows scanned equal to the cost model's prediction on every query the
    selection answers (the acceptance criterion, not a tolerance check).

    ``integral_measures`` makes group sums order-invariant (exact
    integer-valued float64 arithmetic) — the divergent-serving fixtures
    need it because replicas answer from *different* structures and
    must still return byte-identical groups.
    """
    return dense_fact_table(
        tpcd_serving_schema(n_dims), rng=rng, integral_measures=integral_measures
    )


def tpcd_fact_table(scale: float = 0.001, rng=0) -> FactTable:
    """A scaled-down synthetic TPC-D fact table for engine runs.

    ``scale`` shrinks every cardinality and the row count by the same
    factor, preserving the relative shape (including the part→supplier
    fanout of ~4 that makes ``ps`` small).  The default produces a
    6 000-row cube that materializes in milliseconds.
    """
    if not 0 < scale <= 1:
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    schema = CubeSchema(
        [
            Dimension(name, max(2, round(card * scale)))
            for name, card in TPCD_CARDINALITIES.items()
        ],
        measure="sales",
    )
    n_rows = max(10, round(TPCD_RAW_ROWS * scale))
    return generate_fact_table(
        schema,
        n_rows,
        rng=rng,
        correlated={"s": ("p", TPCD_SUPPLIERS_PER_PART)},
    )
