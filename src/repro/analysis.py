"""Selection analysis: where does a selection's benefit come from?

``explain`` answers the questions a DBA asks after the advisor runs:
which structure serves each query and at what cost, which queries still
fall back to raw data, how much each structure actually contributes
(counting only queries it wins), and what marginal loss dropping any one
structure would cause.  The same numbers also power regression tests for
the selection algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.algorithms.base import GraphLike, as_engine
from repro.core.benefit import BenefitEngine


@dataclass(frozen=True)
class QueryPlan:
    """The winning plan for one query under a selection."""

    query: str
    structure: Optional[str]  # None = answered from raw data
    cost: float
    default_cost: float
    frequency: float

    @property
    def speedup(self) -> float:
        """Default cost over achieved cost (1.0 = no precomputation used)."""
        if self.cost <= 0:
            return float("inf")
        return self.default_cost / self.cost


@dataclass(frozen=True)
class StructureContribution:
    """How one selected structure earns its space."""

    name: str
    space: float
    queries_won: Tuple[str, ...]
    benefit_attributed: float  # Σ freq·(default − cost) over queries won
    marginal_loss: float  # τ increase if this structure alone were dropped

    @property
    def benefit_per_space(self) -> float:
        return self.benefit_attributed / self.space if self.space else 0.0


@dataclass
class SelectionExplanation:
    """Full explanation of a selection on a graph."""

    plans: List[QueryPlan]
    contributions: List[StructureContribution]
    tau: float
    initial_tau: float

    @property
    def benefit(self) -> float:
        return self.initial_tau - self.tau

    @property
    def raw_fallback_queries(self) -> List[str]:
        """Queries the selection does not improve at all."""
        return [p.query for p in self.plans if p.structure is None]

    def coverage(self) -> float:
        """Fraction of queries improved over raw data."""
        if not self.plans:
            return 0.0
        return 1.0 - len(self.raw_fallback_queries) / len(self.plans)

    def table(self, max_rows: int = 30) -> str:
        """Human-readable report."""
        from repro.experiments.reporting import ascii_table

        plan_rows = [
            [p.query, p.structure or "(raw data)", p.cost, f"{p.speedup:.1f}x"]
            for p in self.plans[:max_rows]
        ]
        parts = [
            ascii_table(
                ["query", "answered by", "cost", "speedup"],
                plan_rows,
                title=f"query plans ({len(self.plans)} queries, "
                f"{self.coverage():.0%} improved over raw)",
            )
        ]
        contrib_rows = [
            [
                c.name,
                c.space,
                len(c.queries_won),
                c.benefit_attributed,
                c.marginal_loss,
            ]
            for c in self.contributions
        ]
        parts.append(
            ascii_table(
                ["structure", "space", "queries won", "benefit", "marginal loss"],
                contrib_rows,
                title="structure contributions",
            )
        )
        return "\n\n".join(parts)


def explain(graph: GraphLike, selection: Sequence[str]) -> SelectionExplanation:
    """Explain a selection: per-query plans and per-structure value.

    ``selection`` must be admissible (indexes only with their views).
    """
    engine = as_engine(graph)
    ids = [engine.structure_id(name) for name in selection]
    if not engine.is_admissible(ids):
        raise ValueError("selection is not admissible (index without its view)")
    views_first = sorted(ids, key=lambda i: not engine.is_view[i])
    engine.commit(views_first)

    plans = _query_plans(engine, views_first)
    contributions = _structure_contributions(engine, views_first, plans)
    explanation = SelectionExplanation(
        plans=plans,
        contributions=contributions,
        tau=engine.tau(),
        initial_tau=float(engine.frequencies @ engine.defaults),
    )
    engine.reset()
    return explanation


def _query_plans(engine: BenefitEngine, ids: Sequence[int]) -> List[QueryPlan]:
    plans = []
    for q in range(engine.n_queries):
        default = float(engine.defaults[q])
        best_cost = default
        winner: Optional[int] = None
        for sid in ids:
            cost = engine.edge_cost_by_id(sid, q)
            if cost < best_cost:
                best_cost = cost
                winner = sid
        plans.append(
            QueryPlan(
                query=engine.query_names[q],
                structure=engine.name_of(winner) if winner is not None else None,
                cost=best_cost,
                default_cost=default,
                frequency=float(engine.frequencies[q]),
            )
        )
    return plans


def _structure_contributions(
    engine: BenefitEngine,
    ids: Sequence[int],
    plans: List[QueryPlan],
) -> List[StructureContribution]:
    won: Dict[str, List[QueryPlan]] = {}
    for plan in plans:
        if plan.structure is not None:
            won.setdefault(plan.structure, []).append(plan)

    id_set = set(ids)
    contributions = []
    for sid in ids:
        name = engine.name_of(sid)
        plans_won = won.get(name, [])
        attributed = sum(
            p.frequency * (p.default_cost - p.cost) for p in plans_won
        )
        # marginal loss: τ(without this structure — and, for a view,
        # without its now-orphaned indexes) − τ(full selection)
        removal = {sid}
        if engine.is_view[sid]:
            removal |= {int(i) for i in engine.index_ids_of(sid) if int(i) in id_set}
        remaining = [i for i in ids if i not in removal]
        tau_without = _tau_of(engine, remaining)
        contributions.append(
            StructureContribution(
                name=name,
                space=float(engine.spaces[sid]),
                queries_won=tuple(p.query for p in plans_won),
                benefit_attributed=attributed,
                marginal_loss=tau_without - engine.tau(),
            )
        )
    contributions.sort(key=lambda c: -c.marginal_loss)
    return contributions


@dataclass
class SelectionComparison:
    """Side-by-side comparison of two selections on the same graph."""

    only_in_a: Tuple[str, ...]
    only_in_b: Tuple[str, ...]
    shared: Tuple[str, ...]
    tau_a: float
    tau_b: float
    space_a: float
    space_b: float
    # queries where the winning side differs, with both costs
    query_deltas: Tuple[Tuple[str, float, float], ...]

    @property
    def tau_ratio(self) -> float:
        """τ_b / τ_a — below 1 means selection B answers queries faster."""
        return self.tau_b / self.tau_a if self.tau_a else float("inf")

    def table(self, max_rows: int = 20) -> str:
        from repro.experiments.reporting import ascii_table

        rows = [
            [query, cost_a, cost_b, f"{cost_a / cost_b:.1f}x" if cost_b else "-"]
            for query, cost_a, cost_b in self.query_deltas[:max_rows]
        ]
        header = (
            f"A: τ={self.tau_a:g}, space={self.space_a:g} | "
            f"B: τ={self.tau_b:g}, space={self.space_b:g} "
            f"(τ_B/τ_A = {self.tau_ratio:.2f})"
        )
        body = ascii_table(
            ["query", "cost under A", "cost under B", "A/B"],
            rows,
            title="queries whose cost differs",
        )
        diff = (
            f"only in A: {', '.join(self.only_in_a) or '(none)'}\n"
            f"only in B: {', '.join(self.only_in_b) or '(none)'}"
        )
        return "\n".join([header, diff, body])


def compare(
    graph: GraphLike,
    selection_a: Sequence[str],
    selection_b: Sequence[str],
) -> SelectionComparison:
    """Compare two selections: structural diff and per-query cost deltas.

    This is how Example 2.1's "why does one-step win?" question gets a
    concrete answer: the queries whose cost differs, and by how much.
    """
    expl_a = explain(graph, selection_a)
    expl_b = explain(graph, selection_b)
    set_a, set_b = set(selection_a), set(selection_b)
    costs_b = {p.query: p.cost for p in expl_b.plans}
    deltas = []
    for plan in expl_a.plans:
        cost_b = costs_b[plan.query]
        if abs(plan.cost - cost_b) > 1e-9:
            deltas.append((plan.query, plan.cost, cost_b))
    deltas.sort(key=lambda entry: -abs(entry[1] - entry[2]))

    engine = as_engine(graph)
    space_a = sum(float(engine.spaces[engine.structure_id(n)]) for n in set_a)
    space_b = sum(float(engine.spaces[engine.structure_id(n)]) for n in set_b)
    return SelectionComparison(
        only_in_a=tuple(sorted(set_a - set_b)),
        only_in_b=tuple(sorted(set_b - set_a)),
        shared=tuple(sorted(set_a & set_b)),
        tau_a=expl_a.tau,
        tau_b=expl_b.tau,
        space_a=space_a,
        space_b=space_b,
        query_deltas=tuple(deltas),
    )


def _tau_of(engine: BenefitEngine, ids: Sequence[int]) -> float:
    if not ids:
        return float(engine.frequencies @ engine.defaults)
    arr = np.fromiter(ids, dtype=np.int64)
    best = np.minimum(engine.defaults, engine.min_cost_over(arr))
    return float(engine.frequencies @ best)
