"""Run every paper experiment and print the tables.

Usage::

    python -m repro.experiments            # everything
    python -m repro.experiments figure3    # one experiment by name
"""

from __future__ import annotations

import sys

from repro.experiments import (
    baselines,
    counts,
    engine_validation,
    example21,
    example51,
    figure3,
    guarantee_verification,
    load_tradeoff,
    robustness,
    skew_sensitivity,
    section6,
    split_sweep,
)

EXPERIMENTS = {
    "baselines": baselines.main,
    "counts": counts.main,
    "example21": example21.main,
    "example51": example51.main,
    "figure3": figure3.main,
    "section6": section6.main,
    "split_sweep": split_sweep.main,
    "engine_validation": engine_validation.main,
    "guarantee_verification": guarantee_verification.main,
    "robustness": robustness.main,
    "load_tradeoff": load_tradeoff.main,
    "skew_sensitivity": skew_sensitivity.main,
}


def main(argv) -> int:
    names = argv or list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; available: {list(EXPERIMENTS)}")
        return 2
    for i, name in enumerate(names):
        if i:
            print()
        print(f"=== {name} " + "=" * max(0, 60 - len(name)))
        EXPERIMENTS[name]()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
