"""E7: the Section 3.5 combinatorics summary.

An ``n``-dimensional data cube has ``2^n`` views, ``3^n`` slice queries,
and (paper's rounding) "about 3·n! possible indexes, about 2·n! of these
being fat".  This driver tabulates the exact counts next to the factorial
approximations and cross-checks them by enumeration for small ``n``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.core.index import count_all_indexes, count_fat_indexes
from repro.core.query import count_slice_queries
from repro.experiments.reporting import ascii_table


@dataclass
class CountsRow:
    n_dims: int
    views: int
    queries: int
    fat_indexes: int
    all_indexes: int

    @property
    def fat_over_factorial(self) -> float:
        return self.fat_indexes / math.factorial(self.n_dims)

    @property
    def all_over_factorial(self) -> float:
        return self.all_indexes / math.factorial(self.n_dims)


def run_counts(max_dims: int = 8) -> List[CountsRow]:
    return [
        CountsRow(
            n_dims=n,
            views=2**n,
            queries=count_slice_queries(n),
            fat_indexes=count_fat_indexes(n),
            all_indexes=count_all_indexes(n),
        )
        for n in range(1, max_dims + 1)
    ]


def format_counts(rows: Sequence[CountsRow]) -> str:
    table_rows = [
        [
            row.n_dims,
            row.views,
            row.queries,
            row.fat_indexes,
            row.all_indexes,
            f"{row.fat_over_factorial:.2f}",
            f"{row.all_over_factorial:.2f}",
        ]
        for row in rows
    ]
    return ascii_table(
        ["n", "views 2^n", "queries 3^n", "fat idx", "all idx",
         "fat/n!", "all/n!"],
        table_rows,
        title="Section 3.5 — structure counts (fat/n! → e ≈ 2.72)",
    )


def main() -> List[CountsRow]:
    rows = run_counts()
    print(format_counts(rows))
    return rows


if __name__ == "__main__":
    main()
