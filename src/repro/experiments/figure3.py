"""Figure 3: performance guarantee of r-greedy as a function of r.

Regenerates the curve ``1 − e^{−(r−1)/r}`` the paper plots, the
inner-level greedy's 0.467 reference line, and the "knee at r = 4"
reading.  Also verifies the printed values (0, 0.39, 0.49, 0.53 → 0.63).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.algorithms.guarantees import (
    guarantee_curve,
    inner_level_guarantee,
    knee_of_curve,
    r_greedy_guarantee,
    r_greedy_limit,
)
from repro.experiments.reporting import ascii_series, ascii_table

#: Guarantee values as printed in the paper (Section 6).
PAPER_GUARANTEES = {1: 0.0, 2: 0.39, 3: 0.49, 4: 0.53}
PAPER_LIMIT = 0.63
PAPER_INNER_LEVEL = 0.467
PAPER_KNEE = 4


@dataclass
class Figure3Result:
    curve: List[Tuple[int, float]]
    inner_level: float
    limit: float
    knee: int

    def as_dict(self) -> Dict[int, float]:
        return dict(self.curve)


def run_figure3(max_r: int = 16) -> Figure3Result:
    rs = list(range(1, max_r + 1))
    return Figure3Result(
        curve=guarantee_curve(rs),
        inner_level=inner_level_guarantee(),
        limit=r_greedy_limit(),
        knee=knee_of_curve(rs),
    )


def format_figure3(result: Figure3Result) -> str:
    rows = []
    for r, g in result.curve:
        paper = PAPER_GUARANTEES.get(r, "-")
        rows.append([r, round(g, 3), paper])
    table = ascii_table(
        ["r", "guarantee", "paper"],
        rows,
        title="Figure 3 — r-greedy performance guarantee vs r",
    )
    rs = [r for r, __ in result.curve]
    gs = [g for __, g in result.curve]
    plot = ascii_series(rs, gs, label="\nguarantee (bar ∝ value):")
    footer = (
        f"\nlimit (r→∞): {result.limit:.3f} (paper: {PAPER_LIMIT})"
        f"\ninner-level greedy: {result.inner_level:.3f} "
        f"(paper: {PAPER_INNER_LEVEL}; between 2-greedy "
        f"{r_greedy_guarantee(2):.2f} and 3-greedy {r_greedy_guarantee(3):.2f})"
        f"\nknee of the curve: r = {result.knee} (paper: {PAPER_KNEE})"
    )
    return table + "\n" + plot + footer


def main() -> Figure3Result:
    result = run_figure3()
    print(format_figure3(result))
    return result


if __name__ == "__main__":
    main()
