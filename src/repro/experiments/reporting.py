"""Plain-text reporting helpers for the experiment drivers.

Every experiment prints the same rows/series the paper reports, as ASCII
tables — no plotting dependencies.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_number(value, digits: int = 4) -> str:
    """Compact human formatting: millions as ``x.xxM``, else ``%g``."""
    if isinstance(value, str):
        return value
    if value is None:
        return "-"
    if isinstance(value, float) and value != value:  # NaN
        return "-"
    magnitude = abs(value)
    if magnitude >= 1_000_000:
        return f"{value / 1_000_000:.{max(0, digits - 2)}g}M"
    if isinstance(value, float):
        return f"{value:.{digits}g}"
    return str(value)


def ascii_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str = "",
) -> str:
    """Render rows as a boxed ASCII table.

    >>> print(ascii_table(["a", "b"], [[1, 2]]))
    a | b
    --+--
    1 | 2
    """
    rendered: List[List[str]] = [
        [format_number(cell) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def ascii_series(
    xs: Sequence[float],
    ys: Sequence[float],
    width: int = 50,
    label: str = "",
) -> str:
    """A crude horizontal-bar rendering of a series (for Figure 3)."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have the same length")
    top = max(ys) if ys else 1.0
    top = top or 1.0
    lines = [label] if label else []
    for x, y in zip(xs, ys):
        bar = "#" * int(round(width * y / top))
        lines.append(f"{x:>6} | {bar} {y:.3f}")
    return "\n".join(lines)
