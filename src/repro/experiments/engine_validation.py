"""E9: validating the linear cost model against the execution engine.

The cost formula ``c(Q, V, J) = |C| / |E|`` (Section 4.1.1) predicts the
*average* number of rows touched when a slice query with random selection
values runs through an index.  This experiment makes the prediction
falsifiable: it generates a small cube, materializes views and fat
indexes, executes each slice query for many random selection-value
draws through the B+tree, and compares the measured mean rows-processed
against the model (with exact sizes taken from the actual data, so the
only approximation under test is the cost formula itself).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.costmodel import LinearCostModel
from repro.core.index import Index, enumerate_fat_indexes
from repro.core.lattice import CubeLattice
from repro.core.query import SliceQuery, enumerate_slice_queries
from repro.core.view import View
from repro.cube.generator import generate_fact_table
from repro.cube.schema import CubeSchema, Dimension
from repro.engine.catalog import Catalog
from repro.engine.executor import Executor
from repro.estimation.sizes import exact_sizes_from_rows
from repro.experiments.reporting import ascii_table


@dataclass
class ValidationRow:
    """Model-vs-measured for one (query, view, index) plan."""

    query: SliceQuery
    view: View
    index: Optional[Index]
    model_cost: float
    measured_mean: float

    @property
    def relative_error(self) -> float:
        denom = max(self.model_cost, 1.0)
        return abs(self.measured_mean - self.model_cost) / denom


def default_cube() -> Tuple[CubeSchema, "object"]:
    """A small 3-d cube with skew and correlation (the hard case for the
    independence assumption — but sizes here are exact, not estimated)."""
    schema = CubeSchema(
        [Dimension("a", 40), Dimension("b", 25), Dimension("c", 12)]
    )
    fact = generate_fact_table(
        schema, 5_000, rng=7, skew={"a": 0.5}, correlated={"b": ("a", 3)}
    )
    return schema, fact


def run_validation(
    max_prefix_draws: int = 400,
    rng_seed: int = 11,
) -> List[ValidationRow]:
    """Execute every selective slice query through its best plan and
    compare measured mean rows-processed to the model prediction.

    The model's ``|C| / |E|`` is exactly the mean rows touched when the
    query's prefix values range uniformly over the *distinct* prefix
    combinations present in the view, so we enumerate those combinations
    (sampling without replacement when there are more than
    ``max_prefix_draws``).  With full enumeration and exact sizes the two
    numbers agree to the last decimal — the discrepancy under sampling is
    pure sampling noise.
    """
    schema, fact = default_cube()
    lattice = CubeLattice.from_estimator(
        schema, exact_sizes_from_rows(schema, fact.columns)
    )
    model = LinearCostModel(lattice)
    catalog = Catalog(fact)
    executor = Executor(catalog, cost_model=model)
    rng = np.random.default_rng(rng_seed)

    # materialize every view and all fat indexes of the top two levels
    for view in lattice.views():
        catalog.materialize(view)
        if len(view) >= schema.n_dims - 1:
            for index in enumerate_fat_indexes(view):
                catalog.build_index(index)

    rows: List[ValidationRow] = []
    queries = [q for q in enumerate_slice_queries(schema.names) if q.selection]
    for query in queries:
        view, index = executor.choose_plan(query)
        prefix = index.usable_prefix(query) if index is not None else ()
        measured = []
        for values in _selection_value_draws(
            fact, query, prefix, max_prefix_draws, rng
        ):
            result = executor.execute(query, values, plan=(view, index))
            measured.append(result.rows_processed)
        rows.append(
            ValidationRow(
                query=query,
                view=view,
                index=index,
                model_cost=model.cost(query, view, index),
                measured_mean=float(np.mean(measured)),
            )
        )
    return rows


def _selection_value_draws(fact, query: SliceQuery, prefix, max_draws, rng):
    """Yield selection-value dicts whose prefix part ranges uniformly over
    the distinct prefix combinations in the data.

    Residual selection attributes (outside the index prefix) get values
    from an arbitrary data row — they are filtered *after* the index scan
    and do not change the rows-processed count.
    """
    residual = sorted(query.selection - set(prefix))
    anchor_row = int(rng.integers(0, fact.n_rows))
    residual_values = {a: int(fact.column(a)[anchor_row]) for a in residual}
    if not prefix:
        yield dict(residual_values)
        return
    stacked = np.stack([fact.column(a) for a in prefix], axis=1)
    distinct = np.unique(stacked, axis=0)
    if len(distinct) > max_draws:
        picks = rng.choice(len(distinct), size=max_draws, replace=False)
        distinct = distinct[picks]
    for combo in distinct:
        values = dict(residual_values)
        values.update({a: int(v) for a, v in zip(prefix, combo)})
        yield values


def format_validation(rows: Sequence[ValidationRow]) -> str:
    table_rows = []
    for row in rows:
        table_rows.append(
            [
                str(row.query),
                str(row.view),
                str(row.index) if row.index else "-",
                round(row.model_cost, 1),
                round(row.measured_mean, 1),
                f"{row.relative_error:.1%}",
            ]
        )
    worst = max(rows, key=lambda r: r.relative_error)
    table = ascii_table(
        ["query", "view", "index", "model", "measured", "rel err"],
        table_rows,
        title="E9 — linear cost model vs engine-measured rows processed",
    )
    return table + f"\nworst relative error: {worst.relative_error:.1%} ({worst.query})"


def main() -> List[ValidationRow]:
    rows = run_validation()
    print(format_validation(rows))
    return rows


if __name__ == "__main__":
    main()
