"""Ablation E10: sweeping the two-step space split on TPC-D.

The paper observes that the one-step 1-greedy ends up devoting about
three-quarters of the space to indexes, and that "it is difficult to
determine this fraction a priori".  This ablation makes that concrete:
run the two-step strategy for every split fraction and compare with the
one-step result.  The best split recovers the one-step quality — but its
location depends on the instance, which is the paper's argument for
integrating the steps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.algorithms import FIT_PAPER, FIT_STRICT, RGreedy, TwoStep
from repro.core.benefit import BenefitEngine
from repro.datasets.tpcd import TPCD_SPACE_BUDGET, tpcd_graph
from repro.experiments.example21 import SEED
from repro.experiments.reporting import ascii_table

DEFAULT_FRACTIONS = (0.1, 0.2, 0.25, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)


@dataclass
class SplitSweepResult:
    by_fraction: Dict[float, float]  # view fraction -> avg query cost
    one_step_avg: float

    @property
    def best_fraction(self) -> float:
        return min(self.by_fraction, key=self.by_fraction.get)


def run_split_sweep(
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    space: float = TPCD_SPACE_BUDGET,
) -> SplitSweepResult:
    graph = tpcd_graph()
    engine = BenefitEngine(graph)
    by_fraction = {}
    for fraction in fractions:
        res = TwoStep(fraction, fit=FIT_STRICT).run(engine, space, seed=SEED)
        by_fraction[fraction] = res.average_query_cost
    one = RGreedy(1, fit=FIT_PAPER).run(engine, space, seed=SEED)
    return SplitSweepResult(by_fraction=by_fraction, one_step_avg=one.average_query_cost)


def format_split_sweep(result: SplitSweepResult) -> str:
    rows = [
        [f"{fraction:.0%} views / {1 - fraction:.0%} indexes", avg,
         f"{avg / result.one_step_avg:.2f}x"]
        for fraction, avg in sorted(result.by_fraction.items())
    ]
    rows.append(["one-step 1-greedy", result.one_step_avg, "1.00x"])
    table = ascii_table(
        ["split", "avg query cost (rows)", "vs one-step"],
        rows,
        title="E10 — two-step split sweep on TPC-D (S = 25M rows)",
    )
    footer = (
        f"\nbest split: {result.best_fraction:.0%} views "
        f"(the paper's 'three-quarters to indexes' observation)"
    )
    return table + footer


def main() -> SplitSweepResult:
    result = run_split_sweep()
    print(format_split_sweep(result))
    return result


if __name__ == "__main__":
    main()
