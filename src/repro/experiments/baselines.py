"""One table, every strategy: the baseline panorama.

Runs the whole algorithm family — PBS and HRU (views only), the two-step
[MS95] practice, the paper's one-step r-greedy and inner-level greedy,
and our local-search refinement — on the TPC-D instance and on a
synthetic dim-4 cube, reporting average query cost and benefit side by
side.  The expected ordering (the paper's narrative, now one table):

    views-only  <  two-step  <  one-step greedy  ≤  refined

with the views-only strategies stalling at whatever the lattice alone can
deliver because they cannot see index value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.algorithms import (
    FIT_PAPER,
    FIT_STRICT,
    HRUGreedy,
    InnerLevelGreedy,
    LocalSearchRefiner,
    PickBySmallest,
    RGreedy,
    TwoStep,
)
from repro.core.benefit import BenefitEngine
from repro.core.qvgraph import QueryViewGraph
from repro.cube.schema import CubeSchema, Dimension
from repro.datasets.tpcd import TPCD_SPACE_BUDGET, tpcd_graph
from repro.estimation.sizes import analytical_lattice
from repro.experiments.reporting import ascii_table


@dataclass
class BaselineRow:
    instance: str
    strategy: str
    benefit: float
    average_query_cost: float
    space_used: float


def _instances() -> Dict[str, Tuple[QueryViewGraph, str, float]]:
    instances: Dict[str, Tuple[QueryViewGraph, str, float]] = {}
    instances["TPC-D (25M)"] = (tpcd_graph(), "psc", TPCD_SPACE_BUDGET)

    schema = CubeSchema(
        [Dimension("a", 12), Dimension("b", 10), Dimension("c", 8), Dimension("d", 6)]
    )
    lattice = analytical_lattice(schema, 0.15 * schema.dense_cells)
    graph = QueryViewGraph.from_cube(lattice)
    top = lattice.label(lattice.top)
    budget = lattice.size(lattice.top) + 0.25 * (
        graph.total_space() - lattice.size(lattice.top)
    )
    instances["dim4 synthetic"] = (graph, top, budget)
    return instances


def run_baselines() -> List[BaselineRow]:
    rows: List[BaselineRow] = []
    for instance_name, (graph, top, budget) in _instances().items():
        engine = BenefitEngine(graph)
        seed = (top,)
        strategies = [
            ("PBS (views only)", lambda: PickBySmallest().run(engine, budget, seed=seed)),
            ("HRU (views only)", lambda: HRUGreedy().run(engine, budget, seed=seed)),
            ("two-step 50/50", lambda: TwoStep(0.5, fit=FIT_STRICT).run(engine, budget, seed=seed)),
            ("1-greedy", lambda: RGreedy(1, fit=FIT_PAPER).run(engine, budget, seed=seed)),
            ("2-greedy", lambda: RGreedy(2, fit=FIT_PAPER).run(engine, budget, seed=seed)),
            ("inner-level", lambda: InnerLevelGreedy(fit=FIT_STRICT).run(engine, budget, seed=seed)),
        ]
        results = {}
        for name, runner in strategies:
            results[name] = runner()
        # refine the best strict-fit selection with local search
        base = results["inner-level"]
        refined = LocalSearchRefiner().refine(
            engine, budget, base.selected, protected=seed
        )
        for name, result in results.items():
            rows.append(
                BaselineRow(
                    instance=instance_name,
                    strategy=name,
                    benefit=result.benefit,
                    average_query_cost=result.average_query_cost,
                    space_used=result.space_used,
                )
            )
        rows.append(
            BaselineRow(
                instance=instance_name,
                strategy="inner-level + local search",
                benefit=refined.benefit,
                average_query_cost=refined.average_query_cost,
                space_used=refined.space_used,
            )
        )
    return rows


def format_baselines(rows: Sequence[BaselineRow]) -> str:
    table_rows = [
        [row.instance, row.strategy, row.benefit, row.average_query_cost,
         row.space_used]
        for row in rows
    ]
    return ascii_table(
        ["instance", "strategy", "benefit", "avg query cost", "space used"],
        table_rows,
        title="Every strategy on every instance (views-only < two-step < one-step)",
    )


def main() -> List[BaselineRow]:
    rows = run_baselines()
    print(format_baselines(rows))
    return rows


if __name__ == "__main__":
    main()
