"""Empirical verification of Theorems 5.1 and 5.2 on random instances.

The paper closes with "experimental results which validate our analysis".
This driver makes that validation systematic: generate many random
unit-space query-view graphs, run each algorithm against the *exhaustive*
optimum (at the space the algorithm actually used, as the theorems
state), and tabulate the observed worst/mean ratios next to the
theoretical bounds.  Every observed worst case must sit on or above its
bound — and 1-greedy's observed worst case illustrates why its bound is
zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.algorithms import (
    FIT_PAPER,
    InnerLevelGreedy,
    RGreedy,
    exhaustive_optimal,
    inner_level_guarantee,
    r_greedy_guarantee,
)
from repro.core.benefit import BenefitEngine
from repro.core.qvgraph import QueryViewGraph
from repro.experiments.reporting import ascii_table


def random_unit_graph(rng: np.random.Generator) -> QueryViewGraph:
    """A random unit-space instance small enough for exhaustive optima."""
    graph = QueryViewGraph()
    structures = []
    n_views = int(rng.integers(1, 5))
    for v in range(n_views):
        view = f"V{v}"
        graph.add_view(view, space=1.0)
        structures.append(view)
        for i in range(int(rng.integers(0, 4))):
            idx = f"I{v},{i}"
            graph.add_index(view, idx, space=1.0)
            structures.append(idx)
    n_queries = int(rng.integers(1, 9))
    for q in range(n_queries):
        default = float(rng.integers(5, 100))
        graph.add_query(f"q{q}", default_cost=default)
        for s in structures:
            if rng.random() < 0.4:
                graph.add_edge(f"q{q}", s, float(rng.integers(0, int(default))))
    return graph


@dataclass
class VerificationRow:
    """Observed ratio statistics for one algorithm."""

    algorithm: str
    bound: float
    worst: float
    mean: float
    n_instances: int

    @property
    def holds(self) -> bool:
        return self.worst >= self.bound - 1e-9


def run_verification(
    n_instances: int = 200,
    space: int = 4,
    rs: Tuple[int, ...] = (1, 2, 3),
    seed: int = 0,
) -> List[VerificationRow]:
    """Sample instances; return per-algorithm ratio statistics."""
    rng = np.random.default_rng(seed)
    algorithms: Dict[str, Tuple[object, float]] = {
        f"{r}-greedy": (RGreedy(r, fit=FIT_PAPER), r_greedy_guarantee(r))
        for r in rs
    }
    algorithms["inner-level"] = (
        InnerLevelGreedy(fit=FIT_PAPER),
        inner_level_guarantee(),
    )

    ratios: Dict[str, List[float]] = {name: [] for name in algorithms}
    for __ in range(n_instances):
        graph = random_unit_graph(rng)
        engine = BenefitEngine(graph)
        for name, (algorithm, __bound) in algorithms.items():
            result = algorithm.run(engine, space)
            optimal = exhaustive_optimal(
                engine, max(result.space_used, space)
            )
            if optimal.benefit <= 0:
                ratios[name].append(1.0)  # nothing achievable; trivially tight
            else:
                ratios[name].append(result.benefit / optimal.benefit)

    rows = []
    for name, (__algo, bound) in algorithms.items():
        values = ratios[name]
        rows.append(
            VerificationRow(
                algorithm=name,
                bound=bound,
                worst=min(values),
                mean=float(np.mean(values)),
                n_instances=n_instances,
            )
        )
    return rows


def format_verification(rows: List[VerificationRow]) -> str:
    table_rows = [
        [
            row.algorithm,
            f"{row.bound:.3f}",
            f"{row.worst:.3f}",
            f"{row.mean:.3f}",
            "yes" if row.holds else "VIOLATED",
        ]
        for row in rows
    ]
    table = ascii_table(
        ["algorithm", "theoretical bound", "observed worst", "observed mean",
         "bound holds"],
        table_rows,
        title=f"Theorem verification on {rows[0].n_instances} random instances"
        if rows
        else "Theorem verification",
    )
    return table + (
        "\n(ratios vs the exhaustive optimum at the space each run used; "
        "Theorems 5.1/5.2 demand worst >= bound)"
    )


def main() -> List[VerificationRow]:
    rows = run_verification()
    print(format_verification(rows))
    return rows


if __name__ == "__main__":
    main()
