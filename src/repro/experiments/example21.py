"""Example 2.1: two-step vs one-step selection on TPC-D (Section 2).

The paper's motivating experiment: 27 equiprobable slice queries on the
TPC-D cube, 25M rows of space, the top view ``psc`` always materialized
(it is the base data).  The two-step strategy splits the space equally
between views and indexes a priori; the one-step 1-greedy allocates
freely and ends up spending about three-quarters of the space on indexes.

Paper numbers: two-step average query cost **1.18M** rows; 1-greedy
**0.74M** rows — an improvement of "almost 40 percent".  Materializing
the remaining ~55M rows of structures adds virtually no benefit.

Fit semantics (see EXPERIMENTS.md): the two-step runs with strict fit in
both halves (its defining feature is the fixed a-priori split); the
one-step algorithms use the paper's overshoot-tolerant fit — the paper's
own printed selections total ≈25.1M rows against the 25M budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.algorithms import FIT_PAPER, FIT_STRICT, InnerLevelGreedy, RGreedy, TwoStep
from repro.core.benefit import BenefitEngine
from repro.core.qvgraph import QueryViewGraph
from repro.core.selection import SelectionResult
from repro.datasets.tpcd import TPCD_SPACE_BUDGET, tpcd_graph
from repro.experiments.reporting import ascii_table

#: The values the paper prints for this experiment.
PAPER_TWO_STEP_AVG = 1.18e6
PAPER_ONE_STEP_AVG = 0.74e6

#: The top view is the base data; always materialized, counted in space.
SEED = ("psc",)


@dataclass
class Example21Result:
    """All measurements for the Example 2.1 comparison."""

    results: Dict[str, SelectionResult]
    everything_avg: float
    graph: QueryViewGraph

    @property
    def two_step_avg(self) -> float:
        return self.results["two-step (50/50)"].average_query_cost

    @property
    def one_step_avg(self) -> float:
        return self.results["1-greedy"].average_query_cost

    @property
    def improvement(self) -> float:
        """Fractional improvement of one-step over two-step."""
        return 1.0 - self.one_step_avg / self.two_step_avg

    def index_space_fraction(self, name: str) -> float:
        """Fraction of the selection's space spent on indexes."""
        result = self.results[name]
        index_space = sum(
            self.graph.structure(s).space
            for s in result.selected
            if self.graph.structure(s).is_index
        )
        return index_space / result.space_used if result.space_used else 0.0


def run_example21(
    space: float = TPCD_SPACE_BUDGET,
    graph: Optional[QueryViewGraph] = None,
) -> Example21Result:
    """Run every algorithm of the Example 2.1 comparison."""
    graph = graph if graph is not None else tpcd_graph()
    engine = BenefitEngine(graph)

    results: Dict[str, SelectionResult] = {}
    results["two-step (50/50)"] = TwoStep(0.5, fit=FIT_STRICT).run(
        engine, space, seed=SEED
    )
    results["1-greedy"] = RGreedy(1, fit=FIT_PAPER).run(engine, space, seed=SEED)
    results["2-greedy"] = RGreedy(2, fit=FIT_PAPER).run(engine, space, seed=SEED)
    results["inner-level"] = InnerLevelGreedy(fit=FIT_PAPER).run(
        engine, space, seed=SEED
    )

    # diminishing returns: materialize absolutely everything
    engine.reset()
    engine.commit(range(engine.n_structures))
    everything_avg = engine.average_query_cost()

    return Example21Result(results=results, everything_avg=everything_avg, graph=graph)


def format_example21(result: Example21Result) -> str:
    """Render the comparison as the paper-style table."""
    rows: List[list] = []
    for name, res in result.results.items():
        rows.append(
            [
                name,
                res.average_query_cost,
                res.space_used,
                len(res.selected),
                f"{result.index_space_fraction(name):.0%}",
            ]
        )
    rows.append(["materialize everything", result.everything_avg, None, None, "-"])
    rows.append(["paper: two-step", PAPER_TWO_STEP_AVG, None, None, "50%"])
    rows.append(["paper: 1-greedy", PAPER_ONE_STEP_AVG, None, None, "~75%"])
    table = ascii_table(
        ["strategy", "avg query cost (rows)", "space used", "structures", "index share"],
        rows,
        title=f"Example 2.1 — TPC-D, S = {TPCD_SPACE_BUDGET / 1e6:g}M rows",
    )
    footer = (
        f"\none-step improvement over two-step: {result.improvement:.1%} "
        f"(paper: ~40%)"
    )
    return table + footer


def main() -> Example21Result:
    result = run_example21()
    print(format_example21(result))
    return result


if __name__ == "__main__":
    main()
