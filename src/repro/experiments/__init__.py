"""Experiment drivers — one module per paper table/figure (see DESIGN.md).

Run everything with ``python -m repro.experiments``.
"""

from repro.experiments import (
    baselines,
    counts,
    engine_validation,
    example21,
    example51,
    figure3,
    guarantee_verification,
    load_tradeoff,
    robustness,
    skew_sensitivity,
    section6,
    split_sweep,
)
from repro.experiments.reporting import ascii_series, ascii_table

__all__ = [
    "ascii_series",
    "ascii_table",
    "baselines",
    "counts",
    "engine_validation",
    "example21",
    "example51",
    "figure3",
    "guarantee_verification",
    "load_tradeoff",
    "robustness",
    "skew_sensitivity",
    "section6",
    "split_sweep",
]
