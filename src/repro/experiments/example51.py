"""Examples 5.1 and 5.2: the r-greedy family on the Figure 2 instance.

Runs 1-/2-/3-/4-greedy, inner-level greedy, and the exact optimum on the
reconstructed Figure 2 query-view graph (see
:mod:`repro.datasets.paper_figure2` and DESIGN.md §5) and compares against
the anchors printed in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.algorithms import (
    FIT_PAPER,
    BranchAndBoundOptimal,
    InnerLevelGreedy,
    RGreedy,
)
from repro.core.benefit import BenefitEngine
from repro.core.selection import SelectionResult
from repro.datasets.paper_figure2 import (
    FIGURE2_SPACE,
    PAPER_ANCHORS,
    PAPER_INCONSISTENT,
    figure2_graph,
)
from repro.experiments.reporting import ascii_table


@dataclass
class Example51Result:
    """Benefits of every algorithm on the Figure 2 instance."""

    results: Dict[str, SelectionResult]

    def benefit(self, name: str) -> float:
        return self.results[name].benefit

    def anchor_deltas(self) -> Dict[str, float]:
        """Measured − paper for every self-consistent anchor."""
        mapping = {
            "1-greedy": "1-greedy",
            "2-greedy": "2-greedy",
            "optimal(7)": "optimal(7)",
            "inner-level": "inner-level",
            "optimal(9)": "optimal(9)",
        }
        return {
            paper_key: self.benefit(result_key) - PAPER_ANCHORS[paper_key]
            for paper_key, result_key in mapping.items()
        }


def run_example51(max_r: int = 4) -> Example51Result:
    """Run the full Example 5.1/5.2 suite."""
    graph = figure2_graph()
    engine = BenefitEngine(graph)
    results: Dict[str, SelectionResult] = {}
    for r in range(1, max_r + 1):
        results[f"{r}-greedy"] = RGreedy(r, fit=FIT_PAPER).run(engine, FIGURE2_SPACE)
    results["inner-level"] = InnerLevelGreedy(fit=FIT_PAPER).run(engine, FIGURE2_SPACE)
    results["optimal(7)"] = BranchAndBoundOptimal().run(engine, FIGURE2_SPACE)
    results["optimal(9)"] = BranchAndBoundOptimal().run(engine, 9)
    return Example51Result(results=results)


def format_example51(result: Example51Result) -> str:
    rows = []
    paper_values = dict(PAPER_ANCHORS)
    paper_values.update(PAPER_INCONSISTENT)
    for name, res in result.results.items():
        paper = paper_values.get(name)
        note = ""
        if name in PAPER_INCONSISTENT:
            note = "paper value not self-consistent (DESIGN.md §5)"
        rows.append(
            [
                name,
                res.benefit,
                res.space_used,
                paper if paper is not None else "-",
                note,
            ]
        )
    table = ascii_table(
        ["algorithm", "benefit", "space used", "paper", "note"],
        rows,
        title=f"Examples 5.1/5.2 — Figure 2 instance, S = {FIGURE2_SPACE}",
    )
    first_pick = result.results["2-greedy"].stages[0]
    footer = (
        f"\nfirst 2-greedy pick: {{{', '.join(first_pick.structures)}}} "
        f"benefit {first_pick.benefit:g} (paper: 90)"
    )
    return table + footer


def main() -> Example51Result:
    result = run_example51()
    print(format_example51(result))
    return result


if __name__ == "__main__":
    main()
