"""How far can the linear cost model drift under skewed access?

The formula ``c(Q,V,J) = |C|/|E|`` is the mean rows touched when slice
values are drawn **uniformly over distinct prefix values** (validated
exactly in E9).  Real workloads select *rows*, not values: a hot product
is queried in proportion to its sales.  Under row-weighted draws the
expected rows touched is ``E[n_v²]/E[n_v]`` — always at least the model's
``E[n_v]`` — and the gap grows with data skew.

This extension experiment measures the ratio (row-weighted measured mean
over model cost) on synthetic cubes of increasing Zipf skew, using the
real executor.  It quantifies where the paper's cost model is trustworthy
(uniform and mild skew) and how it degrades, which is exactly what a
practitioner calibrating the advisor needs to know.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.costmodel import LinearCostModel
from repro.core.index import Index
from repro.core.lattice import CubeLattice
from repro.core.query import SliceQuery
from repro.core.view import View
from repro.cube.generator import generate_fact_table
from repro.cube.schema import CubeSchema, Dimension
from repro.engine.catalog import Catalog
from repro.engine.executor import Executor
from repro.estimation.sizes import exact_sizes_from_rows
from repro.experiments.reporting import ascii_table

DEFAULT_EXPONENTS = (0.0, 0.5, 1.0, 1.5)


@dataclass
class SkewRow:
    """Model-vs-measured under one skew level and draw policy."""

    exponent: float
    model_cost: float
    uniform_mean: float  # value-uniform draws: the model's regime
    weighted_mean: float  # row-weighted draws: the hot-slice regime

    @property
    def uniform_ratio(self) -> float:
        return self.uniform_mean / self.model_cost

    @property
    def weighted_ratio(self) -> float:
        return self.weighted_mean / self.model_cost


def run_skew_sensitivity(
    exponents: Sequence[float] = DEFAULT_EXPONENTS,
    n_rows: int = 6_000,
    rng_seed: int = 0,
) -> List[SkewRow]:
    """Measure rows-touched ratios for increasing skew of the selection
    attribute."""
    rows: List[SkewRow] = []
    for exponent in exponents:
        schema = CubeSchema([Dimension("a", 60), Dimension("b", 25)])
        fact = generate_fact_table(
            schema, n_rows, rng=rng_seed, skew={"a": exponent}
        )
        lattice = CubeLattice.from_estimator(
            schema, exact_sizes_from_rows(schema, fact.columns)
        )
        model = LinearCostModel(lattice)
        catalog = Catalog(fact)
        view = View.of("a", "b")
        catalog.materialize(view)
        index = Index(view, ("a", "b"))
        catalog.build_index(index)
        executor = Executor(catalog, cost_model=model)
        query = SliceQuery(groupby=("b",), selection=("a",))

        a_col = fact.column("a")
        distinct = np.unique(a_col)
        uniform_total = 0
        for value in distinct:
            result = executor.execute(query, {"a": int(value)}, plan=(view, index))
            uniform_total += result.rows_processed
        uniform_mean = uniform_total / len(distinct)

        rng = np.random.default_rng(rng_seed + 1)
        picks = rng.integers(0, fact.n_rows, size=400)
        weighted_total = 0
        for row in picks:
            value = int(a_col[int(row)])
            result = executor.execute(query, {"a": value}, plan=(view, index))
            weighted_total += result.rows_processed
        weighted_mean = weighted_total / len(picks)

        rows.append(
            SkewRow(
                exponent=exponent,
                model_cost=model.cost(query, view, index),
                uniform_mean=uniform_mean,
                weighted_mean=weighted_mean,
            )
        )
    return rows


def format_skew_sensitivity(rows: Sequence[SkewRow]) -> str:
    table_rows = [
        [
            row.exponent,
            round(row.model_cost, 1),
            round(row.uniform_mean, 1),
            f"{row.uniform_ratio:.2f}",
            round(row.weighted_mean, 1),
            f"{row.weighted_ratio:.2f}",
        ]
        for row in rows
    ]
    table = ascii_table(
        ["zipf a", "model", "uniform mean", "ratio", "row-weighted mean", "ratio"],
        table_rows,
        title="Cost-model sensitivity to selection-attribute skew",
    )
    return table + (
        "\nuniform ratios stay at 1.00 (E9's exactness); row-weighted "
        "ratios grow with skew — hot slices cost more than the model's "
        "average, by E[n²]/E[n]² over the value distribution"
    )


def main() -> List[SkewRow]:
    rows = run_skew_sensitivity()
    print(format_skew_sensitivity(rows))
    return rows


if __name__ == "__main__":
    main()
