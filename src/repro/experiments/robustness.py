"""Workload robustness: what if the frequencies the advisor saw drift?

The selection problem takes query frequencies as input, but real
workloads drift after the selection ships.  This extension experiment
selects under one Zipf workload and *evaluates* under others:

* the same workload (the advisor's best case);
* freshly reshuffled Zipf workloads (the hot queries move);
* the uniform workload (all skew information was wrong).

Reported metric: the selection's benefit under the evaluation workload as
a fraction of what the advisor would have achieved had it known that
workload ("regret ratio").  The TPC-D-sized cubes here show the paper's
structures degrade gracefully — the lattice bones of a good selection
(small views + top-view indexes) serve any slice workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.algorithms import FIT_STRICT, InnerLevelGreedy, RGreedy
from repro.core.benefit import BenefitEngine
from repro.core.qvgraph import QueryViewGraph
from repro.cube.schema import CubeSchema, Dimension
from repro.cube.workload import uniform_workload, zipf_frequencies
from repro.estimation.sizes import analytical_lattice
from repro.experiments.reporting import ascii_table


@dataclass
class RobustnessRow:
    """One (algorithm, evaluation-workload) measurement."""

    algorithm: str
    evaluation: str
    achieved_benefit: float
    clairvoyant_benefit: float

    @property
    def regret_ratio(self) -> float:
        """achieved / clairvoyant (1.0 = drift cost nothing)."""
        if self.clairvoyant_benefit <= 0:
            return 1.0
        return self.achieved_benefit / self.clairvoyant_benefit


def _benefit_under(graph: QueryViewGraph, selection: Sequence[str]) -> float:
    engine = BenefitEngine(graph)
    ids = [engine.structure_id(name) for name in selection]
    views_first = sorted(ids, key=lambda i: not engine.is_view[i])
    return engine.commit(views_first)


def run_robustness(
    cardinalities: Tuple[int, ...] = (20, 30, 40),
    sparsity: float = 0.1,
    zipf_exponent: float = 1.2,
    n_drifts: int = 3,
    space_fraction: float = 0.25,
    seed: int = 0,
) -> List[RobustnessRow]:
    """Select under one workload, evaluate under drifted ones."""
    names = [chr(ord("a") + i) for i in range(len(cardinalities))]
    schema = CubeSchema([Dimension(n, c) for n, c in zip(names, cardinalities)])
    lattice = analytical_lattice(schema, sparsity * schema.dense_cells)
    queries = uniform_workload(schema.names)
    top = lattice.label(lattice.top)
    top_rows = lattice.size(lattice.top)

    def graph_for(freqs) -> QueryViewGraph:
        return QueryViewGraph.from_cube(lattice, queries=queries, frequencies=freqs)

    train_freqs = zipf_frequencies(queries, zipf_exponent, rng=seed)
    train_graph = graph_for(train_freqs)
    budget = top_rows + space_fraction * (train_graph.total_space() - top_rows)

    algorithms = {
        "2-greedy": RGreedy(2, fit=FIT_STRICT),
        "inner-level": InnerLevelGreedy(fit=FIT_STRICT),
    }
    selections: Dict[str, Sequence[str]] = {
        name: algo.run(train_graph, budget, seed=(top,)).selected
        for name, algo in algorithms.items()
    }

    evaluations: Dict[str, QueryViewGraph] = {"trained": train_graph}
    for d in range(1, n_drifts + 1):
        drift_freqs = zipf_frequencies(queries, zipf_exponent, rng=seed + d)
        evaluations[f"drift-{d}"] = graph_for(drift_freqs)
    evaluations["uniform"] = graph_for(None)

    rows: List[RobustnessRow] = []
    for algo_name, selection in selections.items():
        for eval_name, eval_graph in evaluations.items():
            clairvoyant = algorithms[algo_name].run(
                eval_graph, budget, seed=(top,)
            )
            rows.append(
                RobustnessRow(
                    algorithm=algo_name,
                    evaluation=eval_name,
                    achieved_benefit=_benefit_under(eval_graph, selection),
                    clairvoyant_benefit=clairvoyant.benefit,
                )
            )
    return rows


def format_robustness(rows: Sequence[RobustnessRow]) -> str:
    table_rows = [
        [
            row.algorithm,
            row.evaluation,
            row.achieved_benefit,
            row.clairvoyant_benefit,
            f"{row.regret_ratio:.3f}",
        ]
        for row in rows
    ]
    table = ascii_table(
        ["algorithm", "evaluated under", "achieved", "clairvoyant", "ratio"],
        table_rows,
        title="Workload-drift robustness (selection trained on one Zipf draw)",
    )
    worst = min(rows, key=lambda r: r.regret_ratio)
    return table + (
        f"\nworst regret ratio: {worst.regret_ratio:.3f} "
        f"({worst.algorithm} under {worst.evaluation})"
    )


def main() -> List[RobustnessRow]:
    rows = run_robustness()
    print(format_robustness(rows))
    return rows


if __name__ == "__main__":
    main()
