"""Section 6: r-greedy vs optimal on synthetic cubes.

The paper: "We experimented with the r-greedy family of algorithms on
cubes of dimension up to 6, for r = 1, 2, 3.  We generated cubes using the
analytical model in [HRU96] ... We varied different parameters: the
cardinality of each dimension, the sparsity of the cube, and the query
frequencies. ... the algorithms in the r-greedy family produced solutions
that were extremely close to the optimal."

This driver rebuilds that sweep.  Cubes are generated with the analytical
size model (:func:`repro.estimation.sizes.analytical_lattice`); the space
budget is the top view (always materialized — it is the base data) plus a
fraction of the remaining structure space.  The exact optimum comes from
branch and bound where tractable; on the larger cubes, where the paper
could not have computed the optimum either, ratios are reported against
the best solution any algorithm found.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.algorithms import (
    FIT_STRICT,
    BranchAndBoundOptimal,
    InnerLevelGreedy,
    RGreedy,
    SearchBudgetExceeded,
)
from repro.core.benefit import BenefitEngine
from repro.core.qvgraph import QueryViewGraph
from repro.cube.schema import CubeSchema, Dimension
from repro.cube.workload import uniform_workload, zipf_frequencies
from repro.estimation.sizes import analytical_lattice, sparsity_to_rows
from repro.experiments.reporting import ascii_table


@dataclass(frozen=True)
class SweepConfig:
    """One synthetic cube configuration of the Section 6 sweep."""

    name: str
    cardinalities: Tuple[int, ...]
    sparsity: float
    freq_exponent: float = 0.0  # 0 = uniform query frequencies
    space_fraction: float = 0.25
    rs: Tuple[int, ...] = (1, 2, 3)
    include_optimal: bool = True
    rng_seed: int = 0

    @property
    def n_dims(self) -> int:
        return len(self.cardinalities)


#: The default sweep: dimensions 2–6, varying cardinality, sparsity, and
#: query frequencies — the paper's three knobs.
DEFAULT_CONFIGS: Tuple[SweepConfig, ...] = (
    SweepConfig("dim2 base", (30, 50), sparsity=0.2),
    SweepConfig("dim3 base", (20, 30, 40), sparsity=0.1),
    SweepConfig("dim3 sparse", (20, 30, 40), sparsity=0.01),
    SweepConfig("dim3 dense", (20, 30, 40), sparsity=0.5),
    SweepConfig("dim3 skewed-cards", (4, 30, 400), sparsity=0.1),
    SweepConfig("dim3 zipf-freqs", (20, 30, 40), sparsity=0.1, freq_exponent=1.0),
    SweepConfig("dim4 base", (8, 10, 12, 15), sparsity=0.05),
    SweepConfig(
        "dim5 base", (4, 5, 6, 7, 8), sparsity=0.05, include_optimal=False
    ),
    SweepConfig(
        "dim6 base",
        (3, 4, 4, 5, 5, 6),
        sparsity=0.05,
        rs=(1, 2),
        include_optimal=False,
    ),
)


@dataclass
class SweepRow:
    """Results of every algorithm on one configuration."""

    config: SweepConfig
    benefits: Dict[str, float]
    optimal_benefit: Optional[float]  # None if intractable
    space_budget: float

    @property
    def reference(self) -> float:
        """Optimal benefit if known, else the best any algorithm found."""
        if self.optimal_benefit is not None:
            return self.optimal_benefit
        return max(self.benefits.values())

    def ratio(self, name: str) -> float:
        ref = self.reference
        return self.benefits[name] / ref if ref else 1.0


def build_graph(config: SweepConfig) -> Tuple[QueryViewGraph, str, float]:
    """Build the query-view graph, the top-view name, and the budget."""
    names = [chr(ord("a") + i) for i in range(config.n_dims)]
    schema = CubeSchema(
        [Dimension(n, c) for n, c in zip(names, config.cardinalities)]
    )
    raw_rows = sparsity_to_rows(schema, config.sparsity)
    lattice = analytical_lattice(schema, raw_rows)
    queries = uniform_workload(schema.names)
    frequencies = None
    if config.freq_exponent > 0:
        frequencies = zipf_frequencies(
            queries, config.freq_exponent, rng=config.rng_seed
        )
    graph = QueryViewGraph.from_cube(lattice, queries=queries, frequencies=frequencies)
    top_name = lattice.label(lattice.top)
    top_space = lattice.size(lattice.top)
    budget = top_space + config.space_fraction * (graph.total_space() - top_space)
    return graph, top_name, budget


def run_config(
    config: SweepConfig,
    optimal_node_limit: int = 3_000_000,
) -> SweepRow:
    """Run every algorithm on one configuration."""
    graph, top_name, budget = build_graph(config)
    engine = BenefitEngine(graph)
    seed = (top_name,)

    benefits: Dict[str, float] = {}
    for r in config.rs:
        res = RGreedy(r, fit=FIT_STRICT).run(engine, budget, seed=seed)
        benefits[f"{r}-greedy"] = res.benefit
    res = InnerLevelGreedy(fit=FIT_STRICT).run(engine, budget, seed=seed)
    benefits["inner-level"] = res.benefit

    optimal_benefit: Optional[float] = None
    if config.include_optimal:
        try:
            opt = BranchAndBoundOptimal(node_limit=optimal_node_limit).run(
                engine, budget, seed=seed
            )
            optimal_benefit = opt.benefit
        except SearchBudgetExceeded:
            optimal_benefit = None
    return SweepRow(
        config=config,
        benefits=benefits,
        optimal_benefit=optimal_benefit,
        space_budget=budget,
    )


def run_section6(
    configs: Sequence[SweepConfig] = DEFAULT_CONFIGS,
) -> List[SweepRow]:
    return [run_config(config) for config in configs]


def format_section6(rows: Sequence[SweepRow]) -> str:
    algorithms = ["1-greedy", "2-greedy", "3-greedy", "inner-level"]
    table_rows = []
    for row in rows:
        cells = [
            row.config.name,
            "x".join(str(c) for c in row.config.cardinalities),
            row.config.sparsity,
            "zipf" if row.config.freq_exponent else "unif",
        ]
        for name in algorithms:
            if name in row.benefits:
                cells.append(f"{row.ratio(name):.3f}")
            else:
                cells.append("-")
        cells.append(
            "exact" if row.optimal_benefit is not None else "best-found"
        )
        table_rows.append(cells)
    return ascii_table(
        ["config", "cards", "sparsity", "freqs"]
        + [f"{a}/opt" for a in algorithms]
        + ["reference"],
        table_rows,
        title="Section 6 — benefit ratio vs optimal on synthetic cubes",
    )


def main() -> List[SweepRow]:
    rows = run_section6()
    print(format_section6(rows))
    return rows


if __name__ == "__main__":
    main()
