"""Load-time vs query-time: the two faces of the space budget.

Example 2.1 equates the resource constraint with "space (or equivalently
load time)".  This extension experiment quantifies the equivalence on the
TPC-D instance: sweep the space budget, select with the one-step
algorithm, and report side by side

* the average query cost of the selection (what the paper optimizes),
* its load cost through the lattice-aware pipeline of
  :mod:`repro.engine.pipeline` (rows scanned building the views, plus
  index entries written),

showing the knee the paper's "diminishing returns" remark describes: past
~25M rows of budget the query curve is flat while the load curve keeps
climbing — the extra structures cost load time and buy nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.algorithms import FIT_STRICT, RGreedy
from repro.core.benefit import BenefitEngine
from repro.core.view import View
from repro.datasets.tpcd import TPCD_RAW_ROWS, tpcd_graph, tpcd_lattice
from repro.engine.pipeline import load_cost_estimate
from repro.experiments.reporting import ascii_table

DEFAULT_BUDGETS = (7e6, 13e6, 19e6, 25e6, 31e6, 43e6, 55e6, 81e6)


@dataclass
class TradeoffRow:
    budget: float
    avg_query_cost: float
    load_cost: float
    n_views: int
    n_indexes: int


def run_load_tradeoff(
    budgets: Sequence[float] = DEFAULT_BUDGETS,
) -> List[TradeoffRow]:
    lattice = tpcd_lattice()
    graph = tpcd_graph()
    engine = BenefitEngine(graph)
    sizes: Dict[View, float] = {v: lattice.size(v) for v in lattice.views()}

    rows: List[TradeoffRow] = []
    for budget in budgets:
        result = RGreedy(1, fit=FIT_STRICT).run(engine, budget, seed=("psc",))
        views = [
            graph.structure(name).payload
            for name in result.selected
            if graph.structure(name).is_view
        ]
        index_entries = sum(
            graph.structure(name).space
            for name in result.selected
            if graph.structure(name).is_index
        )
        load = load_cost_estimate(sizes, views, raw_rows=TPCD_RAW_ROWS)
        rows.append(
            TradeoffRow(
                budget=budget,
                avg_query_cost=result.average_query_cost,
                load_cost=load + index_entries,
                n_views=len(views),
                n_indexes=len(result.selected) - len(views),
            )
        )
    return rows


def format_load_tradeoff(rows: Sequence[TradeoffRow]) -> str:
    table_rows = [
        [
            row.budget,
            row.avg_query_cost,
            row.load_cost,
            row.n_views,
            row.n_indexes,
        ]
        for row in rows
    ]
    table = ascii_table(
        ["space budget", "avg query cost", "load cost (rows)", "views", "indexes"],
        table_rows,
        title="Load-time vs query-time on TPC-D (1-greedy, top view seeded)",
    )
    # locate the knee: first budget whose query cost is within 1% of the
    # best achieved across the sweep
    best = min(row.avg_query_cost for row in rows)
    knee = next(row for row in rows if row.avg_query_cost <= best * 1.01)
    return table + (
        f"\nquery-cost knee at {knee.budget:g} rows of budget; past it, "
        "additional budget only adds load cost (the paper's diminishing "
        "returns, in load-time units)"
    )


def main() -> List[TradeoffRow]:
    rows = run_load_tradeoff()
    print(format_load_tradeoff(rows))
    return rows


if __name__ == "__main__":
    main()
