"""Per-partition advising: one selection per replica, resumably.

Each workload partition gets its own advisor run: mine the partition's
frequency vector into a pruned candidate space (the same
:func:`repro.mining.mine_candidates` pipeline the d>=9 scale path uses,
with ``support=0`` by default — inside a partition every observed
pattern matters), compile it with
:meth:`~repro.core.qvgraph.QueryViewGraph.from_mined`, and run any
existing selection algorithm under the *per-replica* budget.  The
algorithm object is the caller's (so ``workers=`` parallel stage scans
work unchanged), and runs honor an optional
:class:`~repro.runtime.context.RunContext` — its deadline/memory/signal
checks fire at every partition boundary, so a divergent advise stops
cooperatively like any other staged run.

Each partition is a **resumable stage**: after a partition's selection
commits, the advisor atomically rewrites its JSON checkpoint (workload
fingerprint, algorithm config, budget, and every completed plan).  A
rerun against the same checkpoint path verifies the fingerprints and
replays completed partitions from the document instead of re-advising
them — kill the run after partition 1 of 4 and the resume does only the
remaining three.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.qvgraph import QueryViewGraph
from repro.core.selection import SelectionResult
from repro.distributed.partition import PartitionedWorkload
from repro.mining.candidates import (
    DEFAULT_MAX_INDEXES_PER_VIEW,
    mine_candidates,
)

#: Checkpoint document version (bumped on layout changes).
ADVISOR_CHECKPOINT_VERSION = 1


@dataclass(frozen=True)
class ReplicaPlan:
    """One replica's advised configuration.

    ``result`` is the full algorithm output for a freshly advised
    partition and ``None`` when the plan was replayed from a checkpoint
    or the partition was empty (seed-only selection).
    """

    replica_id: int
    selection: Tuple[str, ...]
    weight: float
    n_patterns: int
    tau: float
    space_used: float
    resumed: bool = False
    result: Optional[SelectionResult] = None


@dataclass(frozen=True)
class DivergentAdvice:
    """Per-replica plans for one partitioned workload."""

    plans: Tuple[ReplicaPlan, ...]
    space: float
    algorithm: str
    fingerprint: str

    @property
    def selections(self) -> Tuple[Tuple[str, ...], ...]:
        """Per-replica selections, ready for :class:`ReplicaFleet`."""
        return tuple(plan.selection for plan in self.plans)


def _algorithm_identity(algorithm) -> dict:
    """The algorithm's checkpoint config minus execution knobs.

    ``workers`` is how a run executes, not what it selects — parallel
    and serial runs pick identically — so a checkpoint from either
    resumes under the other (same rule as the runtime checkpoints).
    """
    config = dict(algorithm.config())
    config.pop("workers", None)
    return config


def _plan_record(plan: ReplicaPlan) -> dict:
    return {
        "replica_id": plan.replica_id,
        "selection": list(plan.selection),
        "weight": plan.weight,
        "n_patterns": plan.n_patterns,
        "tau": plan.tau,
        "space_used": plan.space_used,
    }


def _write_checkpoint(path: str, document: dict) -> None:
    """Atomic JSON replace, same contract as the runtime checkpoints."""
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        prefix=".divergent-ckpt-", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w") as f:
            json.dump(document, f, indent=2, sort_keys=True)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def _load_checkpoint(
    path: Optional[str], fingerprint: str, space: float, identity: dict
) -> dict:
    """Completed plans from a prior run's checkpoint, keyed by replica.

    An absent file is a fresh run.  A present file must match this
    run's workload fingerprint, budget, and algorithm identity — a
    mismatched checkpoint means the workload or configuration changed
    under the resume, which is an input error, not something to guess
    around.
    """
    if path is None or not os.path.exists(path):
        return {}
    with open(path) as f:
        document = json.load(f)
    if document.get("version") != ADVISOR_CHECKPOINT_VERSION:
        raise ValueError(
            f"{path}: divergent-advisor checkpoint version "
            f"{document.get('version')!r} is not {ADVISOR_CHECKPOINT_VERSION}"
        )
    if document.get("fingerprint") != fingerprint:
        raise ValueError(
            f"{path}: checkpoint was written for a different partitioned "
            "workload (fingerprint mismatch); did the log or partition "
            "count change?"
        )
    if document.get("space") != space:
        raise ValueError(
            f"{path}: checkpoint space budget {document.get('space')!r} "
            f"differs from this run's {space:g}"
        )
    if document.get("algorithm") != identity:
        raise ValueError(
            f"{path}: checkpoint algorithm {document.get('algorithm')!r} "
            f"differs from this run's {identity!r}"
        )
    return {
        record["replica_id"]: record for record in document.get("plans", [])
    }


def advise_partitions(
    lattice,
    partitioned: PartitionedWorkload,
    algorithm,
    space: float,
    *,
    seed: Tuple[str, ...] = (),
    support: float = 0.0,
    max_indexes_per_view: int = DEFAULT_MAX_INDEXES_PER_VIEW,
    context=None,
    checkpoint_path: Optional[str] = None,
) -> DivergentAdvice:
    """Advise one selection per partition under a per-replica budget.

    ``algorithm`` is any constructed selection algorithm (it already
    carries its ``workers=``); ``space`` is the budget *each* replica
    gets; ``seed`` is force-materialized on every replica (normally the
    top view — every replica keeps the raw-cube fallback).  ``context``
    is an optional :class:`~repro.runtime.context.RunContext` whose
    budget checks run at every partition boundary; a stop raises
    :class:`~repro.runtime.context.RuntimeStop` with every *completed*
    partition already committed to ``checkpoint_path``, so rerunning the
    same call resumes where the stop landed.

    An empty partition advises to the seed-only selection — its replica
    still answers everything through the raw-cube fallback.
    """
    if space <= 0:
        raise ValueError(f"space must be positive, got {space}")
    fingerprint = partitioned.fingerprint()
    identity = _algorithm_identity(algorithm)
    completed = _load_checkpoint(checkpoint_path, fingerprint, space, identity)
    schema_names = tuple(lattice.schema.names)

    plans = []
    plan_records = []
    for partition in partitioned.partitions:
        if context is not None:
            context.check()
        prior = completed.get(partition.partition_id)
        if prior is not None:
            plan = ReplicaPlan(
                replica_id=partition.partition_id,
                selection=tuple(prior["selection"]),
                weight=float(prior["weight"]),
                n_patterns=int(prior["n_patterns"]),
                tau=float(prior["tau"]),
                space_used=float(prior["space_used"]),
                resumed=True,
            )
        elif partition.empty:
            plan = ReplicaPlan(
                replica_id=partition.partition_id,
                selection=tuple(seed),
                weight=0.0,
                n_patterns=0,
                tau=0.0,
                space_used=sum(
                    lattice.size(view)
                    for view in (lattice.top,)
                    if lattice.label(view) in seed
                ),
            )
        else:
            mined = mine_candidates(
                partition.counts,
                schema_names,
                support=support,
                similarity=partitioned.similarity,
                max_indexes_per_view=max_indexes_per_view,
            )
            mined.ensure_structures(seed)
            graph = QueryViewGraph.from_mined(lattice, mined)
            result = algorithm.run(graph, space, seed=seed)
            plan = ReplicaPlan(
                replica_id=partition.partition_id,
                selection=tuple(result.selected),
                weight=partition.weight,
                n_patterns=partition.n_patterns,
                tau=result.tau,
                space_used=result.space_used,
                result=result,
            )
        plans.append(plan)
        plan_records.append(_plan_record(plan))
        if checkpoint_path is not None:
            _write_checkpoint(
                checkpoint_path,
                {
                    "version": ADVISOR_CHECKPOINT_VERSION,
                    "fingerprint": fingerprint,
                    "space": space,
                    "algorithm": identity,
                    "plans": plan_records,
                },
            )
    return DivergentAdvice(
        plans=tuple(plans),
        space=space,
        algorithm=getattr(algorithm, "name", type(algorithm).__name__),
        fingerprint=fingerprint,
    )
