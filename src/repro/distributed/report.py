"""Quantifying the divergence win: routed fleet vs identical copies.

The whole point of divergent replicas is a number: the total predicted
workload cost (sum over patterns of weight x predicted rows) of N
specialized replicas behind the cost router, over the same workload's
cost on N identical copies of the single-budget selection.  A ratio
below 1.0 means specialization pays; the ``d5_divergent4`` bench leg and
the divergent-serving CI smoke both report (and the test suite asserts)
it.  The identical-fleet cost needs no router — every copy answers every
query at the same price, so one replica's pricing stands for all N.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Sequence

from repro.core.costmodel import LinearCostModel
from repro.distributed.advisor import DivergentAdvice
from repro.distributed.partition import PartitionedWorkload
from repro.distributed.routing import RoutingTable


def divergence_report(
    cost_model: LinearCostModel,
    counts,
    advice: DivergentAdvice,
    identical_selection: Sequence[str],
    partitioned: PartitionedWorkload = None,
    router: RoutingTable = None,
) -> dict:
    """Predicted-cost comparison of a divergent fleet vs identical copies.

    ``counts`` is the observed workload ({pattern: weight}); the
    divergent side prices each pattern at its cheapest replica under
    ``router`` (built from ``advice.selections`` when not supplied), the
    identical side prices every pattern on one copy of
    ``identical_selection``.  The returned document is JSON-serializable
    and carries per-replica routed load so starvation is visible.
    """
    if router is None:
        router = RoutingTable(cost_model, advice.selections)
    identical = RoutingTable(cost_model, [tuple(identical_selection)])

    divergent_cost = 0.0
    identical_cost = 0.0
    replica_load = {
        plan.replica_id: {"weight": 0.0, "patterns": 0, "fallbacks": 0}
        for plan in advice.plans
    }
    for query, weight in counts.items():
        weight = float(weight)
        if weight <= 0:
            continue
        decision = router.route(query)
        divergent_cost += weight * decision.predicted
        identical_cost += weight * identical.route(query).predicted
        load = replica_load[decision.replica_id]
        load["weight"] += weight
        load["patterns"] += 1
        if decision.fallback:
            load["fallbacks"] += 1

    ratio = divergent_cost / identical_cost if identical_cost > 0 else 1.0
    return {
        "replicas": router.n_replicas,
        "algorithm": advice.algorithm,
        "space_per_replica": advice.space,
        "workload_fingerprint": advice.fingerprint,
        "partitions": (
            [
                {
                    "partition_id": p.partition_id,
                    "weight": p.weight,
                    "patterns": p.n_patterns,
                }
                for p in partitioned.partitions
            ]
            if partitioned is not None
            else None
        ),
        "selections": [list(s) for s in advice.selections],
        "identical_selection": list(identical_selection),
        "divergent_predicted_cost": divergent_cost,
        "identical_predicted_cost": identical_cost,
        "predicted_cost_ratio": ratio,
        "routed_load": {
            str(replica_id): load
            for replica_id, load in sorted(replica_load.items())
        },
    }


def save_divergence_report(report: dict, path: str) -> None:
    """Atomically write a divergence report as indented JSON."""
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        prefix=".divergence-report-", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w") as f:
            json.dump(report, f, indent=2, sort_keys=True)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
