"""repro.distributed — divergent multi-replica selection + cost routing.

The paper selects one configuration for one space budget; this package
generalizes to N replicas with *different* selections under the same
per-replica budget (ROADMAP item 1, in the style of Hang 2024's
divergent index tuning):

1. :func:`partition_workload` splits the observed query log into N
   balanced partitions by attribute-set similarity (the deterministic
   Jaccard agglomeration of :mod:`repro.mining.cluster`, plus LPT
   balancing so no replica starves);
2. :func:`advise_partitions` runs any selection algorithm on each
   partition's frequency vector under the per-replica budget —
   checkpointed, each partition a resumable stage;
3. :class:`RoutingTable` maps every query pattern to the replica whose
   structures answer it cheapest under the paper's ``|C| / |E|`` model,
   raw-cube fallback on any replica;
4. :func:`divergence_report` quantifies the win: total predicted
   workload cost, divergent fleet over N identical copies.

:func:`plan_divergent` chains 1–3; hand the resulting selections and
router to :class:`repro.serve.ReplicaFleet` for routed dispatch, or run
``python -m repro.distributed.smoke`` for the end-to-end contract.
"""

from repro.distributed.advisor import (
    ADVISOR_CHECKPOINT_VERSION,
    DivergentAdvice,
    ReplicaPlan,
    advise_partitions,
)
from repro.distributed.partition import (
    PartitionedWorkload,
    WorkloadPartition,
    partition_workload,
)
from repro.distributed.report import divergence_report, save_divergence_report
from repro.distributed.routing import RouteDecision, RoutingTable

__all__ = [
    "ADVISOR_CHECKPOINT_VERSION",
    "DivergentAdvice",
    "PartitionedWorkload",
    "ReplicaPlan",
    "RouteDecision",
    "RoutingTable",
    "WorkloadPartition",
    "advise_partitions",
    "divergence_report",
    "partition_workload",
    "plan_divergent",
    "save_divergence_report",
]


def plan_divergent(
    lattice,
    counts,
    algorithm,
    space: float,
    n_partitions: int,
    *,
    seed=(),
    similarity=None,
    support: float = 0.0,
    cost_model=None,
    context=None,
    checkpoint_path=None,
):
    """Partition, advise, and build the router in one call.

    Returns ``(partitioned, advice, router)`` — everything a routed
    :class:`~repro.serve.fleet.ReplicaFleet` needs.  ``algorithm`` is a
    constructed selection algorithm (carrying its ``workers=``);
    ``space`` is the per-replica budget; ``seed`` is force-materialized
    on every replica (normally the top view).
    """
    from repro.core.costmodel import LinearCostModel
    from repro.mining.candidates import DEFAULT_SIMILARITY

    if similarity is None:
        similarity = DEFAULT_SIMILARITY
    partitioned = partition_workload(counts, n_partitions, similarity=similarity)
    advice = advise_partitions(
        lattice,
        partitioned,
        algorithm,
        space,
        seed=tuple(seed),
        support=support,
        context=context,
        checkpoint_path=checkpoint_path,
    )
    model = cost_model if cost_model is not None else LinearCostModel(lattice)
    router = RoutingTable(model, advice.selections)
    return partitioned, advice, router
