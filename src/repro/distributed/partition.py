"""Balanced k-way workload partitioning for divergent replicas.

A fleet of N replicas under the same per-replica space budget beats N
identical copies only if each replica specializes: give replica *i* the
slice of the workload its structures should serve best.  The split here
reuses the deterministic Jaccard agglomeration of
:func:`repro.mining.cluster.cluster_queries` — queries over similar
attribute sets want the same views and indexes, so they belong on the
same replica — and layers a balanced k-way assignment on top so no
replica starves (an empty partition would waste a whole replica's
budget).

Assignment is longest-processing-time (LPT) greedy over cluster units:
heaviest unit first, onto the currently lightest partition.  When the
clustering yields fewer units than partitions, the heaviest multi-pattern
units split into per-pattern singletons until every partition can receive
work (or no unit can split further).  Every ordering is fixed by
(weight, canonical attribute tuple, pattern sort key) — partitions feed
checkpointed advisor runs that must resume bit-identically, so nothing
here may depend on hash order.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from repro.core.query import SliceQuery
from repro.mining.cluster import cluster_queries, query_sort_key
from repro.mining.candidates import DEFAULT_SIMILARITY


@dataclass(frozen=True)
class WorkloadPartition:
    """One replica's slice of the workload.

    ``counts`` maps each assigned query pattern to its observed weight;
    ``attrs`` is the union of the members' attribute sets (the smallest
    view able to answer every member — what the partition's advisor will
    gravitate toward).
    """

    partition_id: int
    counts: Dict[SliceQuery, float]
    weight: float
    attrs: frozenset

    @property
    def n_patterns(self) -> int:
        return len(self.counts)

    @property
    def empty(self) -> bool:
        return not self.counts


@dataclass(frozen=True)
class PartitionedWorkload:
    """A full k-way split of an observed workload.

    Partitions are indexed ``0 .. n_partitions - 1``; together they
    carry every positive-weight pattern of the input exactly once.
    """

    partitions: Tuple[WorkloadPartition, ...]
    total_weight: float
    similarity: float

    @property
    def n_partitions(self) -> int:
        return len(self.partitions)

    def fingerprint(self) -> str:
        """Deterministic digest of the split (content + parameters).

        Stored in advisor checkpoints so a resumed run can prove it
        re-partitioned the identical workload.
        """
        doc = {
            "similarity": self.similarity,
            "total_weight": self.total_weight,
            "partitions": [
                sorted(
                    [sorted(q.groupby), sorted(q.selection), float(w)]
                    for q, w in partition.counts.items()
                )
                for partition in self.partitions
            ],
        }
        blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()


def _unit_sort_key(unit: List[Tuple[SliceQuery, float]]) -> tuple:
    """Deterministic heaviest-first ordering key for assignment units."""
    weight = sum(w for __q, w in unit)
    attrs = frozenset().union(*(q.attrs for q, __w in unit))
    return (-weight, tuple(sorted(attrs)), query_sort_key(unit[0][0]))


def partition_workload(
    counts: Mapping[SliceQuery, float],
    n_partitions: int,
    similarity: float = DEFAULT_SIMILARITY,
) -> PartitionedWorkload:
    """Split an observed workload into ``n_partitions`` balanced slices.

    ``counts`` maps each observed pattern to its weight (non-positive
    weights are ignored).  Patterns cluster by attribute-set similarity
    first — replicas specialize by what the queries touch, not by load
    alone — then cluster units distribute LPT-greedy onto the lightest
    partition, the classic makespan heuristic.  Clusters heavier than
    the fair share (total weight / ``n_partitions``) split into
    per-pattern units first — one mega-cluster pinning most of the
    workload to one replica would defeat both balance and
    specialization — as do further clusters while units remain scarcer
    than partitions.  With fewer distinct patterns than partitions, the
    surplus partitions stay empty (their advisors fall back to the
    seed-only selection).

    Deterministic: same counts, same parameters, same split.
    """
    if n_partitions < 1:
        raise ValueError(f"n_partitions must be >= 1, got {n_partitions}")
    clusters = cluster_queries(counts, similarity=similarity)
    total = sum(c.weight for c in clusters)

    # assignment units: one per cluster, each a non-empty list of
    # (pattern, weight) members in the cluster's deterministic order
    weight_of: Dict[SliceQuery, float] = {}
    for query, weight in counts.items():
        weight = float(weight)
        if weight > 0:
            weight_of[query] = weight_of.get(query, 0.0) + weight
    units: List[List[Tuple[SliceQuery, float]]] = [
        [(q, weight_of[q]) for q in c.queries] for c in clusters
    ]

    # split any unit heavier than the fair share (and, failing that, any
    # unit at all while units are scarcer than partitions) into
    # per-pattern singletons: a single mega-cluster must not pin the
    # whole workload to one replica, and every partition must be
    # feedable.  Splitting trades cluster coherence for balance exactly
    # where coherence already lost — one unit covering most of the
    # workload specializes nothing.
    fair_share = total / n_partitions if n_partitions else total

    def oversized(unit) -> bool:
        return len(unit) > 1 and sum(w for __q, w in unit) > fair_share

    while True:
        units.sort(key=_unit_sort_key)
        splittable = next((u for u in units if oversized(u)), None)
        if splittable is None and len(units) < n_partitions:
            splittable = next((u for u in units if len(u) > 1), None)
        if splittable is None:
            break
        units.remove(splittable)
        units.extend([member] for member in splittable)

    # LPT: heaviest unit onto the lightest partition (ties: lowest id)
    units.sort(key=_unit_sort_key)
    assigned: List[List[Tuple[SliceQuery, float]]] = [
        [] for __ in range(n_partitions)
    ]
    loads = [0.0] * n_partitions
    for unit in units:
        target = min(range(n_partitions), key=lambda i: (loads[i], i))
        assigned[target].extend(unit)
        loads[target] += sum(w for __q, w in unit)

    partitions = []
    for partition_id, members in enumerate(assigned):
        members.sort(key=lambda pair: (-pair[1], query_sort_key(pair[0])))
        part_counts = {q: w for q, w in members}
        attrs = (
            frozenset().union(*(q.attrs for q in part_counts))
            if part_counts
            else frozenset()
        )
        partitions.append(
            WorkloadPartition(
                partition_id=partition_id,
                counts=part_counts,
                weight=sum(part_counts.values()),
                attrs=attrs,
            )
        )
    return PartitionedWorkload(
        partitions=tuple(partitions),
        total_weight=total,
        similarity=similarity,
    )
