"""Cost-routed query dispatch over divergent replica selections.

With every replica holding the same selection, round-robin is optimal.
With *divergent* selections, where a query lands matters: the routing
table prices each query pattern against every replica's structures under
the paper's ``|C| / |E|`` linear cost model — exactly the arithmetic of
:meth:`repro.engine.executor.Executor.plan_with_cost`, minimum over the
replica's answering (view, index) pairs — and routes to the cheapest
replica.  Every replica keeps the raw-cube fallback, so any replica can
answer any query (just not equally fast), which is what makes failover
safe: when the cheapest replica is struck, :meth:`ranking` hands the
router the rest in next-cheapest order.

Decisions are memoized per pattern (the same memo discipline as
:func:`repro.serve.batch.plan_for`), so routing costs one dict lookup on
the serving hot path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.costmodel import LinearCostModel
from repro.core.query import SliceQuery
from repro.serve.structures import resolve_selection
from repro.serve.telemetry import RAW_LABEL


@dataclass(frozen=True)
class RouteDecision:
    """The cheapest way one replica can answer one query pattern."""

    replica_id: int
    structure: str
    predicted: float
    fallback: bool


class RoutingTable:
    """Pattern -> replica dispatch for a set of divergent selections.

    Parameters
    ----------
    cost_model:
        The fleet's shared :class:`LinearCostModel` (predictions must
        match what each replica's server will report, so use the same
        model the fleet is built with).
    selections:
        One selection (structure labels) per replica, in replica-id
        order — :attr:`DivergentAdvice.selections` verbatim.
    """

    def __init__(
        self,
        cost_model: LinearCostModel,
        selections: Sequence[Sequence[str]],
    ):
        if not selections:
            raise ValueError("selections must not be empty")
        self.cost_model = cost_model
        self.selections = tuple(tuple(s) for s in selections)
        self._replicas = []
        for selection in self.selections:
            views, indexes = resolve_selection(selection)
            by_view = {view: [] for view in views}
            for index in indexes:
                by_view[index.view].append(index)
            self._replicas.append([(view, tuple(by_view[view])) for view in views])
        self._memo: Dict[SliceQuery, Tuple[RouteDecision, ...]] = {}

    @property
    def n_replicas(self) -> int:
        return len(self.selections)

    # ------------------------------------------------------------- pricing

    def best_plan(self, query: SliceQuery, replica_id: int) -> RouteDecision:
        """Cheapest answer for ``query`` on one replica's structures.

        Scans the replica's views in selection order and each view's
        ``[no index] + indexes`` candidates for the strict cost minimum —
        the same scan order as the executor's router, so the predicted
        cost equals what the replica's server will record.  Falls back
        to the raw cube (at :meth:`LinearCostModel.default_cost`) when
        no materialized view answers.
        """
        model = self.cost_model
        lattice = model.lattice
        best_cost = None
        best_structure = RAW_LABEL
        for view, indexes in self._replicas[replica_id]:
            if not query.answerable_by(view):
                continue
            candidates = [(model.cost(query, view), lattice.label(view))]
            for index in indexes:
                candidates.append(
                    (model.cost(query, view, index), lattice.index_label(index))
                )
            for cost, structure in candidates:
                if best_cost is None or cost < best_cost:
                    best_cost, best_structure = cost, structure
        if best_cost is None:
            return RouteDecision(
                replica_id=replica_id,
                structure=RAW_LABEL,
                predicted=model.default_cost(query),
                fallback=True,
            )
        return RouteDecision(
            replica_id=replica_id,
            structure=best_structure,
            predicted=best_cost,
            fallback=False,
        )

    # ------------------------------------------------------------- routing

    def ranking(self, query: SliceQuery) -> Tuple[RouteDecision, ...]:
        """Every replica's decision, cheapest first (ties: lowest id).

        Memoized per pattern; the full ranking is what health-aware
        failover walks — strike the head, serve from the next-cheapest.
        """
        cached = self._memo.get(query)
        if cached is not None:
            return cached
        decisions = sorted(
            (self.best_plan(query, replica_id) for replica_id in range(self.n_replicas)),
            key=lambda d: (d.predicted, d.replica_id),
        )
        ranking = tuple(decisions)
        self._memo[query] = ranking
        return ranking

    def route(self, query: SliceQuery) -> RouteDecision:
        """The designated (cheapest) replica for a query pattern."""
        return self.ranking(query)[0]

    def workload_cost(self, counts) -> float:
        """Total predicted workload cost under cheapest-replica routing:
        sum of weight times the routed plan's predicted rows."""
        return sum(
            float(weight) * self.route(query).predicted
            for query, weight in counts.items()
            if weight > 0
        )

    # ----------------------------------------------------------- reporting

    def to_dict(self, patterns: Sequence[SliceQuery]) -> dict:
        """A JSON-serializable table for the given patterns."""
        routes = {}
        for query in sorted(set(patterns), key=str):
            decision = self.route(query)
            routes[str(query)] = {
                "replica": decision.replica_id,
                "structure": decision.structure,
                "predicted_rows": decision.predicted,
                "fallback": decision.fallback,
            }
        return {
            "replicas": self.n_replicas,
            "selections": [list(s) for s in self.selections],
            "routes": routes,
        }
