"""Divergent-serving smoke check: the CI gate behind repro.distributed.

End-to-end contract over a recorded query log:

1. partition the log into N balanced slices by attribute-set similarity;
2. advise every partition under the same per-replica budget;
3. serve the log through a routed :class:`~repro.serve.fleet.ReplicaFleet`
   (each query to its predicted-cheapest replica), killing one replica
   halfway so failover re-routes down the cost ranking;
4. assert **zero wrong answers** — every routed answer byte-identical to
   a golden serial :class:`~repro.serve.server.QueryServer` run over the
   single-budget selection — and a predicted-cost ratio ≤ 1.0
   (divergence must never price the workload above identical copies).

Run it against a log produced by ``repro serve --record``::

    python -m repro serve --dims 4 --queries 300 --record obs.jsonl
    python -m repro.distributed.smoke --dims 4 --log obs.jsonl \\
        --partitions 3 --output divergent-report.json

Exits 0 when every check holds, 1 otherwise; the JSON report (the
divergence report plus the serving verdict) is written either way so CI
uploads a useful artifact even on failure.

The fixture fact uses *integral* measures: replicas answer the same
query from different structures, and only integer-valued float64 sums
are bit-identical under every aggregation order.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

#: Absolute slack for the predicted-cost-ratio comparison.
EPS = 1e-9


def run_smoke(
    dims: int,
    log_path: str,
    n_partitions: int = 3,
    space: Optional[float] = None,
    algorithm: str = "1greedy",
    queries: Optional[int] = None,
    kill_replica: Optional[int] = 0,
    workers: int = 1,
) -> dict:
    """Partition, advise, serve routed, and return the verdict report."""
    from repro.algorithms import FIT_STRICT, InnerLevelGreedy, RGreedy
    from repro.core.costmodel import LinearCostModel
    from repro.core.qvgraph import QueryViewGraph
    from repro.cube.query_log import pattern_counts
    from repro.datasets.tpcd import tpcd_serving_fact
    from repro.distributed import divergence_report, plan_divergent
    from repro.io import iter_query_log
    from repro.serve import (
        QueryServer,
        ReplicaFleet,
        ServingError,
        validate_telemetry,
    )

    fact = tpcd_serving_fact(dims, integral_measures=True)
    model = LinearCostModel.from_fact(fact)
    lattice = model.lattice
    schema = lattice.schema
    top_label = lattice.label(lattice.top)
    if space is None:
        space = 3.0 * lattice.size(lattice.top)
    make_algorithm = {
        "1greedy": lambda: RGreedy(1, fit=FIT_STRICT),
        "2greedy": lambda: RGreedy(2, fit=FIT_STRICT),
        "inner": lambda: InnerLevelGreedy(fit=FIT_STRICT),
    }[algorithm]

    log = list(iter_query_log(log_path, schema))
    if queries is not None:
        log = log[: int(queries)]
    if not log:
        raise ValueError(f"{log_path}: query log is empty, nothing to serve")
    counts = pattern_counts(log)

    partitioned, advice, router = plan_divergent(
        lattice,
        counts,
        make_algorithm(),
        space,
        n_partitions,
        seed=(top_label,),
        cost_model=model,
    )

    # the identical-copies reference: one advise over the whole workload
    identical = (
        make_algorithm()
        .run(
            QueryViewGraph.from_cube(lattice, frequencies=counts),
            space,
            seed=(top_label,),
        )
        .selected
    )
    report = divergence_report(
        model, counts, advice, identical, partitioned=partitioned, router=router
    )

    # golden serial answers over the identical selection
    with QueryServer(fact, identical, cost_model=model) as golden_server:
        golden = [golden_server.serve(entry).groups for entry in log]

    wrong = 0
    failed = 0
    kill_at = len(log) // 2
    killed = None
    fleet = ReplicaFleet(
        fact,
        advice.selections,
        cost_model=model,
        workers=workers,
        router=router,
    )
    try:
        for i, entry in enumerate(log):
            if (
                kill_replica is not None
                and i == kill_at
                and 0 <= kill_replica < len(fleet.replicas)
                and len(fleet.replicas) > 1
            ):
                fleet.replicas[kill_replica].kill()
                killed = kill_replica
            try:
                outcome = fleet.serve(entry)
            except ServingError:
                failed += 1
                continue
            if outcome.groups != golden[i]:
                wrong += 1
        fleet_stats = fleet.stats()
    finally:
        fleet.close()
    telemetry = fleet.merged_telemetry().snapshot()
    validate_telemetry(telemetry)

    ratio = report["predicted_cost_ratio"]
    checks = {
        "zero_wrong_answers": wrong == 0,
        "zero_failed_queries": failed == 0,
        "ratio_at_most_one": ratio <= 1.0 + EPS,
        "every_replica_nonempty": all(
            not p.empty for p in partitioned.partitions
        ),
    }
    report["smoke"] = {
        "dims": dims,
        "log": str(log_path),
        "queries": len(log),
        "partitions": n_partitions,
        "space_per_replica": space,
        "algorithm": algorithm,
        "killed_replica": killed,
        "wrong_answers": wrong,
        "failed_queries": failed,
        "fleet": telemetry["fleet"],
        "routed_dispatch": fleet_stats["routed_dispatch"],
        "checks": checks,
        "ok": all(checks.values()),
    }
    return report


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.distributed.smoke",
        description="serve a recorded workload through a divergent routed "
        "fleet and verify byte-identical answers plus a predicted-cost "
        "ratio at most 1.0",
    )
    parser.add_argument(
        "--dims", type=int, default=4, choices=(3, 4, 5),
        help="serving-cube dimensionality the log was recorded on",
    )
    parser.add_argument(
        "--log", required=True, help="query log JSONL from repro serve --record"
    )
    parser.add_argument(
        "--partitions", type=int, default=3,
        help="replica count / workload partitions (default 3)",
    )
    parser.add_argument(
        "--space", type=float, default=None,
        help="per-replica space budget in rows (default: 3x the top view)",
    )
    parser.add_argument(
        "--algorithm", choices=("1greedy", "2greedy", "inner"),
        default="1greedy",
    )
    parser.add_argument(
        "--queries", type=int, default=None,
        help="serve only the first N log entries (default: all)",
    )
    parser.add_argument(
        "--kill-replica", type=int, default=0,
        help="replica to kill halfway through serving (default 0)",
    )
    parser.add_argument(
        "--no-kill", action="store_true",
        help="serve the whole log without the mid-run replica kill",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="front-end workers per replica (default 1)",
    )
    parser.add_argument(
        "--output", default=None,
        help="write the divergence report (with the smoke verdict) here",
    )
    args = parser.parse_args(argv)

    report = run_smoke(
        args.dims,
        args.log,
        n_partitions=args.partitions,
        space=args.space,
        algorithm=args.algorithm,
        queries=args.queries,
        kill_replica=None if args.no_kill else args.kill_replica,
        workers=args.workers,
    )
    smoke = report["smoke"]
    if args.output:
        with open(args.output, "w") as f:
            json.dump(report, f, indent=2, sort_keys=True)
    print(
        f"served {smoke['queries']} queries over {smoke['partitions']} "
        f"divergent replicas (killed: {smoke['killed_replica']}): "
        f"{smoke['wrong_answers']} wrong, {smoke['failed_queries']} failed, "
        f"predicted-cost ratio {report['predicted_cost_ratio']:.4f}"
    )
    for name, ok in smoke["checks"].items():
        print(f"  {name}: {'ok' if ok else 'FAILED'}")
    if not smoke["ok"]:
        print("divergent-serving smoke FAILED", file=sys.stderr)
        return 1
    print("divergent-serving smoke ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
