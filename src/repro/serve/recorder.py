"""Streaming workload recorder: the observed query log, on disk.

The recorder appends every served query to a JSONL file in the
:mod:`repro.io` query-log format (one record per line), so a serving
session's observed workload can be replayed later — or fed back into the
advisor — exactly as :func:`repro.io.load_query_log` reads it.  Writes
are line-atomic under a lock; the concurrent replay driver shares one
recorder across its worker threads.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import List, Optional, Union

from repro.io import log_entry_to_dict

PathLike = Union[str, Path]


class WorkloadRecorder:
    """Append-only JSONL writer for observed queries.

    Parameters
    ----------
    path:
        Target file; opened lazily on the first record and truncated
        (one recorder = one recording session).  ``None`` keeps the log
        in memory only (:attr:`entries`).
    """

    def __init__(self, path: Optional[PathLike] = None):
        self.path = Path(path) if path is not None else None
        self._lock = threading.Lock()
        self._file = None
        self._entries: List = []
        self._closed = False

    @property
    def entries(self) -> List:
        """The recorded entries, in arrival order (a copy)."""
        with self._lock:
            return list(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def record(self, entry) -> None:
        """Append one :class:`~repro.cube.query_log.LogEntry`."""
        line = json.dumps(log_entry_to_dict(entry), sort_keys=True)
        with self._lock:
            if self._closed:
                raise ValueError("recorder is closed")
            self._entries.append(entry)
            if self.path is not None:
                if self._file is None:
                    self._file = open(self.path, "w")
                self._file.write(line)
                self._file.write("\n")

    def flush(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.flush()

    def close(self) -> None:
        """Flush and close; an empty recording still leaves a valid
        (empty) log file behind."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self.path is not None and self._file is None:
                self.path.touch()
            if self._file is not None:
                self._file.close()
                self._file = None

    def __enter__(self) -> "WorkloadRecorder":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
