"""Streaming workload recorder: the observed query log, on disk.

The recorder appends every served query to a JSONL file in the
:mod:`repro.io` query-log format (one record per line), so a serving
session's observed workload can be replayed later — or fed back into the
advisor — exactly as :func:`repro.io.load_query_log` reads it.  Writes
are line-atomic under a lock; the concurrent replay driver shares one
recorder across its worker threads.

The file is opened **line-buffered**, so every recorded entry reaches
the OS as soon as :meth:`record` returns — a server killed mid-stream
(crash, SIGKILL, power loss) leaves a log of complete lines that
:func:`~repro.io.load_query_log` loads without repair.  The recorder is
a context manager; :meth:`close` runs on exception exits too (and
:meth:`QueryServer.close` closes its recorder on server shutdown), so
the normal paths flush-and-close deterministically.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import List, Optional, Union

from repro.io import log_entry_to_dict

PathLike = Union[str, Path]


class WorkloadRecorder:
    """Append-only JSONL writer for observed queries.

    Parameters
    ----------
    path:
        Target file; opened lazily on the first record and truncated
        (one recorder = one recording session).  ``None`` keeps the log
        in memory only (:attr:`entries`).
    """

    def __init__(self, path: Optional[PathLike] = None):
        self.path = Path(path) if path is not None else None
        self._lock = threading.Lock()
        self._file = None
        self._entries: List = []
        self._closed = False

    @property
    def entries(self) -> List:
        """The recorded entries, in arrival order (a copy)."""
        with self._lock:
            return list(self._entries)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def record(self, entry) -> None:
        """Append one :class:`~repro.cube.query_log.LogEntry`.

        The line is flushed to the OS before this returns (line
        buffering), so a kill between records never truncates the log
        mid-line.
        """
        line = json.dumps(log_entry_to_dict(entry), sort_keys=True)
        with self._lock:
            if self._closed:
                raise ValueError("recorder is closed")
            self._entries.append(entry)
            if self.path is not None:
                if self._file is None:
                    self._file = open(self.path, "w", buffering=1)
                self._file.write(line)
                self._file.write("\n")

    def flush(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.flush()

    def close(self) -> None:
        """Flush and close; an empty recording still leaves a valid
        (empty) log file behind.  Idempotent — safe to call from both
        an exception handler and the server's shutdown path."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self.path is not None and self._file is None:
                self.path.touch()
            if self._file is not None:
                self._file.close()
                self._file = None

    def __enter__(self) -> "WorkloadRecorder":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
