"""Resilience primitives for the serving layer.

Three small, composable pieces keep a degraded server *correct* instead
of wedged:

* a **typed error hierarchy** rooted at :class:`ServingError` — every
  failure the serving stack can hand a caller (a crashed worker, a
  closed front-end, an exhausted retry budget, a fleet with no healthy
  replica) is a distinct class, so callers and the chaos harness can
  tell "degraded but accounted for" apart from "bug";
* a per-structure **circuit breaker** (:class:`CircuitBreaker`) — the
  classic closed → open → half-open automaton.  Repeated executor
  errors against one materialized structure trip its circuit; while
  open, the batch executor short-circuits that structure onto the
  raw-cube fallback (degraded-but-correct: the raw path answers every
  slice query, just slower).  After a cooldown one probe execution is
  allowed through (half-open); success closes the circuit, failure
  re-opens it;
* a **retry policy** (:class:`RetryPolicy`) — bounded attempts with
  jittered exponential backoff, used by the replica fleet's router to
  re-route a failed or timed-out query to another healthy replica.

Both the breaker and the policy take injectable clocks / RNGs so tests
and the chaos harness are deterministic.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

#: Consecutive executor errors against one structure before its circuit
#: trips (the "configured error threshold" of the acceptance criteria).
BREAKER_FAILURE_THRESHOLD = 3

#: Seconds an open circuit waits before allowing one half-open probe.
BREAKER_COOLDOWN_SECONDS = 5.0

#: Circuit states (string-valued for easy snapshotting).
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"


# ------------------------------------------------------------- errors


class ServingError(RuntimeError):
    """Base class of every typed serving-layer failure.

    Anything the resilience machinery *expects* and accounts for raises
    a subclass of this; an exception outside the hierarchy reaching a
    caller means an unhandled bug, and the chaos harness treats it as a
    failed run.
    """


class WorkerCrashed(ServingError):
    """A front-end worker thread died; the affected queries were failed
    (never left hanging) and the worker was restarted if budget allows."""


class FrontendClosed(ServingError):
    """The front-end shut down with this query still queued."""


class QueryTimeout(ServingError):
    """A query missed its per-attempt deadline on one replica."""


class NoHealthyReplica(ServingError):
    """The fleet router found no healthy replica to try.

    Carries ``strikes`` — per-replica diagnostic state at raise time
    (``{replica_id: {"strikes": n, "dead": bool, "healthy": bool,
    "last_reason": str}}``) — so a caller can see *why* every replica
    was out of rotation instead of just that it was.
    """

    def __init__(self, message: str, strikes: Optional[dict] = None):
        super().__init__(message)
        self.strikes = dict(strikes) if strikes is not None else {}


class RetriesExhausted(ServingError):
    """Every allowed attempt failed; carries the last underlying error."""

    def __init__(
        self,
        message: str,
        attempts: int = 0,
        last_error: Optional[BaseException] = None,
    ):
        super().__init__(message)
        self.attempts = attempts
        self.last_error = last_error


# ------------------------------------------------------------ breaker


class CircuitBreaker:
    """Per-structure circuit breaker over executor errors.

    Thread-safe; one instance guards every structure of one server (the
    state dict is keyed by structure label).  ``on_trip`` / ``on_reset``
    are called *outside* the internal lock with the structure label —
    the server wires them to its telemetry counters.
    """

    def __init__(
        self,
        failure_threshold: int = BREAKER_FAILURE_THRESHOLD,
        cooldown_seconds: float = BREAKER_COOLDOWN_SECONDS,
        clock: Callable[[], float] = time.monotonic,
        on_trip: Optional[Callable[[str], None]] = None,
        on_reset: Optional[Callable[[str], None]] = None,
    ):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown_seconds < 0:
            raise ValueError(
                f"cooldown_seconds must be >= 0, got {cooldown_seconds}"
            )
        self.failure_threshold = int(failure_threshold)
        self.cooldown_seconds = float(cooldown_seconds)
        self.clock = clock
        self.on_trip = on_trip
        self.on_reset = on_reset
        import threading

        self._lock = threading.Lock()
        self._circuits: Dict[str, dict] = {}
        self.trips = 0
        self.resets = 0

    def _circuit(self, structure: str) -> dict:
        circuit = self._circuits.get(structure)
        if circuit is None:
            circuit = {
                "state": BREAKER_CLOSED,
                "failures": 0,
                "opened_at": 0.0,
                "probing": False,
            }
            self._circuits[structure] = circuit
        return circuit

    def allow(self, structure: str) -> bool:
        """May this structure be executed against right now?

        Closed: yes.  Open: no, until the cooldown elapses — then the
        circuit moves to half-open and exactly one caller gets a probe.
        Half-open: only the probe holder; everyone else short-circuits.
        """
        with self._lock:
            circuit = self._circuit(structure)
            state = circuit["state"]
            if state == BREAKER_CLOSED:
                return True
            if state == BREAKER_OPEN:
                if self.clock() - circuit["opened_at"] < self.cooldown_seconds:
                    return False
                circuit["state"] = BREAKER_HALF_OPEN
                circuit["probing"] = True
                return True
            # half-open: one probe at a time
            if circuit["probing"]:
                return False
            circuit["probing"] = True
            return True

    def record_failure(self, structure: str) -> bool:
        """One executor error against the structure; returns ``True``
        when this failure tripped (or re-tripped) the circuit."""
        callback = None
        with self._lock:
            circuit = self._circuit(structure)
            state = circuit["state"]
            tripped = False
            if state == BREAKER_HALF_OPEN:
                tripped = True  # the probe failed: straight back to open
            else:
                circuit["failures"] += 1
                if circuit["failures"] >= self.failure_threshold:
                    tripped = True
            if tripped:
                circuit["state"] = BREAKER_OPEN
                circuit["opened_at"] = self.clock()
                circuit["failures"] = 0
                circuit["probing"] = False
                self.trips += 1
                callback = self.on_trip
        if callback is not None:
            callback(structure)
        return tripped

    def record_success(self, structure: str) -> bool:
        """One successful execution; returns ``True`` when it closed a
        half-open circuit."""
        callback = None
        with self._lock:
            circuit = self._circuit(structure)
            closed = False
            if circuit["state"] == BREAKER_HALF_OPEN:
                circuit["state"] = BREAKER_CLOSED
                circuit["probing"] = False
                circuit["failures"] = 0
                self.resets += 1
                closed = True
                callback = self.on_reset
            elif circuit["state"] == BREAKER_CLOSED:
                circuit["failures"] = 0
        if callback is not None:
            callback(structure)
        return closed

    def state(self, structure: str) -> str:
        with self._lock:
            circuit = self._circuits.get(structure)
            return circuit["state"] if circuit is not None else BREAKER_CLOSED

    def open_structures(self) -> List[str]:
        """Labels whose circuits are currently open or half-open."""
        with self._lock:
            return sorted(
                label
                for label, circuit in self._circuits.items()
                if circuit["state"] != BREAKER_CLOSED
            )

    def stats(self) -> dict:
        with self._lock:
            return {
                "failure_threshold": self.failure_threshold,
                "cooldown_seconds": self.cooldown_seconds,
                "trips": self.trips,
                "resets": self.resets,
                "states": {
                    label: circuit["state"]
                    for label, circuit in sorted(self._circuits.items())
                },
            }


# -------------------------------------------------------------- retry


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with jittered exponential backoff.

    ``delay(attempt)`` is ``base_delay * multiplier**attempt`` capped at
    ``max_delay``, then scaled by a uniform jitter in
    ``[1 - jitter, 1 + jitter]`` — the standard decorrelation so a
    thundering herd of retries does not re-land in lockstep.
    """

    max_attempts: int = 3
    base_delay: float = 0.01
    multiplier: float = 2.0
    max_delay: float = 0.5
    jitter: float = 0.5

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be nonnegative")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        """Backoff before retry number ``attempt`` (0-based)."""
        raw = min(self.max_delay, self.base_delay * self.multiplier ** attempt)
        if self.jitter and rng is not None:
            raw *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(0.0, raw)
