"""The in-process query server: route, execute, observe, adapt.

:class:`QueryServer` holds one immutable :class:`ServingState` — catalog,
executor, and the selection it materializes — behind an atomic reference.
Every query reads the reference once, so a background re-selection can
build a whole new state and swap it in while the old one keeps serving.

Per query, the server

1. routes to the cheapest answering ``(view, index)`` plan with the
   paper's ``|C| / |E|`` cost model (:meth:`Executor.plan_with_cost`),
   falling back to a raw fact-table scan when nothing materialized
   answers,
2. executes the plan, counting rows actually processed,
3. records telemetry (latency, predicted vs. actual rows, per-structure
   hits, fallbacks), appends to the workload recorder, and feeds the
   drift monitor,
4. when the observed workload has drifted and a reselector is
   configured, triggers one background re-advise; if its selection beats
   the current one by the margin, the server materializes it and swaps.

The concurrent :meth:`replay` driver pushes a recorded log through
:meth:`serve` from a thread pool — safe because the state is immutable
and every shared collector takes its own lock.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.costmodel import LinearCostModel
from repro.core.query import SliceQuery
from repro.cube.query_log import LogEntry
from repro.engine.catalog import Catalog
from repro.engine.executor import Executor
from repro.engine.pipeline import materialize_selection
from repro.engine.table import FactTable
from repro.serve.adaptive import AdaptiveReselector, ReadviseOutcome
from repro.serve.drift import DriftMonitor
from repro.serve.recorder import WorkloadRecorder
from repro.serve.structures import resolve_selection
from repro.serve.telemetry import RAW_LABEL, TelemetryCollector, _percentile


@dataclass(frozen=True)
class ServingState:
    """One materialized selection, ready to answer queries (immutable —
    swapped atomically, never mutated)."""

    catalog: Catalog
    executor: Executor
    selection: Tuple[str, ...]
    generation: int = 0


@dataclass
class ServeOutcome:
    """What serving one query observed."""

    entry: LogEntry
    structure: str
    predicted_rows: float
    actual_rows: int
    latency_us: float
    fallback: bool
    groups: Dict[tuple, float] = field(default_factory=dict)


@dataclass
class ReplayReport:
    """Aggregate of one :meth:`QueryServer.replay` run."""

    queries: int
    fallbacks: int
    workers: int
    seconds: float
    latencies_us: List[float] = field(default_factory=list)

    @property
    def qps(self) -> float:
        return self.queries / self.seconds if self.seconds > 0 else 0.0

    @property
    def p50_us(self) -> float:
        return _percentile(self.latencies_us, 0.50)

    @property
    def p99_us(self) -> float:
        return _percentile(self.latencies_us, 0.99)

    def summary(self) -> dict:
        return {
            "queries": self.queries,
            "fallbacks": self.fallbacks,
            "workers": self.workers,
            "seconds": self.seconds,
            "qps": self.qps,
            "p50_us": self.p50_us,
            "p99_us": self.p99_us,
        }


class QueryServer:
    """Serves concrete slice queries from a materialized selection.

    Parameters
    ----------
    fact:
        The raw fact table (also the fallback execution path).
    selection:
        Structure labels to materialize (paper notation, e.g. ``psc``,
        ``I_sp(ps)``) — typically ``SelectionResult.selected``.
    cost_model:
        Router cost model.  Defaults to the *exact* model measured from
        the fact table (:meth:`LinearCostModel.from_fact`), under which
        predicted rows equal actual rows on dense cubes.
    advised:
        The workload frequencies the selection was advised under; enables
        the drift monitor.
    recorder:
        Optional :class:`WorkloadRecorder` that every served entry is
        appended to.
    reselector:
        Optional :class:`AdaptiveReselector`; with it (and ``advised``),
        drift past the monitor's threshold triggers one background
        re-advise and — when the new selection wins by the reselector's
        margin — an atomic hot swap.
    drift_threshold / drift_min_queries:
        Forwarded to the :class:`DriftMonitor` (ignored without
        ``advised``).
    background:
        ``False`` runs re-advises synchronously inside :meth:`serve`
        (deterministic for tests); ``True`` (default) runs them on a
        daemon thread while the old selection keeps serving.
    """

    def __init__(
        self,
        fact: FactTable,
        selection: Sequence[str],
        cost_model: Optional[LinearCostModel] = None,
        advised: Optional[Mapping[SliceQuery, float]] = None,
        recorder: Optional[WorkloadRecorder] = None,
        reselector: Optional[AdaptiveReselector] = None,
        drift_threshold: Optional[float] = None,
        drift_min_queries: Optional[int] = None,
        keep_records: bool = True,
        background: bool = True,
    ):
        self.fact = fact
        self.cost_model = (
            cost_model if cost_model is not None else LinearCostModel.from_fact(fact)
        )
        self.telemetry = TelemetryCollector(keep_records=keep_records)
        self.recorder = recorder
        self.reselector = reselector
        self.background = background
        self.drift: Optional[DriftMonitor] = None
        if advised is not None:
            kwargs = {}
            if drift_threshold is not None:
                kwargs["threshold"] = drift_threshold
            if drift_min_queries is not None:
                kwargs["min_queries"] = drift_min_queries
            self.drift = DriftMonitor(advised, **kwargs)

        self._swap_lock = threading.Lock()
        self._readvise_lock = threading.Lock()
        self._readvise_thread: Optional[threading.Thread] = None
        self._readvise_inflight = False
        self._cooldown_until = 0
        self.readvise_count = 0
        self.swap_count = 0
        self.outcomes: List[ReadviseOutcome] = []
        self._state = self._materialize(tuple(selection), generation=0)

    # -------------------------------------------------------------- state

    @property
    def state(self) -> ServingState:
        """The current serving state (read once per query — immutable)."""
        return self._state

    @property
    def selection(self) -> Tuple[str, ...]:
        return self._state.selection

    def _materialize(self, names: Tuple[str, ...], generation: int) -> ServingState:
        views, indexes = resolve_selection(names)
        catalog = Catalog(self.fact)
        materialize_selection(catalog, views, indexes)
        executor = Executor(catalog, self.cost_model)
        return ServingState(
            catalog=catalog,
            executor=executor,
            selection=names,
            generation=generation,
        )

    # -------------------------------------------------------------- serve

    def serve(self, entry: LogEntry) -> ServeOutcome:
        """Answer one concrete query; record telemetry and workload."""
        state = self._state  # single atomic read: stable across the call
        start = time.perf_counter()
        try:
            view, index, predicted = state.executor.plan_with_cost(entry.query)
        except LookupError:
            outcome = self._serve_raw(entry, start)
        else:
            result = state.executor.execute(
                entry.query, entry.bound_values, plan=(view, index)
            )
            latency_us = (time.perf_counter() - start) * 1e6
            lattice = self.cost_model.lattice
            structure = (
                lattice.index_label(index) if index is not None else lattice.label(view)
            )
            outcome = ServeOutcome(
                entry=entry,
                structure=structure,
                predicted_rows=predicted,
                actual_rows=result.rows_processed,
                latency_us=latency_us,
                fallback=False,
                groups=result.groups,
            )
        self._observe(outcome)
        return outcome

    def _serve_raw(self, entry: LogEntry, start: float) -> ServeOutcome:
        """Fallback: answer from the raw fact table (full scan)."""
        fact = self.fact
        predicted = self.cost_model.default_cost(entry.query)
        mask = np.ones(fact.n_rows, dtype=bool)
        for attr, value in entry.values:
            mask &= fact.columns[attr] == value
        groupby = fact.schema.sort_attrs(entry.query.groupby)
        measures = fact.measures[mask]
        groups: Dict[tuple, float] = {}
        if groupby:
            keys = np.stack([fact.columns[a][mask] for a in groupby], axis=1)
            for row in range(len(measures)):
                key = tuple(int(v) for v in keys[row])
                groups[key] = groups.get(key, 0.0) + float(measures[row])
        elif len(measures):
            groups[()] = float(measures.sum())
        latency_us = (time.perf_counter() - start) * 1e6
        return ServeOutcome(
            entry=entry,
            structure=RAW_LABEL,
            predicted_rows=predicted,
            actual_rows=fact.n_rows,
            latency_us=latency_us,
            fallback=True,
            groups=groups,
        )

    def _observe(self, outcome: ServeOutcome) -> None:
        self.telemetry.record(
            pattern=str(outcome.entry.query),
            structure=outcome.structure,
            latency_us=outcome.latency_us,
            predicted_rows=outcome.predicted_rows,
            actual_rows=outcome.actual_rows,
            fallback=outcome.fallback,
        )
        if self.recorder is not None:
            self.recorder.record(outcome.entry)
        if self.drift is not None:
            self.drift.observe(outcome.entry.query)
            if self.reselector is not None:
                self._maybe_readvise()

    # ----------------------------------------------------------- re-advise

    def _maybe_readvise(self) -> None:
        with self._readvise_lock:
            if self._readvise_inflight or not self.drift.drifted:
                return
            if self.drift.observed_total < self._cooldown_until:
                return
            self._readvise_inflight = True
            observed = self.drift.observed_counts()
        if self.background:
            thread = threading.Thread(
                target=self._run_readvise, args=(observed,), daemon=True
            )
            self._readvise_thread = thread
            thread.start()
        else:
            self._run_readvise(observed)

    def _run_readvise(self, observed: Mapping[SliceQuery, float]) -> None:
        try:
            current = self._state.selection
            outcome = self.reselector.readvise(observed, current)
            self.outcomes.append(outcome)
            self.readvise_count += 1
            if outcome.accepted:
                self._swap(tuple(outcome.result.selected), observed)
            else:
                # rejected: wait for the workload to move on before
                # re-running the advisor against near-identical counts
                with self._readvise_lock:
                    self._cooldown_until = (
                        self.drift.observed_total + self.drift.min_queries
                    )
        finally:
            with self._readvise_lock:
                self._readvise_inflight = False

    def _swap(
        self, names: Tuple[str, ...], observed: Mapping[SliceQuery, float]
    ) -> None:
        """Materialize the winning selection and publish it atomically.

        The old state serves every query that started before the swap;
        queries issued after see the new catalog."""
        with self._swap_lock:
            state = self._materialize(names, generation=self._state.generation + 1)
            self._state = state
            self.swap_count += 1
        self.telemetry.note_swap()
        if self.drift is not None:
            self.drift.rebase(observed)

    def drain(self, timeout: Optional[float] = None) -> None:
        """Wait for an in-flight background re-advise (if any)."""
        thread = self._readvise_thread
        if thread is not None and thread.is_alive():
            thread.join(timeout)

    # -------------------------------------------------------------- replay

    def replay(
        self, entries: Sequence[LogEntry], workers: Optional[int] = None
    ) -> ReplayReport:
        """Serve a recorded log, serially or from a thread pool.

        ``workers`` >= 2 drives :meth:`serve` concurrently — the
        immutable state plus per-collector locks make this safe; entry
        *completion* order is nondeterministic but every entry is served
        exactly once.
        """
        count = int(workers) if workers else 1
        start = time.perf_counter()
        if count <= 1:
            outcomes = [self.serve(entry) for entry in entries]
        else:
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(max_workers=count) as pool:
                outcomes = list(pool.map(self.serve, entries))
        seconds = time.perf_counter() - start
        return ReplayReport(
            queries=len(outcomes),
            fallbacks=sum(1 for o in outcomes if o.fallback),
            workers=count,
            seconds=seconds,
            latencies_us=[o.latency_us for o in outcomes],
        )

    # ------------------------------------------------------------ snapshot

    def telemetry_snapshot(self) -> dict:
        """The telemetry document plus serving meta (catalog stats,
        selection, drift status)."""
        meta = {
            "selection": list(self._state.selection),
            "generation": self._state.generation,
            "catalog": self._state.catalog.stats(),
            "readvises": self.readvise_count,
        }
        if self.drift is not None:
            meta["drift"] = self.drift.status()
        return self.telemetry.snapshot(meta=meta)
