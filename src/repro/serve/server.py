"""The in-process query server: route, execute, observe, adapt.

:class:`QueryServer` holds one immutable :class:`ServingState` — catalog,
executor, and the selection it materializes — behind an atomic reference.
Every query reads the reference once, so a background re-selection can
build a whole new state and swap it in while the old one keeps serving.

Queries are served in **batches** (:meth:`QueryServer.serve_batch`):
entries are grouped by their routed ``(view, index)`` plan and each group
is answered in one vectorized pass over the target structure
(:mod:`repro.serve.batch`), with identical concrete queries collapsing
to one execution.  Single-query :meth:`serve` is a batch of one — there
is exactly one execution path, so a replayed log and a live serving
session report the same routing and cost accounting.

With a :class:`~repro.serve.cache.ResultCache` attached, finished
results are memoized on the canonical concrete-query form.  Cached
entries are tagged with ``(serving generation, catalog version)``: a hot
swap bumps the generation and a fact-table delta applied through
:mod:`repro.engine.maintenance` bumps the catalog version, so neither
can ever serve stale rows — the first batch after either change drops
the cache wholesale.

Per batch, the server

1. routes each miss to the cheapest answering ``(view, index)`` plan
   with the paper's ``|C| / |E|`` cost model (memoized per pattern),
   falling back to a raw fact-table scan when nothing materialized
   answers,
2. executes each plan group in one pass, counting rows actually
   processed,
3. records telemetry (latency, predicted vs. actual rows, per-structure
   hits, fallbacks) into its own collector — or a caller-supplied one,
   which is how the concurrent front-end keeps workers lock-free —
   appends to the workload recorder, and feeds the drift monitor,
4. when the observed workload has drifted and a reselector is
   configured, triggers one background re-advise; if its selection beats
   the current one by the margin, the server materializes it and swaps.

The :meth:`replay` driver pushes a recorded log through the same
batched path — serially in chunks, or through the concurrent
:class:`~repro.serve.frontend.ServingFrontend` when ``workers >= 2``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.costmodel import LinearCostModel
from repro.core.query import SliceQuery
from repro.cube.query_log import LogEntry
from repro.engine.catalog import Catalog
from repro.engine.executor import Executor
from repro.engine.pipeline import materialize_selection
from repro.engine.table import FactTable
from repro.serve.adaptive import AdaptiveReselector, ReadviseOutcome
from repro.serve.batch import DEFAULT_BATCH_SIZE, execute_unique
from repro.serve.cache import CachedResult, ResultCache, result_key
from repro.serve.drift import DriftMonitor
from repro.serve.recorder import WorkloadRecorder
from repro.serve.resilience import CircuitBreaker
from repro.serve.structures import resolve_selection
from repro.serve.telemetry import RAW_LABEL, TelemetryCollector, _percentile


@dataclass(frozen=True)
class ServingState:
    """One materialized selection, ready to answer queries (immutable —
    swapped atomically, never mutated).

    ``plan_cache`` memoizes per-pattern routing decisions for this
    state; it is the only mutable member, written idempotently (the same
    pattern always routes to the same plan), so concurrent readers need
    no lock.
    """

    catalog: Catalog
    executor: Executor
    selection: Tuple[str, ...]
    generation: int = 0
    plan_cache: Dict[SliceQuery, object] = field(
        default_factory=dict, repr=False, compare=False
    )


@dataclass
class ServeOutcome:
    """What serving one query observed."""

    entry: LogEntry
    structure: str
    predicted_rows: float
    actual_rows: int
    latency_us: float
    fallback: bool
    groups: Dict[tuple, float] = field(default_factory=dict)
    cached: bool = False
    rescued: bool = False


@dataclass
class ReplayReport:
    """Aggregate of one :meth:`QueryServer.replay` run."""

    queries: int
    fallbacks: int
    workers: int
    seconds: float
    latencies_us: List[float] = field(default_factory=list)
    batch_size: int = 1
    cache_hits: int = 0

    @property
    def qps(self) -> float:
        return self.queries / self.seconds if self.seconds > 0 else 0.0

    @property
    def p50_us(self) -> float:
        return _percentile(self.latencies_us, 0.50)

    @property
    def p99_us(self) -> float:
        return _percentile(self.latencies_us, 0.99)

    def summary(self) -> dict:
        return {
            "queries": self.queries,
            "fallbacks": self.fallbacks,
            "workers": self.workers,
            "seconds": self.seconds,
            "qps": self.qps,
            "p50_us": self.p50_us,
            "p99_us": self.p99_us,
            "batch_size": self.batch_size,
            "cache_hits": self.cache_hits,
        }


class QueryServer:
    """Serves concrete slice queries from a materialized selection.

    Parameters
    ----------
    fact:
        The raw fact table (also the fallback execution path).
    selection:
        Structure labels to materialize (paper notation, e.g. ``psc``,
        ``I_sp(ps)``) — typically ``SelectionResult.selected``.
    cost_model:
        Router cost model.  Defaults to the *exact* model measured from
        the fact table (:meth:`LinearCostModel.from_fact`), under which
        predicted rows equal actual rows on dense cubes.
    advised:
        The workload frequencies the selection was advised under; enables
        the drift monitor.
    recorder:
        Optional :class:`WorkloadRecorder` that every served entry is
        appended to (closed by :meth:`close`).
    reselector:
        Optional :class:`AdaptiveReselector`; with it (and ``advised``),
        drift past the monitor's threshold triggers one background
        re-advise and — when the new selection wins by the reselector's
        margin — an atomic hot swap.
    cache:
        Optional :class:`~repro.serve.cache.ResultCache`; hits skip
        execution entirely while replaying the stored cost accounting,
        so telemetry invariants (exact predicted-vs-actual matches on
        dense fixtures) hold with the cache on.
    drift_threshold / drift_min_queries:
        Forwarded to the :class:`DriftMonitor` (ignored without
        ``advised``).
    breaker:
        Optional :class:`~repro.serve.resilience.CircuitBreaker`.
        Executor errors against a materialized structure are counted
        per structure; past the breaker's threshold the structure is
        short-circuited onto the raw-cube fallback until its cooldown
        half-opens the circuit.  Trips and resets land in telemetry.
    fault_hook:
        Optional ``hook(structure, entry)`` called before every
        structure execution — the chaos harness's injection point for
        executor errors and latency.
    backend:
        Optional :class:`~repro.backends.sqlite.SqliteBackend`; with it,
        every execution (prefix, scan, and raw) runs on the mirrored
        SQLite database instead of the row engine, with identical
        routing, answers, and cost accounting.  The mirror is synced at
        the top of each batch keyed on ``(generation, catalog
        version)``, so hot swaps and fact deltas rebuild it before any
        query can read stale rows.
    background:
        ``False`` runs re-advises synchronously inside :meth:`serve`
        (deterministic for tests); ``True`` (default) runs them on a
        daemon thread while the old selection keeps serving.
    """

    def __init__(
        self,
        fact: FactTable,
        selection: Sequence[str],
        cost_model: Optional[LinearCostModel] = None,
        advised: Optional[Mapping[SliceQuery, float]] = None,
        recorder: Optional[WorkloadRecorder] = None,
        reselector: Optional[AdaptiveReselector] = None,
        cache: Optional[ResultCache] = None,
        drift_threshold: Optional[float] = None,
        drift_min_queries: Optional[int] = None,
        keep_records: bool = True,
        background: bool = True,
        breaker: Optional[CircuitBreaker] = None,
        fault_hook=None,
        backend=None,
    ):
        self.fact = fact
        self.backend = backend
        self.cost_model = (
            cost_model if cost_model is not None else LinearCostModel.from_fact(fact)
        )
        self.telemetry = TelemetryCollector(keep_records=keep_records)
        self.recorder = recorder
        self.reselector = reselector
        self.cache = cache
        self.background = background
        self.breaker = breaker
        self.fault_hook = fault_hook
        if breaker is not None:
            # trips/resets are noted on the server's collector (not the
            # per-worker ones) so absorbing workers never double-counts
            if breaker.on_trip is None:
                breaker.on_trip = lambda structure: self.telemetry.note_breaker_trip()
            if breaker.on_reset is None:
                breaker.on_reset = (
                    lambda structure: self.telemetry.note_breaker_reset()
                )
        self.drift: Optional[DriftMonitor] = None
        if advised is not None:
            kwargs = {}
            if drift_threshold is not None:
                kwargs["threshold"] = drift_threshold
            if drift_min_queries is not None:
                kwargs["min_queries"] = drift_min_queries
            self.drift = DriftMonitor(advised, **kwargs)

        self._swap_lock = threading.Lock()
        self._readvise_lock = threading.Lock()
        self._readvise_thread: Optional[threading.Thread] = None
        self._readvise_inflight = False
        self._cooldown_until = 0
        self.readvise_count = 0
        self.readvise_failures = 0
        self.swap_count = 0
        self.outcomes: List[ReadviseOutcome] = []
        self._closed = False
        #: pattern -> str(pattern) memo: formatting a SliceQuery label is
        #: pure-Python and was a third of the warm per-query cost
        self._pattern_labels: Dict[SliceQuery, str] = {}
        self._state = self._materialize(tuple(selection), generation=0)

    # -------------------------------------------------------------- state

    @property
    def state(self) -> ServingState:
        """The current serving state (read once per batch — immutable)."""
        return self._state

    @property
    def selection(self) -> Tuple[str, ...]:
        return self._state.selection

    def _materialize(self, names: Tuple[str, ...], generation: int) -> ServingState:
        views, indexes = resolve_selection(names)
        catalog = Catalog(self.fact)
        materialize_selection(catalog, views, indexes)
        executor = Executor(catalog, self.cost_model)
        return ServingState(
            catalog=catalog,
            executor=executor,
            selection=names,
            generation=generation,
        )

    # -------------------------------------------------------------- serve

    def serve(self, entry: LogEntry) -> ServeOutcome:
        """Answer one concrete query; record telemetry and workload.

        A batch of one — same routing, execution, and caching as
        :meth:`serve_batch`.
        """
        return self.serve_batch([entry])[0]

    def serve_batch(
        self,
        entries: Sequence[LogEntry],
        telemetry: Optional[TelemetryCollector] = None,
    ) -> List[ServeOutcome]:
        """Answer a batch of concrete queries in grouped passes.

        The batch reads the serving state once (stable across the call),
        consults the result cache, collapses duplicate concrete queries,
        groups the misses by routed plan, and answers each group in one
        pass over its target structure.  Outcomes come back in input
        order.  ``telemetry`` redirects recording to a caller-owned
        collector (the concurrent front-end's per-worker collectors);
        the workload recorder and drift monitor are always shared.

        Latency accounting: executed entries report their plan group's
        elapsed time split evenly across the group's unique queries
        (duplicates share their execution's latency); cache hits report
        the lookup time alone.
        """
        if not entries:
            return []
        collector = telemetry if telemetry is not None else self.telemetry
        state = self._state  # single atomic read: stable across the batch
        tag = (state.generation, state.catalog.version)
        if self.backend is not None:
            # same (generation, version) key as the result cache: a hot
            # swap or applied delta rebuilds the mirror, a steady batch
            # is a no-op
            self.backend.sync(state.catalog, state.generation)
        cache = self.cache
        outcomes: List[Optional[ServeOutcome]] = [None] * len(entries)
        pending: Dict[tuple, List[int]] = {}
        if cache is not None:
            cache.ensure_tag(tag)
            for pos, entry in enumerate(entries):
                start = time.perf_counter()
                key = result_key(entry)
                hit = cache.get(key, tag)
                if hit is None:
                    pending.setdefault(key, []).append(pos)
                    continue
                outcomes[pos] = ServeOutcome(
                    entry=entry,
                    structure=hit.structure,
                    predicted_rows=hit.predicted_rows,
                    actual_rows=hit.actual_rows,
                    latency_us=(time.perf_counter() - start) * 1e6,
                    fallback=hit.structure == RAW_LABEL,
                    groups=hit.groups,
                    cached=True,
                )
        else:
            for pos, entry in enumerate(entries):
                pending.setdefault(result_key(entry), []).append(pos)

        if pending:
            items = [
                (key, entries[positions[0]]) for key, positions in pending.items()
            ]
            results = execute_unique(
                state,
                self.fact,
                self.cost_model,
                items,
                breaker=self.breaker,
                fault_hook=self.fault_hook,
                backend=self.backend,
            )
            for key, positions in pending.items():
                result = results[key]
                if result.error_structure:
                    # one executor error + one raw rescue per *unique*
                    # execution — reconciles 1:1 with injected faults
                    collector.note_executor_error(result.error_structure)
                    collector.note_raw_rescue()
                elif result.short_circuited:
                    collector.note_breaker_short_circuit()
                if cache is not None and not (
                    result.rescued or result.short_circuited
                ):
                    # degraded answers are correct but not worth pinning:
                    # once the circuit closes, the structure path should
                    # serve (and re-cache) these queries again
                    cache.put(
                        key,
                        CachedResult(
                            structure=result.structure,
                            predicted_rows=result.predicted_rows,
                            actual_rows=result.actual_rows,
                            groups=result.groups,
                        ),
                        tag,
                    )
                for pos in positions:
                    outcomes[pos] = ServeOutcome(
                        entry=entries[pos],
                        structure=result.structure,
                        predicted_rows=result.predicted_rows,
                        actual_rows=result.actual_rows,
                        latency_us=result.latency_us,
                        fallback=result.fallback,
                        groups=result.groups,
                        rescued=result.rescued,
                    )
        self._observe_batch(outcomes, collector)
        return outcomes

    def _observe_batch(
        self, outcomes: Sequence[ServeOutcome], collector: TelemetryCollector
    ) -> None:
        labels = self._pattern_labels
        observations = []
        for outcome in outcomes:
            query = outcome.entry.query
            pattern = labels.get(query)
            if pattern is None:  # idempotent write: safe under concurrency
                pattern = labels[query] = str(query)
            observations.append(
                (
                    pattern,
                    outcome.structure,
                    outcome.latency_us,
                    outcome.predicted_rows,
                    outcome.actual_rows,
                    outcome.fallback,
                )
            )
        collector.record_many(observations)
        if self.recorder is not None:
            for outcome in outcomes:
                self.recorder.record(outcome.entry)
        if self.drift is not None:
            for outcome in outcomes:
                self.drift.observe(outcome.entry.query)
                if self.reselector is not None:
                    self._maybe_readvise()

    # -------------------------------------------------------- maintenance

    def apply_delta(
        self,
        delta_columns,
        delta_measures,
        delta_extra_measures=None,
    ):
        """Apply a fact-table delta to the serving catalog.

        Delegates to :func:`repro.engine.maintenance.apply_delta` (which
        refreshes every materialized view and index and bumps the
        catalog version), repoints the server's raw-fallback fact table
        at the merged facts, and drops the result cache — a cached
        answer computed before the delta must never be served after it.
        Returns the :class:`~repro.engine.maintenance.RefreshReport`.
        """
        from repro.engine.maintenance import apply_delta as engine_apply_delta

        with self._swap_lock:
            state = self._state
            report = engine_apply_delta(
                state.catalog, delta_columns, delta_measures, delta_extra_measures
            )
            self.fact = state.catalog.fact
        if self.cache is not None:
            self.cache.invalidate()
        return report

    # ----------------------------------------------------------- re-advise

    def _maybe_readvise(self) -> None:
        with self._readvise_lock:
            if self._readvise_inflight or not self.drift.drifted:
                return
            if self.drift.observed_total < self._cooldown_until:
                return
            self._readvise_inflight = True
            observed = self.drift.observed_counts()
        if self.background:
            thread = threading.Thread(
                target=self._run_readvise, args=(observed,), daemon=True
            )
            self._readvise_thread = thread
            thread.start()
        else:
            self._run_readvise(observed)

    def _run_readvise(self, observed: Mapping[SliceQuery, float]) -> None:
        try:
            current = self._state.selection
            try:
                outcome = self.reselector.readvise(observed, current)
            except Exception as exc:
                # a crashed re-advise must never take serving down: the
                # old generation keeps serving, the failure is counted
                self._note_readvise_failure(f"re-advise crashed: {exc!r}")
                return
            self.outcomes.append(outcome)
            self.readvise_count += 1
            if outcome.accepted:
                try:
                    self._swap(tuple(outcome.result.selected), observed)
                except Exception as exc:
                    # materialization died mid-swap; the state reference
                    # was never repointed, so generation N keeps serving
                    self._note_readvise_failure(
                        f"hot swap crashed: {exc!r} (still serving "
                        f"generation {self._state.generation})"
                    )
            else:
                # rejected: wait for the workload to move on before
                # re-running the advisor against near-identical counts
                with self._readvise_lock:
                    self._cooldown_until = (
                        self.drift.observed_total + self.drift.min_queries
                    )
        finally:
            with self._readvise_lock:
                self._readvise_inflight = False

    def _note_readvise_failure(self, detail: str) -> None:
        """Record a crashed re-advise/swap: telemetry counter, a failed
        outcome in the log, and a cooldown so the very next query does
        not immediately re-trigger the same crash."""
        self.readvise_failures += 1
        self.telemetry.note_readvise_failure()
        self.outcomes.append(
            ReadviseOutcome(
                result=None,
                tau_current=0.0,
                tau_new=float("inf"),
                accepted=False,
                detail=detail,
            )
        )
        with self._readvise_lock:
            if self.drift is not None:
                self._cooldown_until = (
                    self.drift.observed_total + self.drift.min_queries
                )

    def _swap(
        self, names: Tuple[str, ...], observed: Mapping[SliceQuery, float]
    ) -> None:
        """Materialize the winning selection and publish it atomically.

        The old state serves every query that started before the swap;
        queries issued after see the new catalog.  The result cache is
        dropped — and any batch still serving the old state carries the
        old generation tag, so its late inserts are discarded rather
        than poisoning the new generation."""
        with self._swap_lock:
            state = self._materialize(names, generation=self._state.generation + 1)
            self._state = state
            self.swap_count += 1
        if self.cache is not None:
            self.cache.invalidate()
        self.telemetry.note_swap()
        if self.drift is not None:
            self.drift.rebase(observed)

    def drain(self, timeout: Optional[float] = None) -> None:
        """Wait for an in-flight background re-advise (if any)."""
        thread = self._readvise_thread
        if thread is not None and thread.is_alive():
            thread.join(timeout)

    def close(self, timeout: Optional[float] = 60.0) -> None:
        """Shut the server down: drain re-advises, flush and close the
        workload recorder.  Idempotent; also runs on context-manager
        exit, so an exception mid-serving still leaves a loadable log."""
        if self._closed:
            return
        self._closed = True
        self.drain(timeout=timeout)
        if self.recorder is not None:
            self.recorder.close()

    def __enter__(self) -> "QueryServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -------------------------------------------------------------- replay

    def replay(
        self,
        entries: Sequence[LogEntry],
        workers: Optional[int] = None,
        batch_size: Optional[int] = None,
    ) -> ReplayReport:
        """Serve a recorded log through the batched execution path.

        ``workers`` <= 1 serves the log serially in ``batch_size``
        chunks; ``workers`` >= 2 drives the same batches through the
        concurrent :class:`~repro.serve.frontend.ServingFrontend` (whose
        per-worker telemetry is merged back into the server's collector
        on completion).  Entry *completion* order is nondeterministic
        under workers but every entry is served exactly once, with
        telemetry counters identical to a serial run.
        """
        from repro.serve.frontend import ServingFrontend

        count = int(workers) if workers else 1
        size = DEFAULT_BATCH_SIZE if batch_size is None else int(batch_size)
        if size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        cache_hits_before = self.cache.hits if self.cache is not None else 0
        start = time.perf_counter()
        if count <= 1:
            outcomes: List[ServeOutcome] = []
            for lo in range(0, len(entries), size):
                outcomes.extend(self.serve_batch(entries[lo : lo + size]))
        else:
            with ServingFrontend(
                self,
                workers=count,
                batch_size=size,
                keep_records=self.telemetry.keep_records,
            ) as frontend:
                futures = [frontend.submit(entry) for entry in entries]
                outcomes = [future.result() for future in futures]
        seconds = time.perf_counter() - start
        cache_hits = (
            self.cache.hits - cache_hits_before if self.cache is not None else 0
        )
        return ReplayReport(
            queries=len(outcomes),
            fallbacks=sum(1 for o in outcomes if o.fallback),
            workers=count,
            seconds=seconds,
            latencies_us=[o.latency_us for o in outcomes],
            batch_size=size,
            cache_hits=cache_hits,
        )

    # ------------------------------------------------------------ snapshot

    def telemetry_snapshot(self) -> dict:
        """The telemetry document plus serving meta (catalog stats,
        selection, drift status) and result-cache counters."""
        meta = {
            "selection": list(self._state.selection),
            "generation": self._state.generation,
            "catalog": self._state.catalog.stats(),
            "readvises": self.readvise_count,
            "readvise_failures": self.readvise_failures,
        }
        if self.breaker is not None:
            meta["breaker"] = self.breaker.stats()
        if self.drift is not None:
            meta["drift"] = self.drift.status()
        cache_stats = self.cache.stats() if self.cache is not None else None
        return self.telemetry.snapshot(meta=meta, cache=cache_stats)
