"""Serving chaos harness: inject faults into live runs, prove correctness.

Sibling of :mod:`repro.runtime.faults` (which kills *selection* runs at
stage boundaries); this module attacks the *serving* stack.  Four fault
classes, one scenario each:

``worker_kill``
    Front-end workers die mid-batch (via the supervision crash hook).
    The fleet must re-route every affected query; supervision must
    restart every worker; ``worker_crashes``/``worker_restarts`` must
    equal the kills injected.
``structure_poison``
    Every execution against one materialized structure raises (a
    corrupted view/index).  Each poisoned execution must be rescued
    from the raw cube with a byte-identical answer, the breaker must
    trip within its threshold on every replica, and
    ``executor_errors``/``raw_rescues`` must equal the injections.
``slow_executor``
    One replica's executor gains ~120 ms per execution.  Queries that
    hit it must time out and succeed on the other replica; health
    probes must take the slow replica out of rotation; the injected
    sleeps must reconcile exactly with the slow latency samples in the
    replica's telemetry plus the slow probes in the checker's history;
    fleet-level unavailability must stay zero.
``mid_swap_crash``
    Every adaptive hot swap crashes inside materialization.  The old
    generation must keep serving (byte-identical answers, generation
    pinned at 0) and ``readvise_failures`` must equal the crashes.

Every scenario asserts **zero wrong answers** — each query's groups are
compared ``==`` against a golden serial run — and **exact fault
accounting**: the injected-fault count reconciles with the telemetry
counters, so a fault the counters missed fails the harness.

Answers are compared on an integer-measure variant of the dense serving
fixture: integer sums are exact in float64 regardless of accumulation
order, so raw-cube rescues are *byte-identical* to the structure path
(verified 120/120 at d=4) rather than merely close — wrong answers
cannot hide in float reassociation.

Run ``python -m repro.serve.chaos --dims 4`` (the CI smoke matrix).
Exit codes: 0 all scenarios pass, 1 any failure, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.algorithms.rgreedy import RGreedy
from repro.core.benefit import BenefitEngine
from repro.core.costmodel import LinearCostModel
from repro.core.qvgraph import QueryViewGraph
from repro.core.query import enumerate_slice_queries
from repro.cube.generator import dense_fact_table
from repro.cube.query_log import LogEntry, generate_query_log
from repro.datasets.tpcd import tpcd_serving_schema
from repro.engine.table import FactTable
from repro.serve.adaptive import AdaptiveReselector, ReadviseOutcome
from repro.serve.fleet import ReplicaFleet
from repro.serve.resilience import RetryPolicy, ServingError
from repro.serve.server import QueryServer
from repro.serve.telemetry import RAW_LABEL, validate_telemetry

SCENARIOS = ("worker_kill", "structure_poison", "slow_executor", "mid_swap_crash")


class InjectedFault(Exception):
    """Base of every fault the harness injects (not a ServingError on
    purpose: the *stack* must convert it into typed, accounted
    behavior)."""


class InjectedWorkerKill(InjectedFault):
    pass


class InjectedStructurePoison(InjectedFault):
    pass


class InjectedSwapCrash(InjectedFault):
    pass


@dataclass
class ScenarioReport:
    """One scenario's verdict and its fault-accounting reconciliation."""

    scenario: str
    queries: int
    injected: int
    accounted: int
    wrong_answers: int
    failed_queries: int
    ok: bool
    detail: str = ""
    extra: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        return {
            "scenario": self.scenario,
            "queries": self.queries,
            "injected": self.injected,
            "accounted": self.accounted,
            "wrong_answers": self.wrong_answers,
            "failed_queries": self.failed_queries,
            "ok": self.ok,
            "detail": self.detail,
            **self.extra,
        }


@dataclass
class ChaosContext:
    """Shared fixtures: fact table, cost model, selection, workload,
    golden answers."""

    dims: int
    fact: FactTable
    cost_model: LinearCostModel
    selection: List[str]
    log: List[LogEntry]
    golden: List[dict]
    golden_structures: List[str]


def integer_measure_fact(dims: int, rng: int = 0) -> FactTable:
    """The dense serving fixture with measures rounded to integers —
    integer sums are order-independent in float64, so every execution
    path yields byte-identical answers."""
    schema = tpcd_serving_schema(dims)
    base = dense_fact_table(schema, rng=rng)
    return FactTable(schema, base.columns, np.rint(base.measures))


def advise_selection(cost_model: LinearCostModel, space_factor: float = 3.0):
    lattice = cost_model.lattice
    engine = BenefitEngine(QueryViewGraph.from_cube(lattice))
    result = RGreedy(1).run(
        engine,
        space_factor * lattice.size(lattice.top),
        seed=(lattice.label(lattice.top),),
    )
    return list(result.selected)


def unique_entries(log: List[LogEntry]) -> List[LogEntry]:
    """Drop duplicate concrete queries so one entry == one execution
    (makes per-execution fault accounting exact)."""
    seen = set()
    out = []
    for entry in log:
        key = (entry.query, entry.values)
        if key not in seen:
            seen.add(key)
            out.append(entry)
    return out


def build_context(dims: int, queries: int, seed: int) -> ChaosContext:
    fact = integer_measure_fact(dims, rng=seed)
    cost_model = LinearCostModel.from_fact(fact)
    selection = advise_selection(cost_model)
    log = unique_entries(
        generate_query_log(fact.schema, queries, rng=seed + 1)
    )
    golden_server = QueryServer(fact, selection, cost_model=cost_model)
    outcomes = golden_server.serve_batch(log)
    return ChaosContext(
        dims=dims,
        fact=fact,
        cost_model=cost_model,
        selection=selection,
        log=log,
        golden=[outcome.groups for outcome in outcomes],
        golden_structures=[outcome.structure for outcome in outcomes],
    )


def _score_answers(results, golden) -> Dict[str, int]:
    """Wrong answers and typed failures over fleet results."""
    wrong = 0
    failed = 0
    for result, reference in zip(results, golden):
        if isinstance(result, ServingError):
            failed += 1
        elif result.groups != reference:
            wrong += 1
    return {"wrong": wrong, "failed": failed}


def _merged_resilience(fleet: ReplicaFleet) -> dict:
    merged = fleet.merged_telemetry()
    document = validate_telemetry(merged.snapshot())
    return document["resilience"]


# ----------------------------------------------------------- scenarios


def scenario_worker_kill(ctx: ChaosContext, replicas: int, workers: int) -> ScenarioReport:
    """Kill front-end workers mid-batch; supervision + retry recover."""
    kills = 3
    fleet = ReplicaFleet(
        ctx.fact,
        ctx.selection,
        replicas=replicas,
        cost_model=ctx.cost_model,
        workers=workers,
        retry=RetryPolicy(max_attempts=4, base_delay=0.005),
    )
    lock = threading.Lock()
    injected = [0]

    def crash_hook(slot: int) -> None:
        with lock:
            if injected[0] < kills:
                injected[0] += 1
                raise InjectedWorkerKill(f"worker kill #{injected[0]}")

    for replica in fleet.replicas:
        replica.frontend.crash_hook = crash_hook
    results = fleet.serve_many(ctx.log, client_threads=4)
    fleet.close()
    score = _score_answers(results, ctx.golden)
    resilience = _merged_resilience(fleet)
    accounted = resilience["worker_crashes"]
    ok = (
        score["wrong"] == 0
        and score["failed"] == 0
        and injected[0] == kills
        and accounted == kills
        and resilience["worker_restarts"] == kills
    )
    return ScenarioReport(
        scenario="worker_kill",
        queries=len(ctx.log),
        injected=injected[0],
        accounted=accounted,
        wrong_answers=score["wrong"],
        failed_queries=score["failed"],
        ok=ok,
        detail=(
            f"{accounted} crashes / {resilience['worker_restarts']} restarts "
            f"/ {resilience['retries']} retries"
        ),
        extra={"restarts": resilience["worker_restarts"],
               "retries": resilience["retries"]},
    )


def scenario_structure_poison(
    ctx: ChaosContext, replicas: int, workers: int
) -> ScenarioReport:
    """Poison the hottest structure; raw rescue + breaker trip."""
    from collections import Counter

    counts = Counter(
        label for label in ctx.golden_structures if label != RAW_LABEL
    )
    target = counts.most_common(1)[0][0]
    threshold = 3
    fleet = ReplicaFleet(
        ctx.fact,
        ctx.selection,
        replicas=replicas,
        cost_model=ctx.cost_model,
        workers=workers,
        breaker_threshold=threshold,
        breaker_cooldown=600.0,  # no half-open probes inside the run
        retry=RetryPolicy(max_attempts=3, base_delay=0.005),
    )
    lock = threading.Lock()
    injected = [0]

    def poison(structure: str, entry: LogEntry) -> None:
        if structure == target:
            with lock:
                injected[0] += 1
            raise InjectedStructurePoison(f"poisoned {structure}")

    for replica in fleet.replicas:
        replica.server.fault_hook = poison
    results = fleet.serve_many(ctx.log, client_threads=4)
    fleet.close()
    score = _score_answers(results, ctx.golden)
    resilience = _merged_resilience(fleet)
    errors = resilience["executor_errors"].get(target, 0)
    trips = resilience["breaker_trips"]
    tripped = [
        replica.replica_id
        for replica in fleet.replicas
        if replica.server.breaker.state(target) != "closed"
    ]
    per_replica_within_threshold = all(
        replica.server.telemetry.resilience_stats()["executor_errors"].get(
            target, 0
        )
        <= threshold
        for replica in fleet.replicas
    )
    ok = (
        score["wrong"] == 0
        and score["failed"] == 0
        and injected[0] > 0
        and errors == injected[0]
        and resilience["raw_rescues"] == injected[0]
        and trips == len(tripped) > 0
        and per_replica_within_threshold
    )
    return ScenarioReport(
        scenario="structure_poison",
        queries=len(ctx.log),
        injected=injected[0],
        accounted=errors,
        wrong_answers=score["wrong"],
        failed_queries=score["failed"],
        ok=ok,
        detail=(
            f"target {target}: {errors} errors rescued raw, breaker open on "
            f"replicas {tripped}, {resilience['breaker_short_circuits']} "
            "short-circuits"
        ),
        extra={
            "target": target,
            "breaker_trips": trips,
            "short_circuits": resilience["breaker_short_circuits"],
            "within_threshold": per_replica_within_threshold,
        },
    )


def scenario_slow_executor(
    ctx: ChaosContext, replicas: int, workers: int
) -> ScenarioReport:
    """Slow one replica's executor; deadlines + probes route around it."""
    delay = 0.12
    deadline = 0.05
    fleet = ReplicaFleet(
        ctx.fact,
        ctx.selection,
        replicas=replicas,
        cost_model=ctx.cost_model,
        workers=workers,
        batch_size=4,  # bounds the in-flight tail of the slow replica
        retry=RetryPolicy(max_attempts=4, base_delay=0.005),
        query_deadline=deadline,
        strike_limit=2,
        probe_latency_threshold_us=delay * 0.5 * 1e6,
    )
    slow = fleet.replicas[0]
    lock = threading.Lock()
    injected = [0]

    def sleeper(structure: str, entry: LogEntry) -> None:
        with lock:
            injected[0] += 1
        time.sleep(delay)

    slow.server.fault_hook = sleeper
    fleet.checker.start(0.05)
    results = fleet.serve_many(ctx.log, client_threads=4)
    fleet.checker.stop()
    # abandon the slow replica's stale backlog instead of serving it at
    # 120 ms/query; its in-flight batch still completes (and is counted)
    fleet.close(drain=False)
    score = _score_answers(results, ctx.golden)
    resilience = _merged_resilience(fleet)
    slow_cut_us = delay * 0.5 * 1e6
    slow_samples = sum(
        1
        for latency in slow.server.telemetry.latencies()
        if latency >= slow_cut_us
    )
    fast_leak = sum(
        1
        for replica in fleet.replicas[1:]
        for latency in replica.server.telemetry.latencies()
        if latency >= slow_cut_us
    )
    slow_probes = sum(
        1
        for record in fleet.checker.probe_history(slow.replica_id)
        if record["latency_us"] >= slow_cut_us
    )
    accounted = slow_samples + slow_probes
    unavailable = fleet.unavailable_seconds
    ok = (
        score["wrong"] == 0
        and score["failed"] == 0
        and injected[0] > 0
        and accounted == injected[0]
        and fast_leak == 0
        and resilience["deadline_timeouts"] >= 1
        and not slow.available
        and unavailable == 0.0
    )
    return ScenarioReport(
        scenario="slow_executor",
        queries=len(ctx.log),
        injected=injected[0],
        accounted=accounted,
        wrong_answers=score["wrong"],
        failed_queries=score["failed"],
        ok=ok,
        detail=(
            f"{slow_samples} slow queries + {slow_probes} slow probes, "
            f"{resilience['deadline_timeouts']} deadline timeouts, "
            f"replica 0 down {slow.downtime_seconds:.2f}s, fleet "
            f"unavailable {unavailable:.2f}s"
        ),
        extra={
            "deadline_timeouts": resilience["deadline_timeouts"],
            "retries": resilience["retries"],
            "slow_replica_down": not slow.available,
            "unavailable_seconds": unavailable,
        },
    )


def scenario_mid_swap_crash(
    ctx: ChaosContext, replicas: int, workers: int
) -> ScenarioReport:
    """Crash every adaptive hot swap mid-materialization; the old
    generation keeps serving."""
    lattice = ctx.cost_model.lattice
    advised = {
        query: 1.0 for query in enumerate_slice_queries(lattice.schema.names)
    }
    reselector = AdaptiveReselector(
        lattice,
        RGreedy(1),
        space=3.0 * lattice.size(lattice.top),
        seed=(lattice.label(lattice.top),),
        margin=0.0,
    )

    class ForcedAccept:
        """Force-accept every genuine re-advise so the (crashing) swap
        path runs deterministically."""

        def __init__(self, inner):
            self.inner = inner

        def readvise(self, observed, current):
            outcome = self.inner.readvise(observed, current)
            if outcome.result is None:
                return outcome
            return ReadviseOutcome(
                result=outcome.result,
                tau_current=outcome.tau_current,
                tau_new=outcome.tau_new,
                accepted=True,
                detail="forced accept (chaos)",
            )

    server = QueryServer(
        ctx.fact,
        ctx.selection,
        cost_model=ctx.cost_model,
        advised=advised,
        reselector=ForcedAccept(reselector),
        drift_threshold=0.2,
        drift_min_queries=40,
        background=False,  # crash on the serving path, deterministically
    )
    injected = [0]
    real_materialize = server._materialize

    def crashing_materialize(names, generation):
        if generation >= 1:
            injected[0] += 1
            raise InjectedSwapCrash(f"mid-swap crash at generation {generation}")
        return real_materialize(names, generation)

    server._materialize = crashing_materialize
    # a skewed workload (one hot pattern) guarantees drift fires
    hot = ctx.log[0]
    skew = [
        entry if pos % 2 else hot for pos, entry in enumerate(ctx.log)
    ]
    skew_golden = {id(hot): ctx.golden[0]}
    outcomes = []
    for entry in skew:
        outcomes.append(server.serve(entry))
    server.close()
    wrong = 0
    for pos, (entry, outcome) in enumerate(zip(skew, outcomes)):
        reference = ctx.golden[0] if entry is hot else ctx.golden[pos]
        if outcome.groups != reference:
            wrong += 1
    document = validate_telemetry(server.telemetry_snapshot())
    failures = document["resilience"]["readvise_failures"]
    ok = (
        wrong == 0
        and injected[0] >= 1
        and failures == injected[0]
        and server.state.generation == 0
        and server.swap_count == 0
        and document["swaps"] == 0
    )
    del skew_golden
    return ScenarioReport(
        scenario="mid_swap_crash",
        queries=len(skew),
        injected=injected[0],
        accounted=failures,
        wrong_answers=wrong,
        failed_queries=0,
        ok=ok,
        detail=(
            f"{injected[0]} swap crashes, generation pinned at "
            f"{server.state.generation}, {failures} readvise_failures"
        ),
        extra={"generation": server.state.generation,
               "readvises": server.readvise_count},
    )


RUNNERS: Dict[str, Callable] = {
    "worker_kill": scenario_worker_kill,
    "structure_poison": scenario_structure_poison,
    "slow_executor": scenario_slow_executor,
    "mid_swap_crash": scenario_mid_swap_crash,
}


def run_matrix(
    dims: int = 4,
    queries: int = 300,
    replicas: int = 2,
    workers: int = 2,
    seed: int = 0,
    scenarios: Optional[List[str]] = None,
) -> List[ScenarioReport]:
    names = list(scenarios) if scenarios else list(SCENARIOS)
    ctx = build_context(dims, queries, seed)
    reports = []
    for name in names:
        reports.append(RUNNERS[name](ctx, replicas, workers))
    return reports


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.chaos",
        description=(
            "Inject worker kills, structure poison, slow executors, and "
            "mid-swap crashes into live serving runs; assert zero wrong "
            "answers and exact per-fault telemetry accounting."
        ),
    )
    parser.add_argument("--dims", type=int, default=4)
    parser.add_argument("--queries", type=int, default=300)
    parser.add_argument("--replicas", type=int, default=2)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--scenario",
        action="append",
        choices=SCENARIOS,
        help="run only this scenario (repeatable; default: all)",
    )
    parser.add_argument(
        "--json", type=str, default=None, help="write the fault-accounting report here"
    )
    args = parser.parse_args(argv)
    try:
        reports = run_matrix(
            dims=args.dims,
            queries=args.queries,
            replicas=args.replicas,
            workers=args.workers,
            seed=args.seed,
            scenarios=args.scenario,
        )
    except InjectedFault as exc:  # an injected fault escaped the stack
        print(f"FATAL: injected fault leaked out of the serving stack: {exc!r}")
        return 1
    failures = 0
    for report in reports:
        status = "ok" if report.ok else "FAIL"
        print(
            f"[{status}] {report.scenario}: {report.queries} queries, "
            f"{report.injected} faults injected / {report.accounted} "
            f"accounted, {report.wrong_answers} wrong, "
            f"{report.failed_queries} failed — {report.detail}"
        )
        if not report.ok:
            failures += 1
    if args.json:
        document = {
            "dims": args.dims,
            "queries": args.queries,
            "replicas": args.replicas,
            "workers": args.workers,
            "seed": args.seed,
            "scenarios": [report.to_json() for report in reports],
            "failures": failures,
        }
        with open(args.json, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"report -> {args.json}")
    if failures:
        print(f"{failures} scenario(s) FAILED")
        return 1
    print(f"all {len(reports)} chaos scenarios passed "
          "(zero wrong answers, faults fully accounted)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
