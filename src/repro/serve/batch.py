"""Vectorized batch execution: answer query groups in one pass.

Per-query serving pays three Python taxes on every call: routing (a scan
over all materialized structures), mask evaluation (a Python loop over
every view row), and duplicate work (OLAP logs repeat queries).  The
batch executor removes all three:

* **routing is memoized** per serving state — two queries with the same
  generic pattern route identically, so the plan (and its predicted
  cost, and its structure label) is computed once per pattern per
  generation and reused from :attr:`ServingState.plan_cache`;
* **execution is grouped by routed plan** — all queries that full-scan
  the same view table are answered in one pass over its (already
  columnar) arrays with numpy masks instead of per-row Python loops;
* **duplicates collapse** — identical concrete queries inside a batch
  execute once and share the result.

Result fidelity is exact, not approximate: every vectorized path
accumulates measure values in the same left-to-right row order as
:meth:`repro.engine.executor.Executor.execute` (``np.bincount`` adds
weights sequentially, matching the serial ``groups[key] += value``
loop), so batched answers are byte-identical to per-query execution —
the serving test suite asserts this per query on the dense fixtures.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.index import Index
from repro.core.query import SliceQuery
from repro.core.view import View
from repro.cube.query_log import LogEntry
from repro.serve.telemetry import RAW_LABEL

#: Default queries per batch for the chunked replay/serving drivers.
DEFAULT_BATCH_SIZE = 64


@dataclass(frozen=True)
class PlanInfo:
    """One pattern's routing decision, memoized per serving state."""

    kind: str  # "prefix" | "scan" | "raw"
    view: Optional[View]
    index: Optional[Index]
    prefix: tuple
    structure: str
    predicted: float


@dataclass
class ExecResult:
    """One unique concrete query's batched execution.

    ``rescued`` marks a structure execution that raised and was
    re-answered from the raw cube (``error_structure`` names the
    structure that failed); ``short_circuited`` marks an execution the
    circuit breaker skipped straight to raw without touching the
    tripped structure.
    """

    structure: str
    predicted_rows: float
    actual_rows: int
    groups: Dict[tuple, float]
    latency_us: float
    fallback: bool
    rescued: bool = False
    error_structure: str = ""
    short_circuited: bool = False


def plan_for(state, cost_model, query: SliceQuery) -> PlanInfo:
    """The memoized routing decision for a generic query pattern.

    Identical to :meth:`Executor.plan_with_cost` (it delegates to it),
    plus the structure label and the usable index prefix the executor
    would recompute per call.  The memo lives on the serving state, so a
    hot swap naturally starts from an empty plan cache.
    """
    cached = state.plan_cache.get(query)
    if cached is not None:
        return cached
    lattice = cost_model.lattice
    try:
        view, index, predicted = state.executor.plan_with_cost(query)
    except LookupError:
        info = PlanInfo(
            kind="raw",
            view=None,
            index=None,
            prefix=(),
            structure=RAW_LABEL,
            predicted=cost_model.default_cost(query),
        )
    else:
        prefix = index.usable_prefix(query) if index is not None else ()
        structure = (
            lattice.index_label(index) if index is not None else lattice.label(view)
        )
        info = PlanInfo(
            kind="prefix" if (index is not None and prefix) else "scan",
            view=view,
            index=index,
            prefix=prefix,
            structure=structure,
            predicted=predicted,
        )
    state.plan_cache[query] = info
    return info


def raw_plan(cost_model, query: SliceQuery) -> PlanInfo:
    """A raw-cube plan for one query (the fallback/rescue target).

    Predicted rows come from :meth:`LinearCostModel.default_cost` — the
    same number the router's memoized raw plans carry, so rescued
    answers keep the predicted-vs-actual accounting exact on dense
    fixtures."""
    return PlanInfo(
        kind="raw",
        view=None,
        index=None,
        prefix=(),
        structure=RAW_LABEL,
        predicted=cost_model.default_cost(query),
    )


#: Arithmetic-coded grouping is used while the key space stays below
#: this; degenerate (huge-domain) keys fall back to ``np.unique``.
MAX_CODED_KEY_SPACE = 1 << 20


def _grouped_sums(
    key_columns: Sequence[np.ndarray], values: np.ndarray
) -> Dict[tuple, float]:
    """Group-and-sum with the serial loop's exact accumulation order.

    ``np.bincount`` adds weights sequentially (index order), which is
    the same left-to-right order the per-row ``groups[key] += value``
    loop uses — so the floats match bit-for-bit regardless of how the
    group *labels* are derived.  Labels come from an arithmetic encoding
    of the key tuple (one mixed-radix integer per row; no sort, unlike
    ``np.unique(axis=0)``), decoded back for the populated codes only.
    """
    if not len(values):
        return {}
    if not key_columns:
        sums = np.bincount(np.zeros(len(values), dtype=np.intp), weights=values)
        return {(): float(sums[0])}
    dims = tuple(int(column.max()) + 1 for column in key_columns)
    space = 1
    for dim in dims:
        space *= dim
    if space > MAX_CODED_KEY_SPACE:
        stacked = np.stack(key_columns, axis=1)
        unique, inverse = np.unique(stacked, axis=0, return_inverse=True)
        sums = np.bincount(inverse.ravel(), weights=values, minlength=len(unique))
        return {
            tuple(row): float(total)
            for row, total in zip(unique.tolist(), sums.tolist())
        }
    if len(key_columns) == 1:
        codes = key_columns[0]
    else:
        codes = np.ravel_multi_index(tuple(key_columns), dims)
    sums = np.bincount(codes, weights=values, minlength=space)
    populated = np.nonzero(np.bincount(codes, minlength=space))[0]
    keys = np.stack(np.unravel_index(populated, dims), axis=1)
    return {
        tuple(row): total
        for row, total in zip(keys.tolist(), sums[populated].tolist())
    }


def execute_scan(table, entry: LogEntry, info: PlanInfo) -> ExecResult:
    """Answer one query by a vectorized pass over a view table.

    Mirrors the executor's full-scan path: the whole table counts as
    rows processed, residual selection attributes filter rows, groupby
    attributes key the aggregation.
    """
    query = entry.query
    bound = entry.bound_values
    groupby = tuple(a for a in table.attrs if a in query.groupby)
    residual = [a for a in table.attrs if a in query.selection]
    mask = None
    for attr in residual:
        comparison = table.key_columns[attr] == bound[attr]
        mask = comparison if mask is None else (mask & comparison)
    rows = slice(None) if mask is None else np.nonzero(mask)[0]
    values = table.values_for(None)[rows]
    groups = _grouped_sums([table.key_columns[a][rows] for a in groupby], values)
    return ExecResult(
        structure=info.structure,
        predicted_rows=info.predicted,
        actual_rows=table.n_rows,
        groups=groups,
        latency_us=0.0,
        fallback=False,
    )


def execute_prefix(catalog, table, entry: LogEntry, info: PlanInfo) -> ExecResult:
    """Answer one query through a B+tree prefix scan.

    Index scans already touch only the matching entries, so this path
    keeps the executor's loop verbatim (the batch win here is the
    memoized routing and in-batch deduplication, not vectorization).
    """
    query = entry.query
    bound = entry.bound_values
    tree = catalog.index_tree(info.index)
    value_column = table.values_for(None)
    groupby = tuple(a for a in table.attrs if a in query.groupby)
    residual = [
        a for a in table.attrs if a in query.selection and a not in info.prefix
    ]
    prefix_key = tuple(int(bound[a]) for a in info.prefix)
    groups: Dict[tuple, float] = {}
    rows_processed = 0
    for __, (row, __value) in tree.prefix_scan(prefix_key):
        rows_processed += 1
        if any(
            int(table.key_columns[a][row]) != int(bound[a]) for a in residual
        ):
            continue
        key = table.row_key(row, groupby)
        groups[key] = groups.get(key, 0.0) + float(value_column[row])
    return ExecResult(
        structure=info.structure,
        predicted_rows=info.predicted,
        actual_rows=rows_processed,
        groups=groups,
        latency_us=0.0,
        fallback=False,
    )


def execute_raw(fact, entry: LogEntry, info: PlanInfo) -> ExecResult:
    """Fallback: answer from the raw fact table (full scan).

    Matches :meth:`QueryServer` raw-serving semantics — the whole fact
    table counts as rows processed, the ungrouped total uses the same
    ``ndarray.sum`` the serial fallback used.
    """
    mask = np.ones(fact.n_rows, dtype=bool)
    for attr, value in entry.values:
        mask &= fact.columns[attr] == value
    groupby = fact.schema.sort_attrs(entry.query.groupby)
    measures = fact.measures[mask]
    if groupby:
        groups = _grouped_sums(
            [fact.columns[a][mask] for a in groupby], measures
        )
    elif len(measures):
        groups = {(): float(measures.sum())}
    else:
        groups = {}
    return ExecResult(
        structure=RAW_LABEL,
        predicted_rows=info.predicted,
        actual_rows=fact.n_rows,
        groups=groups,
        latency_us=0.0,
        fallback=True,
    )


def execute_backend(backend, entry: LogEntry, info: PlanInfo) -> ExecResult:
    """Answer one query through an execution backend (e.g. SQLite).

    The backend mirrors the serving catalog, so the routed plan carries
    over verbatim: prefix and scan plans execute against the mirrored
    view table with the plan's ``(view, index)`` pair, raw plans against
    the mirrored fact table.  The backend's rows-processed accounting
    matches the engine's, so telemetry invariants (exact
    predicted-vs-actual on dense fixtures) hold unchanged.
    """
    query = entry.query
    bound = entry.bound_values
    if info.kind == "raw":
        answer = backend.execute_raw(query, bound)
    else:
        answer = backend.execute(query, bound, plan=(info.view, info.index))
    return ExecResult(
        structure=info.structure,
        predicted_rows=info.predicted,
        actual_rows=answer.rows_processed,
        groups=answer.groups,
        latency_us=0.0,
        fallback=info.kind == "raw",
    )


def _execute_member(
    kind: str,
    catalog,
    table,
    fact,
    cost_model,
    entry: LogEntry,
    info: PlanInfo,
    breaker,
    fault_hook,
    backend=None,
) -> ExecResult:
    """One unique query's execution with the resilience layer applied.

    A tripped circuit short-circuits the structure straight to raw; an
    executor error against a structure records a breaker failure and is
    rescued from the raw cube (degraded-but-correct — the raw path
    answers every slice query).  Raw-path errors propagate: there is no
    cheaper-but-still-correct plan left to fall back to.

    With a ``backend``, every path executes there instead of on the row
    engine; the rescue path stays on the engine's raw scan, which keeps
    degraded-but-correct answers available even when the backend itself
    is the failing component.
    """
    if kind != "raw" and breaker is not None and not breaker.allow(info.structure):
        result = execute_raw(fact, entry, raw_plan(cost_model, entry.query))
        result.short_circuited = True
        return result
    try:
        if fault_hook is not None:
            fault_hook(info.structure, entry)
        if backend is not None:
            result = execute_backend(backend, entry, info)
        elif kind == "prefix":
            result = execute_prefix(catalog, table, entry, info)
        elif kind == "scan":
            result = execute_scan(table, entry, info)
        else:
            result = execute_raw(fact, entry, info)
    except Exception:
        if kind == "raw":
            raise
        if breaker is not None:
            breaker.record_failure(info.structure)
        rescue = execute_raw(fact, entry, raw_plan(cost_model, entry.query))
        rescue.rescued = True
        rescue.error_structure = info.structure
        return rescue
    if kind != "raw" and breaker is not None:
        breaker.record_success(info.structure)
    return result


def execute_unique(
    state,
    fact,
    cost_model,
    items: Sequence[Tuple[tuple, LogEntry]],
    breaker=None,
    fault_hook=None,
    backend=None,
) -> Dict[tuple, ExecResult]:
    """Execute each unique concrete query once, grouped by routed plan.

    ``items`` pairs a cache key with one representative entry.  Queries
    sharing a plan target are answered together (one timed pass per
    group); each result's ``latency_us`` is the group's elapsed time
    split evenly across its members.

    ``breaker`` (a :class:`~repro.serve.resilience.CircuitBreaker`) and
    ``fault_hook`` (``hook(structure, entry)``, called before each
    structure execution — the chaos harness's injection point) are
    consulted *per execution*, not per plan: the plan cache stays pure
    routing, so a circuit opening or closing takes effect on the very
    next batch without invalidating memoized plans.

    ``backend`` (a :class:`~repro.backends.sqlite.SqliteBackend`)
    redirects every execution to the mirrored database — the caller is
    responsible for having synced it to this serving state first.
    """
    plan_groups: Dict[tuple, List[Tuple[tuple, LogEntry, PlanInfo]]] = {}
    for key, entry in items:
        info = plan_for(state, cost_model, entry.query)
        group_key = (info.kind, info.view, info.index)
        plan_groups.setdefault(group_key, []).append((key, entry, info))

    results: Dict[tuple, ExecResult] = {}
    catalog = state.catalog
    for (kind, view, __index), members in plan_groups.items():
        table = catalog.view_table(view) if view is not None else None
        start = time.perf_counter()
        for key, entry, info in members:
            results[key] = _execute_member(
                kind, catalog, table, fact, cost_model, entry, info,
                breaker, fault_hook, backend,
            )
        shared_us = (time.perf_counter() - start) * 1e6 / len(members)
        for key, __entry, __info in members:
            results[key].latency_us = shared_us
    return results
