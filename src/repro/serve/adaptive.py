"""Background re-selection: re-run the advisor on the observed workload.

When the drift monitor fires, the serving layer hands the observed query
frequencies to an :class:`AdaptiveReselector`, which rebuilds the
query-view graph with those frequencies (unseen patterns get weight 0 —
``from_cube`` would otherwise default them to 1), re-runs the configured
greedy algorithm — honoring its ``workers=`` setting and the runtime
deadline/checkpoint machinery via a fresh
:class:`~repro.runtime.context.RunContext` — and compares the new
selection's total cost τ against the *current* selection's τ under the
same observed frequencies.  The new selection wins only when it is
cheaper by the configured relative margin; the caller then materializes
and hot-swaps it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence

from repro.core.benefit import BenefitEngine
from repro.core.lattice import CubeLattice
from repro.core.qvgraph import QueryViewGraph
from repro.core.query import SliceQuery, enumerate_slice_queries
from repro.core.selection import SelectionResult
from repro.runtime.context import RunContext, RuntimeStop

#: Default relative τ improvement a new selection must deliver to swap.
READVISE_MARGIN = 0.05


@dataclass
class ReadviseOutcome:
    """What one background re-selection concluded."""

    result: Optional[SelectionResult]
    tau_current: float
    tau_new: float
    accepted: bool
    detail: str = ""

    @property
    def improvement(self) -> float:
        """Relative τ reduction of the new selection (0 when rejected
        before a comparison)."""
        if self.tau_current <= 0:
            return 0.0
        return 1.0 - self.tau_new / self.tau_current


class AdaptiveReselector:
    """Re-runs a selection algorithm on observed workload frequencies.

    Parameters
    ----------
    lattice:
        The serving lattice (exact sizes — the same one the cost model
        routes with).
    algorithm:
        A configured :class:`~repro.algorithms.base.SelectionAlgorithm`
        (its ``workers=`` setting is honored as-is).
    space:
        Space budget in rows, same units as the lattice sizes.
    margin:
        Required relative τ improvement: the new selection is accepted
        when ``tau_new <= (1 - margin) * tau_current``.
    seed:
        Structure names committed before the greedy runs (default: the
        current selection's first structure is *not* carried over; pass
        the top view's label to keep the catalog always-answering).
    deadline / checkpoint_path:
        Forwarded into the :class:`RunContext` of every re-selection
        run, so a background re-advise obeys the same wall-clock budget
        and crash-recovery rules as a foreground ``repro advise``.
    """

    def __init__(
        self,
        lattice: CubeLattice,
        algorithm,
        space: float,
        margin: float = READVISE_MARGIN,
        seed: Sequence[str] = (),
        deadline: Optional[float] = None,
        checkpoint_path=None,
    ):
        if not 0.0 <= margin < 1.0:
            raise ValueError(f"margin must be in [0, 1), got {margin}")
        self.lattice = lattice
        self.algorithm = algorithm
        self.space = float(space)
        self.margin = float(margin)
        self.seed = tuple(seed)
        self.deadline = deadline
        self.checkpoint_path = checkpoint_path
        self._patterns = list(enumerate_slice_queries(lattice.schema.names))

    def _observed_graph(
        self, observed: Mapping[SliceQuery, float]
    ) -> QueryViewGraph:
        frequencies: Dict[SliceQuery, float] = {
            query: float(observed.get(query, 0.0)) for query in self._patterns
        }
        return QueryViewGraph.from_cube(self.lattice, frequencies=frequencies)

    def _tau_of(self, engine: BenefitEngine, names: Sequence[str]) -> float:
        engine.reset()
        known = [n for n in names if n in engine.structure_names]
        engine.replay_commit(known)
        return engine.tau()

    def readvise(
        self,
        observed: Mapping[SliceQuery, float],
        current_selection: Sequence[str],
    ) -> ReadviseOutcome:
        """One re-selection run; never raises on a runtime stop.

        Returns the outcome with ``accepted=True`` when the new
        selection beats the current one by the margin under the
        observed frequencies.
        """
        graph = self._observed_graph(observed)
        engine = BenefitEngine(graph)
        tau_current = self._tau_of(engine, current_selection)
        engine.reset()
        context = RunContext(
            deadline=self.deadline, checkpoint_path=self.checkpoint_path
        )
        try:
            result = self.algorithm.run(
                engine, self.space, seed=self.seed, context=context
            )
        except RuntimeStop as stop:
            return ReadviseOutcome(
                result=getattr(stop, "result", None),
                tau_current=tau_current,
                tau_new=float("inf"),
                accepted=False,
                detail=f"re-advise stopped: {stop.reason}",
            )
        tau_new = result.tau
        accepted = (
            tuple(result.selected) != tuple(current_selection)
            and tau_new <= (1.0 - self.margin) * tau_current
        )
        detail = "" if accepted else (
            "new selection identical to current"
            if tuple(result.selected) == tuple(current_selection)
            else f"improvement below margin {self.margin:g}"
        )
        return ReadviseOutcome(
            result=result,
            tau_current=tau_current,
            tau_new=tau_new,
            accepted=accepted,
            detail=detail,
        )


def observed_cost(
    lattice: CubeLattice,
    selection: Sequence[str],
    observed: Mapping[SliceQuery, float],
) -> float:
    """τ of a selection under observed frequencies — the ledger both the
    acceptance test and the swap decision read (unseen patterns weigh 0)."""
    patterns = list(enumerate_slice_queries(lattice.schema.names))
    frequencies = {q: float(observed.get(q, 0.0)) for q in patterns}
    graph = QueryViewGraph.from_cube(lattice, frequencies=frequencies)
    engine = BenefitEngine(graph)
    engine.replay_commit([n for n in selection if n in engine.structure_names])
    return engine.tau()
