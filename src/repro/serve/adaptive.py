"""Background re-selection: re-run the advisor on the observed workload.

When the drift monitor fires, the serving layer hands the observed query
frequencies to an :class:`AdaptiveReselector`.  By default it *mines*
the observed workload down to a pruned candidate space
(:mod:`repro.mining`) — clusters of observed patterns above a support
threshold sponsor candidate views and index keys, the currently deployed
structures are force-kept so the incumbent configuration stays priceable
— and re-runs the configured greedy algorithm on the pruned graph.
This is what lets a d≥9 catalog re-advise online: the full 3^n universe
the original path rebuilt on every drift event cannot even be
enumerated there.  ``prune=False`` restores the full-universe rebuild
(unseen patterns get weight 0 — ``from_cube`` would otherwise default
them to 1).

The run honors the algorithm's ``workers=`` setting and the runtime
deadline/checkpoint machinery via a fresh
:class:`~repro.runtime.context.RunContext`, then compares the new
selection's total cost τ against the *current* selection's τ under the
same observed frequencies.  The new selection wins only when it is
cheaper by the configured relative margin; the caller then materializes
and hot-swaps it.  Pruned outcomes also carry the certified
forgone-benefit bound (τ gap vs a full-universe re-advise).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence

from repro.core.benefit import BenefitEngine
from repro.core.lattice import CubeLattice
from repro.core.qvgraph import QueryViewGraph
from repro.core.query import SliceQuery, enumerate_slice_queries
from repro.core.selection import SelectionResult
from repro.mining import (
    DEFAULT_MAX_INDEXES_PER_VIEW,
    DEFAULT_SIMILARITY,
    DEFAULT_SUPPORT,
    MinedCandidates,
    compute_benefit_bound,
    mine_candidates,
)
from repro.runtime.context import RunContext, RuntimeStop

#: Default relative τ improvement a new selection must deliver to swap.
READVISE_MARGIN = 0.05


@dataclass
class ReadviseOutcome:
    """What one background re-selection concluded."""

    result: Optional[SelectionResult]
    tau_current: float
    tau_new: float
    accepted: bool
    detail: str = ""
    #: Certified upper bound on τ_new − τ of a full-universe re-advise
    #: (None when the re-advise ran on the full universe already).
    forgone_bound: Optional[float] = None

    @property
    def improvement(self) -> float:
        """Relative τ reduction of the new selection (0 when rejected
        before a comparison)."""
        if self.tau_current <= 0:
            return 0.0
        return 1.0 - self.tau_new / self.tau_current


class AdaptiveReselector:
    """Re-runs a selection algorithm on observed workload frequencies.

    Parameters
    ----------
    lattice:
        The serving lattice (exact sizes — the same one the cost model
        routes with).
    algorithm:
        A configured :class:`~repro.algorithms.base.SelectionAlgorithm`
        (its ``workers=`` setting is honored as-is).
    space:
        Space budget in rows, same units as the lattice sizes.
    margin:
        Required relative τ improvement: the new selection is accepted
        when ``tau_new <= (1 - margin) * tau_current``.
    seed:
        Structure names committed before the greedy runs (default: the
        current selection's first structure is *not* carried over; pass
        the top view's label to keep the catalog always-answering).
    deadline / checkpoint_path:
        Forwarded into the :class:`RunContext` of every re-selection
        run, so a background re-advise obeys the same wall-clock budget
        and crash-recovery rules as a foreground ``repro advise``.
    prune / support / similarity / max_indexes_per_view:
        ``prune=True`` (default) mines the observed log into a pruned
        candidate space before re-advising; the remaining knobs forward
        to :func:`repro.mining.mine_candidates`.  ``prune=False``
        rebuilds the full 3^n universe on every drift event (only
        feasible at small d).
    """

    def __init__(
        self,
        lattice: CubeLattice,
        algorithm,
        space: float,
        margin: float = READVISE_MARGIN,
        seed: Sequence[str] = (),
        deadline: Optional[float] = None,
        checkpoint_path=None,
        prune: bool = True,
        support: float = DEFAULT_SUPPORT,
        similarity: float = DEFAULT_SIMILARITY,
        max_indexes_per_view: int = DEFAULT_MAX_INDEXES_PER_VIEW,
    ):
        if not 0.0 <= margin < 1.0:
            raise ValueError(f"margin must be in [0, 1), got {margin}")
        self.lattice = lattice
        self.algorithm = algorithm
        self.space = float(space)
        self.margin = float(margin)
        self.seed = tuple(seed)
        self.deadline = deadline
        self.checkpoint_path = checkpoint_path
        self.prune = bool(prune)
        self.support = float(support)
        self.similarity = float(similarity)
        self.max_indexes_per_view = int(max_indexes_per_view)
        # the 3^n pattern universe is only enumerable (and only needed)
        # on the full-universe path; materialize it lazily
        self._patterns: Optional[list] = None

    def _observed_graph(
        self,
        observed: Mapping[SliceQuery, float],
        current_selection: Sequence[str] = (),
    ):
        """Build the re-advise graph; returns ``(graph, bound-or-None)``."""
        if self.prune:
            counts = {
                query: float(weight)
                for query, weight in observed.items()
                if float(weight) > 0
            }
            mined = mine_candidates(
                counts,
                self.lattice.schema.names,
                support=self.support,
                similarity=self.similarity,
                max_indexes_per_view=self.max_indexes_per_view,
            )
            # force-keep the incumbent structures (and the seed): τ_current
            # must be computable on the pruned graph, or the comparison
            # would silently favor the challenger
            mined.ensure_structures([*self.seed, *current_selection])
            bound = compute_benefit_bound(mined, self.lattice)
            return QueryViewGraph.from_mined(self.lattice, mined), bound
        if self._patterns is None:
            self._patterns = list(enumerate_slice_queries(self.lattice.schema.names))
        frequencies: Dict[SliceQuery, float] = {
            query: float(observed.get(query, 0.0)) for query in self._patterns
        }
        return QueryViewGraph.from_cube(self.lattice, frequencies=frequencies), None

    def _tau_of(self, engine: BenefitEngine, names: Sequence[str]) -> float:
        engine.reset()
        known = [n for n in names if n in engine.structure_names]
        engine.replay_commit(known)
        return engine.tau()

    def readvise(
        self,
        observed: Mapping[SliceQuery, float],
        current_selection: Sequence[str],
    ) -> ReadviseOutcome:
        """One re-selection run; never raises on a runtime stop.

        Returns the outcome with ``accepted=True`` when the new
        selection beats the current one by the margin under the
        observed frequencies.
        """
        if self.prune and not any(float(w) > 0 for w in observed.values()):
            return ReadviseOutcome(
                result=None,
                tau_current=0.0,
                tau_new=float("inf"),
                accepted=False,
                detail="no observed workload to mine",
            )
        graph, bound = self._observed_graph(observed, current_selection)
        engine = BenefitEngine(graph)
        tau_current = self._tau_of(engine, current_selection)
        engine.reset()
        context = RunContext(
            deadline=self.deadline, checkpoint_path=self.checkpoint_path
        )
        try:
            result = self.algorithm.run(
                engine, self.space, seed=self.seed, context=context
            )
        except RuntimeStop as stop:
            return ReadviseOutcome(
                result=getattr(stop, "result", None),
                tau_current=tau_current,
                tau_new=float("inf"),
                accepted=False,
                detail=f"re-advise stopped: {stop.reason}",
            )
        tau_new = result.tau
        accepted = (
            tuple(result.selected) != tuple(current_selection)
            and tau_new <= (1.0 - self.margin) * tau_current
        )
        detail = "" if accepted else (
            "new selection identical to current"
            if tuple(result.selected) == tuple(current_selection)
            else f"improvement below margin {self.margin:g}"
        )
        return ReadviseOutcome(
            result=result,
            tau_current=tau_current,
            tau_new=tau_new,
            accepted=accepted,
            detail=detail,
            forgone_bound=(
                bound.forgone_bound(tau_new) if bound is not None else None
            ),
        )


def observed_cost(
    lattice: CubeLattice,
    selection: Sequence[str],
    observed: Mapping[SliceQuery, float],
) -> float:
    """τ of a selection under observed frequencies — the ledger both the
    acceptance test and the swap decision read (unseen patterns weigh 0).

    Builds only the graph it needs: the observed patterns against the
    selection's own structures plus the raw-cube fallback.  Unseen
    patterns would contribute 0 to τ and unselected structures cannot
    change a committed selection's τ, so this equals the old
    full-universe computation at any d — without enumerating 3^n
    patterns or n! indexes.
    """
    counts = {
        query: float(weight)
        for query, weight in observed.items()
        if float(weight) > 0
    }
    mined = MinedCandidates(
        schema_names=tuple(lattice.schema.names),
        queries=counts,
        view_attrs=[],
        index_keys={},
        total_weight=sum(counts.values()),
    )
    mined.ensure_view(frozenset(lattice.schema.names))  # raw-cube fallback
    mined.ensure_structures(selection)
    graph = QueryViewGraph.from_mined(lattice, mined)
    engine = BenefitEngine(graph)
    engine.replay_commit([n for n in selection if n in engine.structure_names])
    return engine.tau()
