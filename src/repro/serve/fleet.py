"""Supervised replica fleet: health-checked routing with retry/failover.

A :class:`ReplicaFleet` runs N independent ``QueryServer`` +
``ServingFrontend`` pairs — each with its own catalog, result cache, and
per-structure circuit breaker — behind a router.  The router bounds
every attempt with a per-query deadline, and on a timeout or typed
serving failure retries with jittered exponential backoff on a replica
it has not tried yet.  A query fails only with a typed
:class:`~repro.serve.resilience.ServingError` (retries exhausted, no
healthy replica) — never by hanging, and never with a wrong answer.

Dispatch has two modes.  Without a ``router`` the fleet round-robins
over the healthy replicas — the right default when every replica holds
the same selection.  With a :class:`repro.distributed.RoutingTable`
(divergent per-replica selections from
:func:`repro.distributed.plan_divergent`) each query goes to the
replica predicted cheapest for it under the paper's ``|C| / |E|``
model; when that replica is struck out or already tried, the next
cheapest takes over, so failover preserves the cost ordering instead
of reverting to blind rotation.  Routed mode also keeps score:
telemetry counts a *routed hit* when the serving replica was the
predicted-cheapest one and a *misroute* when failover or health caused
a detour (the answer is still correct — any replica's raw cube answers
anything; only the predicted latency is forfeited).

Health has two inputs: **passive strikes** (submit failures, deadline
timeouts observed by the router) and **active probes** (a
:class:`HealthChecker` that serves a probe query against each replica,
bounds its latency, and checks queue depth and live workers).  Either
can mark a replica unhealthy; only a passing probe brings it back.
Fleet-level *unavailability* — wall-clock spans during which zero
replicas were healthy — is accounted exactly and reported in
:meth:`ReplicaFleet.stats`.
"""

from __future__ import annotations

import random
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.core.costmodel import LinearCostModel
from repro.core.query import SliceQuery
from repro.cube.query_log import LogEntry
from repro.serve.batch import DEFAULT_BATCH_SIZE
from repro.serve.cache import ResultCache
from repro.serve.frontend import (
    DEFAULT_MAX_WORKER_RESTARTS,
    DEFAULT_QUEUE_DEPTH,
    DEFAULT_TENANT,
    ServingFrontend,
)
from repro.serve.resilience import (
    BREAKER_COOLDOWN_SECONDS,
    BREAKER_FAILURE_THRESHOLD,
    CircuitBreaker,
    NoHealthyReplica,
    QueryTimeout,
    RetriesExhausted,
    RetryPolicy,
    ServingError,
)
from repro.serve.server import QueryServer, ServeOutcome
from repro.serve.telemetry import TelemetryCollector

#: Per-attempt answer deadline (seconds) before the router re-routes.
DEFAULT_QUERY_DEADLINE = 2.0

#: Probe latency above this (microseconds) fails a health check.
DEFAULT_PROBE_LATENCY_US = 50_000.0

#: Consecutive strikes (failed probes or routing failures) that mark a
#: replica unhealthy.
DEFAULT_STRIKE_LIMIT = 3

#: Bounded per-replica probe history retained by the health checker.
PROBE_HISTORY_LIMIT = 256


class Replica:
    """One fleet member: a server, its front-end, and its health state."""

    def __init__(
        self,
        replica_id: int,
        server: QueryServer,
        frontend: ServingFrontend,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.replica_id = replica_id
        self.server = server
        self.frontend = frontend
        self.clock = clock
        #: fleet availability hook, fired (outside the lock) when a kill
        #: takes the replica out of rotation
        self.on_transition: Optional[Callable[[], None]] = None
        self._lock = threading.Lock()
        self.healthy = True
        self.dead = False
        self.strikes = 0
        self.transitions = 0
        self.last_reason = ""
        self._down_since: Optional[float] = None
        self._downtime = 0.0

    # ------------------------------------------------------------- health

    def _mark_unhealthy_locked(self, reason: str) -> bool:
        self.last_reason = reason
        if not self.healthy:
            return False
        self.healthy = False
        self._down_since = self.clock()
        self.transitions += 1
        return True

    def record_strike(self, reason: str, limit: int) -> bool:
        """One routing/probe failure; returns ``True`` when this strike
        transitioned the replica from healthy to unhealthy."""
        with self._lock:
            if self.dead:
                return False
            self.strikes += 1
            if self.strikes >= limit and self.healthy:
                return self._mark_unhealthy_locked(reason)
            return False

    def record_probe_ok(self) -> bool:
        """A passing probe clears strikes; returns ``True`` when it
        brought an unhealthy replica back."""
        with self._lock:
            if self.dead:
                return False
            self.strikes = 0
            if self.healthy:
                return False
            self.healthy = True
            if self._down_since is not None:
                self._downtime += self.clock() - self._down_since
                self._down_since = None
            self.transitions += 1
            self.last_reason = ""
            return True

    def kill(self, close_timeout: float = 5.0) -> bool:
        """Take the replica down for good (the chaos/bench fault).

        The front-end is closed without draining: its current batches
        finish, everything still queued fails typed, and the replica
        never routes again.  Returns ``False`` if already dead."""
        with self._lock:
            if self.dead:
                return False
            was_available = self.healthy
            self.dead = True
            self._mark_unhealthy_locked("killed")
        if was_available and self.on_transition is not None:
            self.on_transition()
        self.frontend.close(timeout=close_timeout, drain=False)
        return True

    @property
    def available(self) -> bool:
        with self._lock:
            return self.healthy and not self.dead

    @property
    def downtime_seconds(self) -> float:
        with self._lock:
            total = self._downtime
            if self._down_since is not None:
                total += self.clock() - self._down_since
            return total

    def health_snapshot(self) -> dict:
        """Light diagnostic state (what :class:`NoHealthyReplica` carries)."""
        with self._lock:
            return {
                "strikes": self.strikes,
                "dead": self.dead,
                "healthy": self.healthy,
                "last_reason": self.last_reason,
            }

    def stats(self) -> dict:
        with self._lock:
            return {
                "replica": self.replica_id,
                "healthy": self.healthy,
                "dead": self.dead,
                "strikes": self.strikes,
                "transitions": self.transitions,
                "last_reason": self.last_reason,
                "downtime_seconds": (
                    self._downtime
                    + (
                        self.clock() - self._down_since
                        if self._down_since is not None
                        else 0.0
                    )
                ),
                "selection": list(self.server.selection),
                "frontend": self.frontend.stats(),
            }


class HealthChecker:
    """Active health probes over a fleet's replicas.

    :meth:`check_now` runs one deterministic sweep (what tests and the
    chaos harness call); :meth:`start` runs sweeps on a background
    thread every ``interval`` seconds.  A probe serves one cheap query
    *directly* through ``server.serve_batch`` (bypassing the admission
    queue, into a private collector — probes never pollute serving
    telemetry) and fails on: a dead replica, zero live workers, queue
    depth over the limit, a raised probe, or probe latency over the
    threshold.
    """

    def __init__(
        self,
        fleet: "ReplicaFleet",
        probe_entry: Optional[LogEntry] = None,
        latency_threshold_us: float = DEFAULT_PROBE_LATENCY_US,
        queue_limit: Optional[int] = None,
        history_limit: int = PROBE_HISTORY_LIMIT,
    ):
        self.fleet = fleet
        self.probe_entry = (
            probe_entry
            if probe_entry is not None
            else LogEntry(query=SliceQuery((), ()), values=())
        )
        self.latency_threshold_us = float(latency_threshold_us)
        self.queue_limit = queue_limit
        self.history_limit = int(history_limit)
        self.history: Dict[int, List[dict]] = {
            replica.replica_id: [] for replica in fleet.replicas
        }
        self.checks = 0
        self._collector = TelemetryCollector(keep_records=False)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()

    def _probe(self, replica: Replica) -> tuple:
        if replica.dead:
            return False, float("inf"), "dead"
        stats = replica.frontend.stats()
        if stats["live_workers"] <= 0:
            return False, float("inf"), "no live workers"
        if self.queue_limit is not None and stats["pending"] > self.queue_limit:
            return False, float("inf"), f"queue depth {stats['pending']}"
        start = time.perf_counter()
        try:
            replica.server.serve_batch([self.probe_entry], telemetry=self._collector)
        except Exception as exc:
            latency_us = (time.perf_counter() - start) * 1e6
            return False, latency_us, f"probe raised: {exc!r}"
        latency_us = (time.perf_counter() - start) * 1e6
        if latency_us > self.latency_threshold_us:
            return False, latency_us, "slow probe"
        return True, latency_us, ""

    def check_now(self) -> Dict[int, bool]:
        """One probe sweep; applies strikes/recoveries to the fleet."""
        results: Dict[int, bool] = {}
        for replica in self.fleet.replicas:
            ok, latency_us, reason = self._probe(replica)
            with self._lock:
                history = self.history[replica.replica_id]
                history.append(
                    {"ok": ok, "latency_us": latency_us, "reason": reason}
                )
                del history[: -self.history_limit]
            if ok:
                if replica.record_probe_ok():
                    self.fleet._health_event()
            else:
                if replica.record_strike(
                    f"probe: {reason}", self.fleet.strike_limit
                ):
                    self.fleet._health_event()
            results[replica.replica_id] = ok
        with self._lock:
            self.checks += 1
        return results

    def probe_history(self, replica_id: int) -> List[dict]:
        with self._lock:
            return list(self.history[replica_id])

    def start(self, interval: float) -> None:
        if self._thread is not None:
            return
        self._stop.clear()

        def loop() -> None:
            while not self._stop.wait(interval):
                self.check_now()

        self._thread = threading.Thread(
            target=loop, name="fleet-health-checker", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout)
            self._thread = None


class ReplicaFleet:
    """N replicas behind a health-checked, retrying router.

    Parameters
    ----------
    fact:
        The shared fact table (each replica materializes its own
        catalog from it).
    selections:
        Either one selection (a sequence of structure labels, applied
        to every replica — ``replicas`` gives the count) or one
        selection *per replica* (a sequence of sequences; its length is
        the replica count).
    replicas:
        Replica count when ``selections`` is a single selection
        (default 2; ignored and checked for consistency otherwise).
    workers / batch_size / queue_depth / cache_bytes / keep_records /
    max_worker_restarts:
        Per-replica server and front-end configuration
        (``cache_bytes=0`` disables the result cache).
    breaker_threshold / breaker_cooldown:
        Per-replica circuit-breaker configuration.
    retry:
        The router's :class:`RetryPolicy` (attempts + backoff).
    query_deadline:
        Per-attempt seconds a routed query may take (submit + answer)
        before the router strikes the replica and re-routes.
    strike_limit:
        Consecutive failures that mark a replica unhealthy.
    probe_interval:
        Seconds between background health sweeps (``None`` = active
        probing only via ``checker.check_now()``).
    router:
        Optional :class:`repro.distributed.RoutingTable` built over the
        same per-replica selections.  When set, dispatch is cost-routed:
        each query goes to its predicted-cheapest available replica
        (failover walks the ranking), and telemetry gains per-replica
        routed-hit / misroute counters.  ``None`` keeps round-robin.
    """

    def __init__(
        self,
        fact,
        selections: Union[Sequence[str], Sequence[Sequence[str]]],
        replicas: Optional[int] = None,
        cost_model: Optional[LinearCostModel] = None,
        workers: int = 1,
        batch_size: int = DEFAULT_BATCH_SIZE,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        cache_bytes: int = 0,
        keep_records: bool = False,
        max_worker_restarts: int = DEFAULT_MAX_WORKER_RESTARTS,
        breaker_threshold: int = BREAKER_FAILURE_THRESHOLD,
        breaker_cooldown: float = BREAKER_COOLDOWN_SECONDS,
        retry: Optional[RetryPolicy] = None,
        query_deadline: float = DEFAULT_QUERY_DEADLINE,
        strike_limit: int = DEFAULT_STRIKE_LIMIT,
        probe_interval: Optional[float] = None,
        probe_latency_threshold_us: float = DEFAULT_PROBE_LATENCY_US,
        probe_queue_limit: Optional[int] = None,
        rng_seed: int = 0,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        router=None,
    ):
        selection_list = self._normalize_selections(selections, replicas)
        if router is not None and router.n_replicas != len(selection_list):
            raise ValueError(
                f"router covers {router.n_replicas} replicas but the fleet "
                f"has {len(selection_list)}"
            )
        self.router = router
        if query_deadline <= 0:
            raise ValueError(f"query_deadline must be > 0, got {query_deadline}")
        if strike_limit < 1:
            raise ValueError(f"strike_limit must be >= 1, got {strike_limit}")
        self.retry = retry if retry is not None else RetryPolicy()
        self.query_deadline = float(query_deadline)
        self.strike_limit = int(strike_limit)
        self.clock = clock
        self._sleep = sleep
        self._rng = random.Random(rng_seed)
        self.telemetry = TelemetryCollector(keep_records=False)
        model = (
            cost_model
            if cost_model is not None
            else LinearCostModel.from_fact(fact)
        )
        self.cost_model = model
        self.replicas: List[Replica] = []
        for replica_id, selection in enumerate(selection_list):
            breaker = CircuitBreaker(
                failure_threshold=breaker_threshold,
                cooldown_seconds=breaker_cooldown,
            )
            server = QueryServer(
                fact,
                selection,
                cost_model=model,
                cache=(
                    ResultCache(capacity_bytes=cache_bytes)
                    if cache_bytes
                    else None
                ),
                keep_records=keep_records,
                breaker=breaker,
            )
            frontend = ServingFrontend(
                server,
                workers=workers,
                batch_size=batch_size,
                queue_depth=queue_depth,
                keep_records=keep_records,
                max_worker_restarts=max_worker_restarts,
            )
            replica = Replica(replica_id, server, frontend, clock)
            replica.on_transition = self._health_event
            self.replicas.append(replica)
        self._lock = threading.Lock()
        self._rr = 0
        self._routed = 0
        self._exhausted = 0
        self._no_healthy = 0
        self._no_healthy_since: Optional[float] = None
        self._unavailable_seconds = 0.0
        self._closed = False
        self.checker = HealthChecker(
            self,
            latency_threshold_us=probe_latency_threshold_us,
            queue_limit=probe_queue_limit,
        )
        if probe_interval is not None:
            self.checker.start(probe_interval)

    @staticmethod
    def _normalize_selections(selections, replicas) -> List[tuple]:
        items = list(selections)
        if not items:
            raise ValueError("selections must not be empty")
        if all(isinstance(item, str) for item in items):
            count = 2 if replicas is None else int(replicas)
            if count < 1:
                raise ValueError(f"replicas must be >= 1, got {replicas}")
            return [tuple(items)] * count
        per_replica = [tuple(item) for item in items]
        if replicas is not None and int(replicas) != len(per_replica):
            raise ValueError(
                f"replicas={replicas} disagrees with {len(per_replica)} "
                "per-replica selections"
            )
        return per_replica

    # ------------------------------------------------------------ routing

    def healthy_replicas(self) -> List[Replica]:
        return [replica for replica in self.replicas if replica.available]

    def _route(
        self, exclude: set, query: Optional[SliceQuery] = None
    ) -> Optional[Replica]:
        """Next healthy replica for this query, preferring untried ones.

        With a router: the cheapest available replica by predicted cost
        (failover walks the ranking, so a struck replica hands over to
        the *next*-cheapest, not to a random rotation slot).  Without:
        round-robin.
        """
        with self._lock:
            healthy = [r for r in self.replicas if r.available]
            if not healthy:
                return None
            if self.router is not None and query is not None:
                by_id = {r.replica_id: r for r in healthy}
                ranked = [
                    by_id[decision.replica_id]
                    for decision in self.router.ranking(query)
                    if decision.replica_id in by_id
                ]
                pool = [r for r in ranked if r.replica_id not in exclude] or ranked
                if pool:
                    return pool[0]
                # router covers none of the healthy replicas: fall back
            fresh = [r for r in healthy if r.replica_id not in exclude]
            pool = fresh or healthy
            self._rr += 1
            return pool[self._rr % len(pool)]

    def _health_event(self) -> None:
        """Re-derive fleet availability after any replica transition —
        the exact accounting of zero-healthy wall-clock spans."""
        with self._lock:
            healthy = sum(1 for r in self.replicas if r.available)
            now = self.clock()
            if healthy == 0 and self._no_healthy_since is None:
                self._no_healthy_since = now
            elif healthy > 0 and self._no_healthy_since is not None:
                self._unavailable_seconds += now - self._no_healthy_since
                self._no_healthy_since = None

    def _strike(self, replica: Replica, reason: str) -> None:
        if replica.record_strike(reason, self.strike_limit):
            self._health_event()

    # -------------------------------------------------------------- serve

    def serve(self, entry: LogEntry, tenant: str = DEFAULT_TENANT) -> ServeOutcome:
        """Answer one query through the fleet.

        Each attempt routes to a healthy replica and waits at most
        ``query_deadline`` for the answer; a timeout or typed serving
        failure strikes the replica, backs off (jittered exponential),
        and retries elsewhere.  Raises :class:`NoHealthyReplica` when
        nothing is routable and :class:`RetriesExhausted` after the
        last allowed attempt — never a wrong answer, never a hang.
        """
        tried: set = set()
        last_error: Optional[BaseException] = None
        attempts = 0
        for attempt in range(self.retry.max_attempts):
            if attempt:
                self.telemetry.note_retry()
                self._sleep(self.retry.delay(attempt - 1, self._rng))
            replica = self._route(tried, entry.query)
            if replica is None:
                with self._lock:
                    self._no_healthy += 1
                raise NoHealthyReplica(
                    f"no healthy replica (fleet of {len(self.replicas)}, "
                    f"attempt {attempt + 1})",
                    strikes={
                        r.replica_id: r.health_snapshot()
                        for r in self.replicas
                    },
                ) from last_error
            attempts += 1
            try:
                future = replica.frontend.submit(
                    entry, tenant=tenant, block=True, timeout=self.query_deadline
                )
            except ServingError as exc:
                last_error = exc
                tried.add(replica.replica_id)
                self._strike(replica, f"submit: {type(exc).__name__}")
                continue
            try:
                outcome = future.result(timeout=self.query_deadline)
            except FuturesTimeout:
                self.telemetry.note_deadline_timeout()
                last_error = QueryTimeout(
                    f"no answer within {self.query_deadline}s from "
                    f"replica {replica.replica_id}"
                )
                tried.add(replica.replica_id)
                self._strike(replica, "deadline timeout")
                continue
            except ServingError as exc:
                last_error = exc
                tried.add(replica.replica_id)
                self._strike(replica, type(exc).__name__)
                continue
            # anything not a ServingError propagates: that is a bug, not
            # an accounted fault
            with self._lock:
                self._routed += 1
            if self.router is not None:
                cheapest = self.router.route(entry.query).replica_id
                if replica.replica_id == cheapest:
                    self.telemetry.note_routed_hit(replica.replica_id)
                else:
                    self.telemetry.note_misroute(replica.replica_id)
            return outcome
        with self._lock:
            self._exhausted += 1
        raise RetriesExhausted(
            f"query failed after {attempts} attempts: {last_error!r}",
            attempts=attempts,
            last_error=last_error,
        )

    def serve_many(
        self,
        entries: Sequence[LogEntry],
        tenant: str = DEFAULT_TENANT,
        client_threads: int = 4,
    ) -> List[Union[ServeOutcome, ServingError]]:
        """Serve entries from a client thread pool.

        Returns, in input order, each entry's outcome — or the typed
        :class:`ServingError` it definitively failed with.  Untyped
        exceptions propagate (they indicate bugs)."""

        def attempt(entry: LogEntry):
            try:
                return self.serve(entry, tenant=tenant)
            except ServingError as exc:
                return exc

        with ThreadPoolExecutor(max_workers=client_threads) as pool:
            return list(pool.map(attempt, entries))

    # ----------------------------------------------------------- lifecycle

    @property
    def unavailable_seconds(self) -> float:
        with self._lock:
            total = self._unavailable_seconds
            if self._no_healthy_since is not None:
                total += self.clock() - self._no_healthy_since
            return total

    def close(self, timeout: float = 30.0, drain: bool = True) -> None:
        """Stop probing, close every live front-end, close the servers."""
        if self._closed:
            return
        self._closed = True
        self.checker.stop()
        for replica in self.replicas:
            if not replica.dead:
                replica.frontend.close(timeout=timeout, drain=drain)
            replica.server.close()

    def __enter__(self) -> "ReplicaFleet":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------ reporting

    def merged_telemetry(self) -> TelemetryCollector:
        """Fleet counters + every replica's collector, merged.

        Call after :meth:`close` for complete worker accounting (worker
        collectors fold into their server's on front-end close)."""
        return TelemetryCollector.merge(
            [self.telemetry]
            + [replica.server.telemetry for replica in self.replicas]
        )

    def stats(self) -> dict:
        resilience = self.telemetry.resilience_stats()
        with self._lock:
            counters = {
                "routed": self._routed,
                "exhausted": self._exhausted,
                "no_healthy": self._no_healthy,
            }
        return {
            "replicas": [replica.stats() for replica in self.replicas],
            "healthy": len(self.healthy_replicas()),
            "routed_dispatch": self.router is not None,
            "fleet": self.telemetry.fleet_stats(),
            "query_deadline": self.query_deadline,
            "retry": {
                "max_attempts": self.retry.max_attempts,
                "base_delay": self.retry.base_delay,
            },
            "retries": resilience["retries"],
            "deadline_timeouts": resilience["deadline_timeouts"],
            "unavailable_seconds": self.unavailable_seconds,
            "health_checks": self.checker.checks,
            **counters,
        }
