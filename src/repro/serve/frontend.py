"""Concurrent serving front-end: admission queue, workers, fair batching.

:class:`ServingFrontend` is the request loop in front of a
:class:`~repro.serve.server.QueryServer` — the shape cubes' slicer
server has, scaled down to an in-process component.  Requests enter
through a **bounded admission queue** (per-tenant FIFOs behind one
condition variable; a full queue blocks or rejects, it never grows
unbounded), worker threads drain the queue into batches, and every batch
goes through the server's vectorized :meth:`serve_batch` path over the
immutable serving state — which is lock-free to read and atomically
swapped, so workers never contend on the data they serve from.

**Fairness** is round-robin per tenant: a batch takes one queued entry
from each tenant in rotation, so a tenant flooding the queue cannot
starve the others — its requests just queue behind its own backlog.

**Telemetry** is per-worker: each worker records into its own
:class:`~repro.serve.telemetry.TelemetryCollector` (no shared-lock
traffic on the hot path) and :meth:`close` merges them — exact counters,
bucket-wise histograms, percentiles recomputed over the union of
samples — into the server's collector, so a drained front-end leaves the
server's snapshot indistinguishable from serial serving.

**Supervision**: a worker thread that dies outside the serve path (the
previous code let queued requests wait forever on one) now fails its
in-flight batch with a typed
:class:`~repro.serve.resilience.WorkerCrashed`, is restarted in place
(up to ``max_worker_restarts`` across the front-end's lifetime), and —
should the *last* worker die with no restart budget left — every queued
future is failed instead of hanging.  :meth:`close` likewise drains any
still-queued futures with :class:`~repro.serve.resilience.FrontendClosed`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from concurrent.futures import Future
from typing import Deque, List, Optional, Sequence, Tuple

from repro.cube.query_log import LogEntry
from repro.serve.batch import DEFAULT_BATCH_SIZE
from repro.serve.resilience import FrontendClosed, ServingError, WorkerCrashed
from repro.serve.telemetry import TelemetryCollector

#: Default bound on queued-but-unserved entries across all tenants.
DEFAULT_QUEUE_DEPTH = 4096

#: Tenant label for requests submitted without one.
DEFAULT_TENANT = "default"

#: Default lifetime budget of worker restarts per front-end.
DEFAULT_MAX_WORKER_RESTARTS = 16


class AdmissionQueueFull(ServingError):
    """The bounded admission queue rejected a request (over capacity)."""


class ServingFrontend:
    """Thread-pool front-end over a :class:`QueryServer`.

    Parameters
    ----------
    server:
        The query server whose :meth:`serve_batch` answers every batch.
    workers:
        Worker thread count (>= 1).
    batch_size:
        Most entries a worker drains into one ``serve_batch`` call.
    queue_depth:
        Bound on queued entries across all tenants; :meth:`submit`
        blocks (or raises :class:`AdmissionQueueFull` with
        ``block=False`` / on timeout) once reached.
    keep_records:
        Whether per-worker collectors retain per-query records (match
        the server's collector when the merged telemetry should).
    max_worker_restarts:
        Lifetime budget of worker restarts after crashes; past it a
        crashed worker stays down, and once the last one is down every
        queued future fails with :class:`WorkerCrashed`.
    crash_hook:
        Optional ``hook(slot)`` called after a worker takes a batch and
        before it serves — the chaos harness's worker-kill injection
        point (anything it raises crashes the worker).
    """

    def __init__(
        self,
        server,
        workers: int = 2,
        batch_size: int = DEFAULT_BATCH_SIZE,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        keep_records: bool = True,
        max_worker_restarts: int = DEFAULT_MAX_WORKER_RESTARTS,
        crash_hook=None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
        if max_worker_restarts < 0:
            raise ValueError(
                f"max_worker_restarts must be >= 0, got {max_worker_restarts}"
            )
        self.server = server
        self.workers = int(workers)
        self.batch_size = int(batch_size)
        self.queue_depth = int(queue_depth)
        self.max_worker_restarts = int(max_worker_restarts)
        self.crash_hook = crash_hook
        self._cond = threading.Condition()
        self._queues: "OrderedDict[str, Deque[Tuple[LogEntry, Future]]]" = (
            OrderedDict()
        )
        self._rotation: Deque[str] = deque()
        self._pending = 0
        self._inflight = 0
        self._closing = False
        self._abandon = False
        self._absorbed = False
        self.submitted = 0
        self.served = 0
        self.rejected = 0
        self.batches = 0
        self.worker_crashes = 0
        self.worker_restarts = 0
        self._restarts_used = 0
        self._live_workers = self.workers
        self.collectors: List[TelemetryCollector] = [
            TelemetryCollector(keep_records=keep_records)
            for _ in range(self.workers)
        ]
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                args=(pos,),
                name=f"serve-frontend-{pos}",
                daemon=True,
            )
            for pos in range(self.workers)
        ]
        for thread in self._threads:
            thread.start()

    # -------------------------------------------------------------- submit

    def submit(
        self,
        entry: LogEntry,
        tenant: str = DEFAULT_TENANT,
        block: bool = True,
        timeout: Optional[float] = None,
    ) -> "Future[object]":
        """Queue one query; returns a future resolving to its
        :class:`~repro.serve.server.ServeOutcome`.

        A full queue blocks until space frees (``timeout`` bounds the
        wait) or, with ``block=False``, raises
        :class:`AdmissionQueueFull` immediately.
        """
        future: "Future[object]" = Future()
        with self._cond:
            while not self._closing and self._pending >= self.queue_depth:
                self._check_live_locked()
                if not block:
                    self.rejected += 1
                    raise AdmissionQueueFull(
                        f"admission queue at capacity ({self.queue_depth})"
                    )
                if not self._cond.wait(timeout):
                    self.rejected += 1
                    raise AdmissionQueueFull(
                        f"admission queue still full after {timeout}s"
                    )
            if self._closing:
                raise FrontendClosed("frontend is closed")
            self._check_live_locked()
            queue = self._queues.get(tenant)
            if queue is None:
                queue = deque()
                self._queues[tenant] = queue
            if not queue:
                self._rotation.append(tenant)
            queue.append((entry, future))
            self._pending += 1
            self.submitted += 1
            self._cond.notify_all()
        return future

    def submit_many(
        self, entries: Sequence[LogEntry], tenant: str = DEFAULT_TENANT
    ) -> List["Future[object]"]:
        """Queue many entries for one tenant (blocking admission).

        Takes the queue lock once per admitted run instead of once per
        entry; blocks whenever the queue is at capacity, exactly like a
        sequence of blocking :meth:`submit` calls."""
        futures: List["Future[object]"] = []
        pos = 0
        with self._cond:
            while pos < len(entries):
                while not self._closing and self._pending >= self.queue_depth:
                    self._check_live_locked()
                    self._cond.wait()
                if self._closing:
                    raise FrontendClosed("frontend is closed")
                self._check_live_locked()
                queue = self._queues.get(tenant)
                if queue is None:
                    queue = deque()
                    self._queues[tenant] = queue
                while pos < len(entries) and self._pending < self.queue_depth:
                    future: "Future[object]" = Future()
                    if not queue:
                        self._rotation.append(tenant)
                    queue.append((entries[pos], future))
                    futures.append(future)
                    self._pending += 1
                    self.submitted += 1
                    pos += 1
                self._cond.notify_all()
        return futures

    # -------------------------------------------------------------- worker

    def _check_live_locked(self) -> None:
        """Fail fast (under the condition lock) once every worker has
        crashed for good — blocking submitters must not hang on a pool
        that can never drain."""
        if self._live_workers <= 0 and self.worker_crashes > 0:
            raise WorkerCrashed(
                f"all {self.workers} workers crashed "
                f"({self.worker_crashes} crashes, restart budget "
                f"{self.max_worker_restarts} spent)"
            )

    def _take_batch(self) -> Optional[List[Tuple[LogEntry, Future]]]:
        """Wait for work; drain up to ``batch_size`` entries fairly.

        One entry per tenant per rotation step, so interleaved tenants
        share each batch evenly.  Returns ``None`` when closing and
        drained (or closing with ``drain=False`` — the abandoned queue
        is failed by :meth:`close`, not served)."""
        with self._cond:
            while not self._closing and self._pending == 0:
                self._cond.wait()
            if self._pending == 0 or self._abandon:
                return None
            batch: List[Tuple[LogEntry, Future]] = []
            while len(batch) < self.batch_size and self._rotation:
                tenant = self._rotation.popleft()
                queue = self._queues[tenant]
                batch.append(queue.popleft())
                self._pending -= 1
                if queue:
                    self._rotation.append(tenant)
            self._inflight += 1
            self._cond.notify_all()
            return batch

    def _worker_loop(self, slot: int) -> None:
        collector = self.collectors[slot]
        while True:
            batch = self._take_batch()
            if batch is None:
                return
            try:
                try:
                    if self.crash_hook is not None:
                        self.crash_hook(slot)
                    entries = [entry for entry, __ in batch]
                    try:
                        outcomes = self.server.serve_batch(
                            entries, telemetry=collector
                        )
                    except Exception as exc:
                        # a serving error fails the batch, not the worker
                        for __, future in batch:
                            if not future.cancelled():
                                future.set_exception(exc)
                    else:
                        for (__, future), outcome in zip(batch, outcomes):
                            if not future.cancelled():
                                future.set_result(outcome)
                finally:
                    with self._cond:
                        self._inflight -= 1
                        self.served += len(batch)
                        self.batches += 1
                        self._cond.notify_all()
            except BaseException as exc:
                # the worker itself died (crash hook, future bookkeeping,
                # interpreter-level errors): supervise instead of hanging
                self._on_worker_crash(slot, batch, exc)
                return

    def _on_worker_crash(
        self, slot: int, batch: List[Tuple[LogEntry, Future]], exc: BaseException
    ) -> None:
        """Supervision: fail the crashed batch with a typed error,
        restart the worker while budget lasts, and fail the whole queue
        when the last worker is gone."""
        error = WorkerCrashed(f"worker {slot} crashed: {exc!r}")
        error.__cause__ = exc
        for __, future in batch:
            if not future.done():
                future.set_exception(error)
        # noted on the *server's* collector: per-worker collectors are
        # absorbed into it on close, so this never double-counts
        self.server.telemetry.note_worker_crash()
        restart = False
        dead = False
        with self._cond:
            self.worker_crashes += 1
            self._live_workers -= 1
            if not self._closing and self._restarts_used < self.max_worker_restarts:
                self._restarts_used += 1
                self.worker_restarts += 1
                self._live_workers += 1
                restart = True
            elif self._live_workers <= 0:
                dead = True
            self._cond.notify_all()
        if restart:
            self.server.telemetry.note_worker_restart()
            thread = threading.Thread(
                target=self._worker_loop,
                args=(slot,),
                name=f"serve-frontend-{slot}r{self._restarts_used}",
                daemon=True,
            )
            with self._cond:
                self._threads.append(thread)
            thread.start()
        elif dead:
            self._fail_pending(
                WorkerCrashed(
                    f"all workers crashed (restart budget "
                    f"{self.max_worker_restarts} spent); queued request failed"
                )
            )

    def _fail_pending(self, error: ServingError) -> None:
        """Fail every still-queued future with a typed error (never let
        a request hang on a queue nobody will drain)."""
        with self._cond:
            victims: List[Future] = []
            for queue in self._queues.values():
                while queue:
                    __, future = queue.popleft()
                    victims.append(future)
            self._queues.clear()
            self._rotation.clear()
            self._pending = 0
            self._cond.notify_all()
        for future in victims:
            if not future.done():
                future.set_exception(error)

    # --------------------------------------------------------------- drain

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait until the queue is empty and no batch is in flight."""
        with self._cond:
            return self._cond.wait_for(
                lambda: self._pending == 0 and self._inflight == 0, timeout
            )

    def merged_telemetry(self) -> TelemetryCollector:
        """Merge the per-worker collectors (without touching the
        server's collector)."""
        return TelemetryCollector.merge(self.collectors)

    def close(self, timeout: Optional[float] = None, drain: bool = True) -> None:
        """Stop the workers and fold the per-worker telemetry into the
        server's collector (once).

        ``drain=True`` (default) serves the remaining queue first;
        ``drain=False`` abandons it — workers finish only their current
        batch and every still-queued future fails with
        :class:`FrontendClosed`.  Either way no future is ever left
        pending: anything the workers did not serve is failed typed.
        """
        with self._cond:
            self._closing = True
            if not drain:
                self._abandon = True
            self._cond.notify_all()
        # two passes: a restart approved just before _closing was set can
        # add one more thread while we snapshot the list
        for __ in range(2):
            with self._cond:
                threads = [t for t in self._threads if t.is_alive()]
            for thread in threads:
                thread.join(timeout)
        self._fail_pending(FrontendClosed("frontend closed with queued requests"))
        if not self._absorbed:
            self._absorbed = True
            for collector in self.collectors:
                self.server.telemetry.absorb(collector)

    def __enter__(self) -> "ServingFrontend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # --------------------------------------------------------------- stats

    def stats(self) -> dict:
        """Front-end counters for reports and tests."""
        with self._cond:
            return {
                "workers": self.workers,
                "batch_size": self.batch_size,
                "queue_depth": self.queue_depth,
                "submitted": self.submitted,
                "served": self.served,
                "rejected": self.rejected,
                "batches": self.batches,
                "pending": self._pending,
                "tenants": sorted(self._queues),
                "live_workers": self._live_workers,
                "worker_crashes": self.worker_crashes,
                "worker_restarts": self.worker_restarts,
            }
