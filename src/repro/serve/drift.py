"""Workload drift: observed query frequencies vs. the advised ones.

A selection is only as good as the frequencies it was advised under
(they weight every benefit the greedy maximized).  The monitor keeps a
running count of observed query patterns and reports the total-variation
distance to the advised distribution — the probability mass the advisor
assigned to the wrong queries.  When that distance crosses a threshold
(after a minimum number of observations, so a handful of queries cannot
trip it), the serving layer triggers a background re-selection.
"""

from __future__ import annotations

import threading
from typing import Dict, Mapping

from repro.core.query import SliceQuery
from repro.cube.workload import normalize_frequencies, total_variation

#: Default total-variation threshold that marks a workload as drifted.
DRIFT_THRESHOLD = 0.25

#: Default minimum observations before drift can be reported.
DRIFT_MIN_QUERIES = 50


class DriftMonitor:
    """Running comparison of observed vs. advised query frequencies."""

    def __init__(
        self,
        advised: Mapping[SliceQuery, float],
        threshold: float = DRIFT_THRESHOLD,
        min_queries: int = DRIFT_MIN_QUERIES,
    ):
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        if min_queries < 1:
            raise ValueError(f"min_queries must be >= 1, got {min_queries}")
        self.threshold = float(threshold)
        self.min_queries = int(min_queries)
        self._lock = threading.Lock()
        self._advised = normalize_frequencies(dict(advised))
        self._counts: Dict[SliceQuery, int] = {}
        self._total = 0

    def observe(self, query: SliceQuery) -> None:
        with self._lock:
            self._counts[query] = self._counts.get(query, 0) + 1
            self._total += 1

    @property
    def observed_total(self) -> int:
        with self._lock:
            return self._total

    def observed_frequencies(self) -> Dict[SliceQuery, float]:
        """The observed relative frequencies (sums to 1; empty when no
        query has been observed yet)."""
        with self._lock:
            if not self._total:
                return {}
            return {q: c / self._total for q, c in self._counts.items()}

    def observed_counts(self) -> Dict[SliceQuery, int]:
        with self._lock:
            return dict(self._counts)

    def distance(self) -> float:
        """Total-variation distance of observed from advised (0 before
        any observation)."""
        observed = self.observed_frequencies()
        if not observed:
            return 0.0
        return total_variation(observed, self._advised)

    @property
    def drifted(self) -> bool:
        """True once enough queries have been seen *and* the distance
        crosses the threshold."""
        if self.observed_total < self.min_queries:
            return False
        return self.distance() >= self.threshold

    def rebase(self, advised: Mapping[SliceQuery, float]) -> None:
        """Restart monitoring against a new advised distribution — called
        after a hot swap, so drift is always measured against the
        selection currently serving."""
        with self._lock:
            self._advised = normalize_frequencies(dict(advised))
            self._counts = {}
            self._total = 0

    def status(self) -> dict:
        """Snapshot for telemetry meta: observations, distance, state."""
        return {
            "observed": self.observed_total,
            "distance": self.distance(),
            "threshold": self.threshold,
            "min_queries": self.min_queries,
            "drifted": self.drifted,
        }
