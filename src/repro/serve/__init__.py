"""repro.serve — online query serving over a materialized selection.

The serving subsystem closes the loop the paper leaves open: the advisor
picks views and indexes from *assumed* workload frequencies; this package
serves concrete slice queries from that selection, measures the workload
actually arriving, and re-runs the advisor when the two drift apart.

The high-throughput layer on top: :meth:`QueryServer.serve_batch`
answers query batches in vectorized per-plan passes, a
:class:`ResultCache` memoizes repeated queries (generation-tagged, so
hot swaps and maintenance deltas can never serve stale rows), and the
:class:`ServingFrontend` runs a worker pool with a bounded admission
queue, per-tenant fairness, and mergeable per-worker telemetry.

The fault-tolerance layer on top of *that*: a :class:`ReplicaFleet`
routes queries over N supervised replicas with health checks, deadlines,
and jittered retry/failover; per-structure :class:`CircuitBreaker`\\ s
short-circuit repeatedly-failing structures onto the (slower but always
correct) raw-cube path; crashed front-end workers restart and fail their
in-flight queries with typed errors instead of hanging; and
``python -m repro.serve.chaos`` injects all four fault classes into live
runs, asserting zero wrong answers and exact telemetry accounting.

The fleet also accepts *divergent* per-replica selections plus a
:class:`repro.distributed.RoutingTable`, switching dispatch from
round-robin to cost-routed (each query to its predicted-cheapest
replica, failover down the ranking) — see :mod:`repro.distributed`.
"""

from repro.serve.adaptive import (
    READVISE_MARGIN,
    AdaptiveReselector,
    ReadviseOutcome,
    observed_cost,
)
from repro.serve.batch import DEFAULT_BATCH_SIZE
from repro.serve.cache import CachedResult, ResultCache, result_key
from repro.serve.drift import DRIFT_MIN_QUERIES, DRIFT_THRESHOLD, DriftMonitor
from repro.serve.fleet import (
    DEFAULT_QUERY_DEADLINE,
    DEFAULT_STRIKE_LIMIT,
    HealthChecker,
    Replica,
    ReplicaFleet,
)
from repro.serve.frontend import (
    DEFAULT_MAX_WORKER_RESTARTS,
    DEFAULT_QUEUE_DEPTH,
    AdmissionQueueFull,
    ServingFrontend,
)
from repro.serve.recorder import WorkloadRecorder
from repro.serve.resilience import (
    BREAKER_COOLDOWN_SECONDS,
    BREAKER_FAILURE_THRESHOLD,
    CircuitBreaker,
    FrontendClosed,
    NoHealthyReplica,
    QueryTimeout,
    RetriesExhausted,
    RetryPolicy,
    ServingError,
    WorkerCrashed,
)
from repro.serve.server import (
    QueryServer,
    ReplayReport,
    ServeOutcome,
    ServingState,
)
from repro.serve.structures import parse_structure, resolve_selection
from repro.serve.telemetry import (
    FLEET_COUNTER_FIELDS,
    RAW_LABEL,
    RESILIENCE_COUNTER_FIELDS,
    TELEMETRY_SCHEMA_VERSION,
    TelemetryCollector,
    empty_fleet_stats,
    empty_resilience_stats,
    upgrade_telemetry,
    validate_telemetry,
)

__all__ = [
    "AdaptiveReselector",
    "AdmissionQueueFull",
    "BREAKER_COOLDOWN_SECONDS",
    "BREAKER_FAILURE_THRESHOLD",
    "CachedResult",
    "CircuitBreaker",
    "DEFAULT_BATCH_SIZE",
    "DEFAULT_MAX_WORKER_RESTARTS",
    "DEFAULT_QUERY_DEADLINE",
    "DEFAULT_QUEUE_DEPTH",
    "DEFAULT_STRIKE_LIMIT",
    "FLEET_COUNTER_FIELDS",
    "FrontendClosed",
    "HealthChecker",
    "NoHealthyReplica",
    "QueryTimeout",
    "Replica",
    "ReplicaFleet",
    "RESILIENCE_COUNTER_FIELDS",
    "RetriesExhausted",
    "RetryPolicy",
    "ServingError",
    "WorkerCrashed",
    "DriftMonitor",
    "DRIFT_MIN_QUERIES",
    "DRIFT_THRESHOLD",
    "QueryServer",
    "RAW_LABEL",
    "READVISE_MARGIN",
    "ReadviseOutcome",
    "ReplayReport",
    "ResultCache",
    "ServeOutcome",
    "ServingFrontend",
    "ServingState",
    "TELEMETRY_SCHEMA_VERSION",
    "TelemetryCollector",
    "WorkloadRecorder",
    "empty_fleet_stats",
    "empty_resilience_stats",
    "observed_cost",
    "parse_structure",
    "resolve_selection",
    "result_key",
    "upgrade_telemetry",
    "validate_telemetry",
]
