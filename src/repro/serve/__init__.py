"""repro.serve — online query serving over a materialized selection.

The serving subsystem closes the loop the paper leaves open: the advisor
picks views and indexes from *assumed* workload frequencies; this package
serves concrete slice queries from that selection, measures the workload
actually arriving, and re-runs the advisor when the two drift apart.

The high-throughput layer on top: :meth:`QueryServer.serve_batch`
answers query batches in vectorized per-plan passes, a
:class:`ResultCache` memoizes repeated queries (generation-tagged, so
hot swaps and maintenance deltas can never serve stale rows), and the
:class:`ServingFrontend` runs a worker pool with a bounded admission
queue, per-tenant fairness, and mergeable per-worker telemetry.
"""

from repro.serve.adaptive import (
    READVISE_MARGIN,
    AdaptiveReselector,
    ReadviseOutcome,
    observed_cost,
)
from repro.serve.batch import DEFAULT_BATCH_SIZE
from repro.serve.cache import CachedResult, ResultCache, result_key
from repro.serve.drift import DRIFT_MIN_QUERIES, DRIFT_THRESHOLD, DriftMonitor
from repro.serve.frontend import (
    DEFAULT_QUEUE_DEPTH,
    AdmissionQueueFull,
    ServingFrontend,
)
from repro.serve.recorder import WorkloadRecorder
from repro.serve.server import (
    QueryServer,
    ReplayReport,
    ServeOutcome,
    ServingState,
)
from repro.serve.structures import parse_structure, resolve_selection
from repro.serve.telemetry import (
    RAW_LABEL,
    TELEMETRY_SCHEMA_VERSION,
    TelemetryCollector,
    upgrade_telemetry,
    validate_telemetry,
)

__all__ = [
    "AdaptiveReselector",
    "AdmissionQueueFull",
    "CachedResult",
    "DEFAULT_BATCH_SIZE",
    "DEFAULT_QUEUE_DEPTH",
    "DriftMonitor",
    "DRIFT_MIN_QUERIES",
    "DRIFT_THRESHOLD",
    "QueryServer",
    "RAW_LABEL",
    "READVISE_MARGIN",
    "ReadviseOutcome",
    "ReplayReport",
    "ResultCache",
    "ServeOutcome",
    "ServingFrontend",
    "ServingState",
    "TELEMETRY_SCHEMA_VERSION",
    "TelemetryCollector",
    "WorkloadRecorder",
    "observed_cost",
    "parse_structure",
    "resolve_selection",
    "result_key",
    "upgrade_telemetry",
    "validate_telemetry",
]
