"""repro.serve — online query serving over a materialized selection.

The serving subsystem closes the loop the paper leaves open: the advisor
picks views and indexes from *assumed* workload frequencies; this package
serves concrete slice queries from that selection, measures the workload
actually arriving, and re-runs the advisor when the two drift apart.
"""

from repro.serve.adaptive import (
    READVISE_MARGIN,
    AdaptiveReselector,
    ReadviseOutcome,
    observed_cost,
)
from repro.serve.drift import DRIFT_MIN_QUERIES, DRIFT_THRESHOLD, DriftMonitor
from repro.serve.recorder import WorkloadRecorder
from repro.serve.server import (
    QueryServer,
    ReplayReport,
    ServeOutcome,
    ServingState,
)
from repro.serve.structures import parse_structure, resolve_selection
from repro.serve.telemetry import (
    RAW_LABEL,
    TELEMETRY_SCHEMA_VERSION,
    TelemetryCollector,
    validate_telemetry,
)

__all__ = [
    "AdaptiveReselector",
    "DriftMonitor",
    "DRIFT_MIN_QUERIES",
    "DRIFT_THRESHOLD",
    "QueryServer",
    "RAW_LABEL",
    "READVISE_MARGIN",
    "ReadviseOutcome",
    "ReplayReport",
    "ServeOutcome",
    "ServingState",
    "TELEMETRY_SCHEMA_VERSION",
    "TelemetryCollector",
    "WorkloadRecorder",
    "observed_cost",
    "parse_structure",
    "resolve_selection",
    "validate_telemetry",
]
