"""Resolving selection labels back to physical structures.

A :class:`~repro.core.selection.SelectionResult` names its structures in
the paper's compact notation — views as ``psc`` / ``part,customer`` /
``none``, indexes as ``I_sp(ps)`` — which is also what ``repro advise``
persists to JSON.  The serving layer turns those labels back into
:class:`~repro.core.view.View` and :class:`~repro.core.index.Index`
objects so the catalog can materialize them.
"""

from __future__ import annotations

import re
from typing import Iterable, List, Tuple, Union

from repro.core.index import Index
from repro.core.view import View, parse_view

_INDEX_LABEL = re.compile(r"I_(?P<key>[^()]+)\((?P<view>[^()]*)\)\Z")


def parse_structure(label: str) -> Union[View, Index]:
    """Parse a structure label into a :class:`View` or :class:`Index`.

    ``"ps"`` / ``"none"`` / ``"part,customer"`` parse as views (the
    :func:`~repro.core.view.parse_view` rules); ``"I_sp(ps)"`` and
    ``"I_part,customer(part,customer)"`` parse as indexes.  Raises
    ``ValueError`` on malformed labels.
    """
    label = label.strip()
    match = _INDEX_LABEL.fullmatch(label)
    if match is None:
        if label.startswith("I_"):
            raise ValueError(f"malformed index label {label!r}")
        return parse_view(label)
    key_text = match.group("key")
    if "," in key_text:
        key = tuple(part.strip() for part in key_text.split(","))
    else:
        key = tuple(key_text)
    view = parse_view(match.group("view"))
    try:
        return Index(view, key)
    except ValueError as exc:
        raise ValueError(f"malformed index label {label!r}: {exc}") from exc


def resolve_selection(
    names: Iterable[str],
) -> Tuple[List[View], List[Index]]:
    """Split selection labels into views and indexes, preserving order.

    Raises ``ValueError`` when an index's owning view is not part of the
    selection — the catalog could never build it.
    """
    views: List[View] = []
    indexes: List[Index] = []
    for name in names:
        structure = parse_structure(name)
        if isinstance(structure, Index):
            indexes.append(structure)
        else:
            views.append(structure)
    view_set = set(views)
    for index in indexes:
        if index.view not in view_set:
            raise ValueError(
                f"selection has index {index} without its view {index.view}"
            )
    return views, indexes
